//! Umbrella crate for the CRISP branch-folding reproduction
//! (Ditzel & McLellan, ISCA 1987).
//!
//! Re-exports every workspace crate under one root so that examples,
//! integration tests and downstream users can write `crisp::sim::...`
//! instead of depending on each crate individually.
//!
//! * [`isa`] — the CRISP-like instruction set, encoding and the decoded
//!   instruction form with branch folding;
//! * [`asm`] — two-pass assembler and disassembler;
//! * [`cc`] — the mini-C compiler with branch-spreading and static
//!   prediction passes (CRISP and VAX-lite backends);
//! * [`sim`] — functional and cycle-level pipeline simulators (PDU,
//!   decoded instruction cache, 3-stage execution unit);
//! * [`predict`] — trace-driven branch-prediction models (static, 1/2/3
//!   bits of dynamic history, branch target buffer, MU5 jump trace);
//! * [`vax`] — the VAX-lite substrate used for the paper's Table 2
//!   comparison;
//! * [`workloads`] — the paper's Figure 3 program and the benchmark
//!   proxies used by the prediction study.
//!
//! # Quickstart
//!
//! ```
//! use crisp::cc::compile_crisp;
//! use crisp::sim::{FunctionalSim, Machine};
//! use crisp::workloads;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Compile the paper's Figure 3 program and run it to completion.
//! let image = compile_crisp(workloads::FIGURE3_SOURCE, &Default::default())?;
//! let mut sim = FunctionalSim::new(Machine::load(&image)?);
//! let result = sim.run()?;
//! assert!(result.halted);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub use crisp_asm as asm;
pub use crisp_cc as cc;
pub use crisp_isa as isa;
pub use crisp_predict as predict;
pub use crisp_sim as sim;
pub use crisp_workloads as workloads;
pub use vax_lite as vax;

//! Regenerate the geometry golden vectors under `tests/golden/`.
//!
//! Each file pins the complete observable output of one cycle-engine
//! run at the default (paper) pipeline geometry: the full commit-event
//! stream (architectural history *with* cycle stamps, so timing drift
//! is caught too) followed by the end-of-run stats JSON. The
//! `golden_geometry` integration test replays every file and demands
//! bit-identical output, so refactors of the pipeline engine — like the
//! `PipelineGeometry` generalization — cannot silently change the D=3
//! machine the paper tables are built on.
//!
//! Run from the repo root: `cargo run --release --example gen_golden`

use crisp::cc::{compile_crisp, CompileOptions, PredictionMode};
use crisp::isa::FoldPolicy;
use crisp::sim::{CycleSim, EventRing, HwPredictor, Machine, PipeEvent, SimConfig};
use crisp::workloads::figure3_with_count;

/// Strip one additive post-refactor field (scalar, array, or flat
/// object value followed by a comma) from a stats JSON line.
fn strip_field(json: &str, key: &str) -> String {
    let pat = format!("\"{key}\":");
    let Some(start) = json.find(&pat) else {
        return json.to_string();
    };
    let rest = &json[start + pat.len()..];
    let vlen = match rest.as_bytes()[0] {
        b'{' => rest.find('}').map_or(rest.len(), |i| i + 1),
        b'[' => rest.find(']').map_or(rest.len(), |i| i + 1),
        _ => rest.find([',', '}']).unwrap_or(rest.len()),
    };
    let mut after = &rest[vlen..];
    if let Some(tail) = after.strip_prefix(',') {
        after = tail;
    }
    format!("{}{}", &json[..start], after)
}

/// Strip the additive observability fields, exactly as the
/// `golden_geometry` replay does — the two lists MUST stay in sync or
/// freshly generated vectors won't match the replay's normalization.
/// (These fields deliberately sit outside the frozen surface: they
/// exist to *announce* shape changes, not to be one.)
fn normalize_stats(json: &str) -> String {
    [
        "schema_version",
        "accounts",
        "dropped_events",
        "predicted_by",
        "static_bit_mispredicts",
    ]
    .iter()
    .fold(json.to_string(), |s, key| strip_field(&s, key))
}

fn fold_name(p: FoldPolicy) -> &'static str {
    match p {
        FoldPolicy::None => "none",
        FoldPolicy::Host1 => "host1",
        FoldPolicy::Host13 => "host13",
        FoldPolicy::All => "all",
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::path::Path::new("tests/golden");
    std::fs::create_dir_all(dir)?;
    let source = figure3_with_count(64);
    let compiles = [
        ("figure3x64", CompileOptions::default()),
        (
            "figure3x64-nospread",
            CompileOptions {
                spread: false,
                prediction: PredictionMode::Btfnt,
            },
        ),
    ];
    for (wname, copts) in compiles {
        let image = compile_crisp(&source, &copts)?;
        for fold_policy in [
            FoldPolicy::None,
            FoldPolicy::Host1,
            FoldPolicy::Host13,
            FoldPolicy::All,
        ] {
            for (pname, predictor) in [
                ("static", HwPredictor::StaticBit),
                (
                    "dyn2x64",
                    HwPredictor::Dynamic {
                        bits: 2,
                        entries: 64,
                    },
                ),
                (
                    "btb128x4",
                    HwPredictor::Btb {
                        entries: 128,
                        ways: 4,
                    },
                ),
            ] {
                let cfg = SimConfig {
                    fold_policy,
                    predictor,
                    ..SimConfig::default()
                };
                let sim =
                    CycleSim::with_observer(Machine::load(&image)?, cfg, EventRing::new(1 << 20));
                let (run, ring) = sim.run_observed()?;
                assert!(run.halted, "golden workloads must halt");
                assert_eq!(ring.dropped, 0, "ring must hold the whole run");
                let mut out = String::new();
                out.push_str(&normalize_stats(&run.stats.to_json()));
                out.push('\n');
                for ev in ring.events() {
                    if matches!(ev, PipeEvent::Commit { .. }) {
                        out.push_str(&ev.to_json());
                        out.push('\n');
                    }
                }
                let path = dir.join(format!("{wname}_{}_{pname}.txt", fold_name(fold_policy)));
                std::fs::write(&path, out)?;
                println!("wrote {}", path.display());
            }
        }
    }
    Ok(())
}

//! Watch the pipeline cycle by cycle: instructions flow IR → OR → RR,
//! folded entries carry their branch for free, and a mispredict kills
//! the slots behind the branch.
//!
//! ```sh
//! cargo run --example pipeline_view
//! ```

use std::collections::BTreeMap;

use crisp::asm::assemble_text;
use crisp::isa::encoding;
use crisp::sim::{CycleSim, Machine, SimConfig, StageView};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let image = assemble_text(
        "
            mov 0(sp),$0
        top:
            add 0(sp),$1        ; i++
            add 4(sp),0(sp)     ; sum += i
            cmp.s< 0(sp),$3     ; i < 3 ?
            ifjmpy.t top        ; folded with the cmp
            halt
        ",
    )?;

    // Pre-disassemble so stages can be labelled by mnemonic.
    let mut names: BTreeMap<u32, String> = BTreeMap::new();
    let mut at = 0usize;
    while at < image.parcels.len() {
        let (instr, len) =
            encoding::decode(&image.parcels, at).map_err(|e| format!("disassembly failed: {e}"))?;
        names.insert(at as u32 * 2, instr.to_string());
        at += len;
    }

    let describe = |v: Option<StageView>| -> String {
        match v {
            None => "·".into(),
            Some(v) => {
                let name = names
                    .get(&v.pc)
                    .cloned()
                    .unwrap_or_else(|| format!("{:#x}", v.pc));
                let mut s = name;
                if v.folded {
                    s.push_str(" [+branch]");
                }
                if !v.valid {
                    s = format!("({s}) killed");
                }
                s
            }
        }
    };

    println!("{:>5}  {:<26} {:<26} {:<26}", "cycle", "IR", "OR", "RR");
    let mut sim = CycleSim::new(Machine::load(&image)?, SimConfig::default());
    for _ in 0..60 {
        let snap = sim.step()?;
        println!(
            "{:>5}  {:<26} {:<26} {:<26}",
            snap.cycle,
            describe(snap.ir()),
            describe(snap.or()),
            describe(snap.rr()),
        );
        if snap.halted {
            break;
        }
    }
    let sum = sim.machine().mem.read_word(sim.machine().sp + 4)?;
    println!("\nresult: sum = {sum}");
    println!("note: the ifjmpy never occupies a stage — it rides folded with the cmp.");
    Ok(())
}

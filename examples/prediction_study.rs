//! The paper's Table 1 methodology on one workload: record a branch
//! trace, evaluate static vs dynamic predictors, then feed the optimal
//! static bits back into the binary (profile-guided prediction).
//!
//! ```sh
//! cargo run --release --example prediction_study
//! ```

use std::collections::HashMap;

use crisp::cc::{apply_profile, compile_crisp, CompileOptions};
use crisp::predict::{evaluate_dynamic, evaluate_static_optimal, Btb, BtbConfig, JumpTrace};
use crisp::sim::{FunctionalSim, Machine};
use crisp::workloads::DHRY_SOURCE;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = CompileOptions::default();
    let mut image = compile_crisp(DHRY_SOURCE, &opts)?;

    // 1. Profile run: collect the branch trace.
    let run = FunctionalSim::new(Machine::load(&image)?)
        .record_trace(true)
        .run()?;
    println!(
        "dhry workload: {} instructions, {} conditional branches",
        run.stats.program_instrs, run.stats.cond_branches
    );

    // 2. Evaluate the paper's schemes.
    let st = evaluate_static_optimal(&run.trace);
    println!("\nprediction accuracy:");
    println!("  optimal static bit : {:.3}", st.accuracy.ratio());
    for bits in [1u8, 2, 3] {
        println!(
            "  {bits}-bit dynamic      : {:.3}",
            evaluate_dynamic(&run.trace, bits).ratio()
        );
    }
    let btb = Btb::new(BtbConfig::default()).evaluate(&run.trace);
    let jt = JumpTrace::new(JumpTrace::MU5_ENTRIES).evaluate(&run.trace);
    println!(
        "  BTB 128x4          : {:.3} (all transfers)",
        btb.effectiveness()
    );
    println!("  MU5 jump trace (8) : {:.3} (all transfers)", jt.ratio());

    // 3. Patch the optimal bits into the image and re-measure.
    let majority: HashMap<u32, bool> = st.majority.into_iter().collect();
    let patched = apply_profile(&mut image, &majority);
    let tuned = FunctionalSim::new(Machine::load(&image)?).run()?;
    println!(
        "\nprofile-guided bits: patched {patched} branches; static mispredicts {} -> {}",
        run.stats.static_mispredicts, tuned.stats.static_mispredicts
    );
    Ok(())
}

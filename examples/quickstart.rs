//! Quickstart: assemble a small CRISP program by hand, run it on both
//! engines, and look at what branch folding did to it.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use crisp::asm::{assemble_text, listing};
use crisp::isa::FoldPolicy;
use crisp::sim::{CycleSim, FunctionalSim, Machine, SimConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Sum the integers 1..=100 in stack slot 4(sp).
    let image = assemble_text(
        "
            mov 0(sp),$0        ; i = 0
            mov 4(sp),$0        ; sum = 0
        top:
            add 0(sp),$1        ; i++
            add 4(sp),0(sp)     ; sum += i
            cmp.s< 0(sp),$100   ; i < 100 ?
            ifjmpy.t top        ; loop (predicted taken)
            halt
        ",
    )?;

    println!("== Annotated listing (CRISP fold policy) ==");
    println!(
        "{}",
        listing(&image.parcels, image.code_base, FoldPolicy::Host13)
            .map_err(|(addr, e)| format!("disassembly failed at {addr:#x}: {e}"))?
    );

    // Functional run: architectural reference.
    let func = FunctionalSim::new(Machine::load(&image)?).run()?;
    let sum = func.machine.mem.read_word(func.machine.sp + 4)?;
    println!("functional result: sum = {sum}");
    println!(
        "program instructions: {} (pipeline entries: {}, {} branches folded away)",
        func.stats.program_instrs, func.stats.entries, func.stats.folded
    );

    // Cycle-level run: timing.
    let cyc = CycleSim::new(Machine::load(&image)?, SimConfig::default()).run()?;
    println!(
        "cycle model: {} cycles, {} issued, apparent CPI {:.2}",
        cyc.stats.cycles,
        cyc.stats.issued,
        cyc.stats.apparent_cpi()
    );
    assert_eq!(cyc.machine.mem.read_word(cyc.machine.sp + 4)?, sum);

    // The same machine without folding, for contrast.
    let nofold = CycleSim::new(Machine::load(&image)?, SimConfig::without_folding()).run()?;
    println!(
        "without folding: {} cycles, {} issued — folding saved {} issue slots",
        nofold.stats.cycles,
        nofold.stats.issued,
        nofold.stats.issued - cyc.stats.issued
    );
    Ok(())
}

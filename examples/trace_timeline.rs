//! Trace a run through the observability layer: capture the typed
//! pipeline event stream in a ring buffer, aggregate a branch-site
//! profile from the same stream, then render the ASCII timeline around
//! the loop-exit mispredict and a few JSONL trace lines.
//!
//! ```sh
//! cargo run --example trace_timeline
//! ```

use crisp::asm::assemble_text;
use crisp::sim::{
    mispredict_cycles, render_timeline, write_jsonl, BranchProfiler, CycleSim, EventRing, Machine,
    SimConfig,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let image = assemble_text(
        "
            mov 0(sp),$0
        top:
            add 0(sp),$1        ; i++
            add 4(sp),0(sp)     ; sum += i
            cmp.s< 0(sp),$5     ; i < 5 ?
            ifjmpy.t top        ; folded; mispredicts once, at loop exit
            halt
        ",
    )?;

    let sim = CycleSim::with_observer(
        Machine::load(&image)?,
        SimConfig::default(),
        (EventRing::new(4096), BranchProfiler::new()),
    );
    let (run, (ring, profile)) = sim.run_observed()?;
    let events = ring.into_vec();

    println!(
        "{} cycles, {} events captured\n",
        run.stats.cycles,
        events.len()
    );

    // The loop-exit mispredict, with the squashed wrong-path slots.
    let center = mispredict_cycles(&events)
        .first()
        .copied()
        .expect("the loop exit mispredicts");
    print!(
        "{}",
        render_timeline(&events, center.saturating_sub(4), center + 4)
    );

    println!();
    print!("{profile}");

    println!("\nfirst 5 trace lines (JSONL, as written by `crisp-run --trace`):");
    let mut buf = Vec::new();
    write_jsonl(&mut buf, events.iter().take(5))?;
    print!("{}", String::from_utf8(buf)?);
    Ok(())
}

//! Trace a run through the observability layer: capture the typed
//! pipeline event stream in a ring buffer, aggregate a branch-site
//! profile from the same stream, then render the ASCII timeline around
//! the loop-exit mispredict, the top-down cycle accounting table, and
//! a few JSONL trace lines.
//!
//! ```sh
//! cargo run --example trace_timeline          # the paper's 3-deep EU
//! cargo run --example trace_timeline -- 5     # a deeper pipe
//! ```

use crisp::asm::assemble_text;
use crisp::sim::{
    mispredict_cycles, render_timeline_for, write_jsonl, BranchProfiler, CycleSim, EventRing,
    Machine, PipelineGeometry, SimConfig, MAX_DEPTH, MIN_DEPTH,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let depth: usize = match std::env::args().nth(1) {
        Some(arg) => arg
            .parse()
            .ok()
            .filter(|d| (MIN_DEPTH..=MAX_DEPTH).contains(d))
            .ok_or(format!(
                "bad depth `{arg}` (want {MIN_DEPTH}..={MAX_DEPTH})"
            ))?,
        None => SimConfig::default().geometry.depth(),
    };
    let geometry = PipelineGeometry::new(depth);

    let image = assemble_text(
        "
            mov 0(sp),$0
        top:
            add 0(sp),$1        ; i++
            add 4(sp),0(sp)     ; sum += i
            cmp.s< 0(sp),$5     ; i < 5 ?
            ifjmpy.t top        ; folded; mispredicts once, at loop exit
            halt
        ",
    )?;

    let sim = CycleSim::with_observer(
        Machine::load(&image)?,
        SimConfig {
            geometry,
            ..SimConfig::default()
        },
        (
            EventRing::new(4096),
            BranchProfiler::with_geometry(geometry),
        ),
    );
    let (run, (ring, profile)) = sim.run_observed()?;
    let events = ring.into_vec();

    println!(
        "{geometry}: {} cycles, {} events captured\n",
        run.stats.cycles,
        events.len()
    );

    // The loop-exit mispredict, with the squashed wrong-path slots.
    let center = mispredict_cycles(&events)
        .first()
        .copied()
        .expect("the loop exit mispredicts");
    print!(
        "{}",
        render_timeline_for(&events, center.saturating_sub(4), center + 4, geometry)
    );

    println!();
    print!("{profile}");

    // Where every cycle of the run went, by cause.
    println!();
    print!("{}", run.stats.cpi_breakdown());

    println!("\nfirst 5 trace lines (JSONL, as written by `crisp-run --trace`):");
    let mut buf = Vec::new();
    write_jsonl(&mut buf, events.iter().take(5))?;
    print!("{}", String::from_utf8(buf)?);
    Ok(())
}

//! A tour of the compiler pipeline: mini-C source → CRISP assembly
//! before/after Branch Spreading (the paper's Table 3 view) → encoded
//! parcels → disassembly, plus the VAX-lite backend for comparison.
//!
//! ```sh
//! cargo run --example compiler_pipeline
//! ```

use crisp::asm::{assemble, listing_of};
use crisp::cc::{compile_crisp_module, compile_vax, CompileOptions, PredictionMode};
use crisp::isa::FoldPolicy;

const SOURCE: &str = "
void main() {
    int i, j, odd, even, sum;
    sum = 0;
    j = odd = even = 0;
    for (i = 0; i < 16; i++) {
        sum += i;
        if (i & 1) odd++;
        else even++;
        j = sum;
    }
}
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== mini-C source ==\n{SOURCE}");

    for (title, spread) in [
        ("without Branch Spreading", false),
        ("with Branch Spreading", true),
    ] {
        let module = compile_crisp_module(
            SOURCE,
            &CompileOptions {
                spread,
                prediction: PredictionMode::Btfnt,
            },
        )?;
        let image = assemble(&module)?;
        println!("== CRISP code {title} ({} parcels) ==", image.parcels.len());
        println!(
            "{}",
            listing_of(&image, FoldPolicy::Host13)
                .map_err(|(addr, e)| format!("listing failed at {addr:#x}: {e}"))?
        );
    }

    let vax = compile_vax(SOURCE)?;
    println!("== VAX-lite code (Table 2 comparison backend) ==");
    println!("{}", vax.listing());
    Ok(())
}

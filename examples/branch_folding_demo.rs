//! The paper's headline experiment, end to end: compile the Figure 3
//! program and run it under the Table 4 case matrix (branch folding ×
//! branch prediction × branch spreading).
//!
//! ```sh
//! cargo run --release --example branch_folding_demo
//! ```

use crisp::cc::{compile_crisp, CompileOptions, PredictionMode};
use crisp::isa::FoldPolicy;
use crisp::sim::{CycleSim, Machine, SimConfig};
use crisp::workloads::FIGURE3_SOURCE;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Figure 3 program, 1024 iterations — the paper's Table 4 matrix\n");
    println!("case  folding  prediction  spreading     cycles   issued  rel.  app.CPI");

    let cases = [
        ('A', false, false, false),
        ('B', false, true, false),
        ('C', true, true, false),
        ('D', true, true, true),
        ('E', false, true, true),
    ];
    let mut base = None;
    for (case, folding, predict, spreading) in cases {
        let mode = if predict {
            PredictionMode::Taken
        } else {
            PredictionMode::Ftbnt
        };
        let image = compile_crisp(
            FIGURE3_SOURCE,
            &CompileOptions {
                spread: spreading,
                prediction: mode,
            },
        )?;
        let cfg = SimConfig {
            fold_policy: if folding {
                FoldPolicy::Host13
            } else {
                FoldPolicy::None
            },
            ..SimConfig::default()
        };
        let run = CycleSim::new(Machine::load(&image)?, cfg).run()?;
        let b = *base.get_or_insert(run.stats.cycles);
        let yn = |v: bool| if v { "yes" } else { "no " };
        println!(
            "{case}     {}      {}         {}       {:>8} {:>8}  {:>4.2} {:>8.2}",
            yn(folding),
            yn(predict),
            yn(spreading),
            run.stats.cycles,
            run.stats.issued,
            b as f64 / run.stats.cycles as f64,
            run.stats.apparent_cpi(),
        );
    }
    println!("\npaper reference: A 14422/1.0, B 11359/1.3, C 8789/1.6, D 7250/2.0, E 9815/1.5");
    println!("(cases C and D drop the apparent CPI below 1.0: branches execute in zero time)");
    Ok(())
}

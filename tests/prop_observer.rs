//! Property tests for the observability layer: on randomized programs,
//! the typed event stream must reconcile *exactly* with the cycle
//! engine's counters, the branch-site profiler must agree with both,
//! and the JSONL trace format must round-trip losslessly.
//!
//! Programs are a bounded counted loop over a random mix of ALU
//! operations and forward conditional skips with random prediction
//! bits — the same shape `prop_equivalence` uses, exercising folds,
//! mispredicts at every resolution stage, cache misses and stalls.

use crisp::asm::{assemble, Item, Module};
use crisp::isa::{BinOp, Cond, FoldPolicy, Instr, Operand};
use crisp::sim::{
    parse_jsonl, write_jsonl, BranchProfiler, CycleSim, EventRing, HwPredictor, Machine, PipeEvent,
    PipelineGeometry, SimConfig, StageHistogram, StallKind,
};
use proptest::prelude::*;

/// One random loop-body element: an ALU op, or a compare-and-skip
/// around one (so the flag and both branch directions get exercised).
#[derive(Debug, Clone)]
enum BodyOp {
    Alu(BinOp, u8, u8),
    Acc(BinOp, u8, u8),
    Skip {
        cond: Cond,
        a: u8,
        b: u8,
        on_true: bool,
        predict: bool,
        then: BinOp,
        slot: u8,
    },
}

fn arb_alu_op() -> impl Strategy<Value = BodyOp> {
    (
        prop::sample::select(vec![
            BinOp::Add,
            BinOp::Sub,
            BinOp::And,
            BinOp::Or,
            BinOp::Xor,
        ]),
        1u8..8,
        0u8..32,
    )
        .prop_map(|(op, s, i)| BodyOp::Alu(op, s, i))
}

fn arb_body_op() -> impl Strategy<Value = BodyOp> {
    prop_oneof![
        3 => arb_alu_op(),
        1 => (
            prop::sample::select(vec![BinOp::Add, BinOp::Xor]),
            1u8..8,
            0u8..32,
        )
            .prop_map(|(op, s, i)| BodyOp::Acc(op, s, i)),
        2 => (
            prop::sample::select(Cond::ALL.to_vec()),
            1u8..8,
            1u8..8,
            any::<bool>(),
            any::<bool>(),
            prop::sample::select(vec![BinOp::Add, BinOp::Sub]),
            1u8..8,
        )
            .prop_map(|(cond, a, b, on_true, predict, then, slot)| BodyOp::Skip {
                cond,
                a,
                b,
                on_true,
                predict,
                then,
                slot,
            }),
    ]
}

fn slot(s: u8) -> Operand {
    Operand::SpOff(4 * s as i32)
}

fn build_program(body: &[BodyOp], iters: u8) -> Module {
    let mut m = Module::new();
    let mut label = 0usize;
    m.push(Item::Instr(Instr::Op2 {
        op: BinOp::Mov,
        dst: slot(0),
        src: Operand::Imm(0),
    }));
    m.push(Item::Label("top".into()));
    for op in body {
        match op {
            BodyOp::Alu(op, s, imm) => {
                m.push(Item::Instr(Instr::Op2 {
                    op: *op,
                    dst: slot(*s),
                    src: Operand::Imm(*imm as i32),
                }));
            }
            BodyOp::Acc(op, s, imm) => {
                m.push(Item::Instr(Instr::Op3 {
                    op: *op,
                    a: slot(*s),
                    b: Operand::Imm(*imm as i32),
                }));
            }
            BodyOp::Skip {
                cond,
                a,
                b,
                on_true,
                predict,
                then,
                slot: s,
            } => {
                label += 1;
                let l = format!("skip{label}");
                m.push(Item::Instr(Instr::Cmp {
                    cond: *cond,
                    a: slot(*a),
                    b: slot(*b),
                }));
                m.push(Item::IfJmpTo {
                    on_true: *on_true,
                    predict_taken: *predict,
                    label: l.clone(),
                });
                m.push(Item::Instr(Instr::Op2 {
                    op: *then,
                    dst: slot(*s),
                    src: Operand::Imm(1),
                }));
                m.push(Item::Label(l));
            }
        }
    }
    m.push(Item::Instr(Instr::Op2 {
        op: BinOp::Add,
        dst: slot(0),
        src: Operand::Imm(1),
    }));
    m.push(Item::Instr(Instr::Cmp {
        cond: Cond::LtS,
        a: slot(0),
        b: Operand::Imm(iters as i32),
    }));
    m.push(Item::IfJmpTo {
        on_true: true,
        predict_taken: true,
        label: "top".into(),
    });
    m.push(Item::Instr(Instr::Halt));
    m
}

/// Event-stream tallies that mirror [`crisp::sim::CycleStats`].
#[derive(Debug, Default, PartialEq, Eq)]
struct Tally {
    issues: u64,
    folded_issues: u64,
    branch_retires: u64,
    resolves_by_stage: StageHistogram,
    mispredicts_by_stage: StageHistogram,
    squashes: u64,
    fetch_hits: u64,
    fetch_misses: u64,
    decodes: u64,
    folds: u64,
    fold_fails: u64,
    miss_stall: u64,
    indirect_stall: u64,
    halts: u64,
    commits: u64,
    cache_fills: u64,
    cache_fills_evicting: u64,
    fault_injects: u64,
    parity_errors: u64,
}

fn tally(events: &[PipeEvent], geo: PipelineGeometry) -> Result<Tally, TestCaseError> {
    let mut t = Tally {
        resolves_by_stage: StageHistogram::for_geometry(geo),
        mispredicts_by_stage: StageHistogram::for_geometry(geo),
        ..Tally::default()
    };
    let mut open: Option<(StallKind, u64)> = None;
    for ev in events {
        match *ev {
            PipeEvent::Issue { folded, .. } => {
                t.issues += 1;
                t.folded_issues += u64::from(folded);
            }
            PipeEvent::BranchRetire { .. } => t.branch_retires += 1,
            PipeEvent::BranchResolve {
                stage,
                mispredicted,
                ..
            } => {
                let s = stage as usize;
                prop_assert!(s <= geo.retire_stage(), "stage out of range: {stage}");
                t.resolves_by_stage.bump(s);
                if mispredicted {
                    t.mispredicts_by_stage.bump(s);
                }
            }
            PipeEvent::Squash { stage, .. } => {
                // Only in-flight EU stages short of retire can be
                // squashed: 1..=depth-1 (IR/OR on the paper's machine).
                let s = stage as usize;
                prop_assert!(s >= 1 && s < geo.depth(), "squash stage {stage}");
                t.squashes += 1;
            }
            PipeEvent::FetchHit { .. } => t.fetch_hits += 1,
            PipeEvent::FetchMiss { .. } => t.fetch_misses += 1,
            PipeEvent::Decode { .. } => t.decodes += 1,
            PipeEvent::Fold { .. } => t.folds += 1,
            PipeEvent::FoldFail { .. } => t.fold_fails += 1,
            PipeEvent::CacheFill { evicted, .. } => {
                t.cache_fills += 1;
                t.cache_fills_evicting += u64::from(evicted.is_some());
            }
            PipeEvent::Commit { .. } => t.commits += 1,
            PipeEvent::StallBegin { cycle, kind } => {
                prop_assert!(open.is_none(), "nested StallBegin at cycle {cycle}");
                open = Some((kind, cycle));
            }
            PipeEvent::StallEnd { cycle, kind } => {
                let (open_kind, begin) = open.take().expect("StallEnd without begin");
                prop_assert_eq!(open_kind, kind, "stall kind mismatch");
                prop_assert!(cycle >= begin);
                match kind {
                    StallKind::Miss => t.miss_stall += cycle - begin,
                    StallKind::Indirect => t.indirect_stall += cycle - begin,
                }
            }
            PipeEvent::FaultInject { .. } => t.fault_injects += 1,
            PipeEvent::ParityError { .. } => t.parity_errors += 1,
            PipeEvent::Halt { .. } => t.halts += 1,
            // Live-predictor lookups; their trace-model equivalence has
            // its own harness (tests/prop_predictor_xval.rs).
            PipeEvent::Predict { .. } => {}
            // Way-disable under a DegradePolicy; none of the configs
            // here set one, so this arm is exercised by the dedicated
            // degradation tests instead.
            PipeEvent::Degrade { .. } => {}
        }
    }
    prop_assert!(open.is_none(), "unterminated stall at end of run");
    Ok(t)
}

fn configs() -> Vec<SimConfig> {
    vec![
        SimConfig::default(),
        SimConfig {
            fold_policy: FoldPolicy::None,
            ..SimConfig::default()
        },
        SimConfig {
            icache_entries: 4,
            mem_latency: 5,
            ..SimConfig::default()
        },
        SimConfig {
            predictor: HwPredictor::Dynamic {
                bits: 2,
                entries: 64,
            },
            fold_policy: FoldPolicy::All,
            ..SimConfig::default()
        },
        // Non-default geometries: the shallowest supported pipe and a
        // deep one, so the reconciliation holds away from D=3 too.
        SimConfig {
            geometry: PipelineGeometry::new(2),
            ..SimConfig::default()
        },
        SimConfig {
            geometry: PipelineGeometry::new(5),
            icache_entries: 8,
            mem_latency: 3,
            ..SimConfig::default()
        },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn event_stream_reconciles_with_cycle_stats(
        body in prop::collection::vec(arb_body_op(), 1..10),
        iters in 1u8..24,
    ) {
        let image = assemble(&build_program(&body, iters)).unwrap();
        for cfg in configs() {
            let sim = CycleSim::with_observer(
                Machine::load(&image).unwrap(),
                cfg,
                (
                    EventRing::new(1 << 20),
                    BranchProfiler::with_geometry(cfg.geometry),
                ),
            );
            let (run, (ring, prof)) = sim.run_observed().unwrap();
            prop_assert_eq!(ring.dropped, 0, "ring sized for the whole run");
            let events = ring.into_vec();
            let t = tally(&events, cfg.geometry)?;

            // Every counter in CycleStats is derivable from the stream.
            prop_assert_eq!(t.issues, run.stats.issued);
            prop_assert_eq!(t.issues + t.folded_issues, run.stats.program_instrs);
            prop_assert_eq!(t.branch_retires, run.stats.cond_branches);
            prop_assert_eq!(t.mispredicts_by_stage, run.stats.mispredicts_by_stage);
            prop_assert_eq!(t.resolves_by_stage.get(0), run.stats.resolved_at_fetch);
            prop_assert_eq!(t.squashes, run.stats.flushed_slots);
            prop_assert_eq!(t.fetch_hits, run.stats.icache_hits);
            prop_assert_eq!(t.fetch_misses, run.stats.icache_misses);
            prop_assert_eq!(t.decodes, run.stats.pdu_decodes);
            prop_assert_eq!(t.miss_stall, run.stats.miss_stall_cycles);
            prop_assert_eq!(t.indirect_stall, run.stats.indirect_stall_cycles);
            prop_assert_eq!(t.halts, 1);
            // One architectural commit per issued entry, no more (a
            // squashed wrong-path slot must never reach the commit
            // point).
            prop_assert_eq!(t.commits, run.stats.issued);
            // Cache fills split into first-time inserts vs same-PC
            // refills; every eviction is a fill that displaced a
            // different tag.
            prop_assert_eq!(
                t.cache_fills,
                run.stats.cache_inserts + run.stats.cache_refills
            );
            prop_assert_eq!(t.cache_fills_evicting, run.stats.cache_evictions);
            prop_assert_eq!(t.fault_injects, run.stats.faults_injected);
            prop_assert_eq!(t.parity_errors, run.stats.parity_invalidates);
            // Every retired conditional branch resolved exactly once.
            prop_assert_eq!(t.resolves_by_stage.total(), run.stats.cond_branches);

            // The profiler is an aggregation of the same stream, so its
            // totals must match both.
            prop_assert_eq!(prof.issues, run.stats.issued);
            prop_assert_eq!(prof.branch_retires(), run.stats.cond_branches);
            prop_assert_eq!(prof.mispredicts_by_stage(), run.stats.mispredicts_by_stage);
            prop_assert_eq!(prof.mispredicts(), run.stats.mispredicts());
            prop_assert_eq!(prof.resolved_at_fetch(), run.stats.resolved_at_fetch);
            prop_assert_eq!(prof.folds, t.folds);
            prop_assert_eq!(
                prof.fold_failures.iter().sum::<u64>(),
                t.fold_fails
            );
        }
    }

    #[test]
    fn jsonl_trace_round_trips(
        body in prop::collection::vec(arb_body_op(), 1..8),
        iters in 1u8..12,
    ) {
        let image = assemble(&build_program(&body, iters)).unwrap();
        let sim = CycleSim::with_observer(
            Machine::load(&image).unwrap(),
            SimConfig::default(),
            EventRing::new(1 << 20),
        );
        let (_, ring) = sim.run_observed().unwrap();
        let events = ring.into_vec();
        prop_assert!(!events.is_empty());

        let mut buf = Vec::new();
        write_jsonl(&mut buf, &events).unwrap();
        let text = String::from_utf8(buf).unwrap();
        prop_assert_eq!(text.lines().count(), events.len());
        let parsed = parse_jsonl(&text).unwrap();
        prop_assert_eq!(parsed, events);
    }
}

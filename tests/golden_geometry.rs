//! Golden-vector pinning of the default pipeline geometry, plus the
//! penalty-schedule invariant at every supported depth.
//!
//! The vectors under `tests/golden/` were generated from the 3-stage
//! engine *before* it was generalized over [`PipelineGeometry`]
//! (`cargo run --release --example gen_golden` regenerates them). Each
//! file holds one run's stats JSON followed by its complete commit
//! event stream — cycle stamps included — so any timing or
//! architectural drift in the D=3 machine fails the replay
//! bit-for-bit.

use crisp::cc::{compile_crisp, CompileOptions, PredictionMode};
use crisp::isa::FoldPolicy;
use crisp::sim::{
    CycleSim, EventRing, HwPredictor, Machine, PipeEvent, PipelineGeometry, SimConfig, MAX_DEPTH,
    MIN_DEPTH,
};
use crisp::workloads::figure3_with_count;

/// Strip one additive post-refactor field (scalar, array, or flat
/// object value followed by a comma) from a stats JSON line.
fn strip_field(json: &str, key: &str) -> String {
    let pat = format!("\"{key}\":");
    let Some(start) = json.find(&pat) else {
        return json.to_string();
    };
    let rest = &json[start + pat.len()..];
    let vlen = match rest.as_bytes()[0] {
        b'{' => rest.find('}').map_or(rest.len(), |i| i + 1),
        b'[' => rest.find(']').map_or(rest.len(), |i| i + 1),
        _ => rest.find([',', '}']).unwrap_or(rest.len()),
    };
    let mut after = &rest[vlen..];
    if let Some(tail) = after.strip_prefix(',') {
        after = tail;
    }
    format!("{}{}", &json[..start], after)
}

/// Strip the fields added after the vectors were generated —
/// `schema_version` (v2), the `accounts`/`dropped_events` pair (v3),
/// the `predicted_by`/`static_bit_mispredicts` predictor split (v4),
/// the `parity_scrubs`/`degraded_ways` degradation counters (v5) and
/// the `blocks_translated`/`superinstr_dispatches`/`deopt_falls`
/// threaded-tier counters (v6). They deliberately sit outside the
/// frozen surface: additive observability, not architectural behaviour
/// (and the accounting's own invariants are enforced by
/// `tests/prop_accounting.rs`).
fn normalize_stats(json: &str) -> String {
    [
        "schema_version",
        "accounts",
        "dropped_events",
        "predicted_by",
        "static_bit_mispredicts",
        "parity_scrubs",
        "degraded_ways",
        "blocks_translated",
        "superinstr_dispatches",
        "deopt_falls",
    ]
    .iter()
    .fold(json.to_string(), |s, key| strip_field(&s, key))
}

fn fold_name(p: FoldPolicy) -> &'static str {
    match p {
        FoldPolicy::None => "none",
        FoldPolicy::Host1 => "host1",
        FoldPolicy::Host13 => "host13",
        FoldPolicy::All => "all",
    }
}

/// Re-run one golden configuration at the default geometry and return
/// the file's expected contents.
fn replay(image: &crisp::asm::Image, cfg: SimConfig) -> String {
    let sim = CycleSim::with_observer(
        Machine::load(image).expect("image loads"),
        cfg,
        EventRing::new(1 << 20),
    );
    let (run, ring) = sim.run_observed().expect("run completes");
    assert!(run.halted, "golden workloads must halt");
    assert_eq!(ring.dropped, 0, "ring must hold the whole run");
    let mut out = String::new();
    out.push_str(&normalize_stats(&run.stats.to_json()));
    out.push('\n');
    for ev in ring.events() {
        if matches!(ev, PipeEvent::Commit { .. }) {
            out.push_str(&ev.to_json());
            out.push('\n');
        }
    }
    out
}

/// Every fold-policy × predictor sweep at D=3 must reproduce its
/// pre-generalization golden vector bit-for-bit: stats line, commit
/// stream, and the cycle stamp of every commit.
#[test]
fn default_geometry_matches_pre_refactor_golden_vectors() {
    let source = figure3_with_count(64);
    let compiles = [
        ("figure3x64", CompileOptions::default()),
        (
            "figure3x64-nospread",
            CompileOptions {
                spread: false,
                prediction: PredictionMode::Btfnt,
            },
        ),
    ];
    let mut checked = 0;
    for (wname, copts) in compiles {
        let image = compile_crisp(&source, &copts).expect("workload compiles");
        for fold_policy in [
            FoldPolicy::None,
            FoldPolicy::Host1,
            FoldPolicy::Host13,
            FoldPolicy::All,
        ] {
            for (pname, predictor) in [
                ("static", HwPredictor::StaticBit),
                (
                    "dyn2x64",
                    HwPredictor::Dynamic {
                        bits: 2,
                        entries: 64,
                    },
                ),
                (
                    "btb128x4",
                    HwPredictor::Btb {
                        entries: 128,
                        ways: 4,
                    },
                ),
            ] {
                let cfg = SimConfig {
                    fold_policy,
                    predictor,
                    ..SimConfig::default()
                };
                assert_eq!(cfg.geometry, PipelineGeometry::crisp());
                let name = format!("{wname}_{}_{pname}.txt", fold_name(fold_policy));
                let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                    .join("tests/golden")
                    .join(&name);
                let want = std::fs::read_to_string(&path)
                    .unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
                let got = replay(&image, cfg);
                assert_eq!(got, want, "golden vector {name} drifted");
                checked += 1;
            }
        }
    }
    assert_eq!(checked, 24, "all golden vectors must be replayed");
}

/// The stats JSON at a non-default depth emits the histogram at live
/// length and carries the schema version; stripping the post-v1
/// fields reproduces the v1 shape exactly (what `normalize_stats`
/// relies on).
#[test]
fn deep_geometry_stats_json_has_live_depth_histogram() {
    let source = figure3_with_count(16);
    let image = compile_crisp(&source, &CompileOptions::default()).expect("compiles");
    let cfg = SimConfig {
        geometry: PipelineGeometry::new(5),
        ..SimConfig::default()
    };
    let run = CycleSim::new(Machine::load(&image).expect("loads"), cfg)
        .run()
        .expect("halts");
    let json = run.stats.to_json();
    assert!(json.starts_with("{\"schema_version\":"), "{json}");
    let start = json
        .find("\"mispredicts_by_stage\":[")
        .expect("field present");
    let arr = &json[start + "\"mispredicts_by_stage\":[".len()..];
    let arr = &arr[..arr.find(']').expect("closed array")];
    assert_eq!(
        arr.split(',').count(),
        6,
        "depth-5 geometry has 6 resolve points: {json}"
    );
    assert!(!normalize_stats(&json).contains("schema_version"));
}

/// At every depth, the mispredict penalty of a branch equals the index
/// of the stage that resolved it, for every fold policy: the paper's
/// "stage index is the penalty" schedule is structural, not a D=3
/// accident.
#[test]
fn penalty_equals_resolve_stage_at_every_depth_and_policy() {
    use crisp::asm::assemble_text;

    // Steady-state penalty: 24-iteration loop, statically predicted
    // wrong (23 mispredicts) vs right (1); the delta rounds to 22
    // penalties (see `measured_penalty` in the bench crate).
    let penalty_of = |cfg: SimConfig| {
        let src_with = |bit: &str| {
            format!(
                "
                mov Accum,$0
            top:
                add Accum,$1
                cmp.s< Accum,$24
                ifjmpy.{bit} top
                halt
            "
            )
        };
        let run = |bit: &str| {
            let image = assemble_text(&src_with(bit)).expect("assembles");
            CycleSim::new(Machine::load(&image).expect("loads"), cfg)
                .run()
                .expect("halts")
        };
        let wrong = run("nt");
        let right = run("t");
        assert!(wrong.stats.mispredicts() >= 23);
        let resolved = wrong
            .stats
            .mispredicts_by_stage
            .as_slice()
            .iter()
            .rposition(|&c| c > 0)
            .expect("some stage resolved the mispredicts");
        let delta = wrong.stats.cycles as i64 - right.stats.cycles as i64;
        let penalty = usize::try_from(((delta + 11).div_euclid(22)).max(0)).unwrap();
        (resolved, penalty)
    };

    for depth in MIN_DEPTH..=MAX_DEPTH {
        for fold_policy in [
            FoldPolicy::None,
            FoldPolicy::Host1,
            FoldPolicy::Host13,
            FoldPolicy::All,
        ] {
            let cfg = SimConfig {
                geometry: PipelineGeometry::new(depth),
                fold_policy,
                ..SimConfig::default()
            };
            let (resolved, penalty) = penalty_of(cfg);
            assert_eq!(
                penalty, resolved,
                "D={depth} {fold_policy:?}: penalty {penalty} != resolve stage {resolved}"
            );
            // Folding pulls the compare into the branch's slot, moving
            // resolution one stage later (retire itself).
            let expect = if fold_policy == FoldPolicy::None {
                depth - 1
            } else {
                depth
            };
            assert_eq!(resolved, expect, "D={depth} {fold_policy:?}");
        }
    }
}

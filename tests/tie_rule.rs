//! End-to-end pin of the static-bit tie rule.
//!
//! `evaluate_static_optimal` resolves a 50/50 branch as predict-taken
//! (`taken * 2 >= total`). Three consumers must agree with it, or the
//! reported "optimal static" accuracy is unachievable by the machine:
//!
//! 1. its own `majority` map must say `true` for a tied branch;
//! 2. `crisp_cc::apply_profile` must patch that decision into the
//!    image verbatim (it applies the map, it has no tie rule of its
//!    own — this test pins that it stays that way);
//! 3. the cycle engine must honour the patched bit, so the mispredict
//!    count it measures equals exactly `total - correct` from the
//!    evaluation.

use std::collections::HashMap;

use crisp::cc::apply_profile;
use crisp::isa::{encoding, Instr};
use crisp::predict::evaluate_static_optimal;
use crisp::sim::{CycleSim, FunctionalSim, Machine, SimConfig};

/// Decode the image and return `(pc, predict_taken)` for every
/// conditional branch.
fn branch_bits(image: &crisp::asm::Image) -> HashMap<u32, bool> {
    let mut bits = HashMap::new();
    let mut at = 0usize;
    while at < image.parcels.len() {
        let Ok((instr, len)) = encoding::decode(&image.parcels, at) else {
            at += 1;
            continue;
        };
        if let Instr::IfJmp { predict_taken, .. } = instr {
            bits.insert(image.code_base + at as u32 * 2, predict_taken);
        }
        at += len;
    }
    bits
}

#[test]
fn tied_branch_predicts_taken_through_profile_and_engine() {
    // The inner branch alternates taken/not-taken via a toggle: over 8
    // iterations it ties 4/4. Compiled not-taken, so only the tie rule
    // can flip it. The loop back-edge is taken 7/8 — a clear majority
    // that must stay taken.
    let src = "
        mov 0(sp),$0       ; i
        mov 4(sp),$0       ; toggle
    top:
        add 0(sp),$1
        xor 4(sp),$1
        cmp.= 4(sp),$1
        ifjmpy.nt skip     ; alternates: T,N,T,N,... -> 4/8 tie
        nop
    skip:
        cmp.s< 0(sp),$8
        ifjmpy.t top
        halt
    ";
    let mut image = crisp::asm::assemble_text(src).unwrap();

    // Profile run on the functional engine.
    let run = FunctionalSim::new(Machine::load(&image).unwrap())
        .record_trace(true)
        .run()
        .unwrap();
    let optimal = evaluate_static_optimal(&run.trace);
    assert_eq!(optimal.accuracy.total, 16, "8 ties + 8 loop iterations");
    assert_eq!(optimal.accuracy.correct, 4 + 7);

    // The tie branch carries bit=false before patching; the evaluator's
    // tie rule says taken, and apply_profile must write exactly that.
    let before = branch_bits(&image);
    let (&tie_pc, _) = before
        .iter()
        .find(|(_, &bit)| !bit)
        .expect("the tie branch compiled not-taken");
    assert!(optimal.majority[&tie_pc], "ties predict taken");
    let patched = apply_profile(&mut image, &optimal.majority);
    assert_eq!(patched, 1, "only the tie branch needed flipping");
    let after = branch_bits(&image);
    assert!(after[&tie_pc]);
    assert!(after.values().all(|&bit| bit));

    // The cycle engine's static bit is the patched bit: it mispredicts
    // exactly the occurrences the optimal evaluation concedes — the 4
    // not-taken ties plus the single loop exit.
    let run = CycleSim::new(Machine::load(&image).unwrap(), SimConfig::default())
        .run()
        .unwrap();
    assert!(run.halted);
    assert_eq!(
        run.stats.static_bit_mispredicts,
        optimal.accuracy.total - optimal.accuracy.correct,
        "engine and evaluator must agree on what the optimal bits achieve"
    );
}

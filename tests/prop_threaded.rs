//! Property tests for the threaded-code tier: block-translated
//! execution is **bit-identical** to the one-entry interpreter.
//!
//! The tentpole claim, checked over both generated corpora (random
//! assembly programs and random mini-C programs): registers, memory,
//! halt disposition, branch traces, architectural statistics and the
//! full observed commit stream all match, under every fold policy —
//! including runs that end in the watchdog mid-block and runs whose
//! fault-free reference participates in an armed fault-injection
//! campaign.
//!
//! The comparison itself lives in `crisp::sim::verify_threaded_pooled`
//! (the same cross-check `crisp-diff --engine threaded` runs per fold
//! policy); these properties drive it across the corpus space.

use crisp::asm::rand_prog::GenProgram;
use crisp::cc::{compile_crisp, generate_c, CompileOptions};
use crisp::isa::FoldPolicy;
use crisp::sim::{
    classify_fault_pooled, classify_fault_translated_pooled, nth_field, ClassifyBuffers, FaultPlan,
    FaultTarget, LockstepBuffers, ParityMode, PredecodedImage, SimConfig, TranslatedImage,
    FAULT_SPACE,
};
use proptest::prelude::*;
use std::sync::Arc;

const POLICIES: [FoldPolicy; 4] = [
    FoldPolicy::None,
    FoldPolicy::Host1,
    FoldPolicy::Host13,
    FoldPolicy::All,
];

/// Faults strike live front-end state; the plan space covers plausible
/// strike points (cycle windows long enough to hit steady state).
fn arb_plan() -> impl Strategy<Value = FaultPlan> {
    (0u64..1500, 0u32..32, 0u64..FAULT_SPACE).prop_map(|(cycle, slot, i)| FaultPlan {
        cycle,
        slot,
        field: nth_field(i),
        target: FaultTarget::Cache,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random assembly programs (the `crisp-diff`/`crisp-fault` corpus
    /// generator: calls, indirect jumps, random branches) are
    /// bit-identical between the tiers under every fold policy.
    #[test]
    fn threaded_matches_interp_on_random_asm(seed in 0u64..5000) {
        let image = GenProgram::generate(seed, 8).image().unwrap();
        let mut bufs = LockstepBuffers::default();
        for policy in POLICIES {
            let table = TranslatedImage::shared(&image, policy).unwrap();
            let d = crisp::sim::verify_threaded_pooled(&image, &table, 2_000_000, &mut bufs)
                .unwrap();
            prop_assert!(d.is_none(), "seed {} under {:?}: {}", seed, policy, d.unwrap());
        }
    }

    /// Random mini-C programs (structured control flow: loops,
    /// conditionals, dense switches lowering to indirect jump tables)
    /// are bit-identical between the tiers.
    #[test]
    fn threaded_matches_interp_on_random_c(seed in 0u64..5000) {
        let source = generate_c(seed).source;
        let image = compile_crisp(&source, &CompileOptions::default()).unwrap();
        let mut bufs = LockstepBuffers::default();
        for policy in [FoldPolicy::Host13, FoldPolicy::All] {
            let table = TranslatedImage::shared(&image, policy).unwrap();
            let d = crisp::sim::verify_threaded_pooled(&image, &table, 2_000_000, &mut bufs)
                .unwrap();
            prop_assert!(d.is_none(), "seed {} under {:?}: {}", seed, policy, d.unwrap());
        }
    }

    /// Watchdog exhaustion mid-block: whatever the step budget — zero,
    /// one, mid-block, past the end — the threaded tier stops at
    /// exactly the same entry as the interpreter, with identical
    /// partial state and commit prefix.
    #[test]
    fn threaded_watchdog_budgets_are_bit_identical(
        seed in 0u64..5000,
        limit in 0u64..400,
    ) {
        let image = GenProgram::generate(seed, 8).image().unwrap();
        let table = TranslatedImage::shared(&image, SimConfig::default().fold_policy).unwrap();
        let mut bufs = LockstepBuffers::default();
        let d = crisp::sim::verify_threaded_pooled(&image, &table, limit, &mut bufs).unwrap();
        prop_assert!(d.is_none(), "seed {} limit {}: {}", seed, limit, d.unwrap());
    }

    /// Armed fault-injection campaigns classify identically whichever
    /// tier runs the fault-free reference: the outcome bucket of every
    /// (program, fault plan) case is unchanged when `crisp-fault`
    /// defaults to `--engine threaded`.
    #[test]
    fn fault_classification_agrees_across_tiers(seed in 0u64..5000, plan in arb_plan()) {
        let image = GenProgram::generate(seed, 8).image().unwrap();
        let policy = SimConfig::default().fold_policy;
        let pre = PredecodedImage::shared(&image, policy).unwrap();
        let table = Arc::new(TranslatedImage::from_predecoded(Arc::clone(&pre)));
        let mut bufs = ClassifyBuffers::default();
        for parity in [ParityMode::DetectInvalidate, ParityMode::Off] {
            let cfg = SimConfig {
                parity,
                fault_plan: Some(plan),
                max_cycles: 200_000,
                ..SimConfig::default()
            };
            let interp = classify_fault_pooled(&image, cfg, Some(&pre), &mut bufs);
            let threaded =
                classify_fault_translated_pooled(&image, cfg, Some(&pre), Some(&table), &mut bufs);
            match (interp, threaded) {
                (Ok(a), Ok(b)) => prop_assert_eq!(
                    a, b,
                    "outcome differs under {:?} for seed {} plan {:?}", parity, seed, plan
                ),
                (Err(a), Err(b)) => prop_assert_eq!(a.to_string(), b.to_string()),
                (a, b) => prop_assert!(
                    false,
                    "one tier errored: interp {:?}, threaded {:?} (seed {}, plan {:?})",
                    a, b, seed, plan
                ),
            }
        }
    }
}

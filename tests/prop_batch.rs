//! The batched campaign kernel is a bit-identical re-arrangement of
//! the scalar cycle engine.
//!
//! `MachineBatch` steps N independent lanes in structure-of-arrays
//! form; the claims that make it safe to wire through the campaign
//! drivers, checked over randomized programs here:
//!
//! 1. a batch of N runs — including mid-batch refill from a deeper
//!    work list — produces exactly the machine state, counters, halt
//!    reason and commit stream of N scalar `CycleSim::run_observed`
//!    calls, across fold policies, execution-unit depths 2/3/8, cache
//!    sizes and all four predictors;
//! 2. fault-armed lanes classify identically: `classify_batch` over a
//!    mixed block of protected/unprotected fault cases returns the
//!    same verdict vector as the scalar per-case classifier;
//! 3. the batched lockstep sweep (`run_lockstep_batched` against one
//!    shared functional reference) returns the same outcome per
//!    configuration as the scalar lockstep oracle.

use crisp::asm::rand_prog::GenProgram;
use crisp::asm::Image;
use crisp::sim::{
    classify_batch, classify_fault_pooled, fault_reference, nth_field, run_lockstep_batched,
    run_lockstep_pooled, sweep_configs, ClassifyBuffers, CommitLog, CycleRun, CycleSim, FaultPlan,
    FaultTarget, LockstepBuffers, LockstepOutcome, Machine, MachineBatch, MachinePool, ParityMode,
    PipelineGeometry, SimConfig, FAULT_SPACE,
};
use proptest::prelude::*;

/// Scalar oracle: one observed cycle-engine run.
fn scalar_run(image: &Image, cfg: SimConfig) -> (CycleRun, CommitLog) {
    CycleSim::with_observer(Machine::load(image).unwrap(), cfg, CommitLog::default())
        .run_observed()
        .unwrap()
}

/// Batched path: run every (image, config) case through a `lanes`-wide
/// batch, refilling freed lanes from the remaining work list, and
/// return results in case order.
fn batch_run(cases: &[(Image, SimConfig)], lanes: usize) -> Vec<(CycleRun, CommitLog)> {
    let mut batch: MachineBatch<CommitLog> = MachineBatch::new(lanes);
    let mut out: Vec<Option<(CycleRun, CommitLog)>> = (0..cases.len()).map(|_| None).collect();
    let mut next = 0usize;
    loop {
        while next < cases.len() && batch.free_lane().is_some() {
            let (image, cfg) = &cases[next];
            let sim =
                CycleSim::with_observer(Machine::load(image).unwrap(), *cfg, CommitLog::default());
            batch.admit(next as u64, sim);
            next += 1;
        }
        if batch.live_lanes() == 0 {
            break;
        }
        batch.step_wave();
        for fin in batch.drain_finished() {
            let tag = fin.tag as usize;
            let run = fin.into_run().expect("generated programs do not error");
            out[tag] = Some(run);
        }
    }
    out.into_iter().map(|o| o.unwrap()).collect()
}

/// A config matrix spanning the dimensions the campaign drivers sweep:
/// every fold policy and predictor from the sweep (subsampled), at
/// execution-unit depths 2, 3 and 8, plus one tiny watchdog budget so
/// a lane that ends on the watchdog (not `halt`) is always present.
fn config_matrix() -> Vec<SimConfig> {
    let mut cfgs = Vec::new();
    for (i, base) in sweep_configs().into_iter().enumerate() {
        // Every 3rd sweep point keeps all policies and predictors in
        // play while bounding the matrix.
        if i % 3 != 0 {
            continue;
        }
        let depth = [2, 3, 8][(i / 3) % 3];
        cfgs.push(SimConfig {
            geometry: PipelineGeometry::new(depth),
            max_cycles: 100_000,
            ..base
        });
    }
    // A lane that hits the watchdog mid-program.
    cfgs.push(SimConfig {
        max_cycles: 50,
        ..SimConfig::default()
    });
    cfgs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Claim 1: batch-of-N ≡ N scalar runs, with mid-batch refill
    /// (more cases than lanes) and lane counts that do not divide the
    /// case count.
    #[test]
    fn batch_matches_scalar_runs(seed in 0u64..5000, lanes in 1usize..9) {
        let cases: Vec<(Image, SimConfig)> = config_matrix()
            .into_iter()
            .enumerate()
            .map(|(k, cfg)| {
                let prog = GenProgram::generate(seed.wrapping_add(k as u64 / 4), 6);
                (prog.image().unwrap(), cfg)
            })
            .collect();
        let batched = batch_run(&cases, lanes);
        for ((image, cfg), (brun, blog)) in cases.iter().zip(&batched) {
            let (srun, slog) = scalar_run(image, *cfg);
            prop_assert_eq!(&srun.machine, &brun.machine);
            prop_assert_eq!(&srun.stats, &brun.stats);
            prop_assert_eq!(srun.halted, brun.halted);
            prop_assert_eq!(srun.halt_reason, brun.halt_reason);
            prop_assert_eq!(&slog.records, &blog.records);
            prop_assert_eq!(&slog.cycles, &blog.cycles);
        }
    }

    /// Claim 2: fault-armed lanes classify identically to the scalar
    /// per-case classifier, protected and unprotected alike, with the
    /// block wider than the lane count (mid-batch refill).
    #[test]
    fn classify_batch_matches_scalar_classifier(seed in 0u64..5000, lanes in 1usize..5) {
        let image = GenProgram::generate(seed, 8).image().unwrap();
        let base = SimConfig { max_cycles: 20_000, ..SimConfig::default() };
        let cfgs: Vec<SimConfig> = (0..10u64)
            .map(|k| {
                let plan = FaultPlan {
                    cycle: (seed.wrapping_mul(31).wrapping_add(k * 97)) % 500,
                    slot: (k % 8) as u32,
                    field: nth_field(k % FAULT_SPACE),
                    target: FaultTarget::Cache,
                };
                SimConfig {
                    parity: if k % 3 == 0 { ParityMode::DetectInvalidate } else { ParityMode::Off },
                    fault_plan: Some(plan),
                    ..base
                }
            })
            .collect();
        let scalar: Vec<_> = cfgs
            .iter()
            .map(|cfg| {
                classify_fault_pooled(&image, *cfg, None, &mut ClassifyBuffers::default()).unwrap()
            })
            .collect();
        let mut pool = MachinePool::default();
        let reference = fault_reference(&image, base, None, None, &mut pool).unwrap();
        let batched = classify_batch(&image, &cfgs, None, &reference, lanes, &mut pool).unwrap();
        prop_assert_eq!(scalar, batched);
    }

    /// Claim 3: the batched lockstep sweep agrees with the scalar
    /// lockstep oracle on every sweep configuration.
    #[test]
    fn lockstep_batched_matches_scalar_oracle(seed in 0u64..5000) {
        let image = GenProgram::generate(seed, 6).image().unwrap();
        let mut bufs = LockstepBuffers::default();
        let mut pool = MachinePool::default();
        let configs = sweep_configs();
        let mut idx = 0;
        while idx < configs.len() {
            let policy = configs[idx].fold_policy;
            let mut end = idx + 1;
            while end < configs.len() && configs[end].fold_policy == policy {
                end += 1;
            }
            let group = &configs[idx..end];
            idx = end;
            let reference = crisp::sim::diff_reference(
                &image,
                policy,
                group[0].max_cycles,
                None,
                &mut pool,
            )
            .unwrap();
            // Three lanes over eight configurations forces refill.
            let batched =
                run_lockstep_batched(&image, group, None, &reference, 3, &mut pool, &mut bufs)
                    .unwrap();
            for (cfg, b) in group.iter().zip(batched) {
                let s = run_lockstep_pooled(&image, *cfg, None, &mut bufs).unwrap();
                match (s, b) {
                    (
                        LockstepOutcome::Agree { commits: sc, cycles: scy },
                        LockstepOutcome::Agree { commits: bc, cycles: bcy },
                    ) => {
                        prop_assert_eq!(sc, bc);
                        prop_assert_eq!(scy, bcy);
                    }
                    (s, b) => {
                        return Err(TestCaseError::fail(format!(
                            "outcome mismatch under {cfg:?}: scalar {s:?} vs batched {b:?}"
                        )))
                    }
                }
            }
        }
    }
}

/// The batch refuses configurations only at admission (validate), so a
/// one-lane batch on a default config is exactly the scalar engine —
/// pinned here without proptest so the equivalence holds even if the
/// randomized corpus shifts.
#[test]
fn one_lane_batch_is_the_scalar_engine() {
    let image = GenProgram::generate(7, 8).image().unwrap();
    let cfg = SimConfig::default();
    let (srun, slog) = scalar_run(&image, cfg);
    let batched = batch_run(std::slice::from_ref(&(image, cfg)), 1);
    let (brun, blog) = &batched[0];
    assert_eq!(&srun.machine, &brun.machine);
    assert_eq!(&srun.stats, &brun.stats);
    assert_eq!(srun.halted, brun.halted);
    assert_eq!(slog.records, blog.records);
    assert_eq!(slog.cycles, blog.cycles);
}

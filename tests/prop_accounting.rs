//! Property tests for top-down cycle accounting: on randomized
//! programs, across every fold policy and pipeline depth, the
//! per-cause cycle buckets must conserve cycles *exactly* — every
//! simulated cycle is attributed to exactly one bucket — and the
//! branch-penalty bucket must reconcile with the mispredict penalty
//! schedule.
//!
//! Two program shapes feed the invariants: the seeded `rand_prog`
//! generator (the differential campaign's workload, rich in loops and
//! nested control flow) and a counted loop over random ALU/skip mixes
//! (the `prop_observer` shape, exercising both branch directions and
//! cache pressure with tiny caches).

use crisp::asm::rand_prog::GenProgram;
use crisp::asm::{assemble, Item, Module};
use crisp::isa::{BinOp, Cond, FoldPolicy, Instr, Operand};
use crisp::sim::{CycleRun, CycleSim, HwPredictor, Machine, PipelineGeometry, SimConfig};
use proptest::prelude::*;

/// The accounting invariants every run must satisfy, independent of
/// program, policy, or geometry.
fn assert_accounts(run: &CycleRun, cfg: &SimConfig) -> Result<(), TestCaseError> {
    let acc = &run.stats.accounts;
    // Conservation: every cycle lands in exactly one bucket.
    prop_assert_eq!(
        acc.total(),
        run.stats.cycles,
        "accounting must conserve cycles (cfg {:?})",
        cfg
    );
    // Useful-issue cycles are exactly the issued instructions: the
    // retire latch holds a valid entry iff an instruction issues.
    prop_assert_eq!(acc.useful, run.stats.issued);
    // Startup is the pipe-fill transient and nothing else.
    prop_assert_eq!(acc.startup, cfg.geometry.depth() as u64);
    // One-sided reconciliation with the penalty schedule: each
    // mispredict resolved at stage s injects at most s bubbles, but
    // bubbles overlapping an earlier stall keep their original cause
    // and in-flight bubbles may not drain before halt. Recovery
    // bubbles whose wrong guess was a table-miss default land in the
    // btb_miss bucket instead of branch_penalty, so the schedule
    // bounds their sum.
    prop_assert!(
        acc.branch_penalty.total() + acc.btb_miss
            <= run.stats.mispredicts_by_stage.penalty_cycles(),
        "branch bubbles {} + btb-miss bubbles {} exceed the penalty schedule {} (cfg {:?})",
        acc.branch_penalty.total(),
        acc.btb_miss,
        run.stats.mispredicts_by_stage.penalty_cycles(),
        cfg
    );
    // Only tables with a miss default (BTB, jump trace) can charge the
    // btb_miss bucket; the static bit and infinite counter tables
    // always "hit".
    match cfg.predictor {
        HwPredictor::Btb { .. } | HwPredictor::JumpTrace { .. } => {}
        _ => prop_assert_eq!(acc.btb_miss, 0, "cfg {:?}", cfg),
    }
    // The shadow static-bit score counts retired conditional branches
    // whose static bit was wrong; under the static bit itself every
    // such branch also bumped a live resolution counter.
    if matches!(cfg.predictor, HwPredictor::StaticBit) {
        prop_assert!(run.stats.static_bit_mispredicts <= run.stats.mispredicts());
    }
    // No branch bubble can claim a resolve stage past retire.
    for s in cfg.geometry.retire_stage() + 1..acc.branch_penalty.len() {
        prop_assert_eq!(acc.branch_penalty.get(s), 0);
    }
    Ok(())
}

/// Every fold policy at every supported EU depth from the shallowest
/// pipe to one past the deepest the satellite sweep uses.
fn configs() -> Vec<SimConfig> {
    let mut cfgs = Vec::new();
    for depth in 2..=6 {
        for fold_policy in [
            FoldPolicy::None,
            FoldPolicy::Host1,
            FoldPolicy::Host13,
            FoldPolicy::All,
        ] {
            cfgs.push(SimConfig {
                fold_policy,
                geometry: PipelineGeometry::new(depth),
                ..SimConfig::default()
            });
        }
    }
    // Cache pressure: tiny cache + slow memory so refill bubbles and
    // overlapping stalls actually occur.
    cfgs.push(SimConfig {
        icache_entries: 4,
        mem_latency: 5,
        ..SimConfig::default()
    });
    // Every live predictor at two depths: deliberately tiny tables so
    // aliasing, eviction and miss-default recovery all fire.
    for depth in [2, 4] {
        for predictor in [
            HwPredictor::Dynamic {
                bits: 2,
                entries: 8,
            },
            HwPredictor::Btb {
                entries: 4,
                ways: 2,
            },
            HwPredictor::JumpTrace { entries: 4 },
        ] {
            cfgs.push(SimConfig {
                predictor,
                geometry: PipelineGeometry::new(depth),
                ..SimConfig::default()
            });
        }
    }
    cfgs
}

/// A random loop-body element (subset of the `prop_observer` shape).
#[derive(Debug, Clone)]
enum BodyOp {
    Alu(BinOp, u8, u8),
    Skip {
        cond: Cond,
        a: u8,
        b: u8,
        on_true: bool,
        predict: bool,
        slot: u8,
    },
}

fn arb_body_op() -> impl Strategy<Value = BodyOp> {
    prop_oneof![
        2 => (
            prop::sample::select(vec![BinOp::Add, BinOp::Sub, BinOp::Xor]),
            1u8..8,
            0u8..32,
        )
            .prop_map(|(op, s, i)| BodyOp::Alu(op, s, i)),
        2 => (
            prop::sample::select(Cond::ALL.to_vec()),
            1u8..8,
            1u8..8,
            any::<bool>(),
            any::<bool>(),
            1u8..8,
        )
            .prop_map(|(cond, a, b, on_true, predict, slot)| BodyOp::Skip {
                cond,
                a,
                b,
                on_true,
                predict,
                slot,
            }),
    ]
}

fn slot(s: u8) -> Operand {
    Operand::SpOff(4 * s as i32)
}

fn build_program(body: &[BodyOp], iters: u8) -> Module {
    let mut m = Module::new();
    let mut label = 0usize;
    m.push(Item::Instr(Instr::Op2 {
        op: BinOp::Mov,
        dst: slot(0),
        src: Operand::Imm(0),
    }));
    m.push(Item::Label("top".into()));
    for op in body {
        match op {
            BodyOp::Alu(op, s, imm) => {
                m.push(Item::Instr(Instr::Op2 {
                    op: *op,
                    dst: slot(*s),
                    src: Operand::Imm(*imm as i32),
                }));
            }
            BodyOp::Skip {
                cond,
                a,
                b,
                on_true,
                predict,
                slot: s,
            } => {
                label += 1;
                let l = format!("skip{label}");
                m.push(Item::Instr(Instr::Cmp {
                    cond: *cond,
                    a: slot(*a),
                    b: slot(*b),
                }));
                m.push(Item::IfJmpTo {
                    on_true: *on_true,
                    predict_taken: *predict,
                    label: l.clone(),
                });
                m.push(Item::Instr(Instr::Op2 {
                    op: BinOp::Add,
                    dst: slot(*s),
                    src: Operand::Imm(1),
                }));
                m.push(Item::Label(l));
            }
        }
    }
    m.push(Item::Instr(Instr::Op2 {
        op: BinOp::Add,
        dst: slot(0),
        src: Operand::Imm(1),
    }));
    m.push(Item::Instr(Instr::Cmp {
        cond: Cond::LtS,
        a: slot(0),
        b: Operand::Imm(iters as i32),
    }));
    m.push(Item::IfJmpTo {
        on_true: true,
        predict_taken: true,
        label: "top".into(),
    });
    m.push(Item::Instr(Instr::Halt));
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn accounting_conserves_on_generated_campaign_programs(
        seed in 0u64..1 << 32,
        max_blocks in 2usize..10,
    ) {
        let prog = GenProgram::generate(seed, max_blocks);
        let image = prog.image().unwrap();
        for cfg in configs() {
            let run = CycleSim::new(Machine::load(&image).unwrap(), cfg)
                .run()
                .unwrap();
            assert_accounts(&run, &cfg)?;
        }
    }

    #[test]
    fn accounting_conserves_on_counted_loops(
        body in prop::collection::vec(arb_body_op(), 1..8),
        iters in 1u8..16,
    ) {
        let image = assemble(&build_program(&body, iters)).unwrap();
        for cfg in configs() {
            let run = CycleSim::new(Machine::load(&image).unwrap(), cfg)
                .run()
                .unwrap();
            assert_accounts(&run, &cfg)?;
        }
    }
}

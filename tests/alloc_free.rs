//! Allocation guard for the hot simulation loops.
//!
//! The steady-state cycle loop under `NullObserver` must perform zero
//! heap allocations per cycle: decode windows live on the stack, the
//! predecode table is built once, and every pipeline queue reaches a
//! fixed capacity during warm-up. The same holds for the functional
//! engine's step loop once its decode sources are warm. A counting
//! `#[global_allocator]` makes the claim checkable: warm each engine
//! up, then step it thousands of times and assert the allocation
//! counter never moves.
//!
//! (This is an integration test so the counting allocator owns the
//! whole binary; the assertions measure deltas, so allocations made by
//! the harness itself between snapshots don't leak into the verdict.)

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

use crisp::cc::{compile_crisp, CompileOptions};
use crisp::sim::{CycleSim, FunctionalSim, Machine, NullObserver, PredecodedImage, SimConfig};
use crisp::workloads::figure3_with_count;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// The test harness runs tests on parallel threads and the allocation
/// counter is process-global, so each test takes this lock for its
/// whole body — otherwise another test's setup allocations would land
/// inside this test's measured window.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// The Figure 3 program at 4096 iterations: tens of thousands of cycles
/// of realistic pipeline traffic (folded branches, calls, cache
/// replacement) — plenty of room for a warm-up phase followed by a long
/// measured window that cannot reach `halt`.
fn loaded_machine() -> Machine {
    let image = compile_crisp(&figure3_with_count(4096), &CompileOptions::default())
        .expect("figure 3 compiles");
    Machine::load(&image).expect("figure 3 loads")
}

const WARMUP_CYCLES: u64 = 3_000;
const MEASURED_CYCLES: u64 = 5_000;

fn assert_cycle_loop_alloc_free(mut sim: CycleSim, label: &str) {
    for _ in 0..WARMUP_CYCLES {
        let snap = sim.step().expect("cycle steps");
        assert!(!snap.halted, "{label}: program halted during warm-up");
    }
    // The counter is process-global and the libtest coordinator thread
    // occasionally allocates mid-window while reporting a previous
    // (mutex-serialized) test's result. The simulator is deterministic,
    // so a loop that genuinely allocates does it in *every* window:
    // measure up to three windows and fail only if none is clean.
    let mut leaked = 0;
    for _window in 0..3 {
        let before = allocs();
        for _ in 0..MEASURED_CYCLES {
            sim.step().expect("cycle steps");
        }
        leaked = allocs() - before;
        if leaked == 0 {
            break;
        }
    }
    assert_eq!(
        leaked, 0,
        "{label}: {leaked} heap allocations in {MEASURED_CYCLES} steady-state cycles \
         (persisted across every measured window)"
    );
    assert!(!sim.machine().halted, "{label}: measured window too long");
}

#[test]
fn cycle_loop_is_alloc_free_under_nullobserver() {
    let _guard = serial();
    assert_cycle_loop_alloc_free(
        CycleSim::new(loaded_machine(), SimConfig::default()),
        "demand-decode",
    );
}

#[test]
fn cycle_loop_is_alloc_free_with_predecoded_table() {
    let _guard = serial();
    let machine = loaded_machine();
    let table = PredecodedImage::from_machine(&machine, SimConfig::default().fold_policy);
    let mut sim = CycleSim::new(machine, SimConfig::default());
    sim.set_predecoded(table.into());
    assert_cycle_loop_alloc_free(sim, "predecoded");
}

#[test]
fn functional_steady_state_is_alloc_free_with_predecoded_table() {
    let _guard = serial();
    let machine = loaded_machine();
    let table = PredecodedImage::from_machine(&machine, SimConfig::default().fold_policy);
    let mut sim = FunctionalSim::with_predecoded(machine, table.into());
    let mut seq = 0;
    for _ in 0..1_000 {
        sim.step_observed(seq, &mut NullObserver).expect("steps");
        seq += 1;
    }
    // Same multi-window policy as the cycle-loop assertion above: only
    // an allocation that recurs in every window is the engine's.
    let mut leaked = 0;
    for _window in 0..3 {
        let before = allocs();
        for _ in 0..2_000 {
            sim.step_observed(seq, &mut NullObserver).expect("steps");
            seq += 1;
        }
        leaked = allocs() - before;
        if leaked == 0 {
            break;
        }
    }
    assert_eq!(
        leaked, 0,
        "functional: {leaked} heap allocations in 2000 steady-state steps \
         (persisted across every measured window)"
    );
    assert!(!sim.machine().halted, "measured window too long");
}

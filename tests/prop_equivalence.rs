//! Property test: for randomly generated programs, the cycle-level
//! pipeline (under every fold policy and several cache geometries)
//! produces exactly the architectural results of the functional engine.
//!
//! Programs are generated as a bounded counted loop whose body is a
//! random mix of ALU operations on stack slots and forward conditional
//! skips with random prediction bits — enough variety to exercise
//! folding, correct and incorrect predictions at every resolution
//! stage, and cache replacement, while guaranteeing termination.

use crisp::asm::{assemble, Item, Module};
use crisp::isa::{BinOp, Cond, FoldPolicy, Instr, Operand};
use crisp::sim::{CycleSim, FunctionalSim, HwPredictor, Machine, SimConfig};
use proptest::prelude::*;

/// One random body element.
#[derive(Debug, Clone)]
enum BodyOp {
    /// `op slot, imm5`
    Alu(BinOp, u8, u8),
    /// `op slot, slot`
    AluRr(BinOp, u8, u8),
    /// `op3` into the accumulator.
    Acc(BinOp, u8, u8),
    /// `mov slot, Accum`
    SaveAcc(u8),
    /// compare-and-skip: `cmp.cond slotA,slotB; ifjmp{y,n}.{t,nt} skip;
    /// <one ALU op>; skip:`
    Skip {
        cond: Cond,
        a: u8,
        b: u8,
        on_true: bool,
        predict: bool,
        guarded: Box<BodyOp>,
    },
}

fn arb_alu_op() -> impl Strategy<Value = BinOp> {
    prop::sample::select(vec![
        BinOp::Add,
        BinOp::Sub,
        BinOp::And,
        BinOp::Or,
        BinOp::Xor,
        BinOp::Mov,
    ])
}

fn arb_cond() -> impl Strategy<Value = Cond> {
    prop::sample::select(Cond::ALL.to_vec())
}

fn leaf_op() -> impl Strategy<Value = BodyOp> {
    prop_oneof![
        (arb_alu_op(), 1u8..8, 0u8..32).prop_map(|(op, s, i)| BodyOp::Alu(op, s, i)),
        (arb_alu_op(), 1u8..8, 1u8..8).prop_map(|(op, a, b)| BodyOp::AluRr(op, a, b)),
        (arb_alu_op(), 1u8..8, 0u8..32).prop_map(|(op, s, i)| BodyOp::Acc(op, s, i)),
        (1u8..8).prop_map(BodyOp::SaveAcc),
    ]
}

fn arb_body_op() -> impl Strategy<Value = BodyOp> {
    prop_oneof![
        4 => leaf_op(),
        2 => (arb_cond(), 1u8..8, 1u8..8, any::<bool>(), any::<bool>(), leaf_op()).prop_map(
            |(cond, a, b, on_true, predict, g)| BodyOp::Skip {
                cond,
                a,
                b,
                on_true,
                predict,
                guarded: Box::new(g),
            }
        ),
    ]
}

fn slot(s: u8) -> Operand {
    Operand::SpOff(4 * s as i32)
}

fn build_program(body: &[BodyOp], iters: u8) -> Module {
    let mut m = Module::new();
    let mut label = 0usize;
    // Counter in slot 0.
    m.push(Item::Instr(Instr::Op2 {
        op: BinOp::Mov,
        dst: slot(0),
        src: Operand::Imm(0),
    }));
    m.push(Item::Label("top".into()));
    for op in body {
        emit(&mut m, op, &mut label);
    }
    m.push(Item::Instr(Instr::Op2 {
        op: BinOp::Add,
        dst: slot(0),
        src: Operand::Imm(1),
    }));
    m.push(Item::Instr(Instr::Cmp {
        cond: Cond::LtS,
        a: slot(0),
        b: Operand::Imm(iters as i32),
    }));
    m.push(Item::IfJmpTo {
        on_true: true,
        predict_taken: true,
        label: "top".into(),
    });
    m.push(Item::Instr(Instr::Halt));
    m
}

fn emit(m: &mut Module, op: &BodyOp, label: &mut usize) {
    match op {
        BodyOp::Alu(op, s, imm) => {
            m.push(Item::Instr(Instr::Op2 {
                op: *op,
                dst: slot(*s),
                src: Operand::Imm(*imm as i32),
            }));
        }
        BodyOp::AluRr(op, a, b) => {
            m.push(Item::Instr(Instr::Op2 {
                op: *op,
                dst: slot(*a),
                src: slot(*b),
            }));
        }
        BodyOp::Acc(op, s, imm) => {
            m.push(Item::Instr(Instr::Op3 {
                op: if *op == BinOp::Mov { BinOp::Add } else { *op },
                a: slot(*s),
                b: Operand::Imm(*imm as i32),
            }));
        }
        BodyOp::SaveAcc(s) => {
            m.push(Item::Instr(Instr::Op2 {
                op: BinOp::Mov,
                dst: slot(*s),
                src: Operand::Accum,
            }));
        }
        BodyOp::Skip {
            cond,
            a,
            b,
            on_true,
            predict,
            guarded,
        } => {
            *label += 1;
            let l = format!("skip{label}");
            m.push(Item::Instr(Instr::Cmp {
                cond: *cond,
                a: slot(*a),
                b: slot(*b),
            }));
            m.push(Item::IfJmpTo {
                on_true: *on_true,
                predict_taken: *predict,
                label: l.clone(),
            });
            emit(m, guarded, label);
            m.push(Item::Label(l));
        }
    }
    let _ = label;
}

fn arch_state(machine: &crisp::sim::Machine) -> (Vec<i32>, i32, bool) {
    let slots = (0..8)
        .map(|i| machine.mem.read_word(machine.sp + 4 * i).unwrap())
        .collect();
    (slots, machine.accum, machine.psw.flag)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cycle_matches_functional_under_all_configs(
        body in prop::collection::vec(arb_body_op(), 1..12),
        iters in 1u8..24,
    ) {
        let module = build_program(&body, iters);
        let image = assemble(&module).unwrap();

        let reference = FunctionalSim::new(Machine::load(&image).unwrap())
            .max_steps(5_000_000)
            .run()
            .unwrap();
        let want = arch_state(&reference.machine);

        let configs = [
            SimConfig::default(),
            SimConfig { fold_policy: FoldPolicy::None, ..SimConfig::default() },
            SimConfig { fold_policy: FoldPolicy::Host1, ..SimConfig::default() },
            SimConfig { fold_policy: FoldPolicy::All, ..SimConfig::default() },
            SimConfig { icache_entries: 4, ..SimConfig::default() },
            SimConfig { mem_latency: 5, pdu_pipe_delay: 4, ..SimConfig::default() },
            SimConfig {
                predictor: HwPredictor::Dynamic { bits: 2, entries: 64 },
                ..SimConfig::default()
            },
            SimConfig {
                predictor: HwPredictor::Dynamic { bits: 1, entries: 8 },
                fold_policy: FoldPolicy::All,
                ..SimConfig::default()
            },
        ];
        for cfg in configs {
            let run = CycleSim::new(Machine::load(&image).unwrap(), cfg).run().unwrap();
            prop_assert_eq!(arch_state(&run.machine), want.clone(), "{:?}", cfg);
            prop_assert_eq!(run.stats.program_instrs, reference.stats.program_instrs);
            // Sanity on the timing model: retiring one instruction per
            // cycle is the ceiling.
            prop_assert!(run.stats.cycles >= run.stats.issued);
        }
    }

    #[test]
    fn folding_never_changes_functional_results(
        body in prop::collection::vec(arb_body_op(), 1..10),
        iters in 1u8..16,
    ) {
        let module = build_program(&body, iters);
        let image = assemble(&module).unwrap();
        let mut states = Vec::new();
        for policy in [FoldPolicy::None, FoldPolicy::Host1, FoldPolicy::Host13, FoldPolicy::All] {
            let run = FunctionalSim::with_policy(Machine::load(&image).unwrap(), policy)
                .max_steps(5_000_000)
                .run()
                .unwrap();
            states.push((arch_state(&run.machine), run.stats.program_instrs));
        }
        for w in states.windows(2) {
            prop_assert_eq!(&w[0], &w[1]);
        }
    }
}

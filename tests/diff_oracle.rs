//! Integration tests for the differential co-simulation harness: a
//! fixed-seed corpus of generated programs must run divergence-free
//! across the full configuration sweep, and a deliberately injected
//! pipeline bug must be caught *and* shrunk to a small reproducer.

use crisp::asm::{shrink, GenProgram};
use crisp::sim::{
    run_lockstep, sweep_configs, DivergenceKind, FaultInjection, LockstepOutcome, SimConfig,
};

/// Programs per configuration in the corpus test (kept modest here —
/// the `crisp-diff` binary runs the thousand-program campaign).
const CORPUS: u64 = 60;
const MAX_BLOCKS: usize = 10;

#[test]
fn fixed_seed_corpus_is_divergence_free_across_the_sweep() {
    let configs = sweep_configs();
    for seed in 0..CORPUS {
        let prog = GenProgram::generate(seed, MAX_BLOCKS);
        let image = prog.image().expect("generated programs assemble");
        for cfg in &configs {
            match run_lockstep(&image, *cfg).expect("image loads") {
                LockstepOutcome::Agree { .. } => {}
                LockstepOutcome::Diverge(d) => {
                    panic!("seed {seed} diverged under {cfg:?}:\n{d}")
                }
            }
        }
    }
}

#[test]
fn compiled_c_corpus_is_divergence_free_across_the_sweep() {
    use crisp::cc::{compile_crisp, generate_c, CompileOptions, PredictionMode};
    let configs = sweep_configs();
    for seed in 0..20 {
        let prog = generate_c(seed);
        for opts in [
            CompileOptions::default(),
            CompileOptions {
                spread: false,
                prediction: PredictionMode::NotTaken,
            },
        ] {
            let image = compile_crisp(&prog.source, &opts)
                .unwrap_or_else(|e| panic!("seed {seed} fails to compile: {e}\n{}", prog.source));
            for cfg in &configs {
                match run_lockstep(&image, *cfg).expect("image loads") {
                    LockstepOutcome::Agree { .. } => {}
                    LockstepOutcome::Diverge(d) => {
                        panic!(
                            "C seed {seed} ({opts:?}) diverged under {cfg:?}:\n{}\n{d}",
                            prog.source
                        )
                    }
                }
            }
        }
    }
}

/// Whether `prog` exposes the injected fault under `cfg`.
fn fault_fails(prog: &GenProgram, cfg: SimConfig) -> bool {
    let Ok(image) = prog.image() else {
        return false;
    };
    run_lockstep(&image, cfg)
        .map(|out| !out.is_agree())
        .unwrap_or(false)
}

#[test]
fn injected_fault_is_caught_and_shrunk() {
    let cfg = SimConfig {
        fault: Some(FaultInjection::SkipOrSquash),
        ..SimConfig::default()
    };
    // Deterministically search the seed space for a program that trips
    // the fault (folded compare mispredicted at RR with a live slot in
    // the squash window) — most seeds contain one within a few tries.
    let (seed, prog) = (0..500)
        .map(|seed| (seed, GenProgram::generate(seed, MAX_BLOCKS)))
        .find(|(_, p)| fault_fails(p, cfg))
        .expect("some seed exposes the injected squash skip");

    // Sanity: the same program is clean on the unfaulted pipeline.
    let image = prog.image().unwrap();
    assert!(
        run_lockstep(&image, SimConfig::default())
            .unwrap()
            .is_agree(),
        "seed {seed} must only fail under fault injection"
    );

    let before = prog.enabled_blocks();
    let min = shrink(prog, |p| fault_fails(p, cfg));
    assert!(fault_fails(&min, cfg), "shrunk program still fails");
    assert!(
        min.enabled_blocks() <= before,
        "shrinking never grows the program"
    );
    // 1-minimality over blocks: disabling any remaining block loses
    // the failure.
    for i in 0..min.blocks.len() {
        if min.enabled[i] {
            let mut cand = min.clone();
            cand.enabled[i] = false;
            assert!(
                !fault_fails(&cand, cfg),
                "block {i} is removable — shrink left slack"
            );
        }
    }

    // The divergence report pinpoints a commit and carries context.
    let out = run_lockstep(&min.image().unwrap(), cfg).unwrap();
    let d = out.divergence().expect("shrunk program diverges");
    assert!(matches!(
        d.kind,
        DivergenceKind::Mismatch { .. } | DivergenceKind::ExtraCommit { .. }
    ));
}

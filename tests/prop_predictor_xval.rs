//! Trace-vs-pipeline cross-validation for the dynamic predictors.
//!
//! The cycle engine consults an in-pipeline hardware table
//! (`HwPredictorState`) at fetch and trains it at retire; the
//! `crisp_predict` crate models the same schemes trace-driven. These
//! are separate implementations of the same machines, so this harness
//! proves they agree *bit for bit*: run the pipeline with an event
//! ring, then replay its `Predict`/`BranchRetire` stream through the
//! matching trace model — every `predict()` must reproduce the
//! pipeline's guess, every retirement becomes an `update()`.
//!
//! The replay honours the pipeline's exact interleaving: wrong-path
//! fetches are predicted but never retire (so never train), tight
//! loops predict several times between updates, and a retirement in
//! cycle N trains the table before that cycle's fetch consults it
//! (retire precedes fetch within `cycle_once`, and the ring preserves
//! insertion order).
//!
//! A second property pins the counter-table seam directly:
//! `crisp_sim::CounterTable` (the in-pipeline direction table) and
//! `crisp_predict::FinitePredictor` (the trace-driven finite table)
//! must be indistinguishable over arbitrary predict/update streams,
//! and both must match the idealised infinite-table
//! `CounterPredictor` when no two branches alias.

use crisp::asm::rand_prog::GenProgram;
use crisp::predict::{Btb, BtbConfig, CounterPredictor, FinitePredictor, JumpTrace, Predictor};
use crisp::sim::{
    CounterTable, CycleSim, EventRing, HwPredictor, Machine, PipeEvent, PipelineGeometry, SimConfig,
};
use proptest::prelude::*;

/// The dynamic predictor configurations under test, with deliberately
/// tiny geometries so aliasing and eviction paths get exercised.
fn predictors() -> Vec<HwPredictor> {
    vec![
        HwPredictor::Dynamic {
            bits: 2,
            entries: 64,
        },
        HwPredictor::Dynamic {
            bits: 1,
            entries: 8,
        },
        HwPredictor::Btb {
            entries: 128,
            ways: 4,
        },
        HwPredictor::Btb {
            entries: 4,
            ways: 1,
        },
        HwPredictor::JumpTrace { entries: 8 },
        HwPredictor::JumpTrace { entries: 2 },
    ]
}

/// Build the trace-driven twin of an in-pipeline predictor config.
fn trace_model(p: HwPredictor) -> Box<dyn Predictor> {
    match p {
        HwPredictor::StaticBit => unreachable!("the static bit consults no table"),
        HwPredictor::Dynamic { bits, entries } => Box::new(FinitePredictor::new(bits, entries)),
        HwPredictor::Btb { entries, ways } => Box::new(Btb::new(BtbConfig {
            sets: entries,
            ways,
        })),
        HwPredictor::JumpTrace { entries } => Box::new(JumpTrace::new(entries)),
    }
}

/// Run the pipeline under `cfg`, replay its event stream through the
/// matching trace model, and return how many predictions were checked.
/// Panics (via assert) on the first divergent prediction.
fn xval_run(image: &crisp::asm::Image, cfg: SimConfig) -> u64 {
    let sim = CycleSim::with_observer(Machine::load(image).unwrap(), cfg, EventRing::new(1 << 20));
    let (run, ring) = sim.run_observed().unwrap();
    assert!(run.halted);
    assert_eq!(
        run.stats.dropped_events, 0,
        "ring too small: replay needs the complete stream"
    );
    let mut model = trace_model(cfg.predictor);
    let mut checked = 0u64;
    for ev in ring.events() {
        match *ev {
            PipeEvent::Predict {
                cycle,
                branch_pc,
                guess,
                ..
            } => {
                assert_eq!(
                    model.predict(branch_pc),
                    guess,
                    "trace model `{}` diverged from the pipeline at cycle {cycle}, \
                     branch {branch_pc:#x} (prediction #{checked})",
                    model.name(),
                );
                checked += 1;
            }
            PipeEvent::BranchRetire {
                branch_pc, taken, ..
            } => model.update(branch_pc, taken),
            _ => {}
        }
    }
    checked
}

#[test]
fn pipeline_predictions_match_trace_models_on_fixed_corpus() {
    // A loop whose branch flips direction on a modulus, plus an inner
    // skip, so counters move both ways and the BTB sees reallocation.
    let src = "
        mov 0(sp),$0
        mov 4(sp),$0
    top:
        add 0(sp),$1
        cmp.s< 4(sp),$3
        ifjmpy.t skip
        mov 4(sp),$-1
    skip:
        add 4(sp),$1
        cmp.s< 0(sp),$200
        ifjmpy.nt top
        halt
    ";
    let image = crisp::asm::assemble_text(src).unwrap();
    let mut total = 0u64;
    for predictor in predictors() {
        for depth in [2, 5] {
            total += xval_run(
                &image,
                SimConfig {
                    predictor,
                    geometry: PipelineGeometry::new(depth),
                    ..SimConfig::default()
                },
            );
        }
    }
    assert!(
        total > 1000,
        "corpus must exercise the predictors ({total} predictions checked)"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Cross-validate over the differential campaign's own program
    /// generator: whatever control flow it emits, the pipeline's
    /// prediction stream must replay exactly on the trace models.
    #[test]
    fn pipeline_predictions_match_trace_models_on_generated_programs(
        seed in 0u64..1 << 32,
        max_blocks in 2usize..10,
    ) {
        let prog = GenProgram::generate(seed, max_blocks);
        let image = prog.image().unwrap();
        for predictor in predictors() {
            xval_run(&image, SimConfig { predictor, ..SimConfig::default() });
        }
    }

    /// The in-pipeline `CounterTable` and the trace-driven
    /// `FinitePredictor` are the same machine: over an arbitrary
    /// interleaving of predicts and updates they agree on every
    /// prediction. With addresses confined to distinct slots of a
    /// large table, both also match the infinite-table
    /// `CounterPredictor`.
    #[test]
    fn counter_table_matches_finite_and_infinite_models(
        bits in 1u8..=3,
        ops in prop::collection::vec((0u32..64, any::<bool>(), any::<bool>()), 1..200),
    ) {
        let mut table = CounterTable::new(bits, 64);
        let mut finite = FinitePredictor::new(bits, 64);
        let mut infinite = CounterPredictor::new(bits);
        for (slot, taken, is_update) in ops {
            // Parcel addresses land each slot in its own counter of a
            // 64-entry table, so the finite models never alias and the
            // infinite table is reachable too.
            let pc = slot << 1;
            if is_update {
                table.train(pc, taken);
                finite.update(pc, taken);
                infinite.update(pc, taken);
            } else {
                let guess = table.guess(pc);
                prop_assert_eq!(guess, finite.predict(pc));
                prop_assert_eq!(guess, infinite.predict(pc));
            }
        }
    }
}

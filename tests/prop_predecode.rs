//! Property tests for the shared predecode table and the pooled
//! machine-reset path — the two invariants the hot-path batch kernel
//! leans on:
//!
//! 1. [`PredecodedImage`] agrees with on-demand `decode_and_fold` at
//!    every parcel-aligned PC of the text segment, under every
//!    [`FoldPolicy`], for randomly generated programs. This is what
//!    lets the functional engine and the PDU's miss path read one
//!    shared table instead of re-decoding.
//! 2. [`Machine::reset_from`] on an arbitrarily dirtied machine is
//!    bit-identical to a fresh [`Machine::load`] of the same image, so
//!    campaign workers can recycle machine buffers without any
//!    cross-case state leak.

use crisp::asm::rand_prog::GenProgram;
use crisp::isa::{decode_and_fold, FoldPolicy};
use crisp::sim::{FunctionalSim, Machine, PredecodedImage, DECODE_WINDOW};
use proptest::prelude::*;

const POLICIES: [FoldPolicy; 4] = [
    FoldPolicy::None,
    FoldPolicy::Host1,
    FoldPolicy::Host13,
    FoldPolicy::All,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Claim 1: every covered slot matches a demand decode of post-load
    /// memory, errors included, and nothing outside the text segment or
    /// off parcel alignment is covered.
    #[test]
    fn predecode_agrees_with_on_demand_decode(
        seed in 0u64..10_000,
        max_blocks in 1usize..12,
    ) {
        let prog = GenProgram::generate(seed, max_blocks);
        let image = prog.image().expect("generated programs assemble");
        let machine = Machine::load(&image).expect("generated programs load");
        for policy in POLICIES {
            let table = PredecodedImage::from_machine(&machine, policy);
            prop_assert_eq!(table.base(), machine.text_base());
            prop_assert_eq!(table.end(), machine.text_end());
            let mut pc = table.base();
            while pc < table.end() {
                let window = machine.mem.parcel_window(pc, DECODE_WINDOW);
                let want = decode_and_fold(&window, 0, pc, policy);
                prop_assert_eq!(
                    table.get(pc),
                    Some(&want),
                    "seed {} policy {:?} pc {:#x}",
                    seed,
                    policy,
                    pc
                );
                prop_assert!(table.get(pc + 1).is_none(), "odd pc covered");
                pc += 2;
            }
            prop_assert!(table.get(table.end()).is_none());
        }
    }

    /// Claim 2: resetting a dirtied machine from another image is
    /// indistinguishable from loading that image fresh — including
    /// memory size, every byte of memory, registers and halt state.
    #[test]
    fn reset_from_is_bit_identical_to_fresh_load(
        seed_a in 0u64..10_000,
        seed_b in 0u64..10_000,
        max_blocks in 1usize..10,
    ) {
        let image_a = GenProgram::generate(seed_a, max_blocks)
            .image()
            .expect("assembles");
        let image_b = GenProgram::generate(seed_b, max_blocks)
            .image()
            .expect("assembles");

        // Dirty a machine by actually running program A for a while:
        // real register values, stack traffic and data writes.
        let mut run = FunctionalSim::new(Machine::load(&image_a).unwrap())
            .max_steps(500)
            .run()
            .expect("bounded run");
        run.machine.reset_from(&image_b).expect("reset");
        prop_assert_eq!(&run.machine, &Machine::load(&image_b).unwrap());

        // And back again: the recycled buffer round-trips to image A.
        run.machine.reset_from(&image_a).expect("reset back");
        prop_assert_eq!(&run.machine, &Machine::load(&image_a).unwrap());
    }
}

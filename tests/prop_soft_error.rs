//! Property tests for the soft-error model and the parity-protected
//! decoded cache.
//!
//! The load-bearing claims, checked over randomized entries, programs
//! and fault plans:
//!
//! 1. the parity word detects *every* single-bit flip of a canonical
//!    decoded-entry image (the whole fault space maps to real bits);
//! 2. under `ParityMode::DetectInvalidate` every injected single-bit
//!    fault is recovered — the cycle engine's commit log still matches
//!    the fault-free functional reference (outcome `Masked`);
//! 3. under `ParityMode::Off` classification is total: every fault
//!    buckets into masked / SDC / control-divergence / hang;
//! 4. a detected fault costs exactly one invalidate plus one redecode
//!    refill, reconciled across cache counters and observer events;
//! 5. PDU fold-slot fault sites are parity-visible and a corrupted
//!    in-flight entry is dropped at the fill port — `DetectInvalidate`
//!    masks 100% of PDU-slot strikes.

use crisp::asm::rand_prog::GenProgram;
use crisp::asm::{assemble, Item, Module};
use crisp::isa::{BinOp, Cond, Instr, Operand};
use crisp::sim::{
    classify_fault, decode_entry, entry_bits, nth_field, nth_pdu_field, parity32, CycleSim,
    EventRing, FaultField, FaultOutcome, FaultPlan, FaultTarget, Machine, ParityMode, PipeEvent,
    SimConfig, FAULT_SPACE, PDU_FAULT_SPACE,
};
use proptest::prelude::*;

/// Faults are injected into live cache state, so the plan space only
/// needs to cover plausible strike points.
fn arb_plan() -> impl Strategy<Value = FaultPlan> {
    (0u64..1500, 0u32..32, 0u64..FAULT_SPACE).prop_map(|(cycle, slot, i)| FaultPlan {
        cycle,
        slot,
        field: nth_field(i),
        target: FaultTarget::Cache,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Claim 1: flipping any single bit of a canonical entry image
    /// changes its parity word, for every field in the fault space.
    #[test]
    fn parity_detects_every_single_bit_flip(
        words in (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
    ) {
        // Canonicalise: decode the random words into a real entry and
        // re-encode, so the image is one the cache could actually hold.
        let d = decode_entry([words.0, words.1, words.2, words.3]);
        let bits = entry_bits(&d);
        prop_assert_eq!(decode_entry(bits), d, "canonical images round-trip");
        let clean = parity32(&bits);
        for i in 0..FAULT_SPACE {
            let field = nth_field(i);
            let Some((word, bit)) = field.bit() else {
                // The valid bit lives outside the entry image; its
                // "flip" is modelled as slot invalidation instead.
                prop_assert!(matches!(field, FaultField::Valid));
                continue;
            };
            let mut flipped = bits;
            flipped[word] ^= 1u64 << bit;
            prop_assert!(
                parity32(&flipped) != clean,
                "flip of {:?} (word {} bit {}) escaped parity", field, word, bit
            );
        }
    }

    /// Claim 2: DetectInvalidate always reconverges to the fault-free
    /// commit log, whatever program and wherever the fault strikes.
    #[test]
    fn detect_invalidate_always_reconverges(seed in 0u64..5000, plan in arb_plan()) {
        let image = GenProgram::generate(seed, 8).image().unwrap();
        let cfg = SimConfig {
            parity: ParityMode::DetectInvalidate,
            fault_plan: Some(plan),
            max_cycles: 200_000,
            ..SimConfig::default()
        };
        let outcome = classify_fault(&image, cfg).unwrap();
        prop_assert_eq!(
            outcome, FaultOutcome::Masked,
            "fault {:?} escaped parity recovery on seed {}", plan, seed
        );
    }

    /// Claim 5 (whole-front-end model): every PDU fold-slot fault site
    /// maps into the canonical entry image — so the cache's parity word
    /// covers it — and under `DetectInvalidate` a strike on an
    /// in-flight PIR entry is dropped at the fill port before it can
    /// pollute the cache: classification is always `Masked`.
    #[test]
    fn pdu_slot_faults_are_always_masked_under_parity(
        seed in 0u64..5000,
        cycle in 0u64..300,
        slot in 0u32..8,
        i in 0u64..PDU_FAULT_SPACE,
    ) {
        let field = nth_pdu_field(i);
        prop_assert!(field.bit().is_some(), "{:?} must be parity-visible", field);
        let image = GenProgram::generate(seed, 8).image().unwrap();
        let cfg = SimConfig {
            parity: ParityMode::DetectInvalidate,
            fault_plan: Some(FaultPlan {
                cycle,
                slot,
                field,
                target: FaultTarget::Pdu,
            }),
            max_cycles: 200_000,
            ..SimConfig::default()
        };
        let outcome = classify_fault(&image, cfg).unwrap();
        prop_assert_eq!(
            outcome, FaultOutcome::Masked,
            "PDU-slot fault {:?} escaped the fill-port parity check on seed {}", field, seed
        );
    }

    /// Claim 3: with parity off, every fault classifies cleanly (the
    /// harness never errors on a halting program, never hangs the
    /// host — hangs are caught by the watchdog and bucketed).
    #[test]
    fn unprotected_classification_is_total(seed in 0u64..5000, plan in arb_plan()) {
        let image = GenProgram::generate(seed, 8).image().unwrap();
        let cfg = SimConfig {
            parity: ParityMode::Off,
            fault_plan: Some(plan),
            max_cycles: 200_000,
            ..SimConfig::default()
        };
        let outcome = classify_fault(&image, cfg).unwrap();
        prop_assert!(FaultOutcome::ALL.contains(&outcome));
    }
}

/// A 50-iteration counted loop: a handful of hot decoded entries that
/// are re-fetched every iteration, so a corrupted one is detected on
/// the next trip around.
fn counted_loop() -> Module {
    let mut m = Module::new();
    m.push(Item::Instr(Instr::Op2 {
        op: BinOp::Mov,
        dst: Operand::SpOff(0),
        src: Operand::Imm(0),
    }));
    m.push(Item::Label("top".into()));
    m.push(Item::Instr(Instr::Op2 {
        op: BinOp::Add,
        dst: Operand::SpOff(0),
        src: Operand::Imm(1),
    }));
    m.push(Item::Instr(Instr::Cmp {
        cond: Cond::LtS,
        a: Operand::SpOff(0),
        b: Operand::Imm(50),
    }));
    m.push(Item::IfJmpTo {
        on_true: true,
        predict_taken: true,
        label: "top".into(),
    });
    m.push(Item::Instr(Instr::Halt));
    m
}

/// Claim 4: recovery from a detected fault costs exactly one
/// invalidate and one redecode refill — no double-counting, no silent
/// extra traffic — and the counters reconcile with the event stream.
#[test]
fn recovery_costs_one_invalidate_and_one_refill() {
    let image = assemble(&counted_loop()).unwrap();
    let base_cfg = SimConfig {
        parity: ParityMode::DetectInvalidate,
        max_cycles: 100_000,
        ..SimConfig::default()
    };
    let baseline = CycleSim::new(Machine::load(&image).unwrap(), base_cfg)
        .run()
        .unwrap();
    assert!(baseline.halted);
    let base_fills = baseline.stats.cache_inserts + baseline.stats.cache_refills;

    let mut detected = 0u64;
    for slot in 0..32u32 {
        let cfg = SimConfig {
            fault_plan: Some(FaultPlan {
                cycle: 60,
                slot,
                field: FaultField::NextPc(7),
                target: FaultTarget::Cache,
            }),
            ..base_cfg
        };
        let sim =
            CycleSim::with_observer(Machine::load(&image).unwrap(), cfg, EventRing::new(1 << 16));
        let (run, ring) = sim.run_observed().unwrap();
        assert!(run.halted, "slot {slot}: run must still halt");
        // Recovery is architecturally invisible: same final state.
        assert_eq!(run.machine.accum, baseline.machine.accum, "slot {slot}");
        assert_eq!(run.machine.mem, baseline.machine.mem, "slot {slot}");

        // Counters reconcile with the typed event stream.
        let events = ring.into_vec();
        let injects = events
            .iter()
            .filter(|e| matches!(e, PipeEvent::FaultInject { .. }))
            .count() as u64;
        let parity_errors = events
            .iter()
            .filter(|e| matches!(e, PipeEvent::ParityError { .. }))
            .count() as u64;
        assert_eq!(injects, run.stats.faults_injected, "slot {slot}");
        assert_eq!(parity_errors, run.stats.parity_invalidates, "slot {slot}");
        assert!(run.stats.parity_invalidates <= run.stats.faults_injected);

        // The recovery bill: one invalidate, one extra fill (the
        // redecode), nothing else. Undetected strikes (the slot was
        // empty, or the corpse was never re-fetched) change nothing.
        let fills = run.stats.cache_inserts + run.stats.cache_refills;
        assert_eq!(
            fills,
            base_fills + run.stats.parity_invalidates,
            "slot {slot}: exactly one redecode refill per invalidate"
        );
        if run.stats.parity_invalidates > 0 {
            detected += 1;
            assert_eq!(run.stats.parity_invalidates, 1, "slot {slot}");
            assert!(
                run.stats.cycles > baseline.stats.cycles,
                "slot {slot}: recovery must cost stall cycles"
            );
        } else {
            assert_eq!(fills, base_fills, "slot {slot}");
        }
    }
    assert!(
        detected >= 1,
        "the hot-loop strike must be detected in at least one slot"
    );
}

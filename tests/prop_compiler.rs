//! Compiler property tests: randomly generated structured programs are
//! compiled under every option combination, run on both engines, and
//! all runs must agree with a direct AST interpretation done in Rust.
//!
//! This is the strongest end-to-end check in the repository: it
//! exercises the code generator, Branch Spreading, prediction-bit
//! assignment, the assembler, branch folding and both simulators in one
//! assertion.

use crisp::asm::Image;
use crisp::cc::{compile_crisp, CompileOptions, PredictionMode};
use crisp::sim::{CycleSim, FunctionalSim, Machine, SimConfig};
use proptest::prelude::*;

const NVARS: usize = 4;

/// A tiny structured program over globals g0..g3.
#[derive(Debug, Clone)]
enum S {
    /// `g[d] = g[a] op g[b];`
    Assign(usize, Op, usize, usize),
    /// `g[d] op= k;`
    AssignImm(usize, Op, i32),
    /// `g[d]++;`
    Inc(usize),
    /// `if (g[a] cmp g[b]) then else`
    If(usize, Cmp, usize, Vec<S>, Vec<S>),
    /// `for (i = 0; i < n; i++) body` over a dedicated local counter —
    /// represented here by iterating the body `n` times.
    Repeat(u8, Vec<S>),
}

#[derive(Debug, Clone, Copy)]
enum Op {
    Add,
    Sub,
    Mul,
    And,
    Or,
    Xor,
}

#[derive(Debug, Clone, Copy)]
enum Cmp {
    Lt,
    Le,
    Eq,
    Ne,
}

impl Op {
    fn c(self) -> &'static str {
        match self {
            Op::Add => "+",
            Op::Sub => "-",
            Op::Mul => "*",
            Op::And => "&",
            Op::Or => "|",
            Op::Xor => "^",
        }
    }
    fn eval(self, a: i32, b: i32) -> i32 {
        match self {
            Op::Add => a.wrapping_add(b),
            Op::Sub => a.wrapping_sub(b),
            Op::Mul => a.wrapping_mul(b),
            Op::And => a & b,
            Op::Or => a | b,
            Op::Xor => a ^ b,
        }
    }
}

impl Cmp {
    fn c(self) -> &'static str {
        match self {
            Cmp::Lt => "<",
            Cmp::Le => "<=",
            Cmp::Eq => "==",
            Cmp::Ne => "!=",
        }
    }
    fn eval(self, a: i32, b: i32) -> bool {
        match self {
            Cmp::Lt => a < b,
            Cmp::Le => a <= b,
            Cmp::Eq => a == b,
            Cmp::Ne => a != b,
        }
    }
}

fn arb_stmt(depth: u32) -> BoxedStrategy<S> {
    let leaf = prop_oneof![
        (0..NVARS, arb_op(), 0..NVARS, 0..NVARS).prop_map(|(d, op, a, b)| S::Assign(d, op, a, b)),
        (0..NVARS, arb_op(), -20i32..20).prop_map(|(d, op, k)| S::AssignImm(d, op, k)),
        (0..NVARS).prop_map(S::Inc),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    let inner = prop::collection::vec(arb_stmt(depth - 1), 0..4);
    prop_oneof![
        3 => leaf,
        1 => (0..NVARS, arb_cmp(), 0..NVARS, inner.clone(), inner.clone())
            .prop_map(|(a, c, b, t, e)| S::If(a, c, b, t, e)),
        1 => (1u8..5, inner).prop_map(|(n, body)| S::Repeat(n, body)),
    ]
    .boxed()
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop::sample::select(vec![Op::Add, Op::Sub, Op::Mul, Op::And, Op::Or, Op::Xor])
}

fn arb_cmp() -> impl Strategy<Value = Cmp> {
    prop::sample::select(vec![Cmp::Lt, Cmp::Le, Cmp::Eq, Cmp::Ne])
}

/// Render to mini-C. `Repeat` uses a fresh local counter per loop.
fn render(stmts: &[S], loops: &mut usize, out: &mut String, indent: usize) {
    let pad = "    ".repeat(indent);
    for s in stmts {
        match s {
            S::Assign(d, op, a, b) => {
                out.push_str(&format!("{pad}g{d} = g{a} {} g{b};\n", op.c()));
            }
            S::AssignImm(d, op, k) => {
                out.push_str(&format!("{pad}g{d} = g{d} {} ({k});\n", op.c()));
            }
            S::Inc(d) => out.push_str(&format!("{pad}g{d}++;\n")),
            S::If(a, c, b, t, e) => {
                out.push_str(&format!("{pad}if (g{a} {} g{b}) {{\n", c.c()));
                render(t, loops, out, indent + 1);
                out.push_str(&format!("{pad}}} else {{\n"));
                render(e, loops, out, indent + 1);
                out.push_str(&format!("{pad}}}\n"));
            }
            S::Repeat(n, body) => {
                let id = *loops;
                *loops += 1;
                out.push_str(&format!("{pad}for (c{id} = 0; c{id} < {n}; c{id}++) {{\n"));
                render(body, loops, out, indent + 1);
                out.push_str(&format!("{pad}}}\n"));
            }
        }
    }
}

fn count_loops(stmts: &[S]) -> usize {
    stmts
        .iter()
        .map(|s| match s {
            S::If(_, _, _, t, e) => count_loops(t) + count_loops(e),
            S::Repeat(_, body) => 1 + count_loops(body),
            _ => 0,
        })
        .sum()
}

fn to_source(stmts: &[S]) -> String {
    let nloops = count_loops(stmts);
    let mut body = String::new();
    let mut loops = 0usize;
    render(stmts, &mut loops, &mut body, 1);
    let globals: String = (0..NVARS).map(|i| format!("int g{i};\n")).collect();
    let decls = if nloops == 0 {
        String::new()
    } else {
        let names: Vec<String> = (0..nloops).map(|i| format!("c{i}")).collect();
        format!("    int {};\n", names.join(", "))
    };
    format!("{globals}void main() {{\n{decls}{body}}}\n")
}

/// Reference interpretation in Rust.
fn interpret(stmts: &[S], g: &mut [i32; NVARS]) {
    for s in stmts {
        match s {
            S::Assign(d, op, a, b) => g[*d] = op.eval(g[*a], g[*b]),
            S::AssignImm(d, op, k) => g[*d] = op.eval(g[*d], *k),
            S::Inc(d) => g[*d] = g[*d].wrapping_add(1),
            S::If(a, c, b, t, e) => {
                if c.eval(g[*a], g[*b]) {
                    interpret(t, g);
                } else {
                    interpret(e, g);
                }
            }
            S::Repeat(n, body) => {
                for _ in 0..*n {
                    interpret(body, g);
                }
            }
        }
    }
}

fn run_image(image: &Image, cycle: bool) -> [i32; NVARS] {
    let machine = Machine::load(image).unwrap();
    let mem = if cycle {
        CycleSim::new(machine, SimConfig::default())
            .run()
            .unwrap()
            .machine
            .mem
    } else {
        FunctionalSim::new(machine)
            .max_steps(50_000_000)
            .run()
            .unwrap()
            .machine
            .mem
    };
    let mut out = [0i32; NVARS];
    for (i, v) in out.iter_mut().enumerate() {
        *v = mem
            .read_word(Image::DEFAULT_DATA_BASE + 4 * i as u32)
            .unwrap();
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn compiled_programs_match_reference_interpretation(
        stmts in prop::collection::vec(arb_stmt(2), 1..8),
    ) {
        let src = to_source(&stmts);
        let mut expect = [0i32; NVARS];
        interpret(&stmts, &mut expect);

        let combos = [
            CompileOptions { spread: false, prediction: PredictionMode::NotTaken },
            CompileOptions { spread: true, prediction: PredictionMode::Btfnt },
            CompileOptions { spread: true, prediction: PredictionMode::Ftbnt },
        ];
        for opts in combos {
            let image = compile_crisp(&src, &opts)
                .unwrap_or_else(|e| panic!("{opts:?}: {e}\n{src}"));
            let func = run_image(&image, false);
            prop_assert_eq!(func, expect, "functional, {:?}\n{}", opts, src);
            let cyc = run_image(&image, true);
            prop_assert_eq!(cyc, expect, "cycle, {:?}\n{}", opts, src);
        }
    }
}

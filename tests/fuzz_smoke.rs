//! Fuzz-smoke test: the text front ends must never panic, whatever
//! bytes they are fed.
//!
//! Seeded corpora of valid assembly and mini-C sources are mutated —
//! byte flips, truncations, insertions, deletions and swaps to
//! syntax-significant characters — and every mutant is pushed through
//! `crisp::asm::assemble_text` and `crisp::cc::compile_crisp`. The
//! result is ignored; the only assertion is that neither front end
//! panics (every malformed input must come back as a structured
//! error). Deterministic by seed, bounded in size, suitable for CI.

use std::panic::{catch_unwind, AssertUnwindSafe};

use crisp::asm::assemble_text;
use crisp::asm::rand_prog::Rng;
use crisp::cc::{compile_crisp, generate_c, CompileOptions};

/// A hand-written corpus entry exercising every assembly construct.
const ASM_CORPUS: &[&str] = &[
    "
    main:
        enter 16
    loop:
        add 0(sp),$1
        and3 4(sp),$1
        cmp.= Accum,$0
        ifjmpy.t loop
        mov *0x10000,Accum
        mov [8(sp)],$5
        call f
        jmp .+4
        leave 16
        ret
    f:  halt
        .align
        .word 1, 2, 3
        .entry main
    ",
    "a: b: nop\nifjmpn.nt a\nsub3 0(sp),$-1\n.word -2147483648\n",
    "jmp *12(sp)\ncall *0x44\ncmp.<u 8(sp),[0(sp)]\nifjmpy 100\nhalt\n",
];

/// Syntax-significant bytes that steer mutants toward interesting
/// parser states (half-open literals, stray directives, labels).
const SPICE: &[u8] = b"':$*([{.\\x09,;=<>-";

fn mutate(rng: &mut Rng, base: &str) -> String {
    let mut bytes = base.as_bytes().to_vec();
    let edits = 1 + rng.below(4);
    for _ in 0..edits {
        if bytes.is_empty() {
            break;
        }
        let i = rng.below(bytes.len() as u64) as usize;
        match rng.below(5) {
            0 => bytes.truncate(i),
            1 => bytes[i] = rng.next_u64() as u8,
            2 => bytes.insert(i, rng.next_u64() as u8),
            3 => {
                bytes.remove(i);
            }
            _ => bytes[i] = *rng.pick(SPICE),
        }
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

/// Run `f`, turning a panic into a test failure that shows the input.
fn assert_no_panic(what: &str, input: &str, f: impl FnOnce()) {
    if catch_unwind(AssertUnwindSafe(f)).is_err() {
        panic!("{what} panicked on input:\n---\n{input}\n---");
    }
}

#[test]
fn assembler_never_panics_on_mutated_input() {
    let mut rng = Rng::new(0xA5A5);
    for base in ASM_CORPUS {
        for _ in 0..400 {
            let input = mutate(&mut rng, base);
            assert_no_panic("assemble_text", &input, || {
                let _ = assemble_text(&input);
            });
        }
    }
}

#[test]
fn compiler_never_panics_on_mutated_input() {
    let opts = CompileOptions::default();
    let mut sources = vec![crisp::workloads::FIGURE3_SOURCE.to_string()];
    for seed in 0..4 {
        sources.push(generate_c(seed).source);
    }
    let mut rng = Rng::new(0x5A5A);
    for base in &sources {
        for _ in 0..250 {
            let input = mutate(&mut rng, base);
            assert_no_panic("compile_crisp", &input, || {
                let _ = compile_crisp(&input, &opts);
            });
        }
    }
}

#[test]
fn front_ends_survive_raw_garbage() {
    // Pure noise, no valid seed at all: empty input, long runs of one
    // delimiter, and random byte soup.
    let mut rng = Rng::new(7);
    let mut cases = vec![
        String::new(),
        "'".repeat(300),
        "(".repeat(300),
        ":".repeat(300),
        ".".repeat(300),
    ];
    for _ in 0..100 {
        let len = rng.below(200) as usize;
        let bytes: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        cases.push(String::from_utf8_lossy(&bytes).into_owned());
    }
    let opts = CompileOptions::default();
    for input in &cases {
        assert_no_panic("assemble_text", input, || {
            let _ = assemble_text(input);
        });
        assert_no_panic("compile_crisp", input, || {
            let _ = compile_crisp(input, &opts);
        });
    }
}

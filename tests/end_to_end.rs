//! Cross-crate integration: every workload compiles, runs on both
//! engines, and the engines agree architecturally — the fundamental
//! invariant (branch folding and all pipeline machinery change timing,
//! never results).

use crisp::asm::Image;
use crisp::cc::{compile_crisp, CompileOptions, PredictionMode};
use crisp::isa::FoldPolicy;
use crisp::sim::{CycleSim, FunctionalSim, Machine, SimConfig};
use crisp::workloads::{figure3_with_count, prediction_workloads, FIGURE3_CHECKED_SOURCE};

fn globals(mem: &crisp::sim::Memory, n: u32) -> Vec<i32> {
    (0..n)
        .map(|i| mem.read_word(Image::DEFAULT_DATA_BASE + 4 * i).unwrap())
        .collect()
}

#[test]
fn functional_and_cycle_agree_on_every_workload() {
    for w in prediction_workloads() {
        for opts in [
            CompileOptions::default(),
            CompileOptions {
                spread: false,
                prediction: PredictionMode::NotTaken,
            },
        ] {
            let image = compile_crisp(w.source, &opts).unwrap();
            let f = FunctionalSim::new(Machine::load(&image).unwrap())
                .run()
                .unwrap();
            let c = CycleSim::new(Machine::load(&image).unwrap(), SimConfig::default())
                .run()
                .unwrap();
            assert!(f.halted && c.halted, "{}", w.name);
            assert_eq!(
                globals(&f.machine.mem, 8),
                globals(&c.machine.mem, 8),
                "{} globals",
                w.name
            );
            assert_eq!(f.machine.accum, c.machine.accum, "{}", w.name);
            assert_eq!(f.machine.sp, c.machine.sp, "{}", w.name);
            assert_eq!(f.stats.program_instrs, c.stats.program_instrs, "{}", w.name);
            assert_eq!(f.stats.entries, c.stats.issued, "{}", w.name);
        }
    }
}

#[test]
fn cycle_results_invariant_under_machine_configuration() {
    // Timing knobs must never change architectural results.
    let image = compile_crisp(FIGURE3_CHECKED_SOURCE, &CompileOptions::default()).unwrap();
    let reference = CycleSim::new(Machine::load(&image).unwrap(), SimConfig::default())
        .run()
        .unwrap();
    let configs = [
        SimConfig {
            fold_policy: FoldPolicy::None,
            ..SimConfig::default()
        },
        SimConfig {
            fold_policy: FoldPolicy::Host1,
            ..SimConfig::default()
        },
        SimConfig {
            fold_policy: FoldPolicy::All,
            ..SimConfig::default()
        },
        SimConfig {
            icache_entries: 4,
            ..SimConfig::default()
        },
        SimConfig {
            icache_entries: 1024,
            ..SimConfig::default()
        },
        SimConfig {
            mem_latency: 9,
            ..SimConfig::default()
        },
        SimConfig {
            pdu_pipe_delay: 7,
            ..SimConfig::default()
        },
    ];
    for cfg in configs {
        let run = CycleSim::new(Machine::load(&image).unwrap(), cfg)
            .run()
            .unwrap();
        assert_eq!(
            globals(&run.machine.mem, 3),
            globals(&reference.machine.mem, 3),
            "{cfg:?}"
        );
        assert_eq!(
            run.stats.program_instrs, reference.stats.program_instrs,
            "{cfg:?}"
        );
    }
}

#[test]
fn prediction_bits_only_change_timing() {
    let src = figure3_with_count(200);
    let mut cycles = Vec::new();
    for mode in [
        PredictionMode::Taken,
        PredictionMode::NotTaken,
        PredictionMode::Btfnt,
        PredictionMode::Ftbnt,
    ] {
        let image = compile_crisp(
            &src,
            &CompileOptions {
                spread: false,
                prediction: mode,
            },
        )
        .unwrap();
        let run = CycleSim::new(Machine::load(&image).unwrap(), SimConfig::default())
            .run()
            .unwrap();
        cycles.push((mode, run.stats.cycles, run.stats.issued));
    }
    // Issue counts identical across modes; cycles differ.
    assert!(cycles.windows(2).all(|w| w[0].2 == w[1].2), "{cycles:?}");
    let c: Vec<u64> = cycles.iter().map(|x| x.1).collect();
    assert!(
        c.iter().any(|&x| x != c[0]),
        "prediction must matter: {cycles:?}"
    );
    // Btfnt (loop predicted taken) beats NotTaken on a loopy program.
    let btfnt = cycles
        .iter()
        .find(|x| x.0 == PredictionMode::Btfnt)
        .unwrap()
        .1;
    let nottaken = cycles
        .iter()
        .find(|x| x.0 == PredictionMode::NotTaken)
        .unwrap()
        .1;
    assert!(btfnt < nottaken, "{cycles:?}");
}

#[test]
fn deep_recursion_works_under_both_engines() {
    let src = "
        int out;
        int sum_to(int n) {
            if (n <= 0) return 0;
            return n + sum_to(n - 1);
        }
        void main() { out = sum_to(200); }
    ";
    let image = compile_crisp(src, &CompileOptions::default()).unwrap();
    let f = FunctionalSim::new(Machine::load(&image).unwrap())
        .run()
        .unwrap();
    let c = CycleSim::new(Machine::load(&image).unwrap(), SimConfig::default())
        .run()
        .unwrap();
    assert_eq!(
        f.machine.mem.read_word(Image::DEFAULT_DATA_BASE).unwrap(),
        20100
    );
    assert_eq!(
        c.machine.mem.read_word(Image::DEFAULT_DATA_BASE).unwrap(),
        20100
    );
}

#[test]
fn figure3_loop_count_scaling_is_linear() {
    // The paper: "The results are relatively independent of the actual
    // loop count" — per-iteration cycles stay constant.
    let per_iter = |n: u32| {
        let image = compile_crisp(&figure3_with_count(n), &CompileOptions::default()).unwrap();
        let run = CycleSim::new(Machine::load(&image).unwrap(), SimConfig::default())
            .run()
            .unwrap();
        run.stats.cycles as f64 / n as f64
    };
    let small = per_iter(128);
    let large = per_iter(2048);
    assert!(
        (small - large).abs() / large < 0.15,
        "per-iteration cycles drifted: {small} vs {large}"
    );
}

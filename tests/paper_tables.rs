//! Full-scale regression anchors for the paper's tables.
//!
//! These pin the structural invariants (exact instruction counts, which
//! are determined by the compiler and folding rules) and band-check the
//! timing results (cycle counts could legitimately shift slightly if the
//! pipeline model is refined; the bands keep the paper's shape
//! guaranteed).

use crisp_bench::{btb_compare, table1, table2, table4};

#[test]
fn table2_exact_counts() {
    let t = table2();
    // CRISP side — the paper's distribution plus our documented deltas
    // (loop inversion, explicit `i = 0` move, entry stub).
    assert_eq!(t.crisp.get("add"), 3072);
    assert_eq!(t.crisp.get("if-jump"), 2048);
    assert_eq!(t.crisp.get("cmp"), 2048);
    assert_eq!(t.crisp.get("move"), 1028);
    assert_eq!(t.crisp.get("and"), 1024);
    assert_eq!(t.crisp.get("jump"), 512);
    assert_eq!(t.crisp_total, 9737);
    // VAX side — matches the paper's Table 2 on every row.
    assert_eq!(t.vax.get("incl"), 2048);
    assert_eq!(t.vax.get("jbr"), 1536);
    assert_eq!(t.vax.get("movl"), 1026);
    assert_eq!(t.vax.get("cmpl"), 1025);
    assert_eq!(t.vax.get("jgeq"), 1025);
    assert_eq!(t.vax.get("addl2"), 1024);
    assert_eq!(t.vax.get("bitl"), 1024);
    assert_eq!(t.vax.get("jeql"), 1024);
    assert_eq!(t.vax.get("clrl"), 2);
    assert_eq!(t.vax_total, 9737);
}

#[test]
fn table4_full_scale_shape() {
    let rows = table4();
    let by = |c: char| rows.iter().find(|r| r.case == c).expect("case");
    let (a, b, c, d, e) = (by('A'), by('B'), by('C'), by('D'), by('E'));

    // Exact issue counts: folding removes exactly the foldable branches.
    assert_eq!(a.issued, 9737);
    assert_eq!(b.issued, 9737);
    assert_eq!(c.issued, 7177); // 9737 − 2048 if-jumps − 512 jumps
    assert_eq!(d.issued, 7177);
    assert_eq!(e.issued, 9737);
    assert_eq!(a.program_instrs, 9737);
    assert_eq!(c.program_instrs, 9737);

    // Cycle bands around the measured values (paper's in comments).
    let band = |x: u64, lo: u64, hi: u64| (lo..=hi).contains(&x);
    assert!(band(a.cycles, 12_000, 14_800), "A = {}", a.cycles); // paper 14422
    assert!(band(b.cycles, 10_200, 11_600), "B = {}", b.cycles); // paper 11359
    assert!(band(c.cycles, 8_300, 9_000), "C = {}", c.cycles); //   paper 8789
    assert!(band(d.cycles, 7_150, 7_500), "D = {}", d.cycles); //   paper 7250
    assert!(band(e.cycles, 9_300, 10_000), "E = {}", e.cycles); //  paper 9815

    // The paper's orderings.
    assert!(a.cycles > b.cycles);
    assert!(b.cycles > e.cycles);
    assert!(e.cycles > c.cycles);
    assert!(c.cycles > d.cycles);

    // Apparent CPI matches the paper to two decimals for C and D.
    assert!(
        (c.apparent_cpi - 0.90).abs() < 0.015,
        "C CPI {}",
        c.apparent_cpi
    );
    assert!(
        (d.apparent_cpi - 0.74).abs() < 0.015,
        "D CPI {}",
        d.apparent_cpi
    );
    // Case D issues one instruction per cycle in steady state.
    assert!(
        (d.issued_cpi - 1.0).abs() < 0.01,
        "D issued CPI {}",
        d.issued_cpi
    );
    // Case E (the delayed-branch analogue) also sustains one issue per
    // cycle but executes more instructions — the paper's point.
    assert!((e.issued_cpi - 1.0).abs() < 0.01);
    assert!(e.cycles > d.cycles);
}

#[test]
fn table1_full_relationships() {
    let rows = table1();
    let by = |n: &str| rows.iter().find(|r| r.program == n).expect("row");

    // Large irregular programs: 3-bit dynamic within 5 points of static.
    for name in ["troff-proxy", "cc-proxy", "drc-proxy"] {
        let r = by(name);
        assert!(
            (r.static_acc - r.dynamic[2]).abs() < 0.05,
            "{name}: static {} vs 3-bit {}",
            r.static_acc,
            r.dynamic[2]
        );
    }
    // Benchmarks: static strictly beats 1-bit dynamic by >5 points.
    for name in ["dhry", "cwhet", "puzzle"] {
        let r = by(name);
        assert!(
            r.static_acc > r.dynamic[0] + 0.05,
            "{name}: static {} vs 1-bit {}",
            r.static_acc,
            r.dynamic[0]
        );
    }
    // DRC: dynamic history ahead of static (the paper's .89 vs .95 row).
    let drc = by("drc-proxy");
    assert!(drc.dynamic[1] >= drc.static_acc, "{drc:?}");
    // Puzzle's run is short, like the paper's 741-branch measurement.
    assert!(by("puzzle").branches < 2_000);
}

#[test]
fn comparison_section_bands() {
    for r in btb_compare() {
        // BTB within ±10 points of the static bit on every workload.
        assert!((r.btb - r.static_acc).abs() < 0.10, "{r:?}");
        // The 8-entry jump trace never beats the BTB meaningfully.
        assert!(r.jump_trace <= r.btb + 0.05, "{r:?}");
    }
}

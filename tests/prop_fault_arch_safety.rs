//! Architectural safety of predictor-state faults, plus graceful
//! degradation of parity-protected front-end ways.
//!
//! The predictor contract says a prediction — right or wrong — only
//! ever costs cycles: the Next-PC guess is checked at resolve and a
//! bad one is squashed before retirement. A particle strike on
//! predictor state (BTB tags, direction counters, valid bits,
//! saturating-counter bits, jump-trace entries) therefore produces at
//! worst a *wrong prediction*, which the existing recovery machinery
//! already handles. The enforced property: for every predictor
//! variant, fold policy, pipeline depth and parity mode, every
//! single-bit predictor-state fault is `Masked` — the cycle engine's
//! commit stream stays bit-identical to the fault-free functional
//! oracle.
//!
//! The degradation properties pin the `DegradePolicy` path: with a
//! one-strike policy, a detected parity error disables the struck
//! cache slot (or BTB way), the `degraded_ways` stat goes nonzero, and
//! the run still retires the fault-free result — a flaky bit costs
//! performance, never correctness.

use crisp::asm::rand_prog::GenProgram;
use crisp::asm::{assemble, Item, Module};
use crisp::isa::{BinOp, Cond, FoldPolicy, Instr, Operand};
use crisp::sim::{
    classify_fault, nth_predictor_field, predictor_fault_space, CycleSim, DegradePolicy, EventRing,
    FaultField, FaultOutcome, FaultPlan, FaultTarget, HwPredictor, Machine, ParityMode, PipeEvent,
    PipelineGeometry, SimConfig,
};
use proptest::prelude::*;

/// The stateful predictor variants, with deliberately tiny geometries
/// so aliasing, eviction and occupancy-wrap paths get struck too.
fn predictors() -> Vec<HwPredictor> {
    vec![
        HwPredictor::Dynamic {
            bits: 2,
            entries: 64,
        },
        HwPredictor::Dynamic {
            bits: 1,
            entries: 8,
        },
        HwPredictor::Btb {
            entries: 128,
            ways: 4,
        },
        HwPredictor::Btb {
            entries: 4,
            ways: 1,
        },
        HwPredictor::JumpTrace { entries: 8 },
        HwPredictor::JumpTrace { entries: 2 },
    ]
}

const FOLD_POLICIES: [FoldPolicy; 4] = [
    FoldPolicy::None,
    FoldPolicy::Host1,
    FoldPolicy::Host13,
    FoldPolicy::All,
];

const DEPTHS: [usize; 3] = [2, 3, 8];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tentpole invariant: a predictor-state fault may change
    /// cycle counts but never committed architectural state, under
    /// either parity mode, any fold policy, any EU depth and every
    /// enumerable fault site of every stateful predictor.
    #[test]
    fn predictor_faults_never_change_architectural_state(
        seed in 0u64..5000,
        cycle in 0u64..400,
        slot in any::<u32>(),
        p_idx in 0usize..6,
        fold_idx in 0usize..4,
        depth_idx in 0usize..3,
        parity_on in any::<bool>(),
        site in any::<u64>(),
    ) {
        let predictor = predictors()[p_idx];
        let space = predictor_fault_space(predictor);
        prop_assert!(space > 0, "every sampled predictor has state");
        let field = nth_predictor_field(predictor, site % space)
            .expect("stateful predictor enumerates fields");
        let image = GenProgram::generate(seed, 8).image().unwrap();
        let cfg = SimConfig {
            fold_policy: FOLD_POLICIES[fold_idx],
            geometry: PipelineGeometry::new(DEPTHS[depth_idx]),
            predictor,
            parity: if parity_on {
                ParityMode::DetectInvalidate
            } else {
                ParityMode::Off
            },
            fault_plan: Some(FaultPlan {
                cycle,
                slot,
                field,
                target: FaultTarget::Predictor,
            }),
            max_cycles: 200_000,
            ..SimConfig::default()
        };
        let outcome = classify_fault(&image, cfg).unwrap();
        prop_assert_eq!(
            outcome, FaultOutcome::Masked,
            "predictor fault {:?} on {:?} leaked into architectural state (seed {})",
            field, predictor, seed
        );
    }

    /// Degradation composes with the invariant: a one-strike policy on
    /// top of parity protection may disable ways mid-run, and the
    /// commit stream still matches the oracle exactly.
    #[test]
    fn degraded_runs_stay_architecturally_correct(
        seed in 0u64..5000,
        cycle in 0u64..400,
        slot in 0u32..32,
        p_idx in 0usize..6,
        site in any::<u64>(),
        strike_predictor in any::<bool>(),
    ) {
        let predictor = predictors()[p_idx];
        let (field, target) = if strike_predictor {
            let space = predictor_fault_space(predictor);
            (
                nth_predictor_field(predictor, site % space).unwrap(),
                FaultTarget::Predictor,
            )
        } else {
            (
                crisp::sim::nth_field(site),
                FaultTarget::Cache,
            )
        };
        let image = GenProgram::generate(seed, 8).image().unwrap();
        let cfg = SimConfig {
            predictor,
            parity: ParityMode::DetectInvalidate,
            degrade: Some(DegradePolicy { parity_limit: 1 }),
            fault_plan: Some(FaultPlan { cycle, slot, field, target }),
            max_cycles: 200_000,
            ..SimConfig::default()
        };
        let outcome = classify_fault(&image, cfg).unwrap();
        prop_assert_eq!(
            outcome, FaultOutcome::Masked,
            "{:?} fault {:?} escaped under a one-strike degrade policy (seed {})",
            target, field, seed
        );
    }
}

/// A 50-iteration counted loop: hot decoded entries re-fetched every
/// iteration, so a corrupted one is detected on the next trip around.
fn counted_loop() -> Module {
    let mut m = Module::new();
    m.push(Item::Instr(Instr::Op2 {
        op: BinOp::Mov,
        dst: Operand::SpOff(0),
        src: Operand::Imm(0),
    }));
    m.push(Item::Label("top".into()));
    m.push(Item::Instr(Instr::Op2 {
        op: BinOp::Add,
        dst: Operand::SpOff(0),
        src: Operand::Imm(1),
    }));
    m.push(Item::Instr(Instr::Cmp {
        cond: Cond::LtS,
        a: Operand::SpOff(0),
        b: Operand::Imm(50),
    }));
    m.push(Item::IfJmpTo {
        on_true: true,
        predict_taken: true,
        label: "top".into(),
    });
    m.push(Item::Instr(Instr::Halt));
    m
}

/// A detected cache fault under a one-strike policy disables the
/// struck slot: `degraded_ways` goes nonzero, the `Degrade` event is
/// emitted (and reconciles with the counter), the partner slot takes
/// over, and the run still retires the fault-free result.
#[test]
fn one_strike_policy_disables_the_struck_cache_slot() {
    let image = assemble(&counted_loop()).unwrap();
    let base_cfg = SimConfig {
        parity: ParityMode::DetectInvalidate,
        degrade: Some(DegradePolicy { parity_limit: 1 }),
        max_cycles: 100_000,
        ..SimConfig::default()
    };
    let baseline = CycleSim::new(Machine::load(&image).unwrap(), base_cfg)
        .run()
        .unwrap();
    assert!(baseline.halted);
    assert_eq!(baseline.stats.degraded_ways, 0, "no fault, no degradation");

    let mut degraded_runs = 0u64;
    for slot in 0..32u32 {
        let cfg = SimConfig {
            fault_plan: Some(FaultPlan {
                cycle: 60,
                slot,
                field: FaultField::NextPc(7),
                target: FaultTarget::Cache,
            }),
            ..base_cfg
        };
        let sim =
            CycleSim::with_observer(Machine::load(&image).unwrap(), cfg, EventRing::new(1 << 16));
        let (run, ring) = sim.run_observed().unwrap();
        assert!(run.halted, "slot {slot}: degraded run must still halt");
        assert_eq!(run.machine.accum, baseline.machine.accum, "slot {slot}");
        assert_eq!(run.machine.mem, baseline.machine.mem, "slot {slot}");

        let degrade_events = ring
            .into_vec()
            .iter()
            .filter(|e| matches!(e, PipeEvent::Degrade { .. }))
            .count() as u64;
        assert_eq!(degrade_events, run.stats.degraded_ways, "slot {slot}");
        if run.stats.parity_invalidates > 0 {
            // One strike, one disabled slot.
            assert_eq!(run.stats.degraded_ways, 1, "slot {slot}");
            degraded_runs += 1;
        } else {
            assert_eq!(run.stats.degraded_ways, 0, "slot {slot}");
        }
    }
    assert!(
        degraded_runs >= 1,
        "the hot-loop strike must disable a slot in at least one run"
    );
}

/// A detected BTB parity scrub under a one-strike policy disables the
/// struck way and the predictor keeps working (or falls back to the
/// static bit when fully degraded) — the loop still retires the
/// fault-free result.
#[test]
fn one_strike_policy_disables_the_struck_btb_way() {
    let image = assemble(&counted_loop()).unwrap();
    // A single-set, single-way BTB: any resident-entry strike hits the
    // one way, and disabling it forces the static-bit fallback.
    let predictor = HwPredictor::Btb {
        entries: 1,
        ways: 1,
    };
    let base_cfg = SimConfig {
        predictor,
        parity: ParityMode::DetectInvalidate,
        degrade: Some(DegradePolicy { parity_limit: 1 }),
        max_cycles: 100_000,
        ..SimConfig::default()
    };
    let baseline = CycleSim::new(Machine::load(&image).unwrap(), base_cfg)
        .run()
        .unwrap();
    assert!(baseline.halted);
    assert_eq!(baseline.stats.parity_scrubs, 0);
    assert_eq!(baseline.stats.degraded_ways, 0);

    let mut degraded_runs = 0u64;
    for cycle in [40u64, 60, 80, 100, 120] {
        let cfg = SimConfig {
            fault_plan: Some(FaultPlan {
                cycle,
                slot: 0,
                field: FaultField::BtbTag(5),
                target: FaultTarget::Predictor,
            }),
            ..base_cfg
        };
        let sim =
            CycleSim::with_observer(Machine::load(&image).unwrap(), cfg, EventRing::new(1 << 16));
        let (run, ring) = sim.run_observed().unwrap();
        assert!(run.halted, "cycle {cycle}: degraded run must still halt");
        assert_eq!(run.machine.accum, baseline.machine.accum, "cycle {cycle}");
        assert_eq!(run.machine.mem, baseline.machine.mem, "cycle {cycle}");

        let degrade_events = ring
            .into_vec()
            .iter()
            .filter(|e| matches!(e, PipeEvent::Degrade { .. }))
            .count() as u64;
        assert_eq!(degrade_events, run.stats.degraded_ways, "cycle {cycle}");
        if run.stats.parity_scrubs > 0 {
            assert_eq!(run.stats.degraded_ways, 1, "cycle {cycle}");
            degraded_runs += 1;
        }
    }
    assert!(
        degraded_runs >= 1,
        "the hot-loop BTB strike must scrub and disable the way at least once"
    );
}

int out_acc; int out_steps; int out_wraps;
int ops[4096];
int seed;

void main() {
    int i, op, acc, wraps;

    seed = 2026;
    for (i = 0; i < 4096; i++) {
        seed = seed * 1103515245 + 12345;
        ops[i] = (seed >> 16) & 7;
    }

    acc = 0; wraps = 0;
    for (i = 0; i < 4096; i++) {
        op = ops[i];
        switch (op) {
            case 0: acc += 1; break;
            case 1: acc -= 1; break;
            case 2: acc += i & 63; break;
            case 3: acc ^= seed >> 12; break;
            case 4: acc = acc << 1; break;
            case 5: acc = acc >> 1; break;
            case 6: acc += 7; break;
            default:
                if (acc > 1000000) { acc = 0; wraps++; }
                break;
        }
    }
    out_acc = acc;
    out_steps = i;
    out_wraps = wraps;
}

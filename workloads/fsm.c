int out_accepts; int out_rejects; int out_hash;
int trans[64];
int inputs[4096];
int seed;

void main() {
    int i, s, c, accepts, rejects, hash;

    for (s = 0; s < 8; s++) {
        for (c = 0; c < 8; c++) {
            if (c == s) trans[s * 8 + c] = (s + 1) & 7;
            else if (c == ((s + 3) & 7)) trans[s * 8 + c] = 0;
            else if (c & 1) trans[s * 8 + c] = s;
            else trans[s * 8 + c] = (s + c) & 7;
        }
    }
    seed = 4241;
    for (i = 0; i < 4096; i++) {
        seed = seed * 1103515245 + 12345;
        inputs[i] = (seed >> 16) & 7;
    }

    s = 0; accepts = 0; rejects = 0; hash = 0;
    for (i = 0; i < 4096; i++) {
        c = inputs[i];
        s = trans[s * 8 + c];
        if (s == 7) { accepts++; s = 0; }
        else if (s == 0) { if (c != 0) rejects++; }
        hash = hash * 5 + s;
    }
    out_accepts = accepts;
    out_rejects = rejects;
    out_hash = hash;
}

int out_check; int out_swaps; int out_sorted;
int a[192];
int seed;

void main() {
    int i, j, key, swaps, check;

    seed = 7177;
    for (i = 0; i < 192; i++) {
        seed = seed * 1103515245 + 12345;
        a[i] = (seed >> 16) & 0x3ff;
    }

    swaps = 0;
    for (i = 1; i < 192; i++) {
        key = a[i];
        j = i;
        while (j > 0 && a[j - 1] > key) {
            a[j] = a[j - 1];
            j = j - 1;
            swaps++;
        }
        a[j] = key;
    }

    check = 0;
    out_sorted = 1;
    for (i = 0; i < 192; i++) {
        check = check * 31 + a[i];
        if (i > 0) { if (a[i - 1] > a[i]) out_sorted = 0; }
    }
    out_check = check;
    out_swaps = swaps;
}

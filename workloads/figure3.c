void main() {
    int i, j, odd, even, sum;
    j = odd = even = 0;
    for (i = 0; i < 1024; i++) {
        sum += i;
        if (i & 1) odd++;
        else even++;
        j = sum;
    }
}

//! A minimal, dependency-free stand-in for the [`criterion`] crate.
//!
//! The build environment for this repository has no network access, so
//! the real criterion cannot be fetched from crates.io. This crate
//! implements the API subset the workspace's benches use —
//! `Criterion`, `benchmark_group`, `bench_function`, `Bencher::iter`/
//! `iter_batched`, `Throughput`, `BatchSize`, `black_box` and the
//! `criterion_group!`/`criterion_main!` macros — as a plain wall-clock
//! harness: each benchmark is calibrated to a target sample duration,
//! timed over a fixed number of samples, and reported as median
//! ns/iter (plus element throughput when configured).
//!
//! Differences from the real crate: no statistical outlier analysis,
//! no HTML reports, no saved baselines. Under `cargo test` (cargo
//! passes `--test` to harness-less bench binaries) every benchmark
//! body runs exactly once as a smoke test, keeping the tier-1 suite
//! fast.
//!
//! [`criterion`]: https://docs.rs/criterion

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, re-exported at crate root like
/// the real criterion.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark throughput annotation.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Number of logical elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// How much setup output `iter_batched` prepares per timing batch.
/// This harness times each routine call individually, so the variants
/// only document intent.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Top-level benchmark driver.
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            test_mode: false,
            filter: None,
            sample_size: 20,
        }
    }
}

impl Criterion {
    /// Pick up cargo's harness flags: `--test` (run each body once)
    /// and a free-form substring filter.
    pub fn configure_from_args(mut self) -> Criterion {
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--test" => self.test_mode = true,
                // Flags whose value we consume and ignore.
                "--save-baseline" | "--baseline" | "--measurement-time" | "--sample-size" => {
                    let _ = args.next();
                }
                s if s.starts_with("--") => {}
                s => self.filter = Some(s.to_string()),
            }
        }
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: None,
        }
    }

    /// Run a benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, f: F) {
        let id = id.into();
        run_benchmark(self, &id, None, self.sample_size, f);
    }
}

/// A named group sharing throughput/sample-size settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Override the number of timed samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        let throughput = self.throughput;
        run_benchmark(self.criterion, &id, throughput, samples, f);
        self
    }

    /// End the group (report flushing is immediate here, so this is a
    /// no-op kept for API compatibility).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; drives the timing loop.
pub struct Bencher {
    mode: BenchMode,
    /// Median nanoseconds per iteration, filled in by `iter*`.
    result_ns: f64,
}

enum BenchMode {
    /// Run the routine exactly once (smoke test under `cargo test`).
    TestOnce,
    /// Calibrate then collect this many timed samples.
    Measure { samples: usize },
}

impl Bencher {
    /// Time `routine` in a loop.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match self.mode {
            BenchMode::TestOnce => {
                black_box(routine());
            }
            BenchMode::Measure { samples } => {
                let iters = calibrate(|n| {
                    let start = Instant::now();
                    for _ in 0..n {
                        black_box(routine());
                    }
                    start.elapsed()
                });
                let mut per_iter = Vec::with_capacity(samples);
                for _ in 0..samples {
                    let start = Instant::now();
                    for _ in 0..iters {
                        black_box(routine());
                    }
                    per_iter.push(start.elapsed().as_nanos() as f64 / iters as f64);
                }
                self.result_ns = median(&mut per_iter);
            }
        }
    }

    /// Time `routine` on fresh input from `setup`, excluding the setup
    /// cost from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        match self.mode {
            BenchMode::TestOnce => {
                black_box(routine(setup()));
            }
            BenchMode::Measure { samples } => {
                // One routine call per sample: setup stays outside the
                // timed region, which is the point of iter_batched.
                let total = samples.max(8) * 4;
                let mut per_iter = Vec::with_capacity(total);
                for _ in 0..total {
                    let input = setup();
                    let start = Instant::now();
                    black_box(routine(input));
                    per_iter.push(start.elapsed().as_nanos() as f64);
                }
                self.result_ns = median(&mut per_iter);
            }
        }
    }
}

/// Find an iteration count whose batch takes roughly the target
/// sample duration (but at least one iteration).
fn calibrate(mut time_n: impl FnMut(u64) -> Duration) -> u64 {
    const TARGET: Duration = Duration::from_millis(5);
    let mut n = 1u64;
    loop {
        let t = time_n(n);
        if t >= TARGET || n >= 1 << 24 {
            return n;
        }
        if t < TARGET / 16 {
            n = n.saturating_mul(8);
        } else {
            // Close enough to extrapolate in one step.
            let scale = TARGET.as_nanos() as f64 / t.as_nanos().max(1) as f64;
            return (n as f64 * scale).ceil().max(1.0) as u64;
        }
    }
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    criterion: &Criterion,
    id: &str,
    throughput: Option<Throughput>,
    samples: usize,
    mut f: F,
) {
    if let Some(filter) = &criterion.filter {
        if !id.contains(filter.as_str()) {
            return;
        }
    }
    let mode = if criterion.test_mode {
        BenchMode::TestOnce
    } else {
        BenchMode::Measure { samples }
    };
    let mut bencher = Bencher {
        mode,
        result_ns: 0.0,
    };
    f(&mut bencher);
    if criterion.test_mode {
        println!("test {id} ... ok (ran once)");
        return;
    }
    let ns = bencher.result_ns;
    match throughput {
        Some(Throughput::Elements(n)) if ns > 0.0 => {
            let per_sec = n as f64 * 1e9 / ns;
            println!("{id:<40} {ns:>14.1} ns/iter  {per_sec:>14.0} elem/s");
        }
        Some(Throughput::Bytes(n)) if ns > 0.0 => {
            let per_sec = n as f64 * 1e9 / ns;
            println!("{id:<40} {ns:>14.1} ns/iter  {per_sec:>14.0} B/s");
        }
        _ => println!("{id:<40} {ns:>14.1} ns/iter"),
    }
}

/// Collect benchmark functions into a runnable group, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running one or more groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_odd_and_even() {
        let mut odd = vec![3.0, 1.0, 2.0];
        assert_eq!(median(&mut odd), 2.0);
        let mut even = vec![4.0, 1.0, 2.0, 3.0];
        assert_eq!(median(&mut even), 3.0);
    }

    #[test]
    fn calibrate_reaches_target_or_caps() {
        // A "routine" where n iterations take n*100ns nominally.
        let iters = calibrate(|n| Duration::from_nanos(n * 100));
        assert!(iters >= 1);
        let once = calibrate(|_| Duration::from_millis(10));
        assert_eq!(once, 1);
    }

    #[test]
    fn test_mode_runs_body_once() {
        let mut criterion = Criterion {
            test_mode: true,
            filter: None,
            sample_size: 20,
        };
        let mut runs = 0;
        criterion.bench_function("smoke", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1);
    }
}

//! Collection strategies, mirroring `proptest::collection`.

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An inclusive length range for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// `Vec` of values from `element`, with length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64 + 1;
        let len = self.size.lo + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_length_bounds() {
        let mut rng = TestRng::for_test("collection::vec");
        let s = vec(0u8..=9, 2..5);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..=4).contains(&v.len()), "len {} out of 2..5", v.len());
            assert!(v.iter().all(|&b| b < 10));
        }
        let fixed = vec(0u8..=9, 3usize);
        assert_eq!(fixed.generate(&mut rng).len(), 3);
    }
}

//! Sampling strategies, mirroring `proptest::sample`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Uniformly pick one element of the given list per case.
pub fn select<T: Clone + std::fmt::Debug + 'static>(items: Vec<T>) -> Select<T> {
    assert!(
        !items.is_empty(),
        "sample::select requires a non-empty list"
    );
    Select { items }
}

/// See [`select`].
#[derive(Debug, Clone)]
pub struct Select<T> {
    items: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.items[rng.below(self.items.len() as u64) as usize].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_covers_all_items() {
        let mut rng = TestRng::for_test("sample::select");
        let s = select(vec![10, 20, 30]);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(s.generate(&mut rng));
        }
        assert_eq!(seen.len(), 3);
    }
}

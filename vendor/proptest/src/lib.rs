//! A minimal, dependency-free stand-in for the [`proptest`] crate.
//!
//! The build environment for this repository has no network access, so
//! the real proptest cannot be fetched from crates.io. This crate
//! implements exactly the API subset the workspace's property tests
//! use — `proptest!`, `prop_oneof!`, `prop_assert!`/`prop_assert_eq!`,
//! `Strategy` with `prop_map`/`prop_filter`/`prop_filter_map`/`boxed`,
//! `Just`, `any`, `prop::sample::select`, `prop::collection::vec`,
//! integer-range strategies, `ProptestConfig` and `TestCaseError` —
//! on top of a deterministic splitmix64 PRNG seeded per test name.
//!
//! Differences from the real crate: no shrinking (failures report the
//! raw generated inputs) and no persistence of failing seeds. Both are
//! acceptable for CI-style regression testing; if the real proptest
//! becomes installable, deleting this crate and restoring the registry
//! dependency is a drop-in change.
//!
//! [`proptest`]: https://docs.rs/proptest

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// The glob-import surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    /// Mirrors `proptest::prelude::prop`, giving access to
    /// `prop::sample::select` and `prop::collection::vec`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Defines deterministic property tests.
///
/// Supports the canonical form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(256))]
///     #[test]
///     fn my_property(x in 0u32..10, v in prop::collection::vec(any::<u16>(), 0..4)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let inputs = format!(
                    concat!($("  ", stringify!($arg), " = {:?}\n"),+),
                    $(&$arg),+
                );
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "property `{name}` failed at case {case}/{total}: {e}\ninputs:\n{inputs}",
                        name = stringify!($name),
                        case = case,
                        total = config.cases,
                        e = e,
                        inputs = inputs,
                    );
                }
            }
        }
        $crate::__proptest_impl!{ ($config) $($rest)* }
    };
}

/// Weighted or unweighted union of strategies, mirroring
/// `proptest::prop_oneof!`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( ($weight as u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( (1u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
}

/// Fallible assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Fallible equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} != {:?}", left, right),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: {:?} != {:?}: {}",
                    left,
                    right,
                    format!($($fmt)+)
                ),
            ));
        }
    }};
}

//! The `Arbitrary` trait and `any::<T>()` entry point.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical "generate anything" strategy.
pub trait Arbitrary: Sized {
    /// The strategy returned by [`any`].
    type Strategy: Strategy<Value = Self>;

    /// The canonical strategy for this type.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T`, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Full-domain integer strategy that oversamples boundary values
/// (zero, one, minus one, MIN, MAX) at roughly a 1-in-8 rate so edge
/// cases show up even with few test cases.
#[derive(Debug, Clone, Copy)]
pub struct AnyInt<T> {
    _marker: std::marker::PhantomData<T>,
}

macro_rules! any_int {
    ($($t:ty),+) => {$(
        impl Strategy for AnyInt<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                if rng.below(8) == 0 {
                    const EDGES: [$t; 5] =
                        [0, 1, <$t>::MAX, <$t>::MIN, <$t>::MAX.wrapping_add(1).wrapping_sub(2)];
                    EDGES[rng.below(EDGES.len() as u64) as usize]
                } else {
                    rng.next_u64() as $t
                }
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyInt<$t>;
            fn arbitrary() -> AnyInt<$t> {
                AnyInt { _marker: std::marker::PhantomData }
            }
        }
    )+};
}

any_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Uniform coin flip.
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.below(2) == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_int_hits_edges_and_varies() {
        let mut rng = TestRng::for_test("arbitrary::edges");
        let s = any::<u32>();
        let mut saw_zero = false;
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..2000 {
            let v = s.generate(&mut rng);
            saw_zero |= v == 0;
            distinct.insert(v);
        }
        assert!(saw_zero, "edge oversampling should produce 0");
        assert!(distinct.len() > 100, "should produce varied values");
    }

    #[test]
    fn any_bool_produces_both() {
        let mut rng = TestRng::for_test("arbitrary::bool");
        let s = any::<bool>();
        let mut t = 0;
        for _ in 0..100 {
            if s.generate(&mut rng) {
                t += 1;
            }
        }
        assert!(t > 10 && t < 90);
    }
}

//! The `Strategy` trait and combinators.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::test_runner::TestRng;

/// How many times a filter re-samples before giving up.
const FILTER_RETRIES: u32 = 5_000;

/// A generator of values for property tests.
///
/// Unlike the real proptest there is no value *tree* (no shrinking):
/// a strategy simply produces one value per call.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Keep only values satisfying `pred`, re-sampling otherwise.
    fn prop_filter<F>(self, whence: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            source: self,
            whence: whence.into(),
            pred,
        }
    }

    /// Map values through a fallible `f`, re-sampling on `None`.
    fn prop_filter_map<O, F>(self, whence: impl Into<String>, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap {
            source: self,
            whence: whence.into(),
            f,
        }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> BoxedStrategy<T> {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    source: S,
    whence: String,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..FILTER_RETRIES {
            let v = self.source.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter `{}` rejected {FILTER_RETRIES} samples in a row",
            self.whence
        );
    }
}

/// See [`Strategy::prop_filter_map`].
#[derive(Debug, Clone)]
pub struct FilterMap<S, F> {
    source: S,
    whence: String,
    f: F,
}

impl<S, O, F> Strategy for FilterMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> Option<O>,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        for _ in 0..FILTER_RETRIES {
            if let Some(v) = (self.f)(self.source.generate(rng)) {
                return v;
            }
        }
        panic!(
            "prop_filter_map `{}` rejected {FILTER_RETRIES} samples in a row",
            self.whence
        );
    }
}

/// Weighted union of strategies (the engine behind `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Union<T> {
        Union {
            arms: self.arms.clone(),
            total: self.total,
        }
    }
}

impl<T> Union<T> {
    /// Build from `(weight, strategy)` arms. Weights must sum to > 0.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! requires a positive total weight");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut roll = rng.below(self.total);
        for (w, s) in &self.arms {
            let w = u64::from(*w);
            if roll < w {
                return s.generate(rng);
            }
            roll -= w;
        }
        unreachable!("weights sum checked at construction")
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )+};
}

int_range_strategies!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! tuple_strategies {
    ($(($($S:ident $idx:tt),+))+) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategies! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_test("strategy::tests")
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let v = (-5i32..5).generate(&mut r);
            assert!((-5..5).contains(&v));
            let w = (0u8..=255).generate(&mut r);
            let _ = w; // full domain, nothing to assert beyond type
            let u = (3usize..4).generate(&mut r);
            assert_eq!(u, 3);
        }
    }

    #[test]
    fn map_filter_union_compose() {
        let mut r = rng();
        let s = (0i32..100)
            .prop_map(|v| v * 2)
            .prop_filter("even and small", |v| *v < 100);
        for _ in 0..200 {
            let v = s.generate(&mut r);
            assert!(v % 2 == 0 && v < 100);
        }
        let u = crate::prop_oneof![1 => Just(1i32), 3 => Just(2i32)];
        let mut twos = 0;
        for _ in 0..400 {
            if u.generate(&mut r) == 2 {
                twos += 1;
            }
        }
        assert!(
            twos > 200,
            "weighting should favour the heavy arm, got {twos}"
        );
    }

    #[test]
    fn boxed_is_clonable_and_usable() {
        let mut r = rng();
        let b = (0i32..10).prop_map(|v| v + 1).boxed();
        let c = b.clone();
        for _ in 0..50 {
            assert!((1..=10).contains(&b.generate(&mut r)));
            assert!((1..=10).contains(&c.generate(&mut r)));
        }
    }

    #[test]
    #[should_panic(expected = "rejected")]
    fn impossible_filter_panics() {
        let mut r = rng();
        let s = (0i32..10).prop_filter("never", |_| false);
        let _ = s.generate(&mut r);
    }
}

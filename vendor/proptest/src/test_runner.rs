//! Test-runner plumbing: configuration, errors and the deterministic
//! random number generator behind every strategy.

use std::fmt;

/// Per-test configuration (the subset of proptest's that matters here).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// A failed property case.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Construct a failure with a message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }

    /// Construct a rejection (treated identically to failure here).
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic splitmix64 generator, seeded from the test's full
/// module path so every property gets a stable but distinct stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test name (FNV-1a over the bytes).
    pub fn for_test(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h | 1 }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (n must be nonzero). Modulo bias is
    /// irrelevant at property-test scale.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::for_test("x::y");
        let mut b = TestRng::for_test("x::y");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_test("x::z");
        let _ = c.next_u64(); // different seed, no assertion on value
    }

    #[test]
    fn below_bounds() {
        let mut r = TestRng::for_test("bounds");
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }
}

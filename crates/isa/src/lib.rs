//! A CRISP-like instruction-set architecture, reconstructed from
//! Ditzel & McLellan, *"Branch Folding in the CRISP Microprocessor:
//! Reducing Branch Delay to Zero"* (ISCA 1987).
//!
//! The paper fixes the properties this crate preserves exactly:
//!
//! * instructions are composed of 16-bit **parcels** and are exactly
//!   **1, 3 or 5** parcels long;
//! * a memory-to-memory operand model (stack-offset, absolute, immediate
//!   and stack-indirect addressing) plus an accumulator, with **no side
//!   effects** before result write so that any in-flight instruction can be
//!   cancelled;
//! * a single condition flag, modified **only** by the `cmp` instruction;
//! * conditional branches `ifjmp-true` / `ifjmp-false` carrying a single
//!   **static prediction bit**;
//! * one-parcel branches with a 10-bit PC-relative offset
//!   (−1024..+1022 bytes) and three-parcel branches with a 32-bit
//!   specifier (absolute, indirect-absolute, or indirect through SP);
//! * **branch folding**: a one- or three-parcel non-branching instruction
//!   followed by a one-parcel branch decodes into a *single* entry of the
//!   decoded instruction cache, carrying a `next_pc` and (for conditional
//!   branches) an `alt_pc` field.
//!
//! The crate provides three layers:
//!
//! 1. [`Instr`] — the assembler-level instruction, built from [`Operand`]s,
//!    [`BinOp`]s, [`Cond`]s and [`BranchTarget`]s;
//! 2. [`encoding`] — the bit-exact binary encoding to and from parcels;
//! 3. [`Decoded`] — the canonical wide form held in the decoded
//!    instruction cache, produced by [`decode_and_fold`], the software
//!    model of the PDU's folding datapath.
//!
//! # Example
//!
//! ```
//! use crisp_isa::{Instr, Operand, BinOp, encoding};
//!
//! // add the stack word at SP+4 into the one at SP+0 (a 1-parcel form)
//! let instr = Instr::Op2 {
//!     op: BinOp::Add,
//!     dst: Operand::SpOff(0),
//!     src: Operand::SpOff(4),
//! };
//! let parcels = encoding::encode(&instr)?;
//! assert_eq!(parcels.len(), 1);
//! let (back, len) = encoding::decode(&parcels, 0)?;
//! assert_eq!(back, instr);
//! assert_eq!(len, 1);
//! # Ok::<(), crisp_isa::IsaError>(())
//! ```

#![warn(missing_docs)]

pub mod decoded;
pub mod encoding;
mod error;
mod instr;
mod op;
mod operand;
mod psw;

pub use decoded::{
    decode_and_fold, fold_failure, Decoded, ExecOp, FoldClass, FoldFailure, FoldPolicy, NextPc,
};
pub use error::IsaError;
pub use instr::{BranchTarget, Instr};
pub use op::{BinOp, Cond};
pub use operand::Operand;
pub use psw::Psw;

/// Number of bytes in one instruction parcel.
pub const PARCEL_BYTES: u32 = 2;

/// Maximum instruction length in parcels.
pub const MAX_PARCELS: usize = 5;

/// Reach of the 10-bit PC-relative offset of a one-parcel branch,
/// in bytes: the paper gives −1024..+1022.
pub const SHORT_BRANCH_MIN: i32 = -1024;
/// Upper bound (inclusive) of the short-branch reach in bytes.
pub const SHORT_BRANCH_MAX: i32 = 1022;

use std::fmt;

use crate::{encoding, BinOp, Cond, IsaError, Operand};

/// Where a branch transfers control.
///
/// One-parcel branches use [`BranchTarget::PcRel`]; three-parcel branches
/// carry a 32-bit specifier in one of the three forms the paper lists:
/// "an absolute address, ... a branch indirect through an absolute
/// address, or a branch indirect through the address specified by a 32-bit
/// offset from the Stack Pointer".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchTarget {
    /// PC-relative byte offset from the branch instruction's own address.
    /// Only valid in the one-parcel form and therefore limited to
    /// −1024..+1022 bytes, even values.
    PcRel(i32),
    /// Absolute byte address.
    Abs(u32),
    /// Indirect: the target is the word stored at the absolute address.
    IndAbs(u32),
    /// Indirect: the target is the word stored at `SP + offset`.
    IndSp(i32),
}

impl BranchTarget {
    /// Whether this target form fits the one-parcel branch encoding.
    pub fn is_short(self) -> bool {
        matches!(self, BranchTarget::PcRel(off)
            if (crate::SHORT_BRANCH_MIN..=crate::SHORT_BRANCH_MAX).contains(&off)
                && off % 2 == 0)
    }
}

impl fmt::Display for BranchTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BranchTarget::PcRel(off) => write!(f, ".{off:+}"),
            BranchTarget::Abs(a) => write!(f, "{a:#x}"),
            BranchTarget::IndAbs(a) => write!(f, "*{a:#x}"),
            BranchTarget::IndSp(off) => write!(f, "*{off}(sp)"),
        }
    }
}

/// An assembler-level CRISP instruction.
///
/// This is the form the assembler and compiler manipulate; the binary
/// parcel representation is produced by [`crate::encoding::encode`] and
/// the execution-unit form by [`crate::decode_and_fold`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instr {
    /// No operation (one parcel). Emitted by the compiler when branch
    /// spreading cannot find useful work to hoist.
    Nop,
    /// Stop the simulator (one parcel; stands in for CRISP's kernel-call
    /// mechanism, which the paper does not describe).
    Halt,
    /// Two-address ALU operation: `dst = dst op src`
    /// (or `dst = src` when `op` is [`BinOp::Mov`]).
    Op2 {
        /// The operation.
        op: BinOp,
        /// Destination (must be writable).
        dst: Operand,
        /// Source.
        src: Operand,
    },
    /// Three-address accumulator operation: `Accum = a op b`.
    /// This is the paper's `and3 i,1` family.
    Op3 {
        /// The operation ([`BinOp::Mov`] is not valid here).
        op: BinOp,
        /// Left source.
        a: Operand,
        /// Right source.
        b: Operand,
    },
    /// Compare: sets the PSW flag to `a cond b`. The only instruction
    /// that writes the flag.
    Cmp {
        /// The comparison condition.
        cond: Cond,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// Unconditional branch.
    Jmp {
        /// Target.
        target: BranchTarget,
    },
    /// Conditional branch.
    IfJmp {
        /// Branch when the flag equals this value (`true` = `ifjmpy`
        /// branch-if-flag-true, `false` = `ifjmpn`).
        on_true: bool,
        /// The static branch-prediction bit: `true` predicts taken.
        /// Set by the compiler; the paper's central hint bit.
        predict_taken: bool,
        /// Target.
        target: BranchTarget,
    },
    /// Call: pushes the return address (`SP -= 4; mem[SP] = pc + len`)
    /// and transfers to the target.
    Call {
        /// Target.
        target: BranchTarget,
    },
    /// Return: pops the return address (`pc = mem[SP]; SP += 4`).
    Ret,
    /// Allocate a stack frame: `SP -= bytes`. The paper's `enter`.
    Enter {
        /// Frame size in bytes (word-aligned).
        bytes: u32,
    },
    /// Release a stack frame: `SP += bytes`.
    Leave {
        /// Frame size in bytes (word-aligned).
        bytes: u32,
    },
}

impl Instr {
    /// The encoded length in parcels: always 1, 3 or 5.
    ///
    /// # Errors
    ///
    /// Returns an error when the instruction cannot be encoded at all
    /// (see [`crate::encoding::encode`]).
    pub fn parcels(&self) -> Result<usize, IsaError> {
        encoding::encoded_len(self)
    }

    /// The encoded length in bytes.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Instr::parcels`].
    pub fn byte_len(&self) -> Result<u32, IsaError> {
        Ok(self.parcels()? as u32 * crate::PARCEL_BYTES)
    }

    /// Whether this is any control-transfer instruction.
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Instr::Jmp { .. } | Instr::IfJmp { .. } | Instr::Call { .. } | Instr::Ret
        )
    }

    /// Whether this is a branch that the PDU may fold into a preceding
    /// instruction: only one-parcel `jmp` / `ifjmp` qualify (calls and
    /// returns are never folded — the paper's example of an unfolded
    /// one-parcel branch is precisely "a branch after a call").
    pub fn is_foldable_branch(&self) -> bool {
        match self {
            Instr::Jmp { target } => target.is_short(),
            Instr::IfJmp { target, .. } => target.is_short(),
            _ => false,
        }
    }

    /// Whether this instruction may *host* a folded branch: a
    /// non-branching instruction of one or three parcels (the CRISP
    /// folding policy; five-parcel hosts were judged not worth the
    /// hardware).
    pub fn can_host_fold(&self) -> bool {
        if self.is_control() || matches!(self, Instr::Halt) {
            return false;
        }
        matches!(self.parcels(), Ok(1) | Ok(3))
    }

    /// Whether this instruction writes the condition flag.
    pub fn modifies_cc(&self) -> bool {
        matches!(self, Instr::Cmp { .. })
    }

    /// Whether this instruction writes the stack pointer.
    pub fn modifies_sp(&self) -> bool {
        matches!(
            self,
            Instr::Enter { .. } | Instr::Leave { .. } | Instr::Call { .. } | Instr::Ret
        )
    }

    /// The memory location(s) this instruction writes, if statically
    /// known (used by the branch-spreading pass for dependence checks).
    pub fn written_operand(&self) -> Option<Operand> {
        match self {
            Instr::Op2 { dst, .. } => Some(*dst),
            Instr::Op3 { .. } => Some(Operand::Accum),
            _ => None,
        }
    }

    /// The source operands this instruction reads.
    pub fn read_operands(&self) -> Vec<Operand> {
        match self {
            Instr::Op2 {
                op: BinOp::Mov,
                src,
                ..
            } => vec![*src],
            Instr::Op2 { dst, src, .. } => vec![*dst, *src],
            Instr::Op3 { a, b, .. } | Instr::Cmp { a, b, .. } => vec![*a, *b],
            _ => Vec::new(),
        }
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Nop => write!(f, "nop"),
            Instr::Halt => write!(f, "halt"),
            Instr::Op2 { op, dst, src } => write!(f, "{op} {dst},{src}"),
            Instr::Op3 { op, a, b } => write!(f, "{op}3 {a},{b}"),
            Instr::Cmp { cond, a, b } => write!(f, "cmp.{cond} {a},{b}"),
            Instr::Jmp { target } => write!(f, "jmp {target}"),
            Instr::IfJmp {
                on_true,
                predict_taken,
                target,
            } => {
                let tn = if *on_true { "y" } else { "n" };
                let p = if *predict_taken { "t" } else { "nt" };
                write!(f, "ifjmp{tn}.{p} {target}")
            }
            Instr::Call { target } => write!(f, "call {target}"),
            Instr::Ret => write!(f, "ret"),
            Instr::Enter { bytes } => write!(f, "enter {bytes}"),
            Instr::Leave { bytes } => write!(f, "leave {bytes}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_target_bounds() {
        assert!(BranchTarget::PcRel(0).is_short());
        assert!(BranchTarget::PcRel(-1024).is_short());
        assert!(BranchTarget::PcRel(1022).is_short());
        assert!(!BranchTarget::PcRel(1024).is_short());
        assert!(!BranchTarget::PcRel(-1026).is_short());
        assert!(!BranchTarget::PcRel(3).is_short()); // odd
        assert!(!BranchTarget::Abs(0).is_short());
    }

    #[test]
    fn foldability() {
        let short_jmp = Instr::Jmp {
            target: BranchTarget::PcRel(-10),
        };
        let long_jmp = Instr::Jmp {
            target: BranchTarget::Abs(0x100),
        };
        let call = Instr::Call {
            target: BranchTarget::PcRel(4),
        };
        assert!(short_jmp.is_foldable_branch());
        assert!(!long_jmp.is_foldable_branch());
        assert!(!call.is_foldable_branch());
        assert!(!Instr::Ret.is_foldable_branch());
    }

    #[test]
    fn host_eligibility() {
        // 1-parcel ALU op: can host.
        let add = Instr::Op2 {
            op: BinOp::Add,
            dst: Operand::SpOff(0),
            src: Operand::SpOff(4),
        };
        assert!(add.can_host_fold());
        // 3-parcel cmp: can host.
        let cmp = Instr::Cmp {
            cond: Cond::LtS,
            a: Operand::SpOff(0),
            b: Operand::Imm(1024),
        };
        assert_eq!(cmp.parcels().unwrap(), 3);
        assert!(cmp.can_host_fold());
        // 5-parcel op: cannot host (CRISP policy).
        let wide = Instr::Op2 {
            op: BinOp::Add,
            dst: Operand::Abs(0x8000),
            src: Operand::Imm(100_000),
        };
        assert_eq!(wide.parcels().unwrap(), 5);
        assert!(!wide.can_host_fold());
        // Branches cannot host.
        assert!(!Instr::Jmp {
            target: BranchTarget::PcRel(2)
        }
        .can_host_fold());
        assert!(!Instr::Ret.can_host_fold());
        assert!(!Instr::Halt.can_host_fold());
        // Nop can host (used after spreading).
        assert!(Instr::Nop.can_host_fold());
    }

    #[test]
    fn cc_and_sp_classification() {
        let cmp = Instr::Cmp {
            cond: Cond::Eq,
            a: Operand::Accum,
            b: Operand::Imm(0),
        };
        assert!(cmp.modifies_cc());
        assert!(!cmp.modifies_sp());
        assert!(Instr::Enter { bytes: 16 }.modifies_sp());
        assert!(Instr::Ret.modifies_sp());
        assert!(!Instr::Nop.modifies_cc());
    }

    #[test]
    fn display_matches_paper_style() {
        let i = Instr::Cmp {
            cond: Cond::LtS,
            a: Operand::SpOff(0),
            b: Operand::Imm(1024),
        };
        assert_eq!(i.to_string(), "cmp.s< 0(sp),$1024");
        let j = Instr::IfJmp {
            on_true: true,
            predict_taken: true,
            target: BranchTarget::PcRel(-12),
        };
        assert_eq!(j.to_string(), "ifjmpy.t .-12");
    }

    #[test]
    fn mov_reads_only_source() {
        let mov = Instr::Op2 {
            op: BinOp::Mov,
            dst: Operand::SpOff(0),
            src: Operand::SpOff(4),
        };
        assert_eq!(mov.read_operands(), vec![Operand::SpOff(4)]);
        let add = Instr::Op2 {
            op: BinOp::Add,
            dst: Operand::SpOff(0),
            src: Operand::SpOff(4),
        };
        assert_eq!(
            add.read_operands(),
            vec![Operand::SpOff(0), Operand::SpOff(4)]
        );
    }
}

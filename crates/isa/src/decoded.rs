//! The canonical decoded-instruction form and the branch-folding rules.
//!
//! In CRISP, the Prefetch and Decode Unit expands variable-length encoded
//! instructions into fixed 192-bit entries of the Decoded Instruction
//! Cache. Each entry carries a **Next-PC** field — "providing a next
//! address field for every instruction in the cache has the same effect
//! as turning every instruction into a branch instruction" — and, for
//! conditional branches, an **Alternate Next-PC** holding the path not
//! predicted. During decode the PDU recognises a non-branching
//! instruction followed by a one-parcel branch and *folds* the two into a
//! single cache entry, so the branch "disappears entirely from the
//! Execution Unit pipeline".
//!
//! [`decode_and_fold`] is the software model of that datapath
//! (the paper's Figure 2): it consumes one or two encoded instructions
//! from a parcel stream and produces one [`Decoded`] entry.

use std::fmt;

use crate::{encoding, BinOp, BranchTarget, Cond, Instr, IsaError, Operand, PARCEL_BYTES};

/// What the Execution Unit does when the entry reaches the result stage.
///
/// Control transfer is *not* part of `ExecOp`: it is expressed by the
/// [`Decoded::next_pc`] / [`Decoded::alt_pc`] fields, exactly as in the
/// hardware (the Next-PC field drives instruction sequencing for every
/// entry alike).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecOp {
    /// No architectural effect.
    Nop,
    /// Stop execution.
    Halt,
    /// `dst = dst op src` (or `dst = src` for [`BinOp::Mov`]).
    Op2 {
        /// Operation.
        op: BinOp,
        /// Destination location.
        dst: Operand,
        /// Source value.
        src: Operand,
    },
    /// `Accum = a op b`.
    Op3 {
        /// Operation.
        op: BinOp,
        /// Left source.
        a: Operand,
        /// Right source.
        b: Operand,
    },
    /// Set the PSW flag to `a cond b`.
    Cmp {
        /// Condition.
        cond: Cond,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// `SP -= bytes`.
    Enter {
        /// Frame size in bytes.
        bytes: u32,
    },
    /// `SP += bytes`.
    Leave {
        /// Frame size in bytes.
        bytes: u32,
    },
    /// Push a return address: `SP -= 4; mem[SP] = ret`.
    CallPush {
        /// The return address (address of the instruction after the call).
        ret: u32,
    },
    /// Pop the return address: `SP += 4`. The popped word supplies the
    /// next PC via [`NextPc::FromRet`].
    RetPop,
}

/// How the next instruction address is obtained.
///
/// For most entries the address is known at decode time and stored
/// directly in the cache ([`NextPc::Known`]); indirect branches and
/// returns must read it at execute time — the paper: "For the case of
/// indirect jumps, the IR.Next-PC may be loaded from the Stack Cache, or
/// from off-chip via the data_in bus."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NextPc {
    /// Statically known address.
    Known(u32),
    /// The word at the absolute address.
    IndAbs(u32),
    /// The word at `SP + offset` (SP sampled at execute).
    IndSp(i32),
    /// The word at `SP` — the return address about to be popped.
    FromRet,
}

impl NextPc {
    /// The statically known address, if any.
    pub fn known(self) -> Option<u32> {
        match self {
            NextPc::Known(a) => Some(a),
            _ => None,
        }
    }
}

/// The control-flow class of a decoded entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FoldClass {
    /// Purely sequential: `next_pc` is the fall-through address.
    Sequential,
    /// Unconditional transfer (a `jmp`, `call` or `ret`, folded or not):
    /// `next_pc` is the target, there is no alternate.
    Uncond,
    /// Conditional transfer: `next_pc` is the predicted path and
    /// [`Decoded::alt_pc`] the other one.
    Cond {
        /// Branch taken when the flag equals this value.
        on_true: bool,
        /// The static prediction bit from the branch instruction.
        predict_taken: bool,
    },
}

impl FoldClass {
    /// Whether this entry ends a basic block.
    pub fn is_transfer(self) -> bool {
        !matches!(self, FoldClass::Sequential)
    }
}

/// Which instruction pairs the PDU folds.
///
/// CRISP's shipping policy is [`FoldPolicy::Host13`]: "CRISP's policy is
/// to only fold one and three parcel non-branching instructions with one
/// parcel branches. Doing the remaining cases significantly increases the
/// amount of hardware required, with only a marginal increase in
/// performance." The other variants exist for the ablation study that
/// quantifies that sentence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FoldPolicy {
    /// Never fold (branches always occupy their own pipeline slot).
    None,
    /// Fold only one-parcel hosts with one-parcel branches.
    Host1,
    /// Fold one- and three-parcel hosts with one-parcel branches —
    /// the CRISP policy.
    #[default]
    Host13,
    /// Fold hosts of any length with branches of any length
    /// (the hardware-expensive case CRISP rejected).
    All,
}

impl FoldPolicy {
    /// Whether `host` may absorb a following branch under this policy.
    pub fn host_ok(self, host: &Instr) -> bool {
        if host.is_control() || matches!(host, Instr::Halt) {
            return false;
        }
        let len = match host.parcels() {
            Ok(l) => l,
            Err(_) => return false,
        };
        match self {
            FoldPolicy::None => false,
            FoldPolicy::Host1 => len == 1,
            FoldPolicy::Host13 => len == 1 || len == 3,
            FoldPolicy::All => true,
        }
    }

    /// Whether `branch` may be absorbed under this policy.
    pub fn branch_ok(self, branch: &Instr) -> bool {
        match self {
            FoldPolicy::None => false,
            FoldPolicy::All => matches!(branch, Instr::Jmp { .. } | Instr::IfJmp { .. }),
            _ => branch.is_foldable_branch(),
        }
    }
}

/// Why a branch adjacent to an instruction was not folded into it.
///
/// Produced by [`fold_failure`] for the observability layer: the
/// simulator's branch-site profiler reports, per site, whether the
/// branch folded and — when it did not — which folding rule blocked it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FoldFailure {
    /// Folding is disabled ([`FoldPolicy::None`]).
    PolicyDisabled,
    /// The preceding instruction is itself a control transfer (or a
    /// `halt`), so it cannot host a branch — the paper's "a branch
    /// after a call" case.
    HostIsControl,
    /// The host's parcel count is outside what the policy folds
    /// (e.g. a five-parcel instruction under [`FoldPolicy::Host13`]).
    HostTooLong,
    /// The branch is longer than one parcel, which only
    /// [`FoldPolicy::All`] accepts.
    BranchTooLong,
}

impl FoldFailure {
    /// All variants, in serialization order.
    pub const ALL: [FoldFailure; 4] = [
        FoldFailure::PolicyDisabled,
        FoldFailure::HostIsControl,
        FoldFailure::HostTooLong,
        FoldFailure::BranchTooLong,
    ];

    /// Stable kebab-case name (used in traces and tables).
    pub fn name(self) -> &'static str {
        match self {
            FoldFailure::PolicyDisabled => "policy-disabled",
            FoldFailure::HostIsControl => "host-is-control",
            FoldFailure::HostTooLong => "host-too-long",
            FoldFailure::BranchTooLong => "branch-too-long",
        }
    }
}

impl fmt::Display for FoldFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for FoldFailure {
    type Err = ();
    fn from_str(s: &str) -> Result<FoldFailure, ()> {
        FoldFailure::ALL
            .into_iter()
            .find(|v| v.name() == s)
            .ok_or(())
    }
}

/// Classify why the instruction at parcel index `at` did **not** absorb
/// the branch that follows it.
///
/// Returns `Some(reason)` only when a foldable-class branch (`jmp` or
/// `ifjmp`) is visibly next in the stream and the entry nevertheless
/// does not fold under `policy`; `None` when the entry folds, when no
/// branch follows, or when the stream is too short to tell.
pub fn fold_failure(parcels: &[u16], at: usize, policy: FoldPolicy) -> Option<FoldFailure> {
    let (host, len) = encoding::decode(parcels, at).ok()?;
    let (branch, blen) = encoding::decode(parcels, at + len).ok()?;
    if !matches!(branch, Instr::Jmp { .. } | Instr::IfJmp { .. }) {
        return None;
    }
    if policy.host_ok(&host) && policy.branch_ok(&branch) {
        return None; // it folds
    }
    if policy == FoldPolicy::None {
        Some(FoldFailure::PolicyDisabled)
    } else if host.is_control() || matches!(host, Instr::Halt) {
        Some(FoldFailure::HostIsControl)
    } else if !policy.host_ok(&host) {
        Some(FoldFailure::HostTooLong)
    } else {
        debug_assert!(blen > 1 || !policy.branch_ok(&branch));
        Some(FoldFailure::BranchTooLong)
    }
}

/// One entry of the Decoded Instruction Cache: the canonical wide form
/// every instruction takes after decode (the paper's 192-bit entry with
/// control field, operands, Next-PC and Alternate Next-PC).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decoded {
    /// Address of the (host) instruction — the cache tag and the value
    /// carried down the pipeline for exception reporting.
    pub pc: u32,
    /// Total bytes of encoded instruction consumed, including a folded
    /// branch when present.
    pub len_bytes: u32,
    /// The operation the EU performs.
    pub exec: ExecOp,
    /// Whether this entry writes the condition flag. Stored explicitly,
    /// mirroring the hardware: "one of the decoded instruction bits is
    /// used exclusively to specify whether the instruction can modify the
    /// condition code flag".
    pub modifies_cc: bool,
    /// Whether this entry writes the stack pointer.
    pub modifies_sp: bool,
    /// Control-flow class.
    pub fold: FoldClass,
    /// Whether a separate branch instruction was folded into this entry
    /// (i.e. the EU executes one fewer instruction than the program
    /// lists).
    pub folded: bool,
    /// For any transfer entry, the address of the branch instruction
    /// itself (equal to `pc` for an unfolded branch, `pc` plus the host
    /// length for a folded one). This is the identity used by branch
    /// predictors and traces.
    pub branch_pc: Option<u32>,
    /// The Next-PC field: the (predicted) next instruction address.
    pub next_pc: NextPc,
    /// The Alternate Next-PC field: the path not predicted, present only
    /// for conditional entries.
    pub alt_pc: Option<NextPc>,
}

impl Decoded {
    /// The fall-through address (`pc + len_bytes`).
    pub fn seq_pc(&self) -> u32 {
        self.pc.wrapping_add(self.len_bytes)
    }

    /// For a conditional entry, the statically-known taken-path and
    /// fall-through addresses `(taken, seq)`, when both are known.
    pub fn cond_paths(&self) -> Option<(u32, u32)> {
        match self.fold {
            FoldClass::Cond { predict_taken, .. } => {
                let n = self.next_pc.known()?;
                let a = self.alt_pc?.known()?;
                Some(if predict_taken { (n, a) } else { (a, n) })
            }
            _ => None,
        }
    }

    /// Bytes of the host instruction alone, excluding a folded branch:
    /// for a folded entry the branch starts at `branch_pc`, so the host
    /// spans `branch_pc - pc`; otherwise the whole entry is the host.
    pub fn host_len_bytes(&self) -> u32 {
        match (self.folded, self.branch_pc) {
            (true, Some(bpc)) => bpc.wrapping_sub(self.pc),
            _ => self.len_bytes,
        }
    }

    /// Parcels (16-bit units) of the host instruction alone. Decode
    /// paths that already hold a cached entry use this to reconstruct
    /// the lookahead requirement without re-decoding the raw parcels.
    pub fn host_parcels(&self) -> usize {
        (self.host_len_bytes() / 2) as usize
    }
}

impl fmt::Display for Decoded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#06x}: {:?}", self.pc, self.exec)?;
        if self.folded {
            write!(f, " [folded]")?;
        }
        write!(f, " next={:?}", self.next_pc)?;
        if let Some(alt) = self.alt_pc {
            write!(f, " alt={alt:?}")?;
        }
        Ok(())
    }
}

fn exec_of(instr: &Instr, pc: u32, len_bytes: u32) -> ExecOp {
    match *instr {
        Instr::Nop | Instr::Jmp { .. } | Instr::IfJmp { .. } => ExecOp::Nop,
        Instr::Halt => ExecOp::Halt,
        Instr::Op2 { op, dst, src } => ExecOp::Op2 { op, dst, src },
        Instr::Op3 { op, a, b } => ExecOp::Op3 { op, a, b },
        Instr::Cmp { cond, a, b } => ExecOp::Cmp { cond, a, b },
        Instr::Enter { bytes } => ExecOp::Enter { bytes },
        Instr::Leave { bytes } => ExecOp::Leave { bytes },
        Instr::Call { .. } => ExecOp::CallPush {
            ret: pc.wrapping_add(len_bytes),
        },
        Instr::Ret => ExecOp::RetPop,
    }
}

/// Resolve a branch target into a `NextPc`, given the address of the
/// branch instruction itself.
///
/// For folded branches `branch_pc` differs from the host instruction's
/// address by the host length — this is the paper's 2-bit *branch adjust*:
/// "the PC relative offset is relative to the address of the branch, not
/// the instruction it is being folded with. The value of the branch
/// adjust is simply the size of the instruction starting in the QA
/// parcel."
fn target_next(target: BranchTarget, branch_pc: u32) -> NextPc {
    match target {
        BranchTarget::PcRel(off) => NextPc::Known(branch_pc.wrapping_add(off as u32)),
        BranchTarget::Abs(a) => NextPc::Known(a),
        BranchTarget::IndAbs(a) => NextPc::IndAbs(a),
        BranchTarget::IndSp(off) => NextPc::IndSp(off),
    }
}

/// Model of the PDU decode-and-fold datapath: consume one instruction
/// (plus, when the policy allows, a following one-parcel branch) from the
/// parcel stream and build the decoded-cache entry.
///
/// `at` is the parcel index of the instruction and `pc` its byte address
/// (`pc = at * 2` when the stream starts at address zero; the caller maps
/// between the two).
///
/// # Errors
///
/// Propagates [`crate::encoding::decode`] errors for malformed or
/// truncated parcel streams. A branch candidate that fails to decode
/// (e.g. the stream ends right after the host) simply suppresses folding
/// rather than erroring, because the bytes after the host may be data.
pub fn decode_and_fold(
    parcels: &[u16],
    at: usize,
    pc: u32,
    policy: FoldPolicy,
) -> Result<Decoded, IsaError> {
    let (instr, len) = encoding::decode(parcels, at)?;
    let len_bytes = len as u32 * PARCEL_BYTES;

    // Case 1: the instruction is itself a control transfer — it occupies
    // its own entry (an unfolded branch still gets Next-PC fields; it
    // merely wastes an EU slot on an ExecOp::Nop).
    match instr {
        Instr::Jmp { target } => {
            return Ok(Decoded {
                pc,
                len_bytes,
                exec: ExecOp::Nop,
                modifies_cc: false,
                modifies_sp: false,
                fold: FoldClass::Uncond,
                folded: false,
                branch_pc: Some(pc),
                next_pc: target_next(target, pc),
                alt_pc: None,
            });
        }
        Instr::IfJmp {
            on_true,
            predict_taken,
            target,
        } => {
            let taken = target_next(target, pc);
            let seq = NextPc::Known(pc.wrapping_add(len_bytes));
            let (next_pc, alt_pc) = if predict_taken {
                (taken, seq)
            } else {
                (seq, taken)
            };
            return Ok(Decoded {
                pc,
                len_bytes,
                exec: ExecOp::Nop,
                modifies_cc: false,
                modifies_sp: false,
                fold: FoldClass::Cond {
                    on_true,
                    predict_taken,
                },
                folded: false,
                branch_pc: Some(pc),
                next_pc,
                alt_pc: Some(alt_pc),
            });
        }
        Instr::Call { target } => {
            return Ok(Decoded {
                pc,
                len_bytes,
                exec: exec_of(&instr, pc, len_bytes),
                modifies_cc: false,
                modifies_sp: true,
                fold: FoldClass::Uncond,
                folded: false,
                branch_pc: Some(pc),
                next_pc: target_next(target, pc),
                alt_pc: None,
            });
        }
        Instr::Ret => {
            return Ok(Decoded {
                pc,
                len_bytes,
                exec: ExecOp::RetPop,
                modifies_cc: false,
                modifies_sp: true,
                fold: FoldClass::Uncond,
                folded: false,
                branch_pc: Some(pc),
                next_pc: NextPc::FromRet,
                alt_pc: None,
            });
        }
        _ => {}
    }

    // Case 2: try to fold the following branch into this instruction.
    if policy.host_ok(&instr) {
        if let Ok((branch, blen)) = encoding::decode(parcels, at + len) {
            if policy.branch_ok(&branch) {
                let branch_pc = pc.wrapping_add(len_bytes);
                let total_bytes = len_bytes + blen as u32 * PARCEL_BYTES;
                let exec = exec_of(&instr, pc, len_bytes);
                match branch {
                    Instr::Jmp { target } => {
                        return Ok(Decoded {
                            pc,
                            len_bytes: total_bytes,
                            exec,
                            modifies_cc: instr.modifies_cc(),
                            modifies_sp: instr.modifies_sp(),
                            fold: FoldClass::Uncond,
                            folded: true,
                            branch_pc: Some(branch_pc),
                            next_pc: target_next(target, branch_pc),
                            alt_pc: None,
                        });
                    }
                    Instr::IfJmp {
                        on_true,
                        predict_taken,
                        target,
                    } => {
                        let taken = target_next(target, branch_pc);
                        let seq = NextPc::Known(pc.wrapping_add(total_bytes));
                        let (next_pc, alt_pc) = if predict_taken {
                            (taken, seq)
                        } else {
                            (seq, taken)
                        };
                        return Ok(Decoded {
                            pc,
                            len_bytes: total_bytes,
                            exec,
                            modifies_cc: instr.modifies_cc(),
                            modifies_sp: instr.modifies_sp(),
                            fold: FoldClass::Cond {
                                on_true,
                                predict_taken,
                            },
                            folded: true,
                            branch_pc: Some(branch_pc),
                            next_pc,
                            alt_pc: Some(alt_pc),
                        });
                    }
                    _ => {}
                }
            }
        }
    }

    // Case 3: plain sequential entry.
    Ok(Decoded {
        pc,
        len_bytes,
        exec: exec_of(&instr, pc, len_bytes),
        modifies_cc: instr.modifies_cc(),
        modifies_sp: instr.modifies_sp(),
        fold: FoldClass::Sequential,
        folded: false,
        branch_pc: None,
        next_pc: NextPc::Known(pc.wrapping_add(len_bytes)),
        alt_pc: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(instrs: &[Instr]) -> Vec<u16> {
        let mut out = Vec::new();
        for i in instrs {
            out.extend(encoding::encode(i).unwrap());
        }
        out
    }

    fn add_slots() -> Instr {
        Instr::Op2 {
            op: BinOp::Add,
            dst: Operand::SpOff(0),
            src: Operand::SpOff(4),
        }
    }

    #[test]
    fn sequential_entry() {
        let p = stream(&[add_slots(), Instr::Nop]);
        let d = decode_and_fold(&p, 0, 0x100, FoldPolicy::Host13).unwrap();
        assert_eq!(d.fold, FoldClass::Sequential);
        assert!(!d.folded);
        assert_eq!(d.len_bytes, 2);
        assert_eq!(d.next_pc, NextPc::Known(0x102));
        assert_eq!(d.alt_pc, None);
    }

    #[test]
    fn folds_one_parcel_host_with_uncond_branch() {
        let p = stream(&[
            add_slots(),
            Instr::Jmp {
                target: BranchTarget::PcRel(-20),
            },
        ]);
        let d = decode_and_fold(&p, 0, 0x100, FoldPolicy::Host13).unwrap();
        assert!(d.folded);
        assert_eq!(d.fold, FoldClass::Uncond);
        // Branch adjust: the offset is relative to the *branch* at 0x102.
        assert_eq!(d.next_pc, NextPc::Known(0x102 - 20));
        assert_eq!(d.len_bytes, 4);
        assert!(matches!(d.exec, ExecOp::Op2 { op: BinOp::Add, .. }));
    }

    #[test]
    fn folds_three_parcel_host_branch_adjust() {
        // 3-parcel cmp + 1-parcel conditional branch: the paper's QD case
        // ("the 10-bit PC relative offset is found ... in the QD parcel
        // if the previous instruction was three parcels long").
        let cmp = Instr::Cmp {
            cond: Cond::LtS,
            a: Operand::SpOff(4),
            b: Operand::Imm(1024),
        };
        assert_eq!(cmp.parcels().unwrap(), 3);
        let br = Instr::IfJmp {
            on_true: true,
            predict_taken: true,
            target: BranchTarget::PcRel(-30),
        };
        let p = stream(&[cmp, br]);
        let d = decode_and_fold(&p, 0, 0x200, FoldPolicy::Host13).unwrap();
        assert!(d.folded);
        assert!(d.modifies_cc);
        // Branch sits at 0x206 (after 3 parcels); adjust = 6 bytes.
        assert_eq!(d.next_pc, NextPc::Known(0x206 - 30));
        // Predicted taken, so the alternate is the fall-through 0x208.
        assert_eq!(d.alt_pc, Some(NextPc::Known(0x208)));
        assert_eq!(d.len_bytes, 8);
    }

    #[test]
    fn predict_not_taken_swaps_fields() {
        let br = Instr::IfJmp {
            on_true: false,
            predict_taken: false,
            target: BranchTarget::PcRel(100),
        };
        let p = stream(&[add_slots(), br]);
        let d = decode_and_fold(&p, 0, 0, FoldPolicy::Host13).unwrap();
        // Not-taken prediction: Next-PC is sequential, Alternate is target.
        assert_eq!(d.next_pc, NextPc::Known(4));
        assert_eq!(d.alt_pc, Some(NextPc::Known(2 + 100)));
        assert_eq!(d.cond_paths(), Some((102, 4)));
    }

    #[test]
    fn five_parcel_host_not_folded_under_crisp_policy() {
        let wide = Instr::Op2 {
            op: BinOp::Add,
            dst: Operand::Abs(0x8000),
            src: Operand::Imm(100_000),
        };
        assert_eq!(wide.parcels().unwrap(), 5);
        let p = stream(&[
            wide,
            Instr::Jmp {
                target: BranchTarget::PcRel(2),
            },
        ]);
        let d = decode_and_fold(&p, 0, 0, FoldPolicy::Host13).unwrap();
        assert!(!d.folded);
        assert_eq!(d.fold, FoldClass::Sequential);
        // ... but it IS folded under FoldPolicy::All (the ablation).
        let d = decode_and_fold(&p, 0, 0, FoldPolicy::All).unwrap();
        assert!(d.folded);
    }

    #[test]
    fn long_branches_not_folded_under_crisp_policy() {
        let br = Instr::Jmp {
            target: BranchTarget::Abs(0x4000),
        };
        let p = stream(&[add_slots(), br]);
        let d = decode_and_fold(&p, 0, 0, FoldPolicy::Host13).unwrap();
        assert!(!d.folded);
        let d = decode_and_fold(&p, 0, 0, FoldPolicy::All).unwrap();
        assert!(d.folded);
        assert_eq!(d.next_pc, NextPc::Known(0x4000));
    }

    #[test]
    fn calls_and_returns_never_fold() {
        // A call is not absorbed as a "branch" ...
        let p = stream(&[
            add_slots(),
            Instr::Call {
                target: BranchTarget::PcRel(20),
            },
        ]);
        let d = decode_and_fold(&p, 0, 0, FoldPolicy::All).unwrap();
        assert!(!d.folded);
        // ... and a call does not host a following branch.
        let p = stream(&[
            Instr::Call {
                target: BranchTarget::PcRel(20),
            },
            Instr::Jmp {
                target: BranchTarget::PcRel(2),
            },
        ]);
        let d = decode_and_fold(&p, 0, 0, FoldPolicy::All).unwrap();
        assert!(!d.folded);
        assert!(matches!(d.exec, ExecOp::CallPush { ret: 2 }));
        assert_eq!(d.next_pc, NextPc::Known(20));
    }

    #[test]
    fn unfolded_branch_is_own_entry() {
        // The paper's example: "a branch after a call" is a one-parcel
        // branch that is not folded.
        let p = stream(&[Instr::Jmp {
            target: BranchTarget::PcRel(-4),
        }]);
        let d = decode_and_fold(&p, 0, 0x50, FoldPolicy::Host13).unwrap();
        assert!(!d.folded);
        assert_eq!(d.fold, FoldClass::Uncond);
        assert_eq!(d.exec, ExecOp::Nop);
        // Offset relative to the branch itself (branch adjust = 0).
        assert_eq!(d.next_pc, NextPc::Known(0x4C));
    }

    #[test]
    fn ret_reads_next_pc_from_stack() {
        let p = stream(&[Instr::Ret]);
        let d = decode_and_fold(&p, 0, 0, FoldPolicy::Host13).unwrap();
        assert_eq!(d.next_pc, NextPc::FromRet);
        assert!(d.modifies_sp);
    }

    #[test]
    fn indirect_branch_forms() {
        let p = stream(&[Instr::Jmp {
            target: BranchTarget::IndAbs(0x8000),
        }]);
        let d = decode_and_fold(&p, 0, 0, FoldPolicy::Host13).unwrap();
        assert_eq!(d.next_pc, NextPc::IndAbs(0x8000));
        let p = stream(&[Instr::Jmp {
            target: BranchTarget::IndSp(8),
        }]);
        let d = decode_and_fold(&p, 0, 0, FoldPolicy::Host13).unwrap();
        assert_eq!(d.next_pc, NextPc::IndSp(8));
    }

    #[test]
    fn fold_policy_none_disables_folding() {
        let p = stream(&[
            add_slots(),
            Instr::Jmp {
                target: BranchTarget::PcRel(2),
            },
        ]);
        let d = decode_and_fold(&p, 0, 0, FoldPolicy::None).unwrap();
        assert!(!d.folded);
        assert_eq!(d.fold, FoldClass::Sequential);
    }

    #[test]
    fn host1_policy_rejects_three_parcel_host() {
        let cmp = Instr::Cmp {
            cond: Cond::LtS,
            a: Operand::SpOff(4),
            b: Operand::Imm(1024),
        };
        let p = stream(&[
            cmp,
            Instr::Jmp {
                target: BranchTarget::PcRel(2),
            },
        ]);
        assert!(!decode_and_fold(&p, 0, 0, FoldPolicy::Host1).unwrap().folded);
        assert!(
            decode_and_fold(&p, 0, 0, FoldPolicy::Host13)
                .unwrap()
                .folded
        );
    }

    #[test]
    fn nop_hosts_a_fold() {
        // Spreading can leave `nop; ifjmp` — folding turns it into a
        // pure-branch entry occupying a single slot.
        let br = Instr::IfJmp {
            on_true: true,
            predict_taken: true,
            target: BranchTarget::PcRel(-8),
        };
        let p = stream(&[Instr::Nop, br]);
        let d = decode_and_fold(&p, 0, 0x10, FoldPolicy::Host13).unwrap();
        assert!(d.folded);
        assert_eq!(d.exec, ExecOp::Nop);
        assert_eq!(d.next_pc, NextPc::Known(0x12 - 8));
    }

    #[test]
    fn stream_end_after_host_suppresses_folding() {
        let p = stream(&[add_slots()]);
        let d = decode_and_fold(&p, 0, 0, FoldPolicy::Host13).unwrap();
        assert!(!d.folded);
        assert_eq!(d.fold, FoldClass::Sequential);
    }

    #[test]
    fn cmp_folded_with_branch_keeps_cc_bit() {
        // The hardest mispredict case in the paper: compare folded with
        // the dependent branch resolves only at RR.
        let cmp = Instr::Cmp {
            cond: Cond::Eq,
            a: Operand::Accum,
            b: Operand::Imm(0),
        };
        assert_eq!(cmp.parcels().unwrap(), 1);
        let br = Instr::IfJmp {
            on_true: true,
            predict_taken: false,
            target: BranchTarget::PcRel(40),
        };
        let p = stream(&[cmp, br]);
        let d = decode_and_fold(&p, 0, 0, FoldPolicy::Host13).unwrap();
        assert!(d.folded);
        assert!(d.modifies_cc);
        assert!(matches!(d.exec, ExecOp::Cmp { .. }));
        assert!(matches!(
            d.fold,
            FoldClass::Cond {
                on_true: true,
                predict_taken: false
            }
        ));
    }

    #[test]
    fn fold_failure_classifies_blocked_folds() {
        use std::str::FromStr;
        let jmp = Instr::Jmp {
            target: BranchTarget::PcRel(2),
        };
        // Folds under Host13 → no failure.
        let p = stream(&[add_slots(), jmp]);
        assert_eq!(fold_failure(&p, 0, FoldPolicy::Host13), None);
        assert_eq!(
            fold_failure(&p, 0, FoldPolicy::None),
            Some(FoldFailure::PolicyDisabled)
        );
        // Branch after a branch: the host is control.
        let p = stream(&[jmp, jmp]);
        assert_eq!(
            fold_failure(&p, 0, FoldPolicy::Host13),
            Some(FoldFailure::HostIsControl)
        );
        // Five-parcel host under the CRISP policy.
        let wide = Instr::Op2 {
            op: BinOp::Add,
            dst: Operand::Abs(0x8000),
            src: Operand::Imm(100_000),
        };
        let p = stream(&[wide, jmp]);
        assert_eq!(
            fold_failure(&p, 0, FoldPolicy::Host13),
            Some(FoldFailure::HostTooLong)
        );
        assert_eq!(fold_failure(&p, 0, FoldPolicy::All), None);
        // Multi-parcel branch under Host13.
        let far = Instr::Jmp {
            target: BranchTarget::Abs(0x4000),
        };
        let p = stream(&[add_slots(), far]);
        assert_eq!(
            fold_failure(&p, 0, FoldPolicy::Host13),
            Some(FoldFailure::BranchTooLong)
        );
        // No branch follows → not a fold failure.
        let p = stream(&[add_slots(), Instr::Nop]);
        assert_eq!(fold_failure(&p, 0, FoldPolicy::Host13), None);
        // Name round-trip.
        for v in FoldFailure::ALL {
            assert_eq!(FoldFailure::from_str(v.name()), Ok(v));
        }
        assert!(FoldFailure::from_str("no-such-reason").is_err());
    }

    #[test]
    fn seq_pc_helper() {
        let p = stream(&[add_slots()]);
        let d = decode_and_fold(&p, 0, 0xFFFF_FFFE, FoldPolicy::Host13).unwrap();
        assert_eq!(d.seq_pc(), 0); // wraps
    }
}

//! Bit-exact binary encoding of CRISP instructions into 16-bit parcels.
//!
//! The paper specifies the *shape* of the encoding (16-bit parcels;
//! lengths of exactly 1, 3 or 5 parcels; one-parcel branches with a
//! 10-bit PC-relative offset and a prediction bit; three-parcel branches
//! with a 32-bit specifier) but not the bit layout, which was published in
//! a companion paper we do not have. This module therefore defines a
//! concrete reconstruction that honours every stated constraint.
//!
//! # Layout
//!
//! The top five bits of the first parcel select the instruction class:
//!
//! * `24..=27` — **one-parcel branches**:
//!   `| class(5) | pred(1) | off10(10) |` with `off10` a signed offset in
//!   parcels from the branch's own address (reach −1024..+1022 bytes).
//!   Classes: 24 `jmp`, 25 `ifjmpy`, 26 `ifjmpn`, 27 `call`.
//! * otherwise bits `[15:10]` form a 6-bit opcode (0..=47):
//!   * `0..=35` — one-parcel forms with two 5-bit fields
//!     `| op6(6) | f1(5) | f2(5) |` (stack slots are 5-bit word offsets
//!     from SP, immediates are 5-bit unsigned);
//!   * `36..=38` — general two-operand forms
//!     `| op6(6) | m1(3) | m2(3) | sub(4) |` followed by one extension
//!     parcel per operand (16-bit modes) or two (32-bit modes). Both
//!     operands must use the same extension width so that total length is
//!     3 or 5, never 4; the encoder widens `Accum`, `Imm16`, `SpOff16`
//!     as needed.
//!   * `39..=42` — three-parcel branches
//!     `| op6(6) | mode(2) | pred(1) | 0(7) |` + 32-bit specifier
//!     (mode 0 absolute, 1 indirect-absolute, 2 indirect via SP+offset);
//!   * `43` — three-parcel `enter`/`leave` with a 32-bit byte count.
//!
//! 32-bit extensions are stored high parcel first.

use crate::{BinOp, BranchTarget, Cond, Instr, IsaError, Operand};

// ---- opcode assignments -------------------------------------------------

const CLASS_JMP_S: u16 = 24;
const CLASS_IFT_S: u16 = 25;
const CLASS_IFF_S: u16 = 26;
const CLASS_CALL_S: u16 = 27;

const OP_NOP: u16 = 0;
const OP_HALT: u16 = 1;
const OP_RET: u16 = 2;
const OP_ENTER_S: u16 = 3;
const OP_LEAVE_S: u16 = 4;
const OP_MVA_R: u16 = 5; // Accum = slot
const OP_MAV_R: u16 = 6; // slot = Accum
const OP_MVA_I: u16 = 7; // Accum = imm5
const OP_RR_BASE: u16 = 8; // 8..=15: add,sub,and,or,xor,shl,shr,mov slot,slot
const OP_RI_BASE: u16 = 16; // 16..=23: same with imm5 source
const OP3_RI_BASE: u16 = 28; // 28..=30: and3,add3,sub3 slot,imm5
const OP3_RR_BASE: u16 = 31; // 31..=33: and3,add3,sub3 slot,slot
const OP_CMP_AI: u16 = 34; // cmp.cond Accum,imm5
const OP_CMP_AR: u16 = 35; // cmp.cond Accum,slot
const OP_OP2_X: u16 = 36;
const OP_OP3_X: u16 = 37;
const OP_CMP_X: u16 = 38;
const OP_JMP_L: u16 = 39;
const OP_IFT_L: u16 = 40;
const OP_IFF_L: u16 = 41;
const OP_CALL_L: u16 = 42;
const OP_FRAME_L: u16 = 43;

/// The subset of [`BinOp`]s that have compact one-parcel `Op2` forms.
const COMPACT_OPS: [BinOp; 8] = [
    BinOp::Add,
    BinOp::Sub,
    BinOp::And,
    BinOp::Or,
    BinOp::Xor,
    BinOp::Shl,
    BinOp::Shr,
    BinOp::Mov,
];

/// The subset of [`BinOp`]s that have compact one-parcel `Op3` forms.
const COMPACT_OP3: [BinOp; 3] = [BinOp::And, BinOp::Add, BinOp::Sub];

// ---- operand modes for the general format --------------------------------

const M_ACCUM: u8 = 0;
const M_ACCUM_W: u8 = 1;
const M_IMM16: u8 = 2;
const M_IMM32: u8 = 3;
const M_SPOFF16: u8 = 4;
const M_SPOFF32: u8 = 5;
const M_ABS32: u8 = 6;
const M_SPIND16: u8 = 7;

fn mode_width(mode: u8) -> usize {
    match mode {
        M_ACCUM | M_IMM16 | M_SPOFF16 | M_SPIND16 => 1,
        _ => 2,
    }
}

/// Choose the narrowest mode for an operand in the general format.
fn natural_mode(op: Operand) -> Result<u8, IsaError> {
    Ok(match op {
        Operand::Accum => M_ACCUM,
        Operand::Imm(v) => {
            if i16::try_from(v).is_ok() {
                M_IMM16
            } else {
                M_IMM32
            }
        }
        Operand::SpOff(off) => {
            if i16::try_from(off).is_ok() {
                M_SPOFF16
            } else {
                M_SPOFF32
            }
        }
        Operand::Abs(_) => M_ABS32,
        Operand::SpInd(off) => {
            if i16::try_from(off).is_ok() {
                M_SPIND16
            } else {
                return Err(IsaError::SpOffOutOfRange { offset: off });
            }
        }
    })
}

/// Widen a 16-bit mode to its 32-bit counterpart.
fn widen(mode: u8) -> Result<u8, IsaError> {
    match mode {
        M_ACCUM => Ok(M_ACCUM_W),
        M_IMM16 => Ok(M_IMM32),
        M_SPOFF16 => Ok(M_SPOFF32),
        M_SPIND16 => Err(IsaError::UnencodablePair),
        other => Ok(other),
    }
}

fn push_ext(out: &mut ParcelBuf, mode: u8, op: Operand) {
    let raw: u32 = match op {
        Operand::Accum => 0,
        Operand::Imm(v) => v as u32,
        Operand::SpOff(off) | Operand::SpInd(off) => off as u32,
        Operand::Abs(a) => a,
    };
    match mode_width(mode) {
        1 => out.push(raw as u16),
        _ => {
            out.push((raw >> 16) as u16);
            out.push(raw as u16);
        }
    }
}

fn read_ext(parcels: &[u16], at: &mut usize, mode: u8) -> Result<Operand, IsaError> {
    let take16 = |at: &mut usize| -> Result<u16, IsaError> {
        let v = *parcels.get(*at).ok_or(IsaError::Truncated)?;
        *at += 1;
        Ok(v)
    };
    let value: i32 = match mode_width(mode) {
        1 => take16(at)? as i16 as i32,
        _ => {
            let hi = take16(at)? as u32;
            let lo = take16(at)? as u32;
            ((hi << 16) | lo) as i32
        }
    };
    Ok(match mode {
        M_ACCUM | M_ACCUM_W => Operand::Accum,
        M_IMM16 | M_IMM32 => Operand::Imm(value),
        M_SPOFF16 | M_SPOFF32 => Operand::SpOff(value),
        M_ABS32 => Operand::Abs(value as u32),
        M_SPIND16 => Operand::SpInd(value),
        other => return Err(IsaError::BadOperandMode { mode: other }),
    })
}

// ---- encoding -------------------------------------------------------------

/// Maximum encoded instruction length, in parcels.
pub const MAX_ENCODED_PARCELS: usize = 5;

/// Fixed-capacity buffer the encoder writes into: encoding never touches
/// the heap, so hot decode-time callers ([`encoded_len`] via
/// `Instr::parcels`, used by fold-eligibility checks) stay allocation
/// free.
struct ParcelBuf {
    buf: [u16; MAX_ENCODED_PARCELS],
    len: usize,
}

impl ParcelBuf {
    fn new() -> ParcelBuf {
        ParcelBuf {
            buf: [0; MAX_ENCODED_PARCELS],
            len: 0,
        }
    }

    fn push(&mut self, p: u16) {
        self.buf[self.len] = p;
        self.len += 1;
    }

    fn as_slice(&self) -> &[u16] {
        &self.buf[..self.len]
    }
}

/// Encode one instruction into its parcel sequence (length 1, 3 or 5).
///
/// # Errors
///
/// * [`IsaError::ShortBranchOutOfRange`] — a `PcRel` target outside the
///   one-parcel reach (the assembler relaxes such branches to absolute
///   form before calling this);
/// * [`IsaError::ImmediateDestination`] — an `Op2` writing an immediate;
/// * [`IsaError::SpOffOutOfRange`] — a stack-indirect offset beyond
///   16 bits;
/// * [`IsaError::UnencodablePair`] — a stack-indirect operand paired with
///   an operand needing 32-bit extensions;
/// * [`IsaError::BadFrameSize`] — `enter`/`leave` with a misaligned byte
///   count.
pub fn encode(instr: &Instr) -> Result<Vec<u16>, IsaError> {
    let mut out = ParcelBuf::new();
    encode_into(instr, &mut out)?;
    Ok(out.as_slice().to_vec())
}

/// The encoded length in parcels without materialising the encoding (and
/// without allocating).
///
/// # Errors
///
/// Same conditions as [`encode`].
pub fn encoded_len(instr: &Instr) -> Result<usize, IsaError> {
    let mut out = ParcelBuf::new();
    encode_into(instr, &mut out)?;
    Ok(out.len)
}

fn encode_into(instr: &Instr, out: &mut ParcelBuf) -> Result<(), IsaError> {
    match *instr {
        Instr::Nop => out.push(OP_NOP << 10),
        Instr::Halt => out.push(OP_HALT << 10),
        Instr::Ret => out.push(OP_RET << 10),
        Instr::Enter { bytes } => encode_frame(bytes, false, out)?,
        Instr::Leave { bytes } => encode_frame(bytes, true, out)?,
        Instr::Op2 { op, dst, src } => {
            if !dst.is_writable() {
                return Err(IsaError::ImmediateDestination);
            }
            if let Some(p) = compact_op2(op, dst, src) {
                out.push(p);
            } else {
                encode_general(OP_OP2_X, op.code(), dst, src, out)?;
            }
        }
        Instr::Op3 { op, a, b } => {
            if let Some(p) = compact_op3(op, a, b) {
                out.push(p);
            } else {
                encode_general(OP_OP3_X, op.code(), a, b, out)?;
            }
        }
        Instr::Cmp { cond, a, b } => {
            if a == Operand::Accum {
                if let Some(imm) = b.as_imm5() {
                    out.push((OP_CMP_AI << 10) | ((cond.code() as u16) << 6) | imm as u16);
                    return Ok(());
                }
                if let Some(slot) = b.as_slot5() {
                    out.push((OP_CMP_AR << 10) | ((cond.code() as u16) << 6) | slot as u16);
                    return Ok(());
                }
            }
            encode_general(OP_CMP_X, cond.code(), a, b, out)?;
        }
        Instr::Jmp { target } => encode_branch(CLASS_JMP_S, OP_JMP_L, false, target, out)?,
        Instr::IfJmp {
            on_true,
            predict_taken,
            target,
        } => {
            let (short, long) = if on_true {
                (CLASS_IFT_S, OP_IFT_L)
            } else {
                (CLASS_IFF_S, OP_IFF_L)
            };
            encode_branch(short, long, predict_taken, target, out)?;
        }
        Instr::Call { target } => encode_branch(CLASS_CALL_S, OP_CALL_L, false, target, out)?,
    }
    Ok(())
}

fn encode_frame(bytes: u32, leave: bool, out: &mut ParcelBuf) -> Result<(), IsaError> {
    if !bytes.is_multiple_of(4) {
        return Err(IsaError::BadFrameSize { bytes });
    }
    let words = bytes / 4;
    if words <= 0x3FF {
        let op = if leave { OP_LEAVE_S } else { OP_ENTER_S };
        out.push((op << 10) | words as u16);
    } else {
        let sub = if leave { 1u16 } else { 0 };
        out.push((OP_FRAME_L << 10) | (sub << 9));
        out.push((bytes >> 16) as u16);
        out.push(bytes as u16);
    }
    Ok(())
}

fn compact_op2(op: BinOp, dst: Operand, src: Operand) -> Option<u16> {
    let idx = COMPACT_OPS.iter().position(|&o| o == op)? as u16;
    // Accumulator moves have dedicated opcodes.
    if op == BinOp::Mov {
        match (dst, src) {
            (Operand::Accum, s) => {
                if let Some(slot) = s.as_slot5() {
                    return Some((OP_MVA_R << 10) | ((slot as u16) << 5));
                }
                if let Some(imm) = s.as_imm5() {
                    return Some((OP_MVA_I << 10) | imm as u16);
                }
                return None;
            }
            (d, Operand::Accum) => {
                let slot = d.as_slot5()?;
                return Some((OP_MAV_R << 10) | ((slot as u16) << 5));
            }
            _ => {}
        }
    }
    let d = dst.as_slot5()?;
    if let Some(s) = src.as_slot5() {
        return Some(((OP_RR_BASE + idx) << 10) | ((d as u16) << 5) | s as u16);
    }
    if let Some(imm) = src.as_imm5() {
        return Some(((OP_RI_BASE + idx) << 10) | ((d as u16) << 5) | imm as u16);
    }
    None
}

fn compact_op3(op: BinOp, a: Operand, b: Operand) -> Option<u16> {
    let idx = COMPACT_OP3.iter().position(|&o| o == op)? as u16;
    let slot = a.as_slot5()?;
    if let Some(imm) = b.as_imm5() {
        return Some(((OP3_RI_BASE + idx) << 10) | ((slot as u16) << 5) | imm as u16);
    }
    if let Some(s) = b.as_slot5() {
        return Some(((OP3_RR_BASE + idx) << 10) | ((slot as u16) << 5) | s as u16);
    }
    None
}

fn encode_general(
    op6: u16,
    sub: u8,
    a: Operand,
    b: Operand,
    out: &mut ParcelBuf,
) -> Result<(), IsaError> {
    let mut m1 = natural_mode(a)?;
    let mut m2 = natural_mode(b)?;
    if mode_width(m1) != mode_width(m2) {
        if mode_width(m1) < mode_width(m2) {
            m1 = widen(m1)?;
        } else {
            m2 = widen(m2)?;
        }
    }
    out.push((op6 << 10) | ((m1 as u16) << 7) | ((m2 as u16) << 4) | sub as u16);
    push_ext(out, m1, a);
    push_ext(out, m2, b);
    debug_assert!(out.len == 3 || out.len == 5);
    Ok(())
}

fn encode_branch(
    short_class: u16,
    long_op: u16,
    pred: bool,
    target: BranchTarget,
    out: &mut ParcelBuf,
) -> Result<(), IsaError> {
    match target {
        BranchTarget::PcRel(off) => {
            if !target.is_short() {
                return Err(IsaError::ShortBranchOutOfRange { offset: off });
            }
            let parcels_off = (off / 2) as i16;
            let off10 = (parcels_off as u16) & 0x3FF;
            out.push((short_class << 11) | ((pred as u16) << 10) | off10);
        }
        BranchTarget::Abs(a) => long_branch(long_op, 0, pred, a, out),
        BranchTarget::IndAbs(a) => long_branch(long_op, 1, pred, a, out),
        BranchTarget::IndSp(off) => long_branch(long_op, 2, pred, off as u32, out),
    }
    Ok(())
}

fn long_branch(op6: u16, mode: u16, pred: bool, spec: u32, out: &mut ParcelBuf) {
    out.push((op6 << 10) | (mode << 8) | ((pred as u16) << 7));
    out.push((spec >> 16) as u16);
    out.push(spec as u16);
}

/// Encode `Accum = value` in the fixed five-parcel wide form
/// (`Op2X mov AccumW, Imm32`), regardless of whether the value would fit
/// a shorter encoding. The assembler uses this for label-address
/// materialisation (jump tables), where the instruction's size must not
/// depend on the — not yet final — label value.
pub fn encode_wide_mova(value: i32) -> Vec<u16> {
    vec![
        (OP_OP2_X << 10)
            | ((M_ACCUM_W as u16) << 7)
            | ((M_IMM32 as u16) << 4)
            | BinOp::Mov.code() as u16,
        0,
        0,
        ((value as u32) >> 16) as u16,
        value as u16,
    ]
}

// ---- decoding -------------------------------------------------------------

/// Decode the instruction starting at `parcels[at]`.
///
/// Returns the instruction and its length in parcels.
///
/// # Errors
///
/// * [`IsaError::Truncated`] — the stream ends mid-instruction;
/// * [`IsaError::BadOpcode`] — unassigned opcode bits;
/// * [`IsaError::BadOperandMode`] — impossible operand-mode combination.
pub fn decode(parcels: &[u16], at: usize) -> Result<(Instr, usize), IsaError> {
    let p0 = *parcels.get(at).ok_or(IsaError::Truncated)?;
    let class5 = p0 >> 11;
    if (CLASS_JMP_S..=CLASS_CALL_S).contains(&class5) {
        let pred = (p0 >> 10) & 1 == 1;
        let off10 = p0 & 0x3FF;
        // Sign-extend 10 bits, convert parcels to bytes.
        let parcels_off = ((off10 << 6) as i16) >> 6;
        let off = parcels_off as i32 * 2;
        let target = BranchTarget::PcRel(off);
        let instr = match class5 {
            CLASS_JMP_S => Instr::Jmp { target },
            CLASS_IFT_S => Instr::IfJmp {
                on_true: true,
                predict_taken: pred,
                target,
            },
            CLASS_IFF_S => Instr::IfJmp {
                on_true: false,
                predict_taken: pred,
                target,
            },
            _ => Instr::Call { target },
        };
        return Ok((instr, 1));
    }

    let op6 = p0 >> 10;
    let f1 = ((p0 >> 5) & 0x1F) as i32;
    let f2 = (p0 & 0x1F) as i32;
    let slot = |f: i32| Operand::SpOff(f * 4);
    let imm = Operand::Imm(f2);

    let one = |i: Instr| Ok((i, 1));
    match op6 {
        OP_NOP => one(Instr::Nop),
        OP_HALT => one(Instr::Halt),
        OP_RET => one(Instr::Ret),
        OP_ENTER_S => one(Instr::Enter {
            bytes: (p0 & 0x3FF) as u32 * 4,
        }),
        OP_LEAVE_S => one(Instr::Leave {
            bytes: (p0 & 0x3FF) as u32 * 4,
        }),
        OP_MVA_R => one(Instr::Op2 {
            op: BinOp::Mov,
            dst: Operand::Accum,
            src: slot(f1),
        }),
        OP_MAV_R => one(Instr::Op2 {
            op: BinOp::Mov,
            dst: slot(f1),
            src: Operand::Accum,
        }),
        OP_MVA_I => one(Instr::Op2 {
            op: BinOp::Mov,
            dst: Operand::Accum,
            src: imm,
        }),
        o if (OP_RR_BASE..OP_RR_BASE + 8).contains(&o) => {
            let op = COMPACT_OPS[(o - OP_RR_BASE) as usize];
            one(Instr::Op2 {
                op,
                dst: slot(f1),
                src: slot(f2),
            })
        }
        o if (OP_RI_BASE..OP_RI_BASE + 8).contains(&o) => {
            let op = COMPACT_OPS[(o - OP_RI_BASE) as usize];
            one(Instr::Op2 {
                op,
                dst: slot(f1),
                src: imm,
            })
        }
        o if (OP3_RI_BASE..OP3_RI_BASE + 3).contains(&o) => {
            let op = COMPACT_OP3[(o - OP3_RI_BASE) as usize];
            one(Instr::Op3 {
                op,
                a: slot(f1),
                b: imm,
            })
        }
        o if (OP3_RR_BASE..OP3_RR_BASE + 3).contains(&o) => {
            let op = COMPACT_OP3[(o - OP3_RR_BASE) as usize];
            one(Instr::Op3 {
                op,
                a: slot(f1),
                b: slot(f2),
            })
        }
        OP_CMP_AI | OP_CMP_AR => {
            let cond = Cond::from_code(((p0 >> 6) & 0xF) as u8)
                .ok_or(IsaError::BadOpcode { parcel: p0 })?;
            let b = if op6 == OP_CMP_AI { imm } else { slot(f2) };
            one(Instr::Cmp {
                cond,
                a: Operand::Accum,
                b,
            })
        }
        OP_OP2_X | OP_OP3_X | OP_CMP_X => {
            let m1 = ((p0 >> 7) & 0x7) as u8;
            let m2 = ((p0 >> 4) & 0x7) as u8;
            if mode_width(m1) != mode_width(m2) {
                return Err(IsaError::BadOperandMode { mode: m1 });
            }
            let sub = (p0 & 0xF) as u8;
            let mut pos = at + 1;
            let a = read_ext(parcels, &mut pos, m1)?;
            let b = read_ext(parcels, &mut pos, m2)?;
            let len = pos - at;
            let instr = match op6 {
                OP_OP2_X => {
                    let op = BinOp::from_code(sub).ok_or(IsaError::BadOpcode { parcel: p0 })?;
                    Instr::Op2 { op, dst: a, src: b }
                }
                OP_OP3_X => {
                    let op = BinOp::from_code(sub).ok_or(IsaError::BadOpcode { parcel: p0 })?;
                    Instr::Op3 { op, a, b }
                }
                _ => {
                    let cond = Cond::from_code(sub).ok_or(IsaError::BadOpcode { parcel: p0 })?;
                    Instr::Cmp { cond, a, b }
                }
            };
            Ok((instr, len))
        }
        OP_JMP_L | OP_IFT_L | OP_IFF_L | OP_CALL_L => {
            let mode = (p0 >> 8) & 0x3;
            let pred = (p0 >> 7) & 1 == 1;
            let hi = *parcels.get(at + 1).ok_or(IsaError::Truncated)? as u32;
            let lo = *parcels.get(at + 2).ok_or(IsaError::Truncated)? as u32;
            let spec = (hi << 16) | lo;
            let target = match mode {
                0 => BranchTarget::Abs(spec),
                1 => BranchTarget::IndAbs(spec),
                2 => BranchTarget::IndSp(spec as i32),
                _ => return Err(IsaError::BadOpcode { parcel: p0 }),
            };
            let instr = match op6 {
                OP_JMP_L => Instr::Jmp { target },
                OP_IFT_L => Instr::IfJmp {
                    on_true: true,
                    predict_taken: pred,
                    target,
                },
                OP_IFF_L => Instr::IfJmp {
                    on_true: false,
                    predict_taken: pred,
                    target,
                },
                _ => Instr::Call { target },
            };
            Ok((instr, 3))
        }
        OP_FRAME_L => {
            let leave = (p0 >> 9) & 1 == 1;
            let hi = *parcels.get(at + 1).ok_or(IsaError::Truncated)? as u32;
            let lo = *parcels.get(at + 2).ok_or(IsaError::Truncated)? as u32;
            let bytes = (hi << 16) | lo;
            if !bytes.is_multiple_of(4) {
                return Err(IsaError::BadFrameSize { bytes });
            }
            let instr = if leave {
                Instr::Leave { bytes }
            } else {
                Instr::Enter { bytes }
            };
            Ok((instr, 3))
        }
        _ => Err(IsaError::BadOpcode { parcel: p0 }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(instr: Instr) -> usize {
        let parcels = encode(&instr).unwrap_or_else(|e| panic!("encode {instr}: {e}"));
        assert!(
            matches!(parcels.len(), 1 | 3 | 5),
            "{instr} encoded to {} parcels",
            parcels.len()
        );
        let (back, len) = decode(&parcels, 0).unwrap_or_else(|e| panic!("decode {instr}: {e}"));
        assert_eq!(len, parcels.len(), "{instr}");
        assert_eq!(back, instr, "round trip failed");
        parcels.len()
    }

    #[test]
    fn trivial_forms() {
        assert_eq!(round_trip(Instr::Nop), 1);
        assert_eq!(round_trip(Instr::Halt), 1);
        assert_eq!(round_trip(Instr::Ret), 1);
    }

    #[test]
    fn frame_forms() {
        assert_eq!(round_trip(Instr::Enter { bytes: 0 }), 1);
        assert_eq!(round_trip(Instr::Enter { bytes: 4092 }), 1);
        assert_eq!(round_trip(Instr::Enter { bytes: 4096 }), 3);
        assert_eq!(round_trip(Instr::Leave { bytes: 20 }), 1);
        assert_eq!(round_trip(Instr::Leave { bytes: 1 << 20 }), 3);
        assert_eq!(
            encode(&Instr::Enter { bytes: 6 }),
            Err(IsaError::BadFrameSize { bytes: 6 })
        );
    }

    #[test]
    fn compact_alu_forms_are_one_parcel() {
        for op in COMPACT_OPS {
            let i = Instr::Op2 {
                op,
                dst: Operand::SpOff(8),
                src: Operand::SpOff(124),
            };
            assert_eq!(round_trip(i), 1, "{op}");
            let i = Instr::Op2 {
                op,
                dst: Operand::SpOff(0),
                src: Operand::Imm(31),
            };
            assert_eq!(round_trip(i), 1, "{op}");
        }
    }

    #[test]
    fn accumulator_moves_are_one_parcel() {
        assert_eq!(
            round_trip(Instr::Op2 {
                op: BinOp::Mov,
                dst: Operand::Accum,
                src: Operand::SpOff(16)
            }),
            1
        );
        assert_eq!(
            round_trip(Instr::Op2 {
                op: BinOp::Mov,
                dst: Operand::SpOff(16),
                src: Operand::Accum
            }),
            1
        );
        assert_eq!(
            round_trip(Instr::Op2 {
                op: BinOp::Mov,
                dst: Operand::Accum,
                src: Operand::Imm(7)
            }),
            1
        );
    }

    #[test]
    fn mul_has_no_compact_form() {
        let i = Instr::Op2 {
            op: BinOp::Mul,
            dst: Operand::SpOff(0),
            src: Operand::SpOff(4),
        };
        assert_eq!(round_trip(i), 3);
    }

    #[test]
    fn op3_compact_and_general() {
        // The paper's `and3 i,1`.
        let i = Instr::Op3 {
            op: BinOp::And,
            a: Operand::SpOff(4),
            b: Operand::Imm(1),
        };
        assert_eq!(round_trip(i), 1);
        let i = Instr::Op3 {
            op: BinOp::Add,
            a: Operand::SpOff(4),
            b: Operand::SpOff(8),
        };
        assert_eq!(round_trip(i), 1);
        let i = Instr::Op3 {
            op: BinOp::Xor,
            a: Operand::SpOff(4),
            b: Operand::Imm(1),
        };
        assert_eq!(round_trip(i), 3);
        let i = Instr::Op3 {
            op: BinOp::Mul,
            a: Operand::Accum,
            b: Operand::Imm(100_000),
        };
        assert_eq!(round_trip(i), 5);
    }

    #[test]
    fn cmp_forms() {
        // The paper's `cmp.= Accum,0`.
        let i = Instr::Cmp {
            cond: Cond::Eq,
            a: Operand::Accum,
            b: Operand::Imm(0),
        };
        assert_eq!(round_trip(i), 1);
        let i = Instr::Cmp {
            cond: Cond::GeU,
            a: Operand::Accum,
            b: Operand::SpOff(124),
        };
        assert_eq!(round_trip(i), 1);
        // The paper's `cmp.s< i,1024` — 1024 exceeds imm5.
        let i = Instr::Cmp {
            cond: Cond::LtS,
            a: Operand::SpOff(4),
            b: Operand::Imm(1024),
        };
        assert_eq!(round_trip(i), 3);
        let i = Instr::Cmp {
            cond: Cond::Ne,
            a: Operand::Abs(0x8000),
            b: Operand::Imm(3),
        };
        assert_eq!(round_trip(i), 5); // Abs32 forces wide
    }

    #[test]
    fn general_form_widening() {
        // Imm16 paired with Abs32 must widen to keep length odd.
        let i = Instr::Op2 {
            op: BinOp::Add,
            dst: Operand::Abs(0x12345678),
            src: Operand::Imm(1),
        };
        assert_eq!(round_trip(i), 5);
        // Accum paired with Abs32: AccumW padding.
        let i = Instr::Op2 {
            op: BinOp::Mov,
            dst: Operand::Abs(0x9000),
            src: Operand::Accum,
        };
        assert_eq!(round_trip(i), 5);
        // SpOff16 + Imm32.
        let i = Instr::Op2 {
            op: BinOp::Mov,
            dst: Operand::SpOff(4),
            src: Operand::Imm(1_000_000),
        };
        assert_eq!(round_trip(i), 5);
        // SpOff with a 17-bit offset.
        let i = Instr::Op2 {
            op: BinOp::Add,
            dst: Operand::SpOff(70_000),
            src: Operand::SpOff(70_004),
        };
        assert_eq!(round_trip(i), 5);
    }

    #[test]
    fn spind_forms() {
        let i = Instr::Op2 {
            op: BinOp::Mov,
            dst: Operand::SpInd(8),
            src: Operand::SpOff(4),
        };
        assert_eq!(round_trip(i), 3);
        let i = Instr::Op2 {
            op: BinOp::Mov,
            dst: Operand::SpInd(8),
            src: Operand::Accum,
        };
        assert_eq!(round_trip(i), 3);
        // SpInd cannot pair with a 32-bit operand.
        let i = Instr::Op2 {
            op: BinOp::Mov,
            dst: Operand::SpInd(8),
            src: Operand::Imm(1_000_000),
        };
        assert_eq!(encode(&i), Err(IsaError::UnencodablePair));
        // Stack-indirect offsets beyond 16 bits have no encoding.
        let i = Instr::Op2 {
            op: BinOp::Mov,
            dst: Operand::SpInd(40_000),
            src: Operand::Imm(0),
        };
        assert_eq!(
            encode(&i),
            Err(IsaError::SpOffOutOfRange { offset: 40_000 })
        );
    }

    #[test]
    fn immediate_destination_rejected() {
        let i = Instr::Op2 {
            op: BinOp::Add,
            dst: Operand::Imm(1),
            src: Operand::Imm(2),
        };
        assert_eq!(encode(&i), Err(IsaError::ImmediateDestination));
    }

    #[test]
    fn short_branches() {
        for off in [-1024, -2, 0, 2, 100, 1022] {
            let i = Instr::Jmp {
                target: BranchTarget::PcRel(off),
            };
            assert_eq!(round_trip(i), 1, "offset {off}");
            for on_true in [false, true] {
                for pred in [false, true] {
                    let i = Instr::IfJmp {
                        on_true,
                        predict_taken: pred,
                        target: BranchTarget::PcRel(off),
                    };
                    assert_eq!(round_trip(i), 1);
                }
            }
            let i = Instr::Call {
                target: BranchTarget::PcRel(off),
            };
            assert_eq!(round_trip(i), 1);
        }
    }

    #[test]
    fn short_branch_range_enforced() {
        let i = Instr::Jmp {
            target: BranchTarget::PcRel(1024),
        };
        assert_eq!(
            encode(&i),
            Err(IsaError::ShortBranchOutOfRange { offset: 1024 })
        );
        let i = Instr::Jmp {
            target: BranchTarget::PcRel(-1026),
        };
        assert_eq!(
            encode(&i),
            Err(IsaError::ShortBranchOutOfRange { offset: -1026 })
        );
    }

    #[test]
    fn long_branches() {
        let targets = [
            BranchTarget::Abs(0xDEAD_BEE0),
            BranchTarget::IndAbs(0x8000),
            BranchTarget::IndSp(-16),
            BranchTarget::IndSp(16),
        ];
        for t in targets {
            assert_eq!(round_trip(Instr::Jmp { target: t }), 3);
            assert_eq!(round_trip(Instr::Call { target: t }), 3);
            assert_eq!(
                round_trip(Instr::IfJmp {
                    on_true: true,
                    predict_taken: true,
                    target: t
                }),
                3
            );
            assert_eq!(
                round_trip(Instr::IfJmp {
                    on_true: false,
                    predict_taken: false,
                    target: t
                }),
                3
            );
        }
    }

    #[test]
    fn truncation_detected() {
        let i = Instr::Cmp {
            cond: Cond::LtS,
            a: Operand::SpOff(4),
            b: Operand::Imm(1024),
        };
        let parcels = encode(&i).unwrap();
        assert_eq!(decode(&parcels[..1], 0), Err(IsaError::Truncated));
        assert_eq!(decode(&parcels[..2], 0), Err(IsaError::Truncated));
        assert_eq!(decode(&[], 0), Err(IsaError::Truncated));
    }

    #[test]
    fn bad_opcodes_rejected() {
        // op6 = 44 is unassigned.
        assert!(matches!(
            decode(&[44 << 10], 0),
            Err(IsaError::BadOpcode { .. })
        ));
        // op6 = 47 is unassigned.
        assert!(matches!(
            decode(&[47 << 10], 0),
            Err(IsaError::BadOpcode { .. })
        ));
        // CmpAI with condition code 15 (unassigned).
        assert!(matches!(
            decode(&[(OP_CMP_AI << 10) | (15 << 6)], 0),
            Err(IsaError::BadOpcode { .. })
        ));
        // General form with mismatched extension widths.
        let p0 = (OP_OP2_X << 10) | ((M_IMM16 as u16) << 7) | ((M_IMM32 as u16) << 4);
        assert!(matches!(
            decode(&[p0, 0, 0, 0], 0),
            Err(IsaError::BadOperandMode { .. })
        ));
    }

    #[test]
    fn decode_at_offset() {
        let a = encode(&Instr::Nop).unwrap();
        let b = encode(&Instr::Cmp {
            cond: Cond::Eq,
            a: Operand::SpOff(0),
            b: Operand::Imm(500),
        })
        .unwrap();
        let mut stream = a.clone();
        stream.extend(&b);
        let (i0, l0) = decode(&stream, 0).unwrap();
        assert_eq!(i0, Instr::Nop);
        let (i1, l1) = decode(&stream, l0).unwrap();
        assert_eq!(l1, 3);
        assert!(matches!(i1, Instr::Cmp { .. }));
    }

    #[test]
    fn wide_mova_is_always_five_parcels() {
        for v in [0, 1, 31, -1, 0x1234, 0x0012_3456, i32::MIN] {
            let p = encode_wide_mova(v);
            assert_eq!(p.len(), 5);
            let (i, len) = decode(&p, 0).unwrap();
            assert_eq!(len, 5);
            assert_eq!(
                i,
                Instr::Op2 {
                    op: BinOp::Mov,
                    dst: Operand::Accum,
                    src: Operand::Imm(v)
                }
            );
        }
    }

    #[test]
    fn negative_sp_offsets_round_trip() {
        let i = Instr::Op2 {
            op: BinOp::Add,
            dst: Operand::SpOff(-4),
            src: Operand::Imm(-8),
        };
        assert_eq!(round_trip(i), 3); // negative slot has no compact form
        let i = Instr::Cmp {
            cond: Cond::Eq,
            a: Operand::SpInd(-100),
            b: Operand::Imm(-1),
        };
        assert_eq!(round_trip(i), 3);
    }
}

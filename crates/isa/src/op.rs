use std::fmt;

/// Binary ALU operations.
///
/// Two-address forms compute `dst = dst op src`; three-address forms
/// compute `Accum = a op b`. `Mov` is carried in the same code space for
/// the general three-parcel format (`dst = src`).
///
/// Arithmetic is 32-bit two's-complement wrapping. Division and remainder
/// by zero produce zero (the simulator has no trap architecture; the paper
/// does not discuss traps and none of the evaluation programs divide by
/// zero).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum BinOp {
    /// Wrapping addition.
    Add = 0,
    /// Wrapping subtraction.
    Sub = 1,
    /// Wrapping multiplication.
    Mul = 2,
    /// Signed division (by zero yields 0).
    Div = 3,
    /// Signed remainder (by zero yields 0).
    Rem = 4,
    /// Bitwise and.
    And = 5,
    /// Bitwise or.
    Or = 6,
    /// Bitwise exclusive-or.
    Xor = 7,
    /// Logical shift left (shift amount taken modulo 32).
    Shl = 8,
    /// Logical shift right (shift amount taken modulo 32).
    Shr = 9,
    /// Arithmetic shift right (shift amount taken modulo 32).
    Sar = 10,
    /// Copy: `dst = src`. Only valid in the general two-operand format.
    Mov = 11,
}

impl BinOp {
    /// All operations, in encoding order.
    pub const ALL: [BinOp; 12] = [
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::Div,
        BinOp::Rem,
        BinOp::And,
        BinOp::Or,
        BinOp::Xor,
        BinOp::Shl,
        BinOp::Shr,
        BinOp::Sar,
        BinOp::Mov,
    ];

    /// Decode from the 4-bit sub-opcode field.
    pub fn from_code(code: u8) -> Option<BinOp> {
        BinOp::ALL.get(code as usize).copied()
    }

    /// The 4-bit sub-opcode used in the three-parcel format.
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Evaluate the operation on two 32-bit values.
    ///
    /// For [`BinOp::Mov`] the result is simply `b`.
    #[inline]
    pub fn eval(self, a: i32, b: i32) -> i32 {
        match self {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::Div => {
                if b == 0 || (a == i32::MIN && b == -1) {
                    0
                } else {
                    a / b
                }
            }
            BinOp::Rem => {
                if b == 0 || (a == i32::MIN && b == -1) {
                    0
                } else {
                    a % b
                }
            }
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Shl => ((a as u32) << (b as u32 & 31)) as i32,
            BinOp::Shr => ((a as u32) >> (b as u32 & 31)) as i32,
            BinOp::Sar => a >> (b as u32 & 31),
            BinOp::Mov => b,
        }
    }

    /// Assembler mnemonic for the two-address form.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Rem => "rem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Shr => "shr",
            BinOp::Sar => "sar",
            BinOp::Mov => "mov",
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Comparison conditions for the `cmp` instruction.
///
/// `cmp.cond a,b` sets the PSW flag to `a cond b`. The flag is the *only*
/// state a conditional branch examines, and `cmp` is the *only*
/// instruction that writes it — a deliberate CRISP design choice the paper
/// highlights (it limits the instructions that can affect a conditional
/// branch in flight, making code motion and prediction more effective).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum Cond {
    /// Equal.
    Eq = 0,
    /// Not equal.
    Ne = 1,
    /// Signed less-than.
    LtS = 2,
    /// Signed less-or-equal.
    LeS = 3,
    /// Signed greater-than.
    GtS = 4,
    /// Signed greater-or-equal.
    GeS = 5,
    /// Unsigned less-than.
    LtU = 6,
    /// Unsigned less-or-equal.
    LeU = 7,
    /// Unsigned greater-than.
    GtU = 8,
    /// Unsigned greater-or-equal.
    GeU = 9,
}

impl Cond {
    /// All conditions, in encoding order.
    pub const ALL: [Cond; 10] = [
        Cond::Eq,
        Cond::Ne,
        Cond::LtS,
        Cond::LeS,
        Cond::GtS,
        Cond::GeS,
        Cond::LtU,
        Cond::LeU,
        Cond::GtU,
        Cond::GeU,
    ];

    /// Decode from the 4-bit condition field.
    pub fn from_code(code: u8) -> Option<Cond> {
        Cond::ALL.get(code as usize).copied()
    }

    /// The 4-bit condition code.
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Evaluate the condition on two 32-bit values.
    #[inline]
    pub fn eval(self, a: i32, b: i32) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::LtS => a < b,
            Cond::LeS => a <= b,
            Cond::GtS => a > b,
            Cond::GeS => a >= b,
            Cond::LtU => (a as u32) < (b as u32),
            Cond::LeU => (a as u32) <= (b as u32),
            Cond::GtU => (a as u32) > (b as u32),
            Cond::GeU => (a as u32) >= (b as u32),
        }
    }

    /// The condition with operands swapped: `a cond b == b swap(cond) a`.
    pub fn swapped(self) -> Cond {
        match self {
            Cond::Eq => Cond::Eq,
            Cond::Ne => Cond::Ne,
            Cond::LtS => Cond::GtS,
            Cond::LeS => Cond::GeS,
            Cond::GtS => Cond::LtS,
            Cond::GeS => Cond::LeS,
            Cond::LtU => Cond::GtU,
            Cond::LeU => Cond::GeU,
            Cond::GtU => Cond::LtU,
            Cond::GeU => Cond::LeU,
        }
    }

    /// The logical negation: `!(a cond b) == a negated(cond) b`.
    pub fn negated(self) -> Cond {
        match self {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::LtS => Cond::GeS,
            Cond::LeS => Cond::GtS,
            Cond::GtS => Cond::LeS,
            Cond::GeS => Cond::LtS,
            Cond::LtU => Cond::GeU,
            Cond::LeU => Cond::GtU,
            Cond::GtU => Cond::LeU,
            Cond::GeU => Cond::LtU,
        }
    }

    /// Assembler suffix, mirroring the paper's listing style
    /// (`cmp.=`, `cmp.s<`, ...).
    pub fn suffix(self) -> &'static str {
        match self {
            Cond::Eq => "=",
            Cond::Ne => "!=",
            Cond::LtS => "s<",
            Cond::LeS => "s<=",
            Cond::GtS => "s>",
            Cond::GeS => "s>=",
            Cond::LtU => "u<",
            Cond::LeU => "u<=",
            Cond::GtU => "u>",
            Cond::GeU => "u>=",
        }
    }

    /// Parse an assembler suffix produced by [`Cond::suffix`].
    pub fn from_suffix(s: &str) -> Option<Cond> {
        Cond::ALL.iter().copied().find(|c| c.suffix() == s)
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.suffix())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_codes_round_trip() {
        for op in BinOp::ALL {
            assert_eq!(BinOp::from_code(op.code()), Some(op));
        }
        assert_eq!(BinOp::from_code(12), None);
        assert_eq!(BinOp::from_code(255), None);
    }

    #[test]
    fn cond_codes_round_trip() {
        for c in Cond::ALL {
            assert_eq!(Cond::from_code(c.code()), Some(c));
        }
        assert_eq!(Cond::from_code(10), None);
    }

    #[test]
    fn eval_basic_arithmetic() {
        assert_eq!(BinOp::Add.eval(3, 4), 7);
        assert_eq!(BinOp::Sub.eval(3, 4), -1);
        assert_eq!(BinOp::Mul.eval(-3, 4), -12);
        assert_eq!(BinOp::Div.eval(7, 2), 3);
        assert_eq!(BinOp::Rem.eval(7, 2), 1);
        assert_eq!(BinOp::Mov.eval(99, 4), 4);
    }

    #[test]
    fn eval_wraps_on_overflow() {
        assert_eq!(BinOp::Add.eval(i32::MAX, 1), i32::MIN);
        assert_eq!(BinOp::Sub.eval(i32::MIN, 1), i32::MAX);
        assert_eq!(BinOp::Mul.eval(i32::MAX, 2), -2);
    }

    #[test]
    fn division_by_zero_is_zero() {
        assert_eq!(BinOp::Div.eval(42, 0), 0);
        assert_eq!(BinOp::Rem.eval(42, 0), 0);
        assert_eq!(BinOp::Div.eval(i32::MIN, -1), 0);
        assert_eq!(BinOp::Rem.eval(i32::MIN, -1), 0);
    }

    #[test]
    fn shifts_mask_amount() {
        assert_eq!(BinOp::Shl.eval(1, 33), 2);
        assert_eq!(BinOp::Shr.eval(-1, 28), 0xF);
        assert_eq!(BinOp::Sar.eval(-16, 2), -4);
        assert_eq!(BinOp::Shr.eval(-16, 2), ((-16i32 as u32) >> 2) as i32);
    }

    #[test]
    fn cond_eval_signed_vs_unsigned() {
        assert!(Cond::LtS.eval(-1, 0));
        assert!(!Cond::LtU.eval(-1, 0)); // -1 is u32::MAX
        assert!(Cond::GtU.eval(-1, 0));
        assert!(Cond::GeS.eval(5, 5));
        assert!(Cond::LeU.eval(5, 5));
    }

    #[test]
    fn negated_is_logical_complement() {
        for c in Cond::ALL {
            for &(a, b) in &[(0, 0), (1, 2), (-5, 3), (i32::MIN, i32::MAX), (7, 7)] {
                assert_eq!(c.eval(a, b), !c.negated().eval(a, b), "{c:?} {a} {b}");
            }
        }
    }

    #[test]
    fn swapped_commutes_operands() {
        for c in Cond::ALL {
            for &(a, b) in &[(0, 0), (1, 2), (-5, 3), (i32::MIN, i32::MAX)] {
                assert_eq!(c.eval(a, b), c.swapped().eval(b, a), "{c:?} {a} {b}");
            }
        }
    }

    #[test]
    fn suffix_round_trips() {
        for c in Cond::ALL {
            assert_eq!(Cond::from_suffix(c.suffix()), Some(c));
        }
        assert_eq!(Cond::from_suffix("nope"), None);
    }
}

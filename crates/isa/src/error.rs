use std::fmt;

/// Errors produced while encoding, decoding or folding instructions.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum IsaError {
    /// A short (one-parcel) branch target is outside the 10-bit
    /// PC-relative reach of −1024..+1022 bytes.
    ShortBranchOutOfRange {
        /// The requested byte offset.
        offset: i32,
    },
    /// A one-parcel register form was requested with a stack offset that
    /// is not a multiple of four or not within the 5-bit slot range.
    SlotOutOfRange {
        /// The requested SP-relative byte offset.
        offset: i32,
    },
    /// A 5-bit immediate form was requested with a value outside 0..=31.
    Imm5OutOfRange {
        /// The requested immediate.
        value: i32,
    },
    /// An SP-relative offset does not fit the 16-bit extension parcel and
    /// no 32-bit form exists for this operand pairing.
    SpOffOutOfRange {
        /// The requested SP-relative byte offset.
        offset: i32,
    },
    /// A stack-indirect operand (16-bit offset only) was paired with an
    /// operand requiring 32-bit extensions; the ISA has no wide
    /// stack-indirect mode, so the instruction must be split by the
    /// code generator.
    UnencodablePair,
    /// The destination of an operation was an immediate.
    ImmediateDestination,
    /// The parcel stream ended in the middle of an instruction.
    Truncated,
    /// The opcode bits of the first parcel do not name an instruction.
    BadOpcode {
        /// The offending first parcel.
        parcel: u16,
    },
    /// An operand-mode field held a combination the encoder never emits
    /// (for example mismatched extension widths).
    BadOperandMode {
        /// The offending mode bits.
        mode: u8,
    },
    /// A `Frame` (enter/leave) byte count was negative or not
    /// word-aligned.
    BadFrameSize {
        /// The requested frame size in bytes.
        bytes: u32,
    },
}

impl fmt::Display for IsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsaError::ShortBranchOutOfRange { offset } => {
                write!(f, "short branch offset {offset} outside -1024..=1022 bytes")
            }
            IsaError::SlotOutOfRange { offset } => {
                write!(
                    f,
                    "stack slot offset {offset} not encodable in a 5-bit slot field"
                )
            }
            IsaError::Imm5OutOfRange { value } => {
                write!(f, "immediate {value} outside the 5-bit range 0..=31")
            }
            IsaError::SpOffOutOfRange { offset } => {
                write!(f, "SP-relative offset {offset} outside the 16-bit range")
            }
            IsaError::UnencodablePair => {
                write!(
                    f,
                    "stack-indirect operand cannot pair with a 32-bit operand"
                )
            }
            IsaError::ImmediateDestination => {
                write!(f, "destination operand cannot be an immediate")
            }
            IsaError::Truncated => write!(f, "parcel stream truncated mid-instruction"),
            IsaError::BadOpcode { parcel } => {
                write!(f, "parcel {parcel:#06x} does not decode to an instruction")
            }
            IsaError::BadOperandMode { mode } => {
                write!(f, "invalid operand mode bits {mode:#x}")
            }
            IsaError::BadFrameSize { bytes } => {
                write!(f, "frame size {bytes} is not a word-aligned byte count")
            }
        }
    }
}

impl std::error::Error for IsaError {}

use std::fmt;

/// An instruction operand.
///
/// CRISP is a memory-to-memory architecture: ALU operations read and
/// write memory directly through a small set of addressing modes (the
/// paper: "a compare instruction can compare two operands located in
/// memory via four standard addressing modes"), plus an accumulator that
/// appears in the paper's code listings as `Accum`.
///
/// All data accesses are 32-bit words; addresses are byte addresses and
/// must be 4-aligned (the simulator masks the low two bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// The accumulator register.
    Accum,
    /// An immediate value (source positions only).
    Imm(i32),
    /// The word at `SP + offset` — a stack-frame slot.
    SpOff(i32),
    /// The word at an absolute address.
    Abs(u32),
    /// Indirect through a stack slot: the word at address
    /// `mem[SP + offset]`.
    SpInd(i32),
}

impl Operand {
    /// Whether this operand may appear as a destination.
    ///
    /// Immediates are sources only; everything else (including the
    /// accumulator) names a writable location.
    pub fn is_writable(self) -> bool {
        !matches!(self, Operand::Imm(_))
    }

    /// Whether the operand references memory (as opposed to the
    /// accumulator or an immediate).
    pub fn is_memory(self) -> bool {
        matches!(
            self,
            Operand::SpOff(_) | Operand::Abs(_) | Operand::SpInd(_)
        )
    }

    /// Whether this operand fits a compact 5-bit stack-slot field:
    /// an `SpOff` with a 4-aligned byte offset in `0..=124`.
    pub fn as_slot5(self) -> Option<u8> {
        match self {
            Operand::SpOff(off) if (0..=124).contains(&off) && off % 4 == 0 => {
                Some((off / 4) as u8)
            }
            _ => None,
        }
    }

    /// Whether this operand fits a compact 5-bit immediate field
    /// (an unsigned value in `0..=31`).
    pub fn as_imm5(self) -> Option<u8> {
        match self {
            Operand::Imm(v) if (0..=31).contains(&v) => Some(v as u8),
            _ => None,
        }
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Accum => write!(f, "Accum"),
            Operand::Imm(v) => write!(f, "${v}"),
            Operand::SpOff(off) => write!(f, "{off}(sp)"),
            Operand::Abs(a) => write!(f, "*{a:#x}"),
            Operand::SpInd(off) => write!(f, "[{off}(sp)]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writability() {
        assert!(Operand::Accum.is_writable());
        assert!(Operand::SpOff(8).is_writable());
        assert!(Operand::Abs(0x8000).is_writable());
        assert!(Operand::SpInd(-4).is_writable());
        assert!(!Operand::Imm(3).is_writable());
    }

    #[test]
    fn memory_classification() {
        assert!(!Operand::Accum.is_memory());
        assert!(!Operand::Imm(0).is_memory());
        assert!(Operand::SpOff(0).is_memory());
        assert!(Operand::Abs(0).is_memory());
        assert!(Operand::SpInd(0).is_memory());
    }

    #[test]
    fn slot5_bounds() {
        assert_eq!(Operand::SpOff(0).as_slot5(), Some(0));
        assert_eq!(Operand::SpOff(124).as_slot5(), Some(31));
        assert_eq!(Operand::SpOff(128).as_slot5(), None);
        assert_eq!(Operand::SpOff(-4).as_slot5(), None);
        assert_eq!(Operand::SpOff(6).as_slot5(), None); // misaligned
        assert_eq!(Operand::Accum.as_slot5(), None);
    }

    #[test]
    fn imm5_bounds() {
        assert_eq!(Operand::Imm(0).as_imm5(), Some(0));
        assert_eq!(Operand::Imm(31).as_imm5(), Some(31));
        assert_eq!(Operand::Imm(32).as_imm5(), None);
        assert_eq!(Operand::Imm(-1).as_imm5(), None);
        assert_eq!(Operand::SpOff(4).as_imm5(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Operand::Accum.to_string(), "Accum");
        assert_eq!(Operand::Imm(5).to_string(), "$5");
        assert_eq!(Operand::SpOff(8).to_string(), "8(sp)");
        assert_eq!(Operand::Abs(0x8000).to_string(), "*0x8000");
        assert_eq!(Operand::SpInd(12).to_string(), "[12(sp)]");
    }
}

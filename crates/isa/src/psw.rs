use std::fmt;

/// The Program Status Word.
///
/// The paper: "Conditional branches are conditioned on the value of a
/// single flag bit, kept in the Program Status Word register" and "the
/// condition code flag can only be modified as the result of a compare
/// instruction". That single flag is the entire architecturally visible
/// status state this reconstruction needs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Psw {
    /// The condition flag written by `cmp` and read by `ifjmp`.
    pub flag: bool,
}

impl Psw {
    /// A PSW with the flag clear.
    pub fn new() -> Psw {
        Psw::default()
    }
}

impl fmt::Display for Psw {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PSW{{F={}}}", u8::from(self.flag))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_flag_clear() {
        assert!(!Psw::new().flag);
        assert_eq!(Psw::new(), Psw::default());
    }

    #[test]
    fn display_nonempty() {
        assert_eq!(Psw { flag: true }.to_string(), "PSW{F=1}");
    }
}

//! Property tests: every encodable instruction round-trips through the
//! binary encoding, always occupies 1, 3 or 5 parcels, and folding is
//! consistent with the policy predicates.

use crisp_isa::{decode_and_fold, encoding, BinOp, BranchTarget, Cond, FoldPolicy, Instr, Operand};
use proptest::prelude::*;

fn arb_binop() -> impl Strategy<Value = BinOp> {
    prop::sample::select(BinOp::ALL.to_vec())
}

fn arb_cond() -> impl Strategy<Value = Cond> {
    prop::sample::select(Cond::ALL.to_vec())
}

/// Operands constrained to the encodable space (stack-indirect offsets
/// within 16 bits).
fn arb_operand() -> impl Strategy<Value = Operand> {
    prop_oneof![
        Just(Operand::Accum),
        any::<i32>().prop_map(Operand::Imm),
        any::<i32>().prop_map(Operand::SpOff),
        any::<u32>().prop_map(Operand::Abs),
        (-32768i32..=32767).prop_map(Operand::SpInd),
    ]
}

fn arb_writable() -> impl Strategy<Value = Operand> {
    arb_operand().prop_filter("writable", |o| o.is_writable())
}

fn arb_short_target() -> impl Strategy<Value = BranchTarget> {
    (-512i32..=511).prop_map(|p| BranchTarget::PcRel(p * 2))
}

fn arb_target() -> impl Strategy<Value = BranchTarget> {
    prop_oneof![
        arb_short_target(),
        any::<u32>().prop_map(BranchTarget::Abs),
        any::<u32>().prop_map(BranchTarget::IndAbs),
        any::<i32>().prop_map(BranchTarget::IndSp),
    ]
}

fn arb_instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        Just(Instr::Nop),
        Just(Instr::Halt),
        Just(Instr::Ret),
        (0u32..=(1 << 20)).prop_map(|w| Instr::Enter { bytes: w * 4 }),
        (0u32..=(1 << 20)).prop_map(|w| Instr::Leave { bytes: w * 4 }),
        (arb_binop(), arb_writable(), arb_operand()).prop_map(|(op, dst, src)| Instr::Op2 {
            op,
            dst,
            src
        }),
        (arb_binop(), arb_operand(), arb_operand()).prop_map(|(op, a, b)| Instr::Op3 { op, a, b }),
        (arb_cond(), arb_operand(), arb_operand()).prop_map(|(cond, a, b)| Instr::Cmp {
            cond,
            a,
            b
        }),
        arb_target().prop_map(|target| Instr::Jmp { target }),
        (any::<bool>(), any::<bool>(), arb_target()).prop_map(
            |(on_true, predict_taken, target)| Instr::IfJmp {
                on_true,
                predict_taken,
                target
            }
        ),
        arb_target().prop_map(|target| Instr::Call { target }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2048))]

    #[test]
    fn encode_decode_round_trip(instr in arb_instr()) {
        match encoding::encode(&instr) {
            Ok(parcels) => {
                prop_assert!(matches!(parcels.len(), 1 | 3 | 5),
                    "{instr} encoded to {} parcels", parcels.len());
                let (back, len) = encoding::decode(&parcels, 0).unwrap();
                prop_assert_eq!(len, parcels.len());
                prop_assert_eq!(back, instr);
                prop_assert_eq!(encoding::encoded_len(&instr).unwrap(), parcels.len());
            }
            Err(crisp_isa::IsaError::UnencodablePair) => {
                // Legal refusal: stack-indirect paired with a 32-bit operand.
            }
            Err(e) => return Err(TestCaseError::fail(format!("{instr}: {e}"))),
        }
    }

    #[test]
    fn decode_never_panics(parcels in prop::collection::vec(any::<u16>(), 0..6)) {
        let _ = encoding::decode(&parcels, 0);
    }

    #[test]
    fn decoded_instructions_reencode(parcels in prop::collection::vec(any::<u16>(), 1..6)) {
        // Any bit pattern that decodes must re-encode to an instruction
        // that decodes back to itself (encode need not reproduce the
        // exact bits: compact/general forms can alias).
        if let Ok((instr, _len)) = encoding::decode(&parcels, 0) {
            if let Ok(re) = encoding::encode(&instr) {
                let (again, _) = encoding::decode(&re, 0).unwrap();
                prop_assert_eq!(again, instr);
            }
        }
    }

    #[test]
    fn fold_respects_policy(
        host in arb_instr(),
        target_off in -512i32..=511,
        on_true in any::<bool>(),
        pred in any::<bool>(),
    ) {
        let branch = Instr::IfJmp {
            on_true,
            predict_taken: pred,
            target: BranchTarget::PcRel(target_off * 2),
        };
        let (Ok(hp), Ok(bp)) = (encoding::encode(&host), encoding::encode(&branch)) else {
            return Ok(());
        };
        let mut stream = hp.clone();
        stream.extend(&bp);
        for policy in [FoldPolicy::None, FoldPolicy::Host1, FoldPolicy::Host13, FoldPolicy::All] {
            let d = decode_and_fold(&stream, 0, 0x1000, policy).unwrap();
            let expect = policy.host_ok(&host) && policy.branch_ok(&branch)
                // A host that is itself a control transfer produces its
                // own entry before folding is even considered.
                && !host.is_control();
            prop_assert_eq!(d.folded, expect, "policy {:?} host {}", policy, host);
            if d.folded {
                prop_assert_eq!(
                    d.len_bytes,
                    (hp.len() + bp.len()) as u32 * 2
                );
                prop_assert!(d.alt_pc.is_some());
            }
        }
    }

    #[test]
    fn folded_cond_paths_are_branch_relative(
        target_off in -500i32..=500,
        pred in any::<bool>(),
    ) {
        // Verify the branch-adjust datapath (Figure 2): the PC-relative
        // offset is applied at the branch's own address, which trails the
        // host by the host's length.
        let host = Instr::Op2 {
            op: BinOp::Add,
            dst: Operand::SpOff(0),
            src: Operand::SpOff(4),
        };
        let branch = Instr::IfJmp {
            on_true: true,
            predict_taken: pred,
            target: BranchTarget::PcRel(target_off * 2),
        };
        let mut stream = encoding::encode(&host).unwrap();
        stream.extend(encoding::encode(&branch).unwrap());
        let pc = 0x4000u32;
        let d = decode_and_fold(&stream, 0, pc, FoldPolicy::Host13).unwrap();
        prop_assert!(d.folded);
        let (taken, seq) = d.cond_paths().unwrap();
        prop_assert_eq!(taken, (pc + 2).wrapping_add((target_off * 2) as u32));
        prop_assert_eq!(seq, pc + 4);
    }
}

use std::fmt;

use crisp_asm::AsmError;

/// Errors from the mini-C compiler.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CcError {
    /// Lexical error.
    Lex {
        /// 1-based source line.
        line: usize,
        /// Description.
        message: String,
    },
    /// Syntax error.
    Parse {
        /// 1-based source line.
        line: usize,
        /// Description.
        message: String,
    },
    /// Semantic error (names, arity, assignability).
    Sema {
        /// Description.
        message: String,
    },
    /// Construct outside the supported mini-C subset for the selected
    /// backend.
    Unsupported {
        /// Description.
        message: String,
    },
    /// Assembly of the generated code failed.
    Asm(AsmError),
}

impl fmt::Display for CcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CcError::Lex { line, message } => write!(f, "lex error, line {line}: {message}"),
            CcError::Parse { line, message } => {
                write!(f, "parse error, line {line}: {message}")
            }
            CcError::Sema { message } => write!(f, "semantic error: {message}"),
            CcError::Unsupported { message } => write!(f, "unsupported: {message}"),
            CcError::Asm(e) => write!(f, "assembly failed: {e}"),
        }
    }
}

impl std::error::Error for CcError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CcError::Asm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AsmError> for CcError {
    fn from(e: AsmError) -> CcError {
        CcError::Asm(e)
    }
}

//! VAX-lite code generation, used for the paper's Table 2 comparison.
//!
//! The backend reproduces the idioms a period VAX C compiler emitted for
//! the Figure 3 program (visible in the paper's instruction counts):
//! `x++` becomes `incl`; `x += e` becomes `addl2`; `if (x & c)` becomes
//! `bitl` + `jeql`/`jneq`; loops test at the **top** (`cmpl` + inverted
//! conditional jump past the body) with a `jbr` back edge; `x = 0`
//! becomes `clrl`. Locals are pre-assigned data slots (the VAX-lite VM
//! has no frame pointer), so recursive functions are rejected — none of
//! the Table 2 workloads recurse.

use std::collections::BTreeMap;

use vax_lite::{Operand as VOp, Program, VaxInstr};

use crate::ast::{BinaryOp, Expr, Function, Item as AstItem, LValue, Stmt, UnaryOp, Unit};
use crate::CcError;

/// Generate a VAX-lite program for a unit. Execution starts at `main`
/// (via the entry `calls` + `halt` stub).
///
/// # Errors
///
/// [`CcError::Sema`] for name errors; [`CcError::Unsupported`] for
/// constructs the VAX-lite substrate does not model (arrays, recursion).
pub fn generate(unit: &Unit) -> Result<Program, CcError> {
    let mut g = VaxGen {
        unit,
        p: Program::new(),
        func: String::new(),
        scopes: Vec::new(),
        loop_labels: Vec::new(),
        next_label: 0,
        call_stack: Vec::new(),
    };
    if unit.function("main").is_none() {
        return Err(CcError::Sema {
            message: "no `main` function defined".into(),
        });
    }
    for item in &unit.items {
        match item {
            AstItem::Global { name, init } => {
                let slot = g.p.alloc_slot(name);
                if let Some(v) = init {
                    // Initialised data: emitted as startup stores before
                    // main is entered.
                    g.p.push(VaxInstr::Movl(VOp::Loc(slot), VOp::Imm(*v)));
                }
            }
            AstItem::Array { .. } => {
                return Err(CcError::Unsupported {
                    message: "the VAX-lite backend does not support arrays".into(),
                })
            }
            AstItem::Function(_) => {}
        }
    }
    g.p.push_branch(VaxInstr::Calls(0), "main");
    g.p.push(VaxInstr::Halt);
    for item in &unit.items {
        if let AstItem::Function(f) = item {
            g.function(f)?;
        }
    }
    Ok(g.p)
}

struct VaxGen<'a> {
    unit: &'a Unit,
    p: Program,
    func: String,
    /// Lexical scopes: source name → mangled slot name.
    scopes: Vec<BTreeMap<String, String>>,
    loop_labels: Vec<(String, String)>,
    next_label: usize,
    /// Call chain for recursion detection.
    call_stack: Vec<String>,
}

impl<'a> VaxGen<'a> {
    fn sema<T>(&self, message: impl Into<String>) -> Result<T, CcError> {
        Err(CcError::Sema {
            message: message.into(),
        })
    }

    fn fresh(&mut self, stem: &str) -> String {
        self.next_label += 1;
        format!(".V{}_{stem}", self.next_label)
    }

    fn slot_for(&mut self, name: &str) -> Option<u32> {
        for scope in self.scopes.iter().rev() {
            if let Some(mangled) = scope.get(name) {
                let m = mangled.clone();
                return Some(self.p.alloc_slot(&m));
            }
        }
        // Globals use their bare name; only return known ones.
        self.p.slot(name)
    }

    fn lvalue(&mut self, lv: &LValue) -> Result<VOp, CcError> {
        match lv {
            LValue::Var(name) => match self.slot_for(name) {
                Some(s) => Ok(VOp::Loc(s)),
                None => self.sema(format!("undefined variable `{name}`")),
            },
            LValue::Index(..) => Err(CcError::Unsupported {
                message: "the VAX-lite backend does not support arrays".into(),
            }),
        }
    }

    /// A fresh anonymous temporary slot.
    fn temp(&mut self) -> VOp {
        let name = self.fresh("tmp");
        VOp::Loc(self.p.alloc_slot(&name))
    }

    // ---- expressions ----

    fn eval(&mut self, e: &Expr) -> Result<VOp, CcError> {
        match e {
            Expr::Lit(v) => Ok(VOp::Imm(*v)),
            Expr::Load(lv) => self.lvalue(lv),
            Expr::Unary(op, inner) => {
                let v = self.eval(inner)?;
                let t = self.temp();
                match op {
                    UnaryOp::Neg => {
                        self.p.push(VaxInstr::Subl3(t, VOp::Imm(0), v));
                    }
                    UnaryOp::Not => {
                        self.p.push(VaxInstr::Mcoml(t, v));
                    }
                    UnaryOp::LogNot => return self.truth_value(e),
                }
                Ok(t)
            }
            Expr::Binary(op, a, b) => {
                if op.is_comparison() || matches!(op, BinaryOp::LogAnd | BinaryOp::LogOr) {
                    return self.truth_value(e);
                }
                let va = self.eval(a)?;
                let t = self.temp();
                self.p.push(VaxInstr::Movl(t, va));
                let vb = self.eval(b)?;
                match op {
                    BinaryOp::Add => self.p.push(VaxInstr::Addl2(t, vb)),
                    BinaryOp::Sub => self.p.push(VaxInstr::Subl2(t, vb)),
                    BinaryOp::Mul => self.p.push(VaxInstr::Mull2(t, vb)),
                    BinaryOp::Div => self.p.push(VaxInstr::Divl2(t, vb)),
                    BinaryOp::Rem => {
                        // r = a - (a / b) * b, VAX-style synthesis.
                        let q = self.temp();
                        self.p.push(VaxInstr::Movl(q, t));
                        self.p.push(VaxInstr::Divl2(q, vb));
                        self.p.push(VaxInstr::Mull2(q, vb));
                        self.p.push(VaxInstr::Subl2(t, q));
                    }
                    BinaryOp::And => {
                        // AND via complement + bit-clear (the VAX idiom).
                        let m = self.temp();
                        self.p.push(VaxInstr::Mcoml(m, vb));
                        self.p.push(VaxInstr::Bicl2(t, m));
                    }
                    BinaryOp::Or => self.p.push(VaxInstr::Bisl2(t, vb)),
                    BinaryOp::Xor => self.p.push(VaxInstr::Xorl2(t, vb)),
                    BinaryOp::Shl => self.p.push(VaxInstr::Ashl(t, vb, t)),
                    BinaryOp::Shr => {
                        let neg = self.temp();
                        self.p.push(VaxInstr::Subl3(neg, VOp::Imm(0), vb));
                        self.p.push(VaxInstr::Ashl(t, neg, t));
                    }
                    _ => unreachable!("handled above"),
                }
                Ok(t)
            }
            Expr::Assign(lv, rhs) => {
                let loc = self.lvalue(lv)?;
                match rhs.as_ref() {
                    Expr::Lit(0) => self.p.push(VaxInstr::Clrl(loc)),
                    _ => {
                        let v = self.eval(rhs)?;
                        self.p.push(VaxInstr::Movl(loc, v));
                    }
                }
                Ok(loc)
            }
            Expr::AssignOp(op, lv, rhs) => {
                let loc = self.lvalue(lv)?;
                let v = self.eval(rhs)?;
                match op {
                    BinaryOp::Add => self.p.push(VaxInstr::Addl2(loc, v)),
                    BinaryOp::Sub => self.p.push(VaxInstr::Subl2(loc, v)),
                    BinaryOp::Mul => self.p.push(VaxInstr::Mull2(loc, v)),
                    BinaryOp::Div => self.p.push(VaxInstr::Divl2(loc, v)),
                    BinaryOp::Or => self.p.push(VaxInstr::Bisl2(loc, v)),
                    BinaryOp::Xor => self.p.push(VaxInstr::Xorl2(loc, v)),
                    BinaryOp::And => {
                        let m = self.temp();
                        self.p.push(VaxInstr::Mcoml(m, v));
                        self.p.push(VaxInstr::Bicl2(loc, m));
                    }
                    BinaryOp::Shl => self.p.push(VaxInstr::Ashl(loc, v, loc)),
                    BinaryOp::Shr => {
                        let neg = self.temp();
                        self.p.push(VaxInstr::Subl3(neg, VOp::Imm(0), v));
                        self.p.push(VaxInstr::Ashl(loc, neg, loc));
                    }
                    other => return self.sema(format!("unsupported compound operator {other:?}")),
                }
                Ok(loc)
            }
            Expr::IncDec { lv, delta, post } => {
                let loc = self.lvalue(lv)?;
                let result = if *post {
                    let t = self.temp();
                    self.p.push(VaxInstr::Movl(t, loc));
                    t
                } else {
                    loc
                };
                self.p.push(if *delta >= 0 {
                    VaxInstr::Incl(loc)
                } else {
                    VaxInstr::Decl(loc)
                });
                Ok(result)
            }
            Expr::Call(name, args) => self.call(name, args),
            Expr::Cond(c, a, b) => {
                let t = self.temp();
                let lf = self.fresh("cfalse");
                let le = self.fresh("cend");
                self.branch_cond(c, &lf, false)?;
                let va = self.eval(a)?;
                self.p.push(VaxInstr::Movl(t, va));
                self.p.push_branch(VaxInstr::Jbr(0), &le);
                self.p.label(&lf);
                let vb = self.eval(b)?;
                self.p.push(VaxInstr::Movl(t, vb));
                self.p.label(&le);
                Ok(t)
            }
        }
    }

    fn truth_value(&mut self, e: &Expr) -> Result<VOp, CcError> {
        let t = self.temp();
        let lf = self.fresh("false");
        let le = self.fresh("end");
        self.branch_cond(e, &lf, false)?;
        self.p.push(VaxInstr::Movl(t, VOp::Imm(1)));
        self.p.push_branch(VaxInstr::Jbr(0), &le);
        self.p.label(&lf);
        self.p.push(VaxInstr::Clrl(t));
        self.p.label(&le);
        Ok(t)
    }

    /// Conditional jump selection: `(when_true, when_false)` for a
    /// comparison operator.
    fn jumps(op: BinaryOp, t: usize) -> (VaxInstr, VaxInstr) {
        match op {
            BinaryOp::Lt => (VaxInstr::Jlss(t), VaxInstr::Jgeq(t)),
            BinaryOp::Le => (VaxInstr::Jleq(t), VaxInstr::Jgtr(t)),
            BinaryOp::Gt => (VaxInstr::Jgtr(t), VaxInstr::Jleq(t)),
            BinaryOp::Ge => (VaxInstr::Jgeq(t), VaxInstr::Jlss(t)),
            BinaryOp::Eq => (VaxInstr::Jeql(t), VaxInstr::Jneq(t)),
            BinaryOp::Ne => (VaxInstr::Jneq(t), VaxInstr::Jeql(t)),
            _ => unreachable!("not a comparison"),
        }
    }

    fn branch_cond(&mut self, e: &Expr, target: &str, jump_if: bool) -> Result<(), CcError> {
        match e {
            Expr::Lit(v) => {
                if (*v != 0) == jump_if {
                    self.p.push_branch(VaxInstr::Jbr(0), target);
                }
                Ok(())
            }
            Expr::Unary(UnaryOp::LogNot, inner) => self.branch_cond(inner, target, !jump_if),
            Expr::Binary(op, a, b) if op.is_comparison() => {
                let va = self.eval(a)?;
                let vb = self.eval(b)?;
                self.p.push(VaxInstr::Cmpl(va, vb));
                let (jt, jf) = Self::jumps(*op, 0);
                self.p.push_branch(if jump_if { jt } else { jf }, target);
                Ok(())
            }
            // The classic VAX idiom: `if (x & mask)` → bitl + jneq/jeql.
            Expr::Binary(BinaryOp::And, a, b) => {
                let va = self.eval(a)?;
                let vb = self.eval(b)?;
                self.p.push(VaxInstr::Bitl(va, vb));
                self.p.push_branch(
                    if jump_if {
                        VaxInstr::Jneq(0)
                    } else {
                        VaxInstr::Jeql(0)
                    },
                    target,
                );
                Ok(())
            }
            Expr::Binary(BinaryOp::LogAnd, a, b) => {
                if jump_if {
                    let skip = self.fresh("and");
                    self.branch_cond(a, &skip, false)?;
                    self.branch_cond(b, target, true)?;
                    self.p.label(&skip);
                } else {
                    self.branch_cond(a, target, false)?;
                    self.branch_cond(b, target, false)?;
                }
                Ok(())
            }
            Expr::Binary(BinaryOp::LogOr, a, b) => {
                if jump_if {
                    self.branch_cond(a, target, true)?;
                    self.branch_cond(b, target, true)?;
                } else {
                    let skip = self.fresh("or");
                    self.branch_cond(a, &skip, true)?;
                    self.branch_cond(b, target, false)?;
                    self.p.label(&skip);
                }
                Ok(())
            }
            _ => {
                let v = self.eval(e)?;
                self.p.push(VaxInstr::Tstl(v));
                self.p.push_branch(
                    if jump_if {
                        VaxInstr::Jneq(0)
                    } else {
                        VaxInstr::Jeql(0)
                    },
                    target,
                );
                Ok(())
            }
        }
    }

    fn call(&mut self, name: &str, args: &[Expr]) -> Result<VOp, CcError> {
        let Some(callee) = self.unit.function(name) else {
            return self.sema(format!("call to undefined function `{name}`"));
        };
        if callee.params.len() != args.len() {
            return self.sema(format!(
                "`{name}` takes {} argument(s), {} given",
                callee.params.len(),
                args.len()
            ));
        }
        if self.call_stack.iter().any(|f| f == name) || name == self.func {
            return Err(CcError::Unsupported {
                message: format!(
                    "recursion through `{name}` is not supported by the VAX-lite backend"
                ),
            });
        }
        for (i, a) in args.iter().enumerate() {
            let v = self.eval(a)?;
            let pname = format!("{name}.arg{i}");
            let slot = self.p.alloc_slot(&pname);
            self.p.push(VaxInstr::Movl(VOp::Loc(slot), v));
        }
        self.p.push_branch(VaxInstr::Calls(0), name);
        // Return value convention: r0.
        let t = self.temp();
        self.p.push(VaxInstr::Movl(t, VOp::Reg(0)));
        Ok(t)
    }

    /// Evaluate an expression whose value is discarded: post-increment
    /// needs no old-value save (`i++` is a single `incl`, as a real VAX
    /// compiler emitted).
    fn eval_discard(&mut self, e: &Expr) -> Result<(), CcError> {
        if let Expr::IncDec { lv, delta, .. } = e {
            let loc = self.lvalue(lv)?;
            self.p.push(if *delta >= 0 {
                VaxInstr::Incl(loc)
            } else {
                VaxInstr::Decl(loc)
            });
            return Ok(());
        }
        self.eval(e)?;
        Ok(())
    }

    // ---- statements ----

    fn stmt(&mut self, s: &Stmt) -> Result<(), CcError> {
        match s {
            Stmt::Empty => Ok(()),
            Stmt::Block(body) => {
                self.scopes.push(BTreeMap::new());
                for s in body {
                    self.stmt(s)?;
                }
                self.scopes.pop();
                Ok(())
            }
            Stmt::Decl(decls) => {
                for (name, init) in decls {
                    let mangled = format!("{}.{}", self.func, name);
                    let scope = self.scopes.last_mut().expect("scope stack");
                    if scope.insert(name.clone(), mangled.clone()).is_some() {
                        return self.sema(format!("duplicate local `{name}`"));
                    }
                    let slot = self.p.alloc_slot(&mangled);
                    if let Some(e) = init {
                        match e {
                            Expr::Lit(0) => self.p.push(VaxInstr::Clrl(VOp::Loc(slot))),
                            _ => {
                                let v = self.eval(e)?;
                                self.p.push(VaxInstr::Movl(VOp::Loc(slot), v));
                            }
                        }
                    }
                }
                Ok(())
            }
            Stmt::Expr(e) => self.eval_discard(e),
            Stmt::If(cond, then, els) => {
                let lelse = self.fresh("else");
                let lend = self.fresh("endif");
                self.branch_cond(cond, &lelse, false)?;
                self.stmt(then)?;
                if let Some(els) = els {
                    self.p.push_branch(VaxInstr::Jbr(0), &lend);
                    self.p.label(&lelse);
                    self.stmt(els)?;
                    self.p.label(&lend);
                } else {
                    self.p.label(&lelse);
                }
                Ok(())
            }
            Stmt::While(cond, body) => {
                let ltest = self.fresh("wtest");
                let lexit = self.fresh("wexit");
                self.p.label(&ltest);
                self.branch_cond(cond, &lexit, false)?;
                self.loop_labels.push((lexit.clone(), ltest.clone()));
                self.stmt(body)?;
                self.loop_labels.pop();
                self.p.push_branch(VaxInstr::Jbr(0), &ltest);
                self.p.label(&lexit);
                Ok(())
            }
            Stmt::DoWhile(body, cond) => {
                let lbody = self.fresh("dbody");
                let ltest = self.fresh("dtest");
                let lexit = self.fresh("dexit");
                self.p.label(&lbody);
                self.loop_labels.push((lexit.clone(), ltest.clone()));
                self.stmt(body)?;
                self.loop_labels.pop();
                self.p.label(&ltest);
                self.branch_cond(cond, &lbody, true)?;
                self.p.label(&lexit);
                Ok(())
            }
            Stmt::For(init, cond, step, body) => {
                // Top-test form, as period VAX compilers emitted.
                let ltest = self.fresh("ftest");
                let lstep = self.fresh("fstep");
                let lexit = self.fresh("fexit");
                if let Some(init) = init {
                    self.stmt(init)?;
                }
                self.p.label(&ltest);
                if let Some(cond) = cond {
                    self.branch_cond(cond, &lexit, false)?;
                }
                self.loop_labels.push((lexit.clone(), lstep.clone()));
                self.stmt(body)?;
                self.loop_labels.pop();
                self.p.label(&lstep);
                if let Some(step) = step {
                    self.eval_discard(step)?;
                }
                self.p.push_branch(VaxInstr::Jbr(0), &ltest);
                self.p.label(&lexit);
                Ok(())
            }
            Stmt::Return(e) => {
                if let Some(e) = e {
                    let v = self.eval(e)?;
                    self.p.push(VaxInstr::Movl(VOp::Reg(0), v));
                }
                self.p.push(VaxInstr::Ret);
                Ok(())
            }
            Stmt::Switch(scrutinee, cases) => {
                let lend = self.fresh("swend");
                let labels: Vec<String> = (0..cases.len()).map(|_| self.fresh("vcase")).collect();
                let default_label = cases
                    .iter()
                    .position(|c| c.value.is_none())
                    .map(|i| labels[i].clone())
                    .unwrap_or_else(|| lend.clone());
                let v = self.eval(scrutinee)?;
                let t = self.temp();
                self.p.push(VaxInstr::Movl(t, v));
                for (case, label) in cases.iter().zip(&labels) {
                    if let Some(k) = case.value {
                        self.p.push(VaxInstr::Cmpl(t, VOp::Imm(k)));
                        self.p.push_branch(VaxInstr::Jeql(0), label);
                    }
                }
                self.p.push_branch(VaxInstr::Jbr(0), &default_label);
                // `break` targets the switch end; `continue` still
                // targets the enclosing loop.
                let inherited_continue = self
                    .loop_labels
                    .last()
                    .map(|(_, c)| c.clone())
                    .unwrap_or_default();
                self.loop_labels.push((lend.clone(), inherited_continue));
                for (case, label) in cases.iter().zip(&labels) {
                    self.p.label(label);
                    for s in &case.body {
                        self.stmt(s)?;
                    }
                }
                self.loop_labels.pop();
                self.p.label(&lend);
                Ok(())
            }
            Stmt::Break => match self.loop_labels.last().cloned() {
                Some((brk, _)) => {
                    self.p.push_branch(VaxInstr::Jbr(0), &brk);
                    Ok(())
                }
                None => self.sema("`break` outside a loop"),
            },
            Stmt::Continue => match self.loop_labels.last().cloned() {
                Some((_, cont)) => {
                    self.p.push_branch(VaxInstr::Jbr(0), &cont);
                    Ok(())
                }
                None => self.sema("`continue` outside a loop"),
            },
        }
    }

    fn function(&mut self, func: &Function) -> Result<(), CcError> {
        self.func = func.name.clone();
        self.p.label(&func.name);
        let mut scope = BTreeMap::new();
        for (i, pname) in func.params.iter().enumerate() {
            // Parameters arrive in the caller-filled argument slots.
            scope.insert(pname.clone(), format!("{}.arg{i}", func.name));
        }
        self.scopes.push(scope);
        for s in &func.body {
            self.stmt(s)?;
        }
        self.scopes.pop();
        self.p.push(VaxInstr::Ret);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn run(src: &str) -> vax_lite::RunResult {
        let unit = parse(src).unwrap();
        generate(&unit).unwrap().run(10_000_000).unwrap()
    }

    #[test]
    fn figure3_shape_counts() {
        let r = run("
            void main() {
                int i, j, odd, even, sum;
                sum = 0;
                j = odd = even = 0;
                for (i = 0; i < 1024; i++) {
                    sum += i;
                    if (i & 1) odd++;
                    else even++;
                    j = sum;
                }
            }
        ");
        // The paper's Table 2 shape: incl ≈ 2048, bitl = jeql = 1024,
        // cmpl = jgeq = 1025, addl2 = 1024, jbr = 1536.
        assert_eq!(r.counts.get("incl"), 2048);
        assert_eq!(r.counts.get("bitl"), 1024);
        assert_eq!(r.counts.get("jeql"), 1024);
        assert_eq!(r.counts.get("cmpl"), 1025);
        assert_eq!(r.counts.get("jgeq"), 1025);
        assert_eq!(r.counts.get("addl2"), 1024);
        assert_eq!(r.counts.get("jbr"), 1536);
        assert_eq!(r.counts.get("calls"), 1);
        assert_eq!(r.counts.get("ret"), 1);
    }

    #[test]
    fn arithmetic_results_match_semantics() {
        let r = run("
            int a; int b; int c; int d; int e; int f; int g;
            void main() {
                a = 7 + 3 * 2;      // 13
                b = (7 - 10);       // -3
                c = 7 & 12;         // 4
                d = 7 | 8;          // 15
                e = 7 ^ 5;          // 2
                f = 3 << 4;         // 48
                g = -64 >> 3;       // -8
            }
        ");
        let vals: Vec<i32> = ["a", "b", "c", "d", "e", "f", "g"]
            .iter()
            .map(|_| 0)
            .collect();
        let _ = vals;
        // Globals are the first allocated slots, in declaration order.
        assert_eq!(r.memory[0], 13);
        assert_eq!(r.memory[1], -3);
        assert_eq!(r.memory[2], 4);
        assert_eq!(r.memory[3], 15);
        assert_eq!(r.memory[4], 2);
        assert_eq!(r.memory[5], 48);
        assert_eq!(r.memory[6], -8);
    }

    #[test]
    fn rem_synthesis() {
        let r = run("int a; void main() { int x; x = 17; a = x % 5; }");
        assert_eq!(r.memory[0], 2);
    }

    #[test]
    fn calls_pass_arguments_and_return() {
        let r = run("
            int out;
            int add3(int a, int b, int c) { return a + b + c; }
            void main() { out = add3(1, 2, 3); }
        ");
        assert_eq!(r.memory[0], 6);
    }

    #[test]
    fn recursion_rejected() {
        let unit = parse("int f(int n) { return f(n); } void main() { f(1); }").unwrap();
        let e = generate(&unit).unwrap_err();
        assert!(matches!(e, CcError::Unsupported { .. }), "{e}");
    }

    #[test]
    fn arrays_rejected() {
        let unit = parse("int a[4]; void main() { }").unwrap();
        assert!(matches!(generate(&unit), Err(CcError::Unsupported { .. })));
    }

    #[test]
    fn control_flow() {
        let r = run("
            int out;
            void main() {
                int i;
                out = 0;
                for (i = 0; i < 10; i++) {
                    if (i == 5) continue;
                    if (i == 8) break;
                    out += i;
                }
            }
        ");
        // 0+1+2+3+4+6+7 = 23
        assert_eq!(r.memory[0], 23);
    }

    #[test]
    fn logical_ops_short_circuit() {
        let r = run("
            int out; int touched;
            int side() { touched = 1; return 1; }
            void main() {
                out = (0 && side()) + (1 || side());
            }
        ");
        assert_eq!(r.memory[0], 1);
        assert_eq!(r.memory[1], 0, "short-circuit must skip side()");
    }
}

//! Abstract syntax tree for the mini-C language.
//!
//! The language is the integer subset of C the paper's programs need:
//! `int` scalars and one-dimensional global `int` arrays, functions,
//! the usual statements and operators (including short-circuit `&&`/`||`
//! and pre/post increment), no pointers, structs or floats.

/// A binary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum BinaryOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    LogAnd,
    LogOr,
}

impl BinaryOp {
    /// Whether this operator yields a 0/1 truth value via comparison.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinaryOp::Lt | BinaryOp::Le | BinaryOp::Gt | BinaryOp::Ge | BinaryOp::Eq | BinaryOp::Ne
        )
    }
}

/// A unary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum UnaryOp {
    Neg,
    Not,    // bitwise ~
    LogNot, // logical !
}

/// An assignable location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LValue {
    /// A scalar variable.
    Var(String),
    /// An element of a (global) array.
    Index(String, Box<Expr>),
}

/// An expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Lit(i32),
    /// Load from an lvalue.
    Load(LValue),
    /// Unary operation.
    Unary(UnaryOp, Box<Expr>),
    /// Binary operation (including comparisons and short-circuit ops).
    Binary(BinaryOp, Box<Expr>, Box<Expr>),
    /// Assignment `lv = e` (value is `e`).
    Assign(LValue, Box<Expr>),
    /// Compound assignment `lv op= e`.
    AssignOp(BinaryOp, LValue, Box<Expr>),
    /// Pre/post increment or decrement; `post` selects the flavour and
    /// `delta` is +1 or −1.
    IncDec {
        /// The updated location.
        lv: LValue,
        /// +1 for `++`, −1 for `--`.
        delta: i32,
        /// `true` for the postfix form (value before update).
        post: bool,
    },
    /// Function call.
    Call(String, Vec<Expr>),
    /// Ternary conditional `c ? a : b`.
    Cond(Box<Expr>, Box<Expr>, Box<Expr>),
}

/// A statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// Local declaration(s) `int a, b = 3;` — `(name, initialiser)`.
    Decl(Vec<(String, Option<Expr>)>),
    /// Expression evaluated for side effects.
    Expr(Expr),
    /// `if (cond) then else`
    If(Expr, Box<Stmt>, Option<Box<Stmt>>),
    /// `while (cond) body`
    While(Expr, Box<Stmt>),
    /// `do body while (cond);`
    DoWhile(Box<Stmt>, Expr),
    /// `for (init; cond; step) body` — all three optional.
    For(Option<Box<Stmt>>, Option<Expr>, Option<Expr>, Box<Stmt>),
    /// `return e;` / `return;`
    Return(Option<Expr>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// `{ ... }`
    Block(Vec<Stmt>),
    /// `switch (e) { case k: ... default: ... }` with C fallthrough
    /// semantics; `break` exits the switch.
    Switch(Expr, Vec<SwitchCase>),
    /// `;`
    Empty,
}

/// One arm of a `switch`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwitchCase {
    /// The case value; `None` for `default:`.
    pub value: Option<i32>,
    /// Statements up to the next label (fallthrough continues into the
    /// following case's body).
    pub body: Vec<Stmt>,
}

/// A top-level item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Item {
    /// Global scalar `int g;` or `int g = init;`.
    Global {
        /// Variable name.
        name: String,
        /// Constant initialiser.
        init: Option<i32>,
    },
    /// Global array `int a[N];`.
    Array {
        /// Array name.
        name: String,
        /// Element count.
        len: u32,
        /// Constant element initialisers (shorter than `len` allowed;
        /// the rest is zero).
        init: Vec<i32>,
    },
    /// Function definition.
    Function(Function),
}

/// A function definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Parameter names (all `int`).
    pub params: Vec<String>,
    /// Whether the function returns a value (`int` vs `void`).
    pub returns_value: bool,
    /// The body.
    pub body: Vec<Stmt>,
}

/// A whole translation unit.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Unit {
    /// Top-level items in source order.
    pub items: Vec<Item>,
}

impl Unit {
    /// Find a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.items.iter().find_map(|i| match i {
            Item::Function(f) if f.name == name => Some(f),
            _ => None,
        })
    }
}

//! CRISP code generation from the mini-C AST.
//!
//! The generated code follows the idioms visible in the paper's Table 3
//! listing: locals live in SP-relative stack slots, expression
//! temporaries flow through the accumulator (`and3 i,1`), truth tests
//! compile to `cmp.= Accum,0` + `ifjmpy`, and loops test at the bottom
//! with a backward conditional branch (plus one entry jump to the test),
//! which is what makes the Table 2 dynamic counts line up with the
//! paper's.
//!
//! Calling convention: the caller allocates an argument block
//! (`enter 4·n`), stores the arguments, and `call`s; the callee
//! allocates its frame (`enter L`) on top, so inside the callee the
//! layout is `[locals+temps: 0..L) [return address: L] [args: L+4...]`.
//! Return values travel in the accumulator.

use std::collections::BTreeMap;

use crisp_asm::{Image, Item, Module};
use crisp_isa::{BinOp, Cond, Instr, Operand};

use crate::ast::{BinaryOp, Expr, Function, Item as AstItem, LValue, Stmt, Unit};
use crate::spread::{self, RwSets};
use crate::CcError;

/// Sentinel byte-offset base marking parameter accesses until the frame
/// size is known (rewritten in [`finish_function`]).
const PARAM_BASE: i32 = 0x0010_0000;

/// Generate a [`Module`] (assembly items + data blocks) for a unit.
///
/// The module starts with an entry stub (`call main; halt`) followed by
/// each function. Global data is laid out from
/// [`Image::DEFAULT_DATA_BASE`]. When `spread` is on, statement fill is
/// applied during generation (see [`crate::spread`]): statements that
/// follow an `if` and commute with its arms are emitted between the
/// compare and the conditional branch.
///
/// # Errors
///
/// [`CcError::Sema`] for name errors, [`CcError::Unsupported`] for
/// constructs outside the mini-C subset.
pub fn generate(unit: &Unit, spread: bool) -> Result<Module, CcError> {
    let mut g = CrispGen::new(unit, spread)?;
    if unit.function("main").is_none() {
        return Err(CcError::Sema {
            message: "no `main` function defined".into(),
        });
    }
    // Entry stub.
    g.items.push(Item::CallTo {
        label: "main".into(),
    });
    g.items.push(Item::Instr(Instr::Halt));
    for item in &unit.items {
        if let AstItem::Function(f) = item {
            g.function(f)?;
        }
    }
    let mut module = Module::new();
    module.items = g.items;
    module.data = g.data;
    Ok(module)
}

/// Where a value currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Val {
    /// A compile-time constant.
    Imm(i32),
    /// A named local / parameter slot (not owned).
    Slot(i32),
    /// An owned temporary slot (freed after use).
    Temp(i32),
    /// A global scalar.
    Global(u32),
    /// The accumulator.
    Accum,
    /// Indirect through an owned temporary holding an address.
    Ind(i32),
}

struct GlobalInfo {
    addr: u32,
    /// Element count; scalars have 1 and may not be indexed.
    len: u32,
}

struct FuncCtx {
    /// Lexical scopes: name → slot byte offset (or `PARAM_BASE + 4i`).
    scopes: Vec<BTreeMap<String, i32>>,
    /// Next fresh local/temp slot offset.
    next_slot: i32,
    /// Free temp slots for reuse.
    free_temps: Vec<i32>,
    /// Current SP displacement from the frame base (inside a call's
    /// argument window).
    sp_adjust: i32,
    /// `break` targets, innermost last (loops and switches).
    break_labels: Vec<String>,
    /// `continue` targets, innermost last (loops only).
    continue_labels: Vec<String>,
    /// Item indices of `Enter`/`Leave` placeholders to patch with the
    /// final frame size.
    frame_patches: Vec<usize>,
    returns_value: bool,
    fname: String,
}

struct CrispGen<'a> {
    unit: &'a Unit,
    items: Vec<Item>,
    globals: BTreeMap<String, GlobalInfo>,
    data: Vec<(u32, Vec<i32>)>,
    next_label: usize,
    spread: bool,
}

impl<'a> CrispGen<'a> {
    fn new(unit: &'a Unit, spread: bool) -> Result<CrispGen<'a>, CcError> {
        let mut globals = BTreeMap::new();
        let mut data = Vec::new();
        let mut addr = Image::DEFAULT_DATA_BASE;
        for item in &unit.items {
            match item {
                AstItem::Global { name, init } => {
                    if globals.contains_key(name) {
                        return Err(CcError::Sema {
                            message: format!("duplicate global `{name}`"),
                        });
                    }
                    if let Some(v) = init {
                        data.push((addr, vec![*v]));
                    }
                    globals.insert(name.clone(), GlobalInfo { addr, len: 1 });
                    addr += 4;
                }
                AstItem::Array { name, len, init } => {
                    if globals.contains_key(name) {
                        return Err(CcError::Sema {
                            message: format!("duplicate global `{name}`"),
                        });
                    }
                    if !init.is_empty() {
                        data.push((addr, init.clone()));
                    }
                    globals.insert(name.clone(), GlobalInfo { addr, len: *len });
                    addr += len * 4;
                }
                AstItem::Function(_) => {}
            }
        }
        Ok(CrispGen {
            unit,
            items: Vec::new(),
            globals,
            data,
            next_label: 0,
            spread,
        })
    }

    fn fresh_label(&mut self, stem: &str) -> String {
        self.next_label += 1;
        format!(".L{}_{stem}", self.next_label)
    }

    fn emit(&mut self, instr: Instr) {
        self.items.push(Item::Instr(instr));
    }

    fn sema<T>(&self, message: impl Into<String>) -> Result<T, CcError> {
        Err(CcError::Sema {
            message: message.into(),
        })
    }

    // ---- frame management ----

    fn alloc_temp(&mut self, f: &mut FuncCtx) -> i32 {
        if let Some(t) = f.free_temps.pop() {
            return t;
        }
        let t = f.next_slot;
        f.next_slot += 4;
        t
    }

    fn free(&mut self, f: &mut FuncCtx, v: Val) {
        match v {
            Val::Temp(t) | Val::Ind(t) => f.free_temps.push(t),
            _ => {}
        }
    }

    /// The machine operand for a value, adjusted for the current SP
    /// displacement.
    fn operand(&self, f: &FuncCtx, v: Val) -> Operand {
        match v {
            Val::Imm(i) => Operand::Imm(i),
            Val::Slot(off) | Val::Temp(off) => Operand::SpOff(off + f.sp_adjust),
            Val::Global(a) => Operand::Abs(a),
            Val::Accum => Operand::Accum,
            Val::Ind(t) => Operand::SpInd(t + f.sp_adjust),
        }
    }

    /// Spill the accumulator into a fresh temp if `v` lives there.
    fn shelter(&mut self, f: &mut FuncCtx, v: Val) -> Val {
        if v == Val::Accum {
            let t = self.alloc_temp(f);
            let dst = self.operand(f, Val::Temp(t));
            self.emit(Instr::Op2 {
                op: BinOp::Mov,
                dst,
                src: Operand::Accum,
            });
            Val::Temp(t)
        } else {
            v
        }
    }

    /// Whether evaluating `e` can clobber the accumulator.
    fn clobbers_accum(e: &Expr) -> bool {
        !matches!(e, Expr::Lit(_) | Expr::Load(LValue::Var(_)))
    }

    /// An operand pairing is unencodable when a stack-indirect operand
    /// meets one needing 32-bit extensions; materialise the wide one.
    fn legalize_src(&mut self, f: &mut FuncCtx, other: Operand, v: Val) -> Val {
        let wide = |op: Operand| {
            matches!(op, Operand::Abs(_))
                || matches!(op, Operand::Imm(i) if i16::try_from(i).is_err())
        };
        let vo = self.operand(f, v);
        let clash = (matches!(vo, Operand::SpInd(_)) && wide(other))
            || (matches!(other, Operand::SpInd(_)) && wide(vo));
        if !clash {
            return v;
        }
        // Move the offending value into a plain stack temp.
        let t = self.alloc_temp(f);
        let dst = self.operand(f, Val::Temp(t));
        self.emit(Instr::Op2 {
            op: BinOp::Mov,
            dst,
            src: vo,
        });
        self.free(f, v);
        Val::Temp(t)
    }

    // ---- name resolution ----

    fn lookup(&self, f: &FuncCtx, name: &str) -> Option<Val> {
        for scope in f.scopes.iter().rev() {
            if let Some(&off) = scope.get(name) {
                return Some(Val::Slot(off));
            }
        }
        self.globals
            .get(name)
            .filter(|g| g.len == 1)
            .map(|g| Val::Global(g.addr))
    }

    /// Resolve an lvalue to a writable value (allocating an address temp
    /// for array elements).
    fn lvalue(&mut self, f: &mut FuncCtx, lv: &LValue) -> Result<Val, CcError> {
        match lv {
            LValue::Var(name) => match self.lookup(f, name) {
                Some(v) => Ok(v),
                None => {
                    if self.globals.contains_key(name) {
                        self.sema(format!("array `{name}` used as a scalar"))
                    } else {
                        self.sema(format!("undefined variable `{name}`"))
                    }
                }
            },
            LValue::Index(name, idx) => {
                let info = match self.globals.get(name) {
                    Some(info) if info.len > 1 => (info.addr, info.len),
                    Some(_) => return self.sema(format!("`{name}` is not an array")),
                    None => {
                        return if f.scopes.iter().any(|s| s.contains_key(name)) {
                            self.sema(format!("`{name}` is not an array (arrays must be global)"))
                        } else {
                            self.sema(format!("undefined array `{name}`"))
                        }
                    }
                };
                let iv = self.eval(f, idx)?;
                // Accum = idx << 2; Accum += base; temp = Accum.
                let iop = self.operand(f, iv);
                self.emit(Instr::Op3 {
                    op: BinOp::Shl,
                    a: iop,
                    b: Operand::Imm(2),
                });
                self.free(f, iv);
                self.emit(Instr::Op3 {
                    op: BinOp::Add,
                    a: Operand::Accum,
                    b: Operand::Imm(info.0 as i32),
                });
                let t = self.alloc_temp(f);
                let dst = self.operand(f, Val::Temp(t));
                self.emit(Instr::Op2 {
                    op: BinOp::Mov,
                    dst,
                    src: Operand::Accum,
                });
                Ok(Val::Ind(t))
            }
        }
    }

    // ---- expressions ----

    fn binop(op: BinaryOp) -> Option<BinOp> {
        Some(match op {
            BinaryOp::Add => BinOp::Add,
            BinaryOp::Sub => BinOp::Sub,
            BinaryOp::Mul => BinOp::Mul,
            BinaryOp::Div => BinOp::Div,
            BinaryOp::Rem => BinOp::Rem,
            BinaryOp::And => BinOp::And,
            BinaryOp::Or => BinOp::Or,
            BinaryOp::Xor => BinOp::Xor,
            BinaryOp::Shl => BinOp::Shl,
            BinaryOp::Shr => BinOp::Sar, // C `>>` on int: arithmetic
            _ => return None,
        })
    }

    fn cond_of(op: BinaryOp) -> Cond {
        match op {
            BinaryOp::Lt => Cond::LtS,
            BinaryOp::Le => Cond::LeS,
            BinaryOp::Gt => Cond::GtS,
            BinaryOp::Ge => Cond::GeS,
            BinaryOp::Eq => Cond::Eq,
            BinaryOp::Ne => Cond::Ne,
            _ => unreachable!("cond_of on non-comparison"),
        }
    }

    fn eval(&mut self, f: &mut FuncCtx, e: &Expr) -> Result<Val, CcError> {
        match e {
            Expr::Lit(v) => Ok(Val::Imm(*v)),
            Expr::Load(lv) => self.lvalue(f, lv),
            Expr::Unary(op, inner) => {
                let v = self.eval(f, inner)?;
                match op {
                    crate::ast::UnaryOp::Neg => {
                        let vo = self.operand(f, v);
                        self.emit(Instr::Op3 {
                            op: BinOp::Sub,
                            a: Operand::Imm(0),
                            b: vo,
                        });
                        self.free(f, v);
                        Ok(Val::Accum)
                    }
                    crate::ast::UnaryOp::Not => {
                        let vo = self.operand(f, v);
                        let v2 = self.legalize_src(f, Operand::Imm(-1), v);
                        let vo = if v2 == v { vo } else { self.operand(f, v2) };
                        self.emit(Instr::Op3 {
                            op: BinOp::Xor,
                            a: vo,
                            b: Operand::Imm(-1),
                        });
                        self.free(f, v2);
                        Ok(Val::Accum)
                    }
                    crate::ast::UnaryOp::LogNot => self.truth_value(f, e.clone()),
                }
            }
            Expr::Binary(op, a, b) => {
                if op.is_comparison() || matches!(op, BinaryOp::LogAnd | BinaryOp::LogOr) {
                    return self.truth_value(f, e.clone());
                }
                let machine_op = Self::binop(*op).expect("arith op");
                let mut va = self.eval(f, a)?;
                if Self::clobbers_accum(b) {
                    va = self.shelter(f, va);
                }
                let vb = self.eval(f, b)?;
                let (va, vb) = self.legalize_two(f, va, vb);
                let ao = self.operand(f, va);
                let bo = self.operand(f, vb);
                self.emit(Instr::Op3 {
                    op: machine_op,
                    a: ao,
                    b: bo,
                });
                self.free(f, va);
                self.free(f, vb);
                Ok(Val::Accum)
            }
            Expr::Assign(lv, rhs) => {
                let mut v = self.eval(f, rhs)?;
                if matches!(lv, LValue::Index(..)) {
                    // Address computation below runs through the
                    // accumulator; protect the RHS value first.
                    v = self.shelter(f, v);
                }
                let loc = self.lvalue(f, lv)?;
                let lo = self.operand(f, loc);
                let v = self.legalize_src(f, lo, v);
                let vo = self.operand(f, v);
                self.emit(Instr::Op2 {
                    op: BinOp::Mov,
                    dst: lo,
                    src: vo,
                });
                self.free(f, v);
                Ok(loc)
            }
            Expr::AssignOp(op, lv, rhs) => {
                let machine_op = match Self::binop(*op) {
                    Some(m) => m,
                    None => {
                        return self.sema("compound assignment requires an arithmetic operator")
                    }
                };
                let mut v = self.eval(f, rhs)?;
                if matches!(lv, LValue::Index(..)) {
                    v = self.shelter(f, v);
                }
                let loc = self.lvalue(f, lv)?;
                let lo = self.operand(f, loc);
                let v = self.legalize_src(f, lo, v);
                let vo = self.operand(f, v);
                self.emit(Instr::Op2 {
                    op: machine_op,
                    dst: lo,
                    src: vo,
                });
                self.free(f, v);
                Ok(loc)
            }
            Expr::IncDec { lv, delta, post } => {
                let loc = self.lvalue(f, lv)?;
                let lo = self.operand(f, loc);
                let old = if *post {
                    let t = self.alloc_temp(f);
                    let to = self.operand(f, Val::Temp(t));
                    self.emit(Instr::Op2 {
                        op: BinOp::Mov,
                        dst: to,
                        src: lo,
                    });
                    Some(Val::Temp(t))
                } else {
                    None
                };
                self.emit(Instr::Op2 {
                    op: if *delta >= 0 { BinOp::Add } else { BinOp::Sub },
                    dst: lo,
                    src: Operand::Imm(delta.abs()),
                });
                match old {
                    Some(t) => {
                        self.free(f, loc);
                        Ok(t)
                    }
                    None => Ok(loc),
                }
            }
            Expr::Call(name, args) => self.call(f, name, args),
            Expr::Cond(c, a, b) => {
                let lf = self.fresh_label("cfalse");
                let le = self.fresh_label("cend");
                let t = self.alloc_temp(f);
                self.branch_cond(f, c, &lf, false)?;
                let va = self.eval(f, a)?;
                let to = self.operand(f, Val::Temp(t));
                let vo = self.operand(f, va);
                self.emit(Instr::Op2 {
                    op: BinOp::Mov,
                    dst: to,
                    src: vo,
                });
                self.free(f, va);
                self.items.push(Item::JmpTo { label: le.clone() });
                self.items.push(Item::Label(lf));
                let vb = self.eval(f, b)?;
                let to = self.operand(f, Val::Temp(t));
                let vo = self.operand(f, vb);
                self.emit(Instr::Op2 {
                    op: BinOp::Mov,
                    dst: to,
                    src: vo,
                });
                self.free(f, vb);
                self.items.push(Item::Label(le));
                Ok(Val::Temp(t))
            }
        }
    }

    /// Evaluate an expression whose value is discarded (an expression
    /// statement or a `for` step). Post-increment then needs no
    /// old-value save — `i++` is a single `add i,$1`, as in the paper's
    /// listing.
    fn eval_discard(&mut self, f: &mut FuncCtx, e: &Expr) -> Result<(), CcError> {
        if let Expr::IncDec { lv, delta, .. } = e {
            let loc = self.lvalue(f, lv)?;
            let lo = self.operand(f, loc);
            self.emit(Instr::Op2 {
                op: if *delta >= 0 { BinOp::Add } else { BinOp::Sub },
                dst: lo,
                src: Operand::Imm(delta.abs()),
            });
            self.free(f, loc);
            return Ok(());
        }
        let v = self.eval(f, e)?;
        self.free(f, v);
        Ok(())
    }

    /// Legalize a two-source pairing (for `Op3`/`Cmp`).
    fn legalize_two(&mut self, f: &mut FuncCtx, a: Val, b: Val) -> (Val, Val) {
        let bo = self.operand(f, b);
        let a = self.legalize_src(f, bo, a);
        let ao = self.operand(f, a);
        let b = self.legalize_src(f, ao, b);
        (a, b)
    }

    /// Materialise the truth value (0/1) of an expression in the
    /// accumulator via branches.
    fn truth_value(&mut self, f: &mut FuncCtx, e: Expr) -> Result<Val, CcError> {
        let lf = self.fresh_label("false");
        let le = self.fresh_label("end");
        self.branch_cond(f, &e, &lf, false)?;
        self.emit(Instr::Op2 {
            op: BinOp::Mov,
            dst: Operand::Accum,
            src: Operand::Imm(1),
        });
        self.items.push(Item::JmpTo { label: le.clone() });
        self.items.push(Item::Label(lf));
        self.emit(Instr::Op2 {
            op: BinOp::Mov,
            dst: Operand::Accum,
            src: Operand::Imm(0),
        });
        self.items.push(Item::Label(le));
        Ok(Val::Accum)
    }

    /// Compile `e` as a condition: branch to `target` when the truth of
    /// `e` equals `jump_if`. Prediction bits are set later by the
    /// prediction pass; they default to taken.
    fn branch_cond(
        &mut self,
        f: &mut FuncCtx,
        e: &Expr,
        target: &str,
        jump_if: bool,
    ) -> Result<(), CcError> {
        match e {
            Expr::Lit(v) => {
                if (*v != 0) == jump_if {
                    self.items.push(Item::JmpTo {
                        label: target.to_owned(),
                    });
                }
                Ok(())
            }
            Expr::Unary(crate::ast::UnaryOp::LogNot, inner) => {
                self.branch_cond(f, inner, target, !jump_if)
            }
            Expr::Binary(op, a, b) if op.is_comparison() => {
                let mut va = self.eval(f, a)?;
                if Self::clobbers_accum(b) {
                    va = self.shelter(f, va);
                }
                let vb = self.eval(f, b)?;
                let (va, vb) = self.legalize_two(f, va, vb);
                let ao = self.operand(f, va);
                let bo = self.operand(f, vb);
                self.emit(Instr::Cmp {
                    cond: Self::cond_of(*op),
                    a: ao,
                    b: bo,
                });
                self.free(f, va);
                self.free(f, vb);
                self.items.push(Item::IfJmpTo {
                    on_true: jump_if,
                    predict_taken: true,
                    label: target.to_owned(),
                });
                Ok(())
            }
            Expr::Binary(BinaryOp::LogAnd, a, b) => {
                if jump_if {
                    let skip = self.fresh_label("and");
                    self.branch_cond(f, a, &skip, false)?;
                    self.branch_cond(f, b, target, true)?;
                    self.items.push(Item::Label(skip));
                } else {
                    self.branch_cond(f, a, target, false)?;
                    self.branch_cond(f, b, target, false)?;
                }
                Ok(())
            }
            Expr::Binary(BinaryOp::LogOr, a, b) => {
                if jump_if {
                    self.branch_cond(f, a, target, true)?;
                    self.branch_cond(f, b, target, true)?;
                } else {
                    let skip = self.fresh_label("or");
                    self.branch_cond(f, a, &skip, true)?;
                    self.branch_cond(f, b, target, false)?;
                    self.items.push(Item::Label(skip));
                }
                Ok(())
            }
            _ => {
                // Truthiness test, in the paper's idiom:
                // `cmp.= v,0` then branch on the flag.
                let v = self.eval(f, e)?;
                let v = self.legalize_src(f, Operand::Imm(0), v);
                let vo = self.operand(f, v);
                self.emit(Instr::Cmp {
                    cond: Cond::Eq,
                    a: vo,
                    b: Operand::Imm(0),
                });
                self.free(f, v);
                // flag true ⟺ e == 0 ⟺ e is false.
                self.items.push(Item::IfJmpTo {
                    on_true: !jump_if,
                    predict_taken: true,
                    label: target.to_owned(),
                });
                Ok(())
            }
        }
    }

    fn call(&mut self, f: &mut FuncCtx, name: &str, args: &[Expr]) -> Result<Val, CcError> {
        let Some(callee) = self.unit.function(name) else {
            return self.sema(format!("call to undefined function `{name}`"));
        };
        if callee.params.len() != args.len() {
            return self.sema(format!(
                "`{name}` takes {} argument(s), {} given",
                callee.params.len(),
                args.len()
            ));
        }
        // Evaluate arguments into temps (left to right).
        let mut vals = Vec::with_capacity(args.len());
        for a in args {
            let v = self.eval(f, a)?;
            let v = match v {
                Val::Imm(_) | Val::Temp(_) | Val::Slot(_) => v,
                _ => {
                    // Materialise accumulator / globals / indirects: the
                    // fill loop below must not clobber them.
                    let t = self.alloc_temp(f);
                    let to = self.operand(f, Val::Temp(t));
                    let vo = self.operand(f, v);
                    self.emit(Instr::Op2 {
                        op: BinOp::Mov,
                        dst: to,
                        src: vo,
                    });
                    self.free(f, v);
                    Val::Temp(t)
                }
            };
            vals.push(v);
        }
        let block = 4 * args.len() as u32;
        if !args.is_empty() {
            self.emit(Instr::Enter { bytes: block });
            f.sp_adjust += block as i32;
            for (i, v) in vals.iter().enumerate() {
                let vo = self.operand(f, *v);
                self.emit(Instr::Op2 {
                    op: BinOp::Mov,
                    dst: Operand::SpOff(4 * i as i32),
                    src: vo,
                });
            }
        }
        self.items.push(Item::CallTo {
            label: name.to_owned(),
        });
        if !args.is_empty() {
            f.sp_adjust -= block as i32;
            self.emit(Instr::Leave { bytes: block });
        }
        for v in vals {
            self.free(f, v);
        }
        Ok(Val::Accum)
    }

    // ---- statements ----

    /// Whether a condition expression compiles to a single
    /// compare+branch pair (the only shape statement fill can target).
    fn simple_cond(e: &Expr) -> bool {
        match e {
            Expr::Unary(crate::ast::UnaryOp::LogNot, inner) => Self::simple_cond(inner),
            Expr::Lit(_) => false,
            Expr::Binary(op, ..) => {
                op.is_comparison() || !matches!(op, BinaryOp::LogAnd | BinaryOp::LogOr)
            }
            _ => true,
        }
    }

    /// Whether a `for` loop's first condition test is statically true:
    /// the init assigns a constant to a scalar and the condition
    /// compares that same scalar against a constant.
    fn entry_cond_known_true(init: &Stmt, cond: &Expr) -> bool {
        let assigned: Option<(&str, i32)> = match init {
            Stmt::Expr(Expr::Assign(LValue::Var(name), rhs)) => match rhs.as_ref() {
                Expr::Lit(v) => Some((name.as_str(), *v)),
                _ => None,
            },
            Stmt::Decl(decls) => match decls.as_slice() {
                [(name, Some(Expr::Lit(v)))] => Some((name.as_str(), *v)),
                _ => None,
            },
            _ => None,
        };
        let Some((var, value)) = assigned else {
            return false;
        };
        let Expr::Binary(op, a, b) = cond else {
            return false;
        };
        if !op.is_comparison() {
            return false;
        }
        let (lhs_is_var, lit) = match (a.as_ref(), b.as_ref()) {
            (Expr::Load(LValue::Var(n)), Expr::Lit(k)) if n == var => (true, *k),
            (Expr::Lit(k), Expr::Load(LValue::Var(n))) if n == var => (false, *k),
            _ => return false,
        };
        let (x, y) = if lhs_is_var {
            (value, lit)
        } else {
            (lit, value)
        };
        match op {
            BinaryOp::Lt => x < y,
            BinaryOp::Le => x <= y,
            BinaryOp::Gt => x > y,
            BinaryOp::Ge => x >= y,
            BinaryOp::Eq => x == y,
            BinaryOp::Ne => x != y,
            _ => false,
        }
    }

    /// Generate a statement sequence, applying Branch Spreading's
    /// statement fill to `if` statements when enabled. `step` is the
    /// enclosing `for` loop's step expression, offered for pulling into
    /// a fill when the sequence is the loop body and nothing remains
    /// after the consumed prefix; returns whether the step was consumed.
    fn stmt_seq(
        &mut self,
        f: &mut FuncCtx,
        stmts: &[Stmt],
        step: Option<&Expr>,
    ) -> Result<bool, CcError> {
        let mut consumed_step = false;
        let mut k = 0;
        while k < stmts.len() {
            if self.spread && !consumed_step {
                if let Stmt::If(cond, then, els) = &stmts[k] {
                    if let Some((fill, next_k, took_step)) =
                        Self::plan_fill(cond, then, els.as_deref(), &stmts[k + 1..], step)
                    {
                        let fill: Vec<Stmt> = fill.into_iter().cloned().collect();
                        let mut fill_refs: Vec<&Stmt> = fill.iter().collect();
                        let step_stmt;
                        if took_step {
                            step_stmt = Stmt::Expr(step.expect("took_step implies step").clone());
                            fill_refs.push(&step_stmt);
                        }
                        self.gen_if(f, cond, then, els.as_deref(), &fill_refs)?;
                        consumed_step |= took_step;
                        k += 1 + next_k;
                        continue;
                    }
                }
            }
            self.stmt(f, &stmts[k])?;
            k += 1;
        }
        Ok(consumed_step)
    }

    /// Decide which trailing statements (and possibly the loop step) can
    /// fill the compare→branch gap of an `if`. Returns the chosen
    /// statements, how many were consumed from `rest`, and whether the
    /// step was taken.
    fn plan_fill<'s>(
        cond: &Expr,
        then: &Stmt,
        els: Option<&Stmt>,
        rest: &'s [Stmt],
        step: Option<&Expr>,
    ) -> Option<(Vec<&'s Stmt>, usize, bool)> {
        if !Self::simple_cond(cond) {
            return None;
        }
        // Arms must rejoin (no side exits) and be analyzable.
        if spread::has_side_exit(then) || els.is_some_and(spread::has_side_exit) {
            return None;
        }
        let mut arms_rw = spread::stmt_rw(then)?;
        if let Some(els) = els {
            let e = spread::stmt_rw(els)?;
            arms_rw = {
                let mut a = arms_rw;
                a.reads.extend(e.reads);
                a.writes.extend(e.writes);
                a
            };
        }
        let movable = |s: &Stmt, arms: &RwSets| -> bool {
            spread::is_fill_candidate(s) && spread::stmt_rw(s).is_some_and(|rw| rw.commutes(arms))
        };
        let mut fill: Vec<&Stmt> = Vec::new();
        let mut taken = 0usize;
        for s in rest {
            if fill.len() >= spread::SPREAD_DISTANCE || !movable(s, &arms_rw) {
                break;
            }
            fill.push(s);
            taken += 1;
        }
        let mut took_step = false;
        if taken == rest.len() && fill.len() < spread::SPREAD_DISTANCE {
            if let Some(se) = step {
                let s = Stmt::Expr(se.clone());
                if movable(&s, &arms_rw) {
                    took_step = true;
                }
            }
        }
        if fill.is_empty() && !took_step {
            return None;
        }
        Some((fill, taken, took_step))
    }

    /// Generate an `if`, emitting `fill` between the compare and the
    /// conditional branch (callers guarantee legality).
    fn gen_if(
        &mut self,
        f: &mut FuncCtx,
        cond: &Expr,
        then: &Stmt,
        els: Option<&Stmt>,
        fill: &[&Stmt],
    ) -> Result<(), CcError> {
        let lelse = self.fresh_label("else");
        let lend = self.fresh_label("endif");
        self.branch_cond_fill(f, cond, &lelse, false, fill)?;
        self.stmt(f, then)?;
        if let Some(els) = els {
            self.items.push(Item::JmpTo {
                label: lend.clone(),
            });
            self.items.push(Item::Label(lelse));
            self.stmt(f, els)?;
            self.items.push(Item::Label(lend));
        } else {
            self.items.push(Item::Label(lelse));
        }
        Ok(())
    }

    /// `branch_cond` for a simple condition, with fill statements
    /// emitted between the compare and the branch.
    fn branch_cond_fill(
        &mut self,
        f: &mut FuncCtx,
        e: &Expr,
        target: &str,
        jump_if: bool,
        fill: &[&Stmt],
    ) -> Result<(), CcError> {
        match e {
            Expr::Unary(crate::ast::UnaryOp::LogNot, inner) => {
                return self.branch_cond_fill(f, inner, target, !jump_if, fill)
            }
            Expr::Binary(op, a, b) if op.is_comparison() => {
                let mut va = self.eval(f, a)?;
                if Self::clobbers_accum(b) {
                    va = self.shelter(f, va);
                }
                let vb = self.eval(f, b)?;
                let (va, vb) = self.legalize_two(f, va, vb);
                let ao = self.operand(f, va);
                let bo = self.operand(f, vb);
                self.emit(Instr::Cmp {
                    cond: Self::cond_of(*op),
                    a: ao,
                    b: bo,
                });
                self.free(f, va);
                self.free(f, vb);
                for s in fill {
                    self.stmt(f, s)?;
                }
                self.items.push(Item::IfJmpTo {
                    on_true: jump_if,
                    predict_taken: true,
                    label: target.to_owned(),
                });
            }
            _ => {
                let v = self.eval(f, e)?;
                let v = self.legalize_src(f, Operand::Imm(0), v);
                let vo = self.operand(f, v);
                // The fill must not clobber the accumulator while it
                // still holds the tested value — compare first.
                self.emit(Instr::Cmp {
                    cond: Cond::Eq,
                    a: vo,
                    b: Operand::Imm(0),
                });
                self.free(f, v);
                for s in fill {
                    self.stmt(f, s)?;
                }
                self.items.push(Item::IfJmpTo {
                    on_true: !jump_if,
                    predict_taken: true,
                    label: target.to_owned(),
                });
            }
        }
        Ok(())
    }

    fn stmt(&mut self, f: &mut FuncCtx, s: &Stmt) -> Result<(), CcError> {
        match s {
            Stmt::Empty => Ok(()),
            Stmt::Block(body) => {
                f.scopes.push(BTreeMap::new());
                self.stmt_seq(f, body, None)?;
                f.scopes.pop();
                Ok(())
            }
            Stmt::Decl(decls) => {
                for (name, init) in decls {
                    let off = f.next_slot;
                    f.next_slot += 4;
                    let scope = f.scopes.last_mut().expect("scope stack non-empty");
                    if scope.insert(name.clone(), off).is_some() {
                        return self.sema(format!("duplicate local `{name}`"));
                    }
                    if let Some(e) = init {
                        let v = self.eval(f, e)?;
                        let dst = self.operand(f, Val::Slot(off));
                        let v = self.legalize_src(f, dst, v);
                        let vo = self.operand(f, v);
                        self.emit(Instr::Op2 {
                            op: BinOp::Mov,
                            dst,
                            src: vo,
                        });
                        self.free(f, v);
                    }
                }
                Ok(())
            }
            Stmt::Expr(e) => self.eval_discard(f, e),
            Stmt::If(cond, then, els) => {
                if Self::simple_cond(cond) {
                    return self.gen_if(f, cond, then, els.as_deref(), &[]);
                }
                let lelse = self.fresh_label("else");
                let lend = self.fresh_label("endif");
                self.branch_cond(f, cond, &lelse, false)?;
                self.stmt(f, then)?;
                if let Some(els) = els {
                    self.items.push(Item::JmpTo {
                        label: lend.clone(),
                    });
                    self.items.push(Item::Label(lelse));
                    self.stmt(f, els)?;
                    self.items.push(Item::Label(lend));
                } else {
                    self.items.push(Item::Label(lelse));
                }
                Ok(())
            }
            Stmt::While(cond, body) => {
                let ltest = self.fresh_label("wtest");
                let lbody = self.fresh_label("wbody");
                let lexit = self.fresh_label("wexit");
                self.items.push(Item::JmpTo {
                    label: ltest.clone(),
                });
                self.items.push(Item::Label(lbody.clone()));
                f.break_labels.push(lexit.clone());
                f.continue_labels.push(ltest.clone());
                self.stmt(f, body)?;
                f.continue_labels.pop();
                f.break_labels.pop();
                self.items.push(Item::Label(ltest));
                self.branch_cond(f, cond, &lbody, true)?;
                self.items.push(Item::Label(lexit));
                Ok(())
            }
            Stmt::DoWhile(body, cond) => {
                let lbody = self.fresh_label("dbody");
                let ltest = self.fresh_label("dtest");
                let lexit = self.fresh_label("dexit");
                self.items.push(Item::Label(lbody.clone()));
                f.break_labels.push(lexit.clone());
                f.continue_labels.push(ltest.clone());
                self.stmt(f, body)?;
                f.continue_labels.pop();
                f.break_labels.pop();
                self.items.push(Item::Label(ltest));
                self.branch_cond(f, cond, &lbody, true)?;
                self.items.push(Item::Label(lexit));
                Ok(())
            }
            Stmt::For(init, cond, step, body) => {
                let ltest = self.fresh_label("ftest");
                let lbody = self.fresh_label("fbody");
                let lstep = self.fresh_label("fstep");
                let lexit = self.fresh_label("fexit");
                if let Some(init) = init {
                    self.stmt(f, init)?;
                }
                // Loop inversion: when the first test is statically true
                // (constant init vs constant bound), fall straight into
                // the body — the bottom test then runs exactly once per
                // iteration, as in the paper's generated code.
                let first_test_true = match (init.as_deref(), cond) {
                    (Some(init), Some(cond)) => Self::entry_cond_known_true(init, cond),
                    _ => false,
                };
                if cond.is_some() && !first_test_true {
                    self.items.push(Item::JmpTo {
                        label: ltest.clone(),
                    });
                }
                self.items.push(Item::Label(lbody.clone()));
                f.break_labels.push(lexit.clone());
                f.continue_labels.push(lstep.clone());
                // Offer the step for Branch Spreading's fill, unless a
                // `continue` in the body could bypass an early step.
                let offer_step = match (self.spread, step) {
                    (true, Some(_)) if !spread::has_continue(body) => step.as_ref(),
                    _ => None,
                };
                let consumed_step = match body.as_ref() {
                    Stmt::Block(stmts) => {
                        f.scopes.push(BTreeMap::new());
                        let c = self.stmt_seq(f, stmts, offer_step)?;
                        f.scopes.pop();
                        c
                    }
                    single => self.stmt_seq(f, std::slice::from_ref(single), offer_step)?,
                };
                f.continue_labels.pop();
                f.break_labels.pop();
                self.items.push(Item::Label(lstep));
                if let Some(step) = step {
                    if !consumed_step {
                        self.eval_discard(f, step)?;
                    }
                }
                match cond {
                    Some(c) => {
                        self.items.push(Item::Label(ltest));
                        self.branch_cond(f, c, &lbody, true)?;
                    }
                    None => self.items.push(Item::JmpTo { label: lbody }),
                }
                self.items.push(Item::Label(lexit));
                Ok(())
            }
            Stmt::Return(e) => {
                if let Some(e) = e {
                    let v = self.eval(f, e)?;
                    if v != Val::Accum {
                        let vo = self.operand(f, v);
                        self.emit(Instr::Op2 {
                            op: BinOp::Mov,
                            dst: Operand::Accum,
                            src: vo,
                        });
                    }
                    self.free(f, v);
                } else if f.returns_value {
                    return self.sema(format!(
                        "`{}` returns a value; `return;` without one",
                        f.fname
                    ));
                }
                f.frame_patches.push(self.items.len());
                self.emit(Instr::Leave { bytes: 0 });
                self.emit(Instr::Ret);
                Ok(())
            }
            Stmt::Break => match f.break_labels.last() {
                Some(brk) => {
                    self.items.push(Item::JmpTo { label: brk.clone() });
                    Ok(())
                }
                None => self.sema("`break` outside a loop or switch"),
            },
            Stmt::Continue => match f.continue_labels.last() {
                Some(cont) => {
                    self.items.push(Item::JmpTo {
                        label: cont.clone(),
                    });
                    Ok(())
                }
                None => self.sema("`continue` outside a loop"),
            },
            Stmt::Switch(scrutinee, cases) => self.gen_switch(f, scrutinee, cases),
        }
    }

    /// Lower a `switch`. Dense value sets (≥ 4 distinct cases spanning
    /// at most 128 slots) dispatch through an indirect jump table — the
    /// construct for which, per the paper, "indirect branches are only
    /// occasionally generated by our compiler". Sparse switches fall
    /// back to a compare chain.
    fn gen_switch(
        &mut self,
        f: &mut FuncCtx,
        scrutinee: &Expr,
        cases: &[crate::ast::SwitchCase],
    ) -> Result<(), CcError> {
        let lend = self.fresh_label("swend");
        // Per-case labels, in declaration order (fallthrough needs them
        // emitted contiguously).
        let labels: Vec<String> = (0..cases.len()).map(|_| self.fresh_label("case")).collect();
        let default_label = cases
            .iter()
            .position(|c| c.value.is_none())
            .map(|i| labels[i].clone())
            .unwrap_or_else(|| lend.clone());

        let v = self.eval(f, scrutinee)?;
        let v = self.shelter(f, v); // stable across multiple compares

        let values: Vec<(i32, &str)> = cases
            .iter()
            .zip(&labels)
            .filter_map(|(c, l)| c.value.map(|k| (k, l.as_str())))
            .collect();
        let dense = values.len() >= 4 && {
            let min = values.iter().map(|&(k, _)| k).min().unwrap_or(0);
            let max = values.iter().map(|&(k, _)| k).max().unwrap_or(0);
            (max as i64 - min as i64) < 128
        };

        if dense {
            let min = values.iter().map(|&(k, _)| k).min().expect("non-empty");
            let max = values.iter().map(|&(k, _)| k).max().expect("non-empty");
            let ltable = self.fresh_label("swtab");
            let vo = self.operand(f, v);
            // Bounds checks route to the default.
            self.emit(Instr::Cmp {
                cond: Cond::LtS,
                a: vo,
                b: Operand::Imm(min),
            });
            self.items.push(Item::IfJmpTo {
                on_true: true,
                predict_taken: false,
                label: default_label.clone(),
            });
            let vo = self.operand(f, v);
            self.emit(Instr::Cmp {
                cond: Cond::GtS,
                a: vo,
                b: Operand::Imm(max),
            });
            self.items.push(Item::IfJmpTo {
                on_true: true,
                predict_taken: false,
                label: default_label.clone(),
            });
            // index = (v - min); Accum = table + 4*index.
            let vo = self.operand(f, v);
            self.emit(Instr::Op3 {
                op: BinOp::Sub,
                a: vo,
                b: Operand::Imm(min),
            });
            self.emit(Instr::Op3 {
                op: BinOp::Shl,
                a: Operand::Accum,
                b: Operand::Imm(2),
            });
            let tidx = self.alloc_temp(f);
            let tio = self.operand(f, Val::Temp(tidx));
            self.emit(Instr::Op2 {
                op: BinOp::Mov,
                dst: tio,
                src: Operand::Accum,
            });
            self.items.push(Item::MovaLabel {
                label: ltable.clone(),
            });
            let tio = self.operand(f, Val::Temp(tidx));
            self.emit(Instr::Op3 {
                op: BinOp::Add,
                a: Operand::Accum,
                b: tio,
            });
            // taddr = &table[index]; ttgt = table[index]; jmp *ttgt(sp).
            let taddr = tidx; // reuse: now holds the entry address
            let tao = self.operand(f, Val::Temp(taddr));
            self.emit(Instr::Op2 {
                op: BinOp::Mov,
                dst: tao,
                src: Operand::Accum,
            });
            let ttgt = self.alloc_temp(f);
            let tto = self.operand(f, Val::Temp(ttgt));
            let ind = self.operand(f, Val::Ind(taddr));
            self.emit(Instr::Op2 {
                op: BinOp::Mov,
                dst: tto,
                src: ind,
            });
            let Operand::SpOff(tgt_off) = self.operand(f, Val::Temp(ttgt)) else {
                unreachable!("temps are stack slots")
            };
            self.emit(Instr::Jmp {
                target: crisp_isa::BranchTarget::IndSp(tgt_off),
            });
            self.free(f, Val::Temp(taddr));
            self.free(f, Val::Temp(ttgt));
            // The table itself, 4-aligned, right behind the dispatch.
            self.items.push(Item::Align4);
            self.items.push(Item::Label(ltable));
            for k in min..=max {
                let target = values
                    .iter()
                    .find(|&&(kk, _)| kk == k)
                    .map(|&(_, l)| l.to_owned())
                    .unwrap_or_else(|| default_label.clone());
                self.items.push(Item::WordLabel(target));
            }
        } else {
            // Compare chain.
            for &(k, label) in &values {
                let vo = self.operand(f, v);
                let (a, b) = {
                    let kv = self.legalize_src(f, vo, Val::Imm(k));
                    (vo, self.operand(f, kv))
                };
                self.emit(Instr::Cmp {
                    cond: Cond::Eq,
                    a,
                    b,
                });
                self.items.push(Item::IfJmpTo {
                    on_true: true,
                    predict_taken: false,
                    label: label.to_owned(),
                });
            }
            self.items.push(Item::JmpTo {
                label: default_label.clone(),
            });
        }
        self.free(f, v);

        // Case bodies in order; fallthrough is the natural layout.
        f.break_labels.push(lend.clone());
        for (case, label) in cases.iter().zip(&labels) {
            self.items.push(Item::Label(label.clone()));
            self.stmt_seq(f, &case.body, None)?;
        }
        f.break_labels.pop();
        self.items.push(Item::Label(lend));
        Ok(())
    }

    // ---- functions ----

    fn function(&mut self, func: &Function) -> Result<(), CcError> {
        let start = self.items.len();
        self.items.push(Item::Label(func.name.clone()));
        let enter_at = self.items.len();
        self.emit(Instr::Enter { bytes: 0 }); // patched below

        let mut scope = BTreeMap::new();
        for (i, p) in func.params.iter().enumerate() {
            if scope.insert(p.clone(), PARAM_BASE + 4 * i as i32).is_some() {
                return self.sema(format!("duplicate parameter `{p}`"));
            }
        }
        let mut f = FuncCtx {
            scopes: vec![scope],
            next_slot: 0,
            free_temps: Vec::new(),
            sp_adjust: 0,
            break_labels: Vec::new(),
            continue_labels: Vec::new(),
            frame_patches: vec![enter_at],
            returns_value: func.returns_value,
            fname: func.name.clone(),
        };
        self.stmt_seq(&mut f, &func.body, None)?;
        // Implicit epilogue.
        f.frame_patches.push(self.items.len());
        self.emit(Instr::Leave { bytes: 0 });
        self.emit(Instr::Ret);

        self.finish_function(start, &f);
        Ok(())
    }

    /// Patch frame sizes and rewrite parameter-sentinel offsets now that
    /// the frame size is known.
    fn finish_function(&mut self, start: usize, f: &FuncCtx) {
        let frame = f.next_slot.max(0) as u32;
        for &at in &f.frame_patches {
            match &mut self.items[at] {
                Item::Instr(Instr::Enter { bytes }) | Item::Instr(Instr::Leave { bytes })
                    if *bytes == 0 =>
                {
                    *bytes = frame;
                }
                other => unreachable!("frame patch points at {other:?}"),
            }
        }
        let rewrite = |off: i32| -> i32 {
            if off >= PARAM_BASE {
                frame as i32 + 4 + (off - PARAM_BASE)
            } else {
                off
            }
        };
        let map_op = |op: Operand| -> Operand {
            match op {
                Operand::SpOff(o) => Operand::SpOff(rewrite(o)),
                Operand::SpInd(o) => Operand::SpInd(rewrite(o)),
                other => other,
            }
        };
        for item in &mut self.items[start..] {
            if let Item::Instr(instr) = item {
                *instr = match *instr {
                    Instr::Op2 { op, dst, src } => Instr::Op2 {
                        op,
                        dst: map_op(dst),
                        src: map_op(src),
                    },
                    Instr::Op3 { op, a, b } => Instr::Op3 {
                        op,
                        a: map_op(a),
                        b: map_op(b),
                    },
                    Instr::Cmp { cond, a, b } => Instr::Cmp {
                        cond,
                        a: map_op(a),
                        b: map_op(b),
                    },
                    other => other,
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crisp_asm::assemble;

    fn gen(src: &str) -> Module {
        generate(&parse(src).unwrap(), false).unwrap()
    }

    #[test]
    fn figure3_compiles_and_assembles() {
        let module = gen("
            void main() {
                int i, j, odd, even, sum;
                j = odd = even = 0;
                for (i = 0; i < 1024; i++) {
                    sum += i;
                    if (i & 1) odd++;
                    else even++;
                    j = sum;
                }
            }
            ");
        let image = assemble(&module).unwrap();
        assert!(image.symbols.contains_key("main"));
        assert!(!image.parcels.is_empty());
    }

    #[test]
    fn sema_errors() {
        let e = generate(&parse("void main() { x = 1; }").unwrap(), false).unwrap_err();
        assert!(matches!(e, CcError::Sema { .. }), "{e}");
        let e = generate(&parse("void f() {}").unwrap(), false).unwrap_err();
        assert!(e.to_string().contains("main"), "{e}");
        let e = generate(&parse("void main() { g(); }").unwrap(), false).unwrap_err();
        assert!(e.to_string().contains("undefined function"), "{e}");
        let e = generate(
            &parse("int f(int a){return a;} void main() { f(); }").unwrap(),
            false,
        )
        .unwrap_err();
        assert!(e.to_string().contains("argument"), "{e}");
        let e = generate(&parse("void main() { break; }").unwrap(), false).unwrap_err();
        assert!(e.to_string().contains("break"), "{e}");
        let e = generate(&parse("int a[4]; void main() { a = 1; }").unwrap(), false).unwrap_err();
        assert!(e.to_string().contains("scalar"), "{e}");
        let e = generate(&parse("int g; void main() { g[0] = 1; }").unwrap(), false).unwrap_err();
        assert!(e.to_string().contains("not an array"), "{e}");
    }

    #[test]
    fn globals_get_distinct_addresses() {
        let module = gen("int a = 7; int b[3] = {1,2,3}; int c; void main() { c = a; }");
        // a at DATA_BASE, b at +4, c at +16.
        assert_eq!(module.data[0], (Image::DEFAULT_DATA_BASE, vec![7]));
        assert_eq!(
            module.data[1],
            (Image::DEFAULT_DATA_BASE + 4, vec![1, 2, 3])
        );
    }

    #[test]
    fn statically_true_loop_is_inverted() {
        // `i = 0; i < 4` is statically true: no entry jump, one bottom
        // conditional.
        let module = gen("void main() { int i; for (i = 0; i < 4; i++) { } }");
        let jmps = module
            .items
            .iter()
            .filter(|i| matches!(i, Item::JmpTo { .. }))
            .count();
        let condb = module
            .items
            .iter()
            .filter(|i| matches!(i, Item::IfJmpTo { .. }))
            .count();
        assert_eq!(jmps, 0);
        assert_eq!(condb, 1);
    }

    #[test]
    fn dynamic_bound_loop_keeps_entry_jump() {
        let module = gen("int n; void main() { int i; for (i = 0; i < n; i++) { } }");
        let jmps = module
            .items
            .iter()
            .filter(|i| matches!(i, Item::JmpTo { .. }))
            .count();
        assert_eq!(jmps, 1, "entry jump to the bottom test must remain");
        // And a statically FALSE first test also keeps it (the body may
        // never run).
        let module = gen("void main() { int i; for (i = 9; i < 4; i++) { } }");
        let jmps = module
            .items
            .iter()
            .filter(|i| matches!(i, Item::JmpTo { .. }))
            .count();
        assert_eq!(jmps, 1);
    }
}

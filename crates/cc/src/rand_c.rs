//! Seeded random mini-C program generator for differential testing.
//!
//! [`generate_c`] produces a small, always-terminating mini-C program
//! from a seed. The same source is meant to drive *both* codegen paths
//! — [`crate::compile_crisp`] and [`crate::compile_vax`] — so the two
//! backends (and, downstream, the functional and cycle simulators) can
//! be checked against each other over a corpus instead of a handful of
//! hand-written programs.
//!
//! Termination is guaranteed by construction rather than by a step
//! limit: the only loop form emitted is a counted `for` whose induction
//! variable is reserved — it is never assigned inside the loop body —
//! and nesting depth is bounded. Division, remainder and shift
//! operators only ever receive nonzero (respectively in-range) constant
//! right-hand sides, so no generated program relies on
//! implementation-defined behaviour.

use crisp_asm::rand_prog::Rng;
use std::fmt::Write as _;

/// A generated mini-C program.
#[derive(Debug, Clone)]
pub struct GenCProgram {
    /// The seed that produced it (for reproduction).
    pub seed: u64,
    /// The program text, accepted by both backends.
    pub source: String,
    /// Global variable names in declaration order. The CRISP backend
    /// places them at consecutive words from
    /// [`crisp_asm::Image::DEFAULT_DATA_BASE`]; the VAX backend at the
    /// matching [`vax_lite::Program`] slots — the natural comparison
    /// points after a run.
    pub globals: Vec<String>,
}

/// Maximum loop-nesting depth (each level multiplies iteration count).
const MAX_LOOP_DEPTH: usize = 2;
/// Maximum expression-tree depth.
const MAX_EXPR_DEPTH: usize = 3;

struct Gen {
    rng: Rng,
    globals: Vec<String>,
    locals: Vec<String>,
    /// Names of `for` induction variables currently in scope — read
    /// freely, never assigned (the termination invariant).
    reserved: Vec<String>,
    out: String,
    indent: usize,
}

impl Gen {
    fn line(&mut self, s: &str) {
        for _ in 0..self.indent {
            self.out.push_str("    ");
        }
        self.out.push_str(s);
        self.out.push('\n');
    }

    /// A variable readable in expressions (any global or local).
    fn read_var(&mut self) -> String {
        let total = self.globals.len() + self.locals.len();
        let i = self.rng.below(total as u64) as usize;
        if i < self.globals.len() {
            self.globals[i].clone()
        } else {
            self.locals[i - self.globals.len()].clone()
        }
    }

    /// A variable writable as an assignment target (not an induction
    /// variable).
    fn write_var(&mut self) -> String {
        loop {
            let v = self.read_var();
            if !self.reserved.contains(&v) {
                return v;
            }
        }
    }

    fn constant(&mut self) -> String {
        (self.rng.below(81) as i64 - 16).to_string()
    }

    fn expr(&mut self, depth: usize) -> String {
        if depth >= MAX_EXPR_DEPTH || self.rng.below(3) == 0 {
            return if self.rng.flip() {
                self.read_var()
            } else {
                self.constant()
            };
        }
        let a = self.expr(depth + 1);
        match self.rng.below(14) {
            0 => format!("({a} + {})", self.expr(depth + 1)),
            1 => format!("({a} - {})", self.expr(depth + 1)),
            2 => format!("({a} * {})", self.expr(depth + 1)),
            // Division and remainder: nonzero constant divisors only.
            3 => format!("({a} / {})", 1 + self.rng.below(9)),
            4 => format!("({a} % {})", 1 + self.rng.below(9)),
            5 => format!("({a} & {})", self.expr(depth + 1)),
            6 => format!("({a} | {})", self.expr(depth + 1)),
            7 => format!("({a} ^ {})", self.expr(depth + 1)),
            // Shifts: constant in-range amounts only.
            8 => format!("({a} << {})", self.rng.below(15)),
            9 => format!("({a} >> {})", self.rng.below(15)),
            10 => format!("({a} < {})", self.expr(depth + 1)),
            11 => format!("({a} == {})", self.expr(depth + 1)),
            12 => format!("({a} != {})", self.expr(depth + 1)),
            _ => format!("({a} >= {})", self.expr(depth + 1)),
        }
    }

    fn assignment(&mut self) -> String {
        let v = self.write_var();
        match self.rng.below(4) {
            0 => format!("{v}++;"),
            1 => format!("{v} += {};", self.expr(1)),
            _ => format!("{v} = {};", self.expr(0)),
        }
    }

    fn stmt(&mut self, loop_depth: usize) {
        match self.rng.below(6) {
            0 | 1 if loop_depth < MAX_LOOP_DEPTH => {
                // Counted for loop over a fresh induction variable.
                let v = format!("i{}", self.reserved.len());
                let bound = 2 + self.rng.below(11);
                let header = format!("for ({v} = 0; {v} < {bound}; {v}++) {{");
                self.line(&header);
                self.reserved.push(v.clone());
                self.locals.push(v.clone());
                self.indent += 1;
                for _ in 0..1 + self.rng.below(3) {
                    self.stmt(loop_depth + 1);
                }
                self.indent -= 1;
                self.reserved.pop();
                self.line("}");
            }
            2 => {
                let cond = self.expr(1);
                let then = self.assignment();
                self.line(&format!("if ({cond}) {{"));
                self.indent += 1;
                self.line(&then);
                self.indent -= 1;
                if self.rng.flip() {
                    let other = self.assignment();
                    self.line("} else {");
                    self.indent += 1;
                    self.line(&other);
                    self.indent -= 1;
                }
                self.line("}");
            }
            _ => {
                let a = self.assignment();
                self.line(&a);
            }
        }
    }
}

/// Generate a terminating mini-C program from `seed`.
///
/// The result's [`GenCProgram::source`] compiles under both
/// [`crate::compile_crisp`] and [`crate::compile_vax`]; its
/// [`GenCProgram::globals`] lists the observable outputs in declaration
/// order.
pub fn generate_c(seed: u64) -> GenCProgram {
    let mut g = Gen {
        rng: Rng::new(seed ^ 0xC0DE_C0DE),
        globals: Vec::new(),
        locals: Vec::new(),
        reserved: Vec::new(),
        out: String::new(),
        indent: 0,
    };
    let n_globals = 2 + g.rng.below(4) as usize;
    for i in 0..n_globals {
        g.globals.push(format!("g{i}"));
    }
    for name in g.globals.clone() {
        g.line(&format!("int {name};"));
    }
    g.line("void main() {");
    g.indent = 1;
    // Locals: a couple of scratch variables plus up to MAX_LOOP_DEPTH
    // induction variables, all declared up front (mini-C style).
    let n_locals = 1 + g.rng.below(3) as usize;
    for i in 0..n_locals {
        let init = g.constant();
        let name = format!("t{i}");
        g.line(&format!("int {name} = {init};"));
        g.locals.push(name);
    }
    let mut decls = String::new();
    for d in 0..MAX_LOOP_DEPTH {
        if d > 0 {
            decls.push_str(", ");
        }
        let _ = write!(decls, "i{d}");
    }
    g.line(&format!("int {decls};"));
    for _ in 0..2 + g.rng.below(5) {
        g.stmt(0);
    }
    // Fold every local into a global so local-only computation stays
    // observable.
    for (i, local) in g.locals.clone().into_iter().enumerate() {
        let target = g.globals[i % n_globals].clone();
        g.line(&format!("{target} ^= {local};"));
    }
    g.indent = 0;
    g.line("}");
    GenCProgram {
        seed,
        source: g.out,
        globals: g.globals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile_crisp, compile_vax, CompileOptions, PredictionMode};
    use crisp_sim::{FunctionalSim, Machine};

    /// Final global values under the CRISP backend (functional sim).
    fn crisp_globals(prog: &GenCProgram, opts: &CompileOptions) -> Vec<i32> {
        let image = compile_crisp(&prog.source, opts).unwrap_or_else(|e| {
            panic!("seed {} fails to compile: {e}\n{}", prog.seed, prog.source)
        });
        let run = FunctionalSim::new(Machine::load(&image).unwrap())
            .run()
            .unwrap_or_else(|e| panic!("seed {} fails to run: {e}\n{}", prog.seed, prog.source));
        (0..prog.globals.len() as u32)
            .map(|i| {
                run.machine
                    .mem
                    .read_word(crisp_asm::Image::DEFAULT_DATA_BASE + 4 * i)
                    .unwrap()
            })
            .collect()
    }

    /// Final global values under the VAX-lite backend.
    fn vax_globals(prog: &GenCProgram) -> Vec<i32> {
        let program = compile_vax(&prog.source)
            .unwrap_or_else(|e| panic!("seed {} fails on VAX: {e}\n{}", prog.seed, prog.source));
        let slots: Vec<u32> = prog
            .globals
            .iter()
            .map(|n| program.slot(n).expect("global has a slot"))
            .collect();
        let result = program.run(100_000_000).expect("VAX run halts");
        slots
            .into_iter()
            .map(|s| result.memory[s as usize])
            .collect()
    }

    #[test]
    fn generated_programs_agree_across_backends_and_options() {
        for seed in 0..60 {
            let prog = generate_c(seed);
            let reference = vax_globals(&prog);
            for opts in [
                CompileOptions::default(),
                CompileOptions {
                    spread: false,
                    prediction: PredictionMode::NotTaken,
                },
                CompileOptions {
                    spread: true,
                    prediction: PredictionMode::Taken,
                },
            ] {
                assert_eq!(
                    crisp_globals(&prog, &opts),
                    reference,
                    "seed {seed} under {opts:?}:\n{}",
                    prog.source
                );
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(generate_c(7).source, generate_c(7).source);
        assert_ne!(generate_c(7).source, generate_c(8).source);
    }
}

//! Static branch-prediction-bit setting.
//!
//! CRISP's conditional branches carry "a single static branch prediction
//! bit, which may be set by the compiler ... used as a hint to the
//! hardware as to whether the branch will transfer or not". This pass
//! assigns that bit over a generated item list.
//!
//! [`PredictionMode::Btfnt`] is the classic backward-taken /
//! forward-not-taken heuristic (loops predicted to iterate).
//! The paper's Table 4 cases map onto the other modes: case A sets the
//! end-of-loop branch *not taken* while keeping the `if` branch taken —
//! exactly [`PredictionMode::Ftbnt`] (the inverse heuristic) — and cases
//! B–E set every branch taken ([`PredictionMode::Taken`], since both
//! branches in the Figure 3 loop were set to "yes").
//!
//! Profile-guided (optimal static) bits are applied separately with
//! [`apply_profile`], which patches prediction bits directly in an
//! assembled image given per-branch majority directions measured by a
//! profiling run — the method the paper used to report "accuracy for
//! optimal setting of a branch prediction bit".

use std::collections::BTreeMap;
use std::collections::HashMap;

use crisp_asm::{Image, Item, Module};
use crisp_isa::{encoding, BranchTarget, Instr};

/// How static prediction bits are assigned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PredictionMode {
    /// Predict every conditional branch taken.
    Taken,
    /// Predict every conditional branch not taken.
    NotTaken,
    /// Backward taken, forward not taken (the compiler default).
    #[default]
    Btfnt,
    /// Forward taken, backward not taken — the paper's case A setting
    /// (loop branch "no", `if` branch "yes").
    Ftbnt,
}

/// Assign prediction bits across a module according to `mode`.
///
/// Direction (backward/forward) is judged from item order: a branch to a
/// label defined at or before the branch's position is backward.
pub fn assign_prediction(module: &mut Module, mode: PredictionMode) {
    let mut label_pos: BTreeMap<&str, usize> = BTreeMap::new();
    for (idx, item) in module.items.iter().enumerate() {
        if let Item::Label(name) = item {
            label_pos.insert(name, idx);
        }
    }
    let decide = |backward: bool| match mode {
        PredictionMode::Taken => true,
        PredictionMode::NotTaken => false,
        PredictionMode::Btfnt => backward,
        PredictionMode::Ftbnt => !backward,
    };
    // Collect decisions first (label_pos borrows items).
    let decisions: Vec<Option<bool>> = module
        .items
        .iter()
        .enumerate()
        .map(|(idx, item)| match item {
            Item::IfJmpTo { label, .. } => {
                let backward = label_pos.get(label.as_str()).is_some_and(|&p| p <= idx);
                Some(decide(backward))
            }
            Item::Instr(Instr::IfJmp { target, .. }) => {
                let backward = matches!(target, BranchTarget::PcRel(off) if *off <= 0);
                Some(decide(backward))
            }
            _ => None,
        })
        .collect();
    for (item, decision) in module.items.iter_mut().zip(decisions) {
        let Some(bit) = decision else { continue };
        match item {
            Item::IfJmpTo { predict_taken, .. } => *predict_taken = bit,
            Item::Instr(Instr::IfJmp { predict_taken, .. }) => *predict_taken = bit,
            _ => {}
        }
    }
}

/// Patch prediction bits in an assembled image from a per-branch profile
/// (`branch pc → majority taken?`). Branches absent from the map keep
/// their compiled bit. Returns how many branches were patched.
///
/// This models the optimal-static-bit setting of the paper's Table 1:
/// run once, set each bit to the branch's majority direction.
pub fn apply_profile(image: &mut Image, majority: &HashMap<u32, bool>) -> usize {
    let mut patched = 0;
    let mut at = 0usize;
    while at < image.parcels.len() {
        let pc = image.code_base + at as u32 * 2;
        let Ok((instr, len)) = encoding::decode(&image.parcels, at) else {
            // Data in the stream (e.g. `.word`): skip one parcel.
            at += 1;
            continue;
        };
        if let Instr::IfJmp {
            on_true,
            predict_taken,
            target,
        } = instr
        {
            if let Some(&bit) = majority.get(&pc) {
                if bit != predict_taken {
                    let fixed = Instr::IfJmp {
                        on_true,
                        predict_taken: bit,
                        target,
                    };
                    let parcels =
                        encoding::encode(&fixed).expect("re-encoding a decoded branch cannot fail");
                    image.parcels[at..at + parcels.len()].copy_from_slice(&parcels);
                    patched += 1;
                }
            }
        }
        at += len;
    }
    patched
}

#[cfg(test)]
mod tests {
    use super::*;
    use crisp_asm::{assemble, parse_module};

    fn module() -> Module {
        parse_module(
            "
            top:
                add 0(sp),$1
                cmp.s< 0(sp),$10
                ifjmpy.nt top      ; backward
                cmp.= Accum,$0
                ifjmpy.nt fwd      ; forward
                nop
            fwd:
                halt
            ",
        )
        .unwrap()
    }

    fn bits(m: &Module) -> Vec<bool> {
        m.items
            .iter()
            .filter_map(|i| match i {
                Item::IfJmpTo { predict_taken, .. } => Some(*predict_taken),
                Item::Instr(Instr::IfJmp { predict_taken, .. }) => Some(*predict_taken),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn btfnt_predicts_backward_taken() {
        let mut m = module();
        assign_prediction(&mut m, PredictionMode::Btfnt);
        assert_eq!(bits(&m), vec![true, false]);
    }

    #[test]
    fn ftbnt_is_the_inverse() {
        let mut m = module();
        assign_prediction(&mut m, PredictionMode::Ftbnt);
        assert_eq!(bits(&m), vec![false, true]);
    }

    #[test]
    fn uniform_modes() {
        let mut m = module();
        assign_prediction(&mut m, PredictionMode::Taken);
        assert_eq!(bits(&m), vec![true, true]);
        assign_prediction(&mut m, PredictionMode::NotTaken);
        assert_eq!(bits(&m), vec![false, false]);
    }

    #[test]
    fn concrete_pcrel_branches_also_assigned() {
        let mut m = Module::new();
        m.push(Item::Instr(Instr::IfJmp {
            on_true: true,
            predict_taken: false,
            target: BranchTarget::PcRel(-4),
        }));
        m.push(Item::Instr(Instr::IfJmp {
            on_true: true,
            predict_taken: true,
            target: BranchTarget::PcRel(8),
        }));
        assign_prediction(&mut m, PredictionMode::Btfnt);
        assert_eq!(bits(&m), vec![true, false]);
    }

    #[test]
    fn profile_patch_flips_bits_in_place() {
        let mut m = module();
        assign_prediction(&mut m, PredictionMode::NotTaken);
        let mut image = assemble(&m).unwrap();
        // Find the two conditional branches.
        let mut branch_pcs = Vec::new();
        let mut at = 0;
        while at < image.parcels.len() {
            let (i, len) = encoding::decode(&image.parcels, at).unwrap();
            if matches!(i, Instr::IfJmp { .. }) {
                branch_pcs.push(at as u32 * 2);
            }
            at += len;
        }
        assert_eq!(branch_pcs.len(), 2);
        let mut majority = HashMap::new();
        majority.insert(branch_pcs[0], true);
        majority.insert(branch_pcs[1], false); // already false: no patch
        let patched = apply_profile(&mut image, &majority);
        assert_eq!(patched, 1);
        let (i, _) = encoding::decode(&image.parcels, branch_pcs[0] as usize / 2).unwrap();
        assert!(matches!(
            i,
            Instr::IfJmp {
                predict_taken: true,
                ..
            }
        ));
    }
}

//! Mini-C compiler for the CRISP reproduction.
//!
//! The paper attributes CRISP's branch performance to "the synergistic
//! combination of three techniques": Branch Folding in hardware,
//! compiler technology, and an instruction set designed for both. This
//! crate is the compiler leg: a small C compiler with the two passes the
//! paper describes —
//!
//! * **static branch prediction** ([`PredictionMode`]): setting the
//!   single prediction bit each conditional branch carries;
//! * **Branch Spreading** ([`spread`]): code motion separating `cmp`
//!   from its dependent conditional branch so the branch direction is
//!   known with certainty when it is read from the decoded cache.
//!
//! Two backends share the front end: the CRISP backend produces
//! executable [`crisp_asm::Image`]s; the VAX-lite backend produces
//! [`vax_lite::Program`]s for the paper's Table 2 instruction-count
//! comparison.
//!
//! # Example
//!
//! ```
//! use crisp_cc::{compile_crisp, CompileOptions, PredictionMode};
//!
//! let image = compile_crisp(
//!     "
//!     int total;
//!     void main() {
//!         int i;
//!         for (i = 0; i < 10; i++) total += i;
//!     }
//!     ",
//!     &CompileOptions { spread: true, prediction: PredictionMode::Btfnt },
//! )?;
//! assert!(image.symbols.contains_key("main"));
//! # Ok::<(), crisp_cc::CcError>(())
//! ```

#![warn(missing_docs)]

pub mod ast;
mod crisp_gen;
mod error;
pub mod fold_const;
mod lexer;
mod parser;
pub mod predict;
pub mod rand_c;
pub mod spread;
mod vax_gen;

pub use error::CcError;
pub use parser::parse;
pub use predict::{apply_profile, PredictionMode};
pub use rand_c::{generate_c, GenCProgram};

use crisp_asm::{assemble, Image, Module};

/// Options for the CRISP backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompileOptions {
    /// Apply Branch Spreading (statement fill + compare hoisting).
    pub spread: bool,
    /// How static prediction bits are set.
    pub prediction: PredictionMode,
}

impl Default for CompileOptions {
    fn default() -> CompileOptions {
        CompileOptions {
            spread: true,
            prediction: PredictionMode::Btfnt,
        }
    }
}

/// Compile mini-C to a CRISP assembly [`Module`] (pre-assembly, useful
/// for listings such as the paper's Table 3).
///
/// # Errors
///
/// Any [`CcError`] from lexing, parsing or code generation.
pub fn compile_crisp_module(src: &str, opts: &CompileOptions) -> Result<Module, CcError> {
    let mut unit = parser::parse(src)?;
    fold_const::fold_unit(&mut unit);
    let mut module = crisp_gen::generate(&unit, opts.spread)?;
    if opts.spread {
        spread::hoist_compares(&mut module.items);
    }
    predict::assign_prediction(&mut module, opts.prediction);
    Ok(module)
}

/// Compile mini-C to an executable CRISP [`Image`].
///
/// # Errors
///
/// Any [`CcError`], including assembly failures.
pub fn compile_crisp(src: &str, opts: &CompileOptions) -> Result<Image, CcError> {
    assemble(&compile_crisp_module(src, opts)?).map_err(CcError::Asm)
}

/// Compile mini-C to a VAX-lite [`vax_lite::Program`] (the Table 2
/// comparison backend; scalar programs only).
///
/// # Errors
///
/// Any [`CcError`]; arrays and recursion report
/// [`CcError::Unsupported`].
pub fn compile_vax(src: &str) -> Result<vax_lite::Program, CcError> {
    let mut unit = parser::parse(src)?;
    fold_const::fold_unit(&mut unit);
    vax_gen::generate(&unit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crisp_sim::{FunctionalSim, Machine};

    fn run_crisp(src: &str, opts: &CompileOptions) -> crisp_sim::FunctionalRun {
        let image = compile_crisp(src, opts).unwrap();
        FunctionalSim::new(Machine::load(&image).unwrap())
            .run()
            .unwrap()
    }

    fn global(run: &crisp_sim::FunctionalRun, index: u32) -> i32 {
        run.machine
            .mem
            .read_word(crisp_asm::Image::DEFAULT_DATA_BASE + 4 * index)
            .unwrap()
    }

    #[test]
    fn end_to_end_arithmetic() {
        let src = "
            int a; int b; int c; int d; int e;
            void main() {
                a = 7 + 3 * 2;
                b = (20 - 5) / 3;
                c = 17 % 5;
                d = (6 & 3) | (8 ^ 1);
                e = (1 << 6) >> 2;
            }
        ";
        for opts in [
            CompileOptions::default(),
            CompileOptions {
                spread: false,
                prediction: PredictionMode::NotTaken,
            },
        ] {
            let r = run_crisp(src, &opts);
            assert_eq!(global(&r, 0), 13);
            assert_eq!(global(&r, 1), 5);
            assert_eq!(global(&r, 2), 2);
            assert_eq!(global(&r, 3), 2 | 9);
            assert_eq!(global(&r, 4), 16);
        }
    }

    #[test]
    fn crisp_and_vax_agree_on_figure3() {
        let src = "
            int out_sum; int out_odd; int out_even;
            void main() {
                int i, j, odd, even, sum;
                sum = 0;
                j = odd = even = 0;
                for (i = 0; i < 100; i++) {
                    sum += i;
                    if (i & 1) odd++;
                    else even++;
                    j = sum;
                }
                out_sum = sum;
                out_odd = odd;
                out_even = even;
            }
        ";
        let crisp = run_crisp(src, &CompileOptions::default());
        assert_eq!(global(&crisp, 0), 4950);
        assert_eq!(global(&crisp, 1), 50);
        assert_eq!(global(&crisp, 2), 50);
        let vax = compile_vax(src).unwrap().run(10_000_000).unwrap();
        assert_eq!(vax.memory[0], 4950);
        assert_eq!(vax.memory[1], 50);
        assert_eq!(vax.memory[2], 50);
    }

    #[test]
    fn spreading_preserves_semantics() {
        // A battery of programs executed with and without spreading
        // must produce identical results.
        let programs = [
            "int r; void main() { int i, x; x = 0;
              for (i = 0; i < 50; i++) { if (i % 3 == 0) x += i; else x -= 1; r = x; } }",
            "int r; void main() { int i, a, b; a = b = 0;
              for (i = 0; i < 30; i++) { if (i & 1) a++; else b++; r = a * 100 + b; } }",
            "int r; int acc; void main() { int i;
              for (i = 0; i < 20; i++) { if (i > 10) acc += 2; acc += 1; } r = acc; }",
        ];
        for src in programs {
            let plain = run_crisp(
                src,
                &CompileOptions {
                    spread: false,
                    prediction: PredictionMode::Btfnt,
                },
            );
            let spread = run_crisp(
                src,
                &CompileOptions {
                    spread: true,
                    prediction: PredictionMode::Btfnt,
                },
            );
            assert_eq!(global(&plain, 0), global(&spread, 0), "{src}");
        }
    }

    #[test]
    fn spreading_separates_compare_from_branch() {
        // The Figure 3 loop: with spreading the alternating if-branch
        // must sit at least 3 instructions after its compare.
        let src = "
            void main() {
                int i, j, odd, even, sum;
                sum = 0;
                j = odd = even = 0;
                for (i = 0; i < 16; i++) {
                    sum += i;
                    if (i & 1) odd++;
                    else even++;
                    j = sum;
                }
            }
        ";
        let module = compile_crisp_module(src, &CompileOptions::default()).unwrap();
        // Find the first cmp/ifjmp pair and count instructions between.
        let items = &module.items;
        let cmp_at = items
            .iter()
            .position(|i| matches!(i, crisp_asm::Item::Instr(crisp_isa::Instr::Cmp { .. })))
            .expect("a compare");
        let mut gap = 0;
        for item in &items[cmp_at + 1..] {
            match item {
                crisp_asm::Item::IfJmpTo { .. } => break,
                crisp_asm::Item::Instr(_) => gap += 1,
                _ => {}
            }
        }
        assert!(gap >= 3, "expected >=3 instructions of spread, got {gap}");
    }

    #[test]
    fn functions_recursion_and_arrays() {
        let src = "
            int fib[20];
            int out;
            int fib_rec(int n) {
                if (n < 2) return n;
                return fib_rec(n - 1) + fib_rec(n - 2);
            }
            void main() {
                int i;
                fib[0] = 0;
                fib[1] = 1;
                for (i = 2; i < 20; i++) fib[i] = fib[i-1] + fib[i-2];
                out = fib_rec(15);
                if (out != fib[15]) out = -1;
            }
        ";
        let r = run_crisp(src, &CompileOptions::default());
        assert_eq!(global(&r, 20), 610); // out is after fib[20]
    }

    #[test]
    fn prediction_modes_do_not_change_results() {
        let src = "int r; void main() { int i; for (i = 0; i < 25; i++) r += i; }";
        let mut last = None;
        for mode in [
            PredictionMode::Taken,
            PredictionMode::NotTaken,
            PredictionMode::Btfnt,
            PredictionMode::Ftbnt,
        ] {
            let r = run_crisp(
                src,
                &CompileOptions {
                    spread: false,
                    prediction: mode,
                },
            );
            let v = global(&r, 0);
            assert_eq!(v, 300);
            if let Some(prev) = last {
                assert_eq!(prev, v);
            }
            last = Some(v);
        }
    }

    #[test]
    fn dense_switch_emits_indirect_jump_table() {
        let src = "
            int r;
            void main() {
                switch (r) {
                    case 0: r = 1; break;
                    case 1: r = 2; break;
                    case 2: r = 3; break;
                    case 3: r = 4; break;
                    default: r = 9; break;
                }
            }
        ";
        let module = compile_crisp_module(src, &CompileOptions::default()).unwrap();
        let indirect = module.items.iter().any(|i| {
            matches!(
                i,
                crisp_asm::Item::Instr(crisp_isa::Instr::Jmp {
                    target: crisp_isa::BranchTarget::IndSp(_)
                })
            )
        });
        let table_words = module
            .items
            .iter()
            .filter(|i| matches!(i, crisp_asm::Item::WordLabel(_)))
            .count();
        assert!(indirect, "dense switch must dispatch indirectly");
        assert_eq!(table_words, 4, "table covers the case span");
        // The functional trace records the indirect transfer.
        let image = crisp_asm::assemble(&module).unwrap();
        let run = FunctionalSim::new(Machine::load(&image).unwrap())
            .record_trace(true)
            .run()
            .unwrap();
        assert!(run
            .trace
            .iter()
            .any(|e| e.kind == crisp_sim::BranchKind::Uncond && e.target != 0));
    }

    #[test]
    fn vax_switch_with_continue_in_loop() {
        let src = "
            int sum;
            void main() {
                int i;
                for (i = 0; i < 8; i++) {
                    switch (i & 1) {
                        case 0: continue;
                        default: sum += i;
                    }
                }
            }
        ";
        let vax = compile_vax(src).unwrap().run(1_000_000).unwrap();
        assert_eq!(vax.memory[0], 1 + 3 + 5 + 7);
        let crisp = run_crisp(src, &CompileOptions::default());
        assert_eq!(global(&crisp, 0), 16);
    }

    #[test]
    fn error_paths_render() {
        for (src, needle) in [
            ("void main() { @ }", "stray"),
            ("void main() { int x }", "expected"),
            ("void main() { y = 1; }", "undefined"),
        ] {
            let e = compile_crisp(src, &CompileOptions::default()).unwrap_err();
            assert!(e.to_string().contains(needle), "{src}: {e}");
        }
    }
}

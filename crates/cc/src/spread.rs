//! Branch Spreading — the paper's compiler-side technique.
//!
//! "Because CRISP has separate compare and conditional branch
//! instructions it is possible to have the compiler assure that no
//! comparison instructions will be in the pipeline when a conditional
//! branch is read from the instruction cache. ... Use of code motion can
//! do much better by moving useful non-condition-code-setting
//! instructions between the compare instruction and the conditional
//! branch instruction."
//!
//! Two cooperating mechanisms reproduce the paper's Table 3
//! transformation:
//!
//! 1. **Statement fill** (used during code generation): statements that
//!    follow an `if` and commute with both arms — plus the enclosing
//!    `for` loop's step when nothing else remains — are emitted *between*
//!    the compare and the conditional branch. This is what moves
//!    `j = sum` and `i++` ahead of the `if` branch in Table 3.
//! 2. **Compare hoisting** (an item-level pass, [`hoist_compares`]): the
//!    compare, together with the producers it depends on (`and3 i,1`),
//!    is bubbled upward past independent instructions, which therefore
//!    land in the gap. This moves `add sum,i` below the compare in
//!    Table 3.
//!
//! Three instructions of separation make the compare retire before the
//! branch enters the pipeline, reducing even a wrongly-predicted
//! branch's cost to zero.

use std::collections::BTreeSet;

use crisp_asm::Item;
use crisp_isa::{Instr, Operand};

use crate::ast::{BinaryOp, Expr, LValue, Stmt, UnaryOp};

/// How many instructions between a compare and its branch guarantee
/// zero-cost resolution (the EU pipeline depth).
pub const SPREAD_DISTANCE: usize = 3;

// ---------------------------------------------------------------------
// AST-level analysis for statement fill
// ---------------------------------------------------------------------

/// Read/write variable sets. Array accesses appear as `"[]name"` so
/// element accesses of the same array conflict with each other but not
/// with unrelated scalars.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RwSets {
    /// Variables (and arrays) read.
    pub reads: BTreeSet<String>,
    /// Variables (and arrays) written.
    pub writes: BTreeSet<String>,
}

impl RwSets {
    /// Whether two effect sets commute (no read/write or write/write
    /// overlap).
    pub fn commutes(&self, other: &RwSets) -> bool {
        self.writes.is_disjoint(&other.reads)
            && self.writes.is_disjoint(&other.writes)
            && self.reads.is_disjoint(&other.writes)
    }
}

fn lvalue_rw(lv: &LValue, as_write: bool, out: &mut RwSets) -> Option<()> {
    match lv {
        LValue::Var(name) => {
            if as_write {
                out.writes.insert(name.clone());
            } else {
                out.reads.insert(name.clone());
            }
        }
        LValue::Index(name, idx) => {
            let tag = format!("[]{name}");
            if as_write {
                out.writes.insert(tag);
            } else {
                out.reads.insert(tag);
            }
            expr_rw_into(idx, out)?;
        }
    }
    Some(())
}

fn expr_rw_into(e: &Expr, out: &mut RwSets) -> Option<()> {
    match e {
        Expr::Lit(_) => Some(()),
        Expr::Load(lv) => lvalue_rw(lv, false, out),
        Expr::Unary(_, inner) => expr_rw_into(inner, out),
        Expr::Binary(_, a, b) => {
            expr_rw_into(a, out)?;
            expr_rw_into(b, out)
        }
        Expr::Assign(lv, rhs) | Expr::AssignOp(_, lv, rhs) => {
            expr_rw_into(rhs, out)?;
            lvalue_rw(lv, true, out)?;
            if matches!(e, Expr::AssignOp(..)) {
                lvalue_rw(lv, false, out)?;
            }
            Some(())
        }
        Expr::IncDec { lv, .. } => {
            lvalue_rw(lv, false, out)?;
            lvalue_rw(lv, true, out)
        }
        Expr::Cond(c, a, b) => {
            expr_rw_into(c, out)?;
            expr_rw_into(a, out)?;
            expr_rw_into(b, out)
        }
        // Calls have unknown effects: not analyzable.
        Expr::Call(..) => None,
    }
}

/// Effect sets of an expression, or `None` when it contains a call
/// (unknown effects).
pub fn expr_rw(e: &Expr) -> Option<RwSets> {
    let mut out = RwSets::default();
    expr_rw_into(e, &mut out)?;
    Some(out)
}

/// Effect sets of a whole statement (including nested control flow), or
/// `None` when it contains a call.
pub fn stmt_rw(s: &Stmt) -> Option<RwSets> {
    let mut out = RwSets::default();
    stmt_rw_into(s, &mut out)?;
    Some(out)
}

fn stmt_rw_into(s: &Stmt, out: &mut RwSets) -> Option<()> {
    match s {
        Stmt::Empty | Stmt::Break | Stmt::Continue => Some(()),
        Stmt::Expr(e) => expr_rw_into(e, out),
        Stmt::Decl(decls) => {
            for (name, init) in decls {
                out.writes.insert(name.clone());
                if let Some(e) = init {
                    expr_rw_into(e, out)?;
                }
            }
            Some(())
        }
        Stmt::If(c, t, e) => {
            expr_rw_into(c, out)?;
            stmt_rw_into(t, out)?;
            if let Some(e) = e {
                stmt_rw_into(e, out)?;
            }
            Some(())
        }
        Stmt::While(c, b) | Stmt::DoWhile(b, c) => {
            expr_rw_into(c, out)?;
            stmt_rw_into(b, out)
        }
        Stmt::For(i, c, st, b) => {
            if let Some(i) = i {
                stmt_rw_into(i, out)?;
            }
            if let Some(c) = c {
                expr_rw_into(c, out)?;
            }
            if let Some(st) = st {
                expr_rw_into(st, out)?;
            }
            stmt_rw_into(b, out)
        }
        Stmt::Return(e) => {
            if let Some(e) = e {
                expr_rw_into(e, out)?;
            }
            Some(())
        }
        Stmt::Block(body) => {
            for s in body {
                stmt_rw_into(s, out)?;
            }
            Some(())
        }
        Stmt::Switch(scrutinee, cases) => {
            expr_rw_into(scrutinee, out)?;
            for case in cases {
                for s in &case.body {
                    stmt_rw_into(s, out)?;
                }
            }
            Some(())
        }
    }
}

/// Whether an expression's code generation is guaranteed not to emit a
/// compare (comparisons, logical operators, ternaries and calls all
/// do or may).
fn expr_flag_safe(e: &Expr) -> bool {
    match e {
        Expr::Lit(_) => true,
        Expr::Load(lv) => lvalue_flag_safe(lv),
        Expr::Unary(op, inner) => !matches!(op, UnaryOp::LogNot) && expr_flag_safe(inner),
        Expr::Binary(op, a, b) => {
            !op.is_comparison()
                && !matches!(op, BinaryOp::LogAnd | BinaryOp::LogOr)
                && expr_flag_safe(a)
                && expr_flag_safe(b)
        }
        Expr::Assign(lv, rhs) | Expr::AssignOp(_, lv, rhs) => {
            lvalue_flag_safe(lv) && expr_flag_safe(rhs)
        }
        Expr::IncDec { lv, .. } => lvalue_flag_safe(lv),
        Expr::Call(..) | Expr::Cond(..) => false,
    }
}

fn lvalue_flag_safe(lv: &LValue) -> bool {
    match lv {
        LValue::Var(_) => true,
        LValue::Index(_, idx) => expr_flag_safe(idx),
    }
}

/// Whether `s` may be emitted into a compare→branch gap: a simple
/// expression statement whose code cannot touch the condition flag.
pub fn is_fill_candidate(s: &Stmt) -> bool {
    matches!(s, Stmt::Expr(e) if expr_flag_safe(e))
}

/// Whether a statement contains a side exit (`break` / `continue` /
/// `return`) at any depth that could leave the enclosing region.
pub fn has_side_exit(s: &Stmt) -> bool {
    match s {
        Stmt::Break | Stmt::Continue | Stmt::Return(_) => true,
        Stmt::Block(body) => body.iter().any(has_side_exit),
        Stmt::If(_, t, e) => has_side_exit(t) || e.as_deref().is_some_and(has_side_exit),
        // break/continue inside a nested loop do not exit *this* region;
        // a return still does.
        Stmt::While(_, b) | Stmt::DoWhile(b, _) => contains_return(b),
        Stmt::For(i, _, _, b) => i.as_deref().is_some_and(has_side_exit) || contains_return(b),
        // A switch captures its breaks, but `continue` and `return`
        // still escape.
        Stmt::Switch(_, cases) => cases
            .iter()
            .flat_map(|c| &c.body)
            .any(|s| has_continue(s) || contains_return(s)),
        _ => false,
    }
}

/// Whether a statement contains a `continue` that targets the enclosing
/// loop (nested loops keep their own `continue`s).
pub fn has_continue(s: &Stmt) -> bool {
    match s {
        Stmt::Continue => true,
        Stmt::Block(body) => body.iter().any(has_continue),
        Stmt::If(_, t, e) => has_continue(t) || e.as_deref().is_some_and(has_continue),
        // A switch does NOT capture continue.
        Stmt::Switch(_, cases) => cases.iter().flat_map(|c| &c.body).any(has_continue),
        // A nested loop captures its own continues.
        Stmt::While(..) | Stmt::DoWhile(..) | Stmt::For(..) => false,
        _ => false,
    }
}

fn contains_return(s: &Stmt) -> bool {
    match s {
        Stmt::Return(_) => true,
        Stmt::Block(body) => body.iter().any(contains_return),
        Stmt::If(_, t, e) => contains_return(t) || e.as_deref().is_some_and(contains_return),
        Stmt::While(_, b) | Stmt::DoWhile(b, _) => contains_return(b),
        Stmt::For(i, _, _, b) => i.as_deref().is_some_and(contains_return) || contains_return(b),
        Stmt::Switch(_, cases) => cases.iter().flat_map(|c| &c.body).any(contains_return),
        _ => false,
    }
}

// ---------------------------------------------------------------------
// Item-level compare hoisting
// ---------------------------------------------------------------------

/// Abstract locations an instruction touches.
#[derive(Debug, Default, Clone)]
struct Touch {
    reads: Vec<Operand>,
    writes: Vec<Operand>,
    reads_accum: bool,
    writes_accum: bool,
}

fn touch_of(instr: &Instr) -> Option<Touch> {
    // Only plain data instructions participate; everything else is a
    // motion barrier.
    let mut t = Touch::default();
    let note_read = |op: Operand, t: &mut Touch| {
        match op {
            Operand::Accum => t.reads_accum = true,
            Operand::Imm(_) => {}
            other => t.reads.push(other),
        }
        // A stack-indirect access also reads its pointer slot.
        if let Operand::SpInd(off) = op {
            t.reads.push(Operand::SpOff(off));
        }
    };
    match *instr {
        Instr::Nop => {}
        Instr::Op2 { op, dst, src } => {
            if op != crisp_isa::BinOp::Mov {
                note_read(dst, &mut t);
            }
            note_read(src, &mut t);
            match dst {
                Operand::Accum => t.writes_accum = true,
                other => {
                    t.writes.push(other);
                    if let Operand::SpInd(off) = other {
                        t.reads.push(Operand::SpOff(off));
                    }
                }
            }
        }
        Instr::Op3 { a, b, .. } => {
            note_read(a, &mut t);
            note_read(b, &mut t);
            t.writes_accum = true;
        }
        Instr::Cmp { a, b, .. } => {
            note_read(a, &mut t);
            note_read(b, &mut t);
            // The flag write is implicit; only branches read it and they
            // are barriers, so it needs no modelling here.
        }
        _ => return None, // branches, calls, frame ops, halt: barriers
    }
    Some(t)
}

/// Conservative may-alias for operand locations.
fn may_alias(a: Operand, b: Operand) -> bool {
    match (a, b) {
        // Indirect pointers can point anywhere in memory.
        (Operand::SpInd(_), other) | (other, Operand::SpInd(_)) => other.is_memory(),
        (Operand::SpOff(x), Operand::SpOff(y)) => x == y,
        (Operand::Abs(x), Operand::Abs(y)) => x == y,
        // Stack and globals live in disjoint regions of the memory map.
        (Operand::SpOff(_), Operand::Abs(_)) | (Operand::Abs(_), Operand::SpOff(_)) => false,
        _ => false,
    }
}

fn sets_conflict(a: &[Operand], b: &[Operand]) -> bool {
    a.iter().any(|&x| b.iter().any(|&y| may_alias(x, y)))
}

/// Whether two instructions' effects conflict (cannot be reordered).
fn conflicts(p: &Touch, g: &Touch) -> bool {
    sets_conflict(&p.writes, &g.reads)
        || sets_conflict(&p.writes, &g.writes)
        || sets_conflict(&p.reads, &g.writes)
        || (p.writes_accum && (g.reads_accum || g.writes_accum))
        || (p.reads_accum && g.writes_accum)
}

/// Hoist each compare (with the producers it depends on) upward past
/// independent instructions until [`SPREAD_DISTANCE`] instructions
/// separate it from its conditional branch, or motion is blocked by a
/// label, control transfer or dependence. Returns the number of swaps
/// performed.
pub fn hoist_compares(items: &mut Vec<Item>) -> usize {
    let mut moved = 0;
    let mut idx = 0;
    while idx < items.len() {
        // Find a conditional branch.
        let is_cond = matches!(
            items[idx],
            Item::IfJmpTo { .. } | Item::Instr(Instr::IfJmp { .. })
        );
        if !is_cond {
            idx += 1;
            continue;
        }
        // Find its compare, scanning back over plain instructions.
        let mut cmp_at = None;
        let mut between = 0usize;
        let mut k = idx;
        while k > 0 {
            k -= 1;
            match &items[k] {
                Item::Instr(Instr::Cmp { .. }) => {
                    cmp_at = Some(k);
                    break;
                }
                Item::Instr(i) if touch_of(i).is_some() => between += 1,
                _ => break, // label / branch / frame op: no compare here
            }
        }
        let Some(mut cmp_at) = cmp_at else {
            idx += 1;
            continue;
        };

        // Hoist the dependence-closed group [group_lo ..= cmp_at].
        let mut group_lo = cmp_at;
        while between < SPREAD_DISTANCE && group_lo > 0 {
            let group_touch: Vec<Touch> = items[group_lo..=cmp_at]
                .iter()
                .filter_map(|it| match it {
                    Item::Instr(i) => touch_of(i),
                    _ => None,
                })
                .collect();
            let p_instr = match &items[group_lo - 1] {
                Item::Instr(i) => i,
                _ => break, // label or directive: barrier
            };
            let Some(p_touch) = touch_of(p_instr) else {
                break;
            };
            if group_touch.iter().any(|g| conflicts(&p_touch, g)) {
                // Dependence: absorb the producer into the group and keep
                // climbing.
                group_lo -= 1;
                continue;
            }
            // Independent: rotate P below the group.
            let p = items.remove(group_lo - 1);
            items.insert(cmp_at, p);
            moved += 1;
            between += 1;
            group_lo -= 1;
            cmp_at -= 1;
        }
        idx += 1;
    }
    moved
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crisp_isa::{BinOp, Cond};

    fn instr_item(i: Instr) -> Item {
        Item::Instr(i)
    }

    fn mnemonics(items: &[Item]) -> Vec<String> {
        items
            .iter()
            .map(|i| match i {
                Item::Instr(instr) => instr.to_string(),
                Item::Label(l) => format!("{l}:"),
                Item::IfJmpTo { label, .. } => format!("ifjmp {label}"),
                Item::JmpTo { label } => format!("jmp {label}"),
                other => format!("{other:?}"),
            })
            .collect()
    }

    #[test]
    fn hoists_compare_group_past_independent_add() {
        // The Table 3 pattern: add sum,i / and3 i,1 / cmp.= Accum,0 / if.
        let mut items = vec![
            Item::Label("top".into()),
            instr_item(Instr::Op2 {
                op: BinOp::Add,
                dst: Operand::SpOff(16), // sum
                src: Operand::SpOff(0),  // i
            }),
            instr_item(Instr::Op3 {
                op: BinOp::And,
                a: Operand::SpOff(0),
                b: Operand::Imm(1),
            }),
            instr_item(Instr::Cmp {
                cond: Cond::Eq,
                a: Operand::Accum,
                b: Operand::Imm(0),
            }),
            Item::IfJmpTo {
                on_true: true,
                predict_taken: true,
                label: "else".into(),
            },
        ];
        let moved = hoist_compares(&mut items);
        assert_eq!(moved, 1);
        let m = mnemonics(&items);
        // and3+cmp group hoisted above the add.
        assert!(m[1].starts_with("and3"), "{m:?}");
        assert!(m[2].starts_with("cmp"), "{m:?}");
        assert!(m[3].starts_with("add"), "{m:?}");
    }

    #[test]
    fn does_not_hoist_past_dependence_sink() {
        // add writes the slot the cmp reads: must absorb, not swap —
        // and then hit the label.
        let mut items = vec![
            Item::Label("top".into()),
            instr_item(Instr::Op2 {
                op: BinOp::Add,
                dst: Operand::SpOff(0),
                src: Operand::Imm(1),
            }),
            instr_item(Instr::Cmp {
                cond: Cond::LtS,
                a: Operand::SpOff(0),
                b: Operand::Imm(10),
            }),
            Item::IfJmpTo {
                on_true: true,
                predict_taken: true,
                label: "top".into(),
            },
        ];
        let before = mnemonics(&items);
        hoist_compares(&mut items);
        assert_eq!(before, mnemonics(&items), "no motion possible");
    }

    #[test]
    fn stops_at_spread_distance() {
        // Four independent adds above the cmp: only three may move down.
        let mut items = vec![Item::Label("top".into())];
        for i in 0..4 {
            items.push(instr_item(Instr::Op2 {
                op: BinOp::Add,
                dst: Operand::SpOff(4 * (i + 2)),
                src: Operand::Imm(1),
            }));
        }
        items.push(instr_item(Instr::Cmp {
            cond: Cond::LtS,
            a: Operand::SpOff(0),
            b: Operand::Imm(10),
        }));
        items.push(Item::IfJmpTo {
            on_true: true,
            predict_taken: true,
            label: "top".into(),
        });
        let moved = hoist_compares(&mut items);
        assert_eq!(moved, 3);
        let m = mnemonics(&items);
        assert!(m[1].starts_with("add"), "{m:?}"); // one add left above
        assert!(m[2].starts_with("cmp"), "{m:?}");
    }

    #[test]
    fn aliasing_blocks_motion() {
        // A stack-indirect write may alias the compare's operand.
        let mut items = vec![
            Item::Label("top".into()),
            instr_item(Instr::Op2 {
                op: BinOp::Mov,
                dst: Operand::SpInd(8),
                src: Operand::Imm(1),
            }),
            instr_item(Instr::Cmp {
                cond: Cond::LtS,
                a: Operand::SpOff(0),
                b: Operand::Imm(10),
            }),
            Item::IfJmpTo {
                on_true: true,
                predict_taken: true,
                label: "top".into(),
            },
        ];
        let before = mnemonics(&items);
        hoist_compares(&mut items);
        assert_eq!(before, mnemonics(&items));
    }

    #[test]
    fn distinct_globals_do_not_alias() {
        assert!(!may_alias(Operand::Abs(0x10000), Operand::Abs(0x10004)));
        assert!(may_alias(Operand::Abs(0x10000), Operand::Abs(0x10000)));
        assert!(!may_alias(Operand::SpOff(0), Operand::Abs(0x10000)));
        assert!(may_alias(Operand::SpInd(4), Operand::Abs(0x10000)));
        assert!(!may_alias(Operand::SpInd(4), Operand::Imm(3)));
    }

    // ---- AST analysis ----

    fn stmts_of(src: &str) -> Vec<Stmt> {
        let unit = parse(src).unwrap();
        unit.function("f").unwrap().body.clone()
    }

    #[test]
    fn rw_sets_of_statements() {
        let body = stmts_of("int j; int sum; void f() { j = sum; }");
        let rw = stmt_rw(&body[0]).unwrap();
        assert!(rw.reads.contains("sum"));
        assert!(rw.writes.contains("j"));
    }

    #[test]
    fn commutation() {
        let body = stmts_of(
            "int i; int j; int sum; int odd;
             void f() { j = sum; odd += 1; i += 1; sum += i; }",
        );
        let a = stmt_rw(&body[0]).unwrap(); // j = sum
        let b = stmt_rw(&body[1]).unwrap(); // odd += 1
        let c = stmt_rw(&body[2]).unwrap(); // i += 1
        let d = stmt_rw(&body[3]).unwrap(); // sum += i
        assert!(a.commutes(&b));
        assert!(a.commutes(&c));
        assert!(!a.commutes(&d)); // both touch sum
        assert!(!c.commutes(&d)); // d reads i, c writes i
    }

    #[test]
    fn calls_are_not_analyzable() {
        let body = stmts_of("int g() { return 1; } void f() { int x; x = g(); }");
        assert_eq!(stmt_rw(&body[1]), None);
    }

    #[test]
    fn fill_candidates() {
        let body = stmts_of(
            "int a; int b; int g() { return 1; }
             void f() {
                a = b + 1;        // yes
                a = b < 1;        // no: comparison sets the flag
                a = g();          // no: call
                if (a) b = 1;     // no: not an expression statement
                a++;              // yes
             }",
        );
        assert!(is_fill_candidate(&body[0]));
        assert!(!is_fill_candidate(&body[1]));
        assert!(!is_fill_candidate(&body[2]));
        assert!(!is_fill_candidate(&body[3]));
        assert!(is_fill_candidate(&body[4]));
    }

    #[test]
    fn side_exit_cases() {
        let unit = parse(
            "void f() {
                if (1) break;
                while (1) { break; }
                while (1) { return; }
                ;
             }",
        );
        // `break` outside a loop is a semantic error, not a parse error,
        // so this parses fine.
        let body = unit.unwrap().function("f").unwrap().body.clone();
        assert!(has_side_exit(&body[0]));
        assert!(!has_side_exit(&body[1]));
        assert!(has_side_exit(&body[2]));
        assert!(!has_side_exit(&body[3]));
    }

    #[test]
    fn array_accesses_conflict_by_array() {
        let unit = parse(
            "int a[4]; int b[4]; int i;
             void f() { a[i] = 1; b[i] = 2; a[0] = 3; }",
        )
        .unwrap();
        let body = unit.function("f").unwrap().body.clone();
        let s0 = stmt_rw(&body[0]).unwrap();
        let s1 = stmt_rw(&body[1]).unwrap();
        let s2 = stmt_rw(&body[2]).unwrap();
        assert!(s0.commutes(&s1)); // different arrays
        assert!(!s0.commutes(&s2)); // same array
    }
}

//! Lexer for the mini-C source language.

use std::fmt;

use crate::CcError;

/// A token with its 1-based source line (for diagnostics).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token kind/payload.
    pub kind: Tok,
    /// 1-based source line.
    pub line: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier.
    Ident(String),
    /// An integer literal (decimal, hex `0x`, or character `'c'`).
    Int(i64),
    /// A keyword.
    Kw(Kw),
    /// Punctuation or operator, by its exact spelling.
    Punct(&'static str),
    /// End of input.
    Eof,
}

/// Keywords of the mini-C language.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Kw {
    Int,
    Void,
    If,
    Else,
    While,
    Do,
    For,
    Return,
    Break,
    Continue,
    Switch,
    Case,
    Default,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::Int(v) => write!(f, "integer {v}"),
            Tok::Kw(k) => write!(f, "keyword `{k:?}`"),
            Tok::Punct(p) => write!(f, "`{p}`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

/// Multi-character operators, longest first so that maximal munch works.
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "==", "!=", "<=", ">=", "&&", "||", "++", "--", "+=", "-=", "*=", "/=", "%=",
    "&=", "|=", "^=", "<<", ">>", "(", ")", "{", "}", "[", "]", ";", ",", "=", "+", "-", "*", "/",
    "%", "&", "|", "^", "<", ">", "!", "~", "?", ":",
];

fn keyword(s: &str) -> Option<Kw> {
    Some(match s {
        "int" => Kw::Int,
        "void" => Kw::Void,
        "if" => Kw::If,
        "else" => Kw::Else,
        "while" => Kw::While,
        "do" => Kw::Do,
        "for" => Kw::For,
        "return" => Kw::Return,
        "break" => Kw::Break,
        "continue" => Kw::Continue,
        "switch" => Kw::Switch,
        "case" => Kw::Case,
        "default" => Kw::Default,
        _ => return None,
    })
}

/// Tokenise mini-C source.
///
/// # Errors
///
/// [`CcError::Lex`] on stray characters, malformed numbers, or an
/// unterminated block comment.
pub fn lex(src: &str) -> Result<Vec<Token>, CcError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;

    'outer: while i < bytes.len() {
        let c = bytes[i];
        if c == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if bytes[i..].starts_with(b"//") {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        if bytes[i..].starts_with(b"/*") {
            let start_line = line;
            i += 2;
            while i + 1 < bytes.len() {
                if bytes[i] == b'\n' {
                    line += 1;
                }
                if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                    i += 2;
                    continue 'outer;
                }
                i += 1;
            }
            return Err(CcError::Lex {
                line: start_line,
                message: "unterminated block comment".into(),
            });
        }
        // Identifiers / keywords.
        if c.is_ascii_alphabetic() || c == b'_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            let word = &src[start..i];
            let kind = match keyword(word) {
                Some(k) => Tok::Kw(k),
                None => Tok::Ident(word.to_owned()),
            };
            out.push(Token { kind, line });
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() {
            let start = i;
            let radix = if bytes[i..].starts_with(b"0x") || bytes[i..].starts_with(b"0X") {
                i += 2;
                16
            } else {
                10
            };
            while i < bytes.len() && bytes[i].is_ascii_alphanumeric() {
                i += 1;
            }
            let body = if radix == 16 {
                &src[start + 2..i]
            } else {
                &src[start..i]
            };
            let value = i64::from_str_radix(body, radix).map_err(|_| CcError::Lex {
                line,
                message: format!("bad number `{}`", &src[start..i]),
            })?;
            out.push(Token {
                kind: Tok::Int(value),
                line,
            });
            continue;
        }
        // Character literals (value of the byte).
        if c == b'\'' {
            if i + 3 < bytes.len() && bytes[i + 1] == b'\\' && bytes[i + 3] == b'\'' {
                let v = match bytes[i + 2] {
                    b'n' => b'\n',
                    b't' => b'\t',
                    b'0' => 0,
                    b'\\' => b'\\',
                    b'\'' => b'\'',
                    other => other,
                };
                out.push(Token {
                    kind: Tok::Int(v as i64),
                    line,
                });
                i += 4;
                continue;
            }
            if i + 2 < bytes.len() && bytes[i + 2] == b'\'' {
                out.push(Token {
                    kind: Tok::Int(bytes[i + 1] as i64),
                    line,
                });
                i += 3;
                continue;
            }
            return Err(CcError::Lex {
                line,
                message: "bad character literal".into(),
            });
        }
        // Operators / punctuation.
        for p in PUNCTS {
            if src[i..].starts_with(p) {
                out.push(Token {
                    kind: Tok::Punct(p),
                    line,
                });
                i += p.len();
                continue 'outer;
            }
        }
        return Err(CcError::Lex {
            line,
            message: format!(
                "stray character `{}`",
                src[i..].chars().next().unwrap_or('?')
            ),
        });
    }
    out.push(Token {
        kind: Tok::Eof,
        line,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            kinds("int x = 42;"),
            vec![
                Tok::Kw(Kw::Int),
                Tok::Ident("x".into()),
                Tok::Punct("="),
                Tok::Int(42),
                Tok::Punct(";"),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn maximal_munch() {
        assert_eq!(
            kinds("a<<=b<<c<d"),
            vec![
                Tok::Ident("a".into()),
                Tok::Punct("<<="),
                Tok::Ident("b".into()),
                Tok::Punct("<<"),
                Tok::Ident("c".into()),
                Tok::Punct("<"),
                Tok::Ident("d".into()),
                Tok::Eof
            ]
        );
        // x, ++, +, ++, y, EOF
        assert_eq!(kinds("x++ + ++y").len(), 6);
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("0x1F 10 0")[..3],
            [Tok::Int(31), Tok::Int(10), Tok::Int(0)]
        );
        assert!(lex("0xZZ").is_err());
        assert!(lex("12ab").is_err());
    }

    #[test]
    fn char_literals() {
        assert_eq!(kinds("'a'")[0], Tok::Int(97));
        assert_eq!(kinds("'\\n'")[0], Tok::Int(10));
        assert_eq!(kinds("'\\0'")[0], Tok::Int(0));
    }

    #[test]
    fn truncated_char_literals_are_errors_not_panics() {
        for src in ["'", "'a", "'\\", "'\\n", "'\\x", "''", "'é'"] {
            assert!(lex(src).is_err(), "lex({src:?}) should error");
        }
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            kinds("a // line\nb /* block\nmore */ c"),
            vec![
                Tok::Ident("a".into()),
                Tok::Ident("b".into()),
                Tok::Ident("c".into()),
                Tok::Eof
            ]
        );
        assert!(matches!(lex("/* oops"), Err(CcError::Lex { .. })));
    }

    #[test]
    fn line_numbers_tracked() {
        let toks = lex("a\nb\n\nc").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 4);
    }

    #[test]
    fn stray_character_reported() {
        let err = lex("a @ b").unwrap_err();
        assert!(matches!(err, CcError::Lex { line: 1, .. }), "{err:?}");
    }
}

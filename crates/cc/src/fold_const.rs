//! Constant folding over the AST.
//!
//! Runs before code generation on both backends: compile-time-known
//! arithmetic collapses to literals, `if`/`while`/ternary with constant
//! conditions drop dead arms, and short-circuit operators simplify.
//! Semantics match the target machine exactly (wrapping arithmetic,
//! division-by-zero yielding 0, arithmetic right shift) so folding can
//! never change program results.

use crate::ast::{BinaryOp, Expr, Function, Item, Stmt, UnaryOp, Unit};

/// Fold constants throughout a unit.
pub fn fold_unit(unit: &mut Unit) {
    for item in &mut unit.items {
        if let Item::Function(f) = item {
            fold_function(f);
        }
    }
}

fn fold_function(f: &mut Function) {
    for s in &mut f.body {
        fold_stmt(s);
    }
}

fn truthiness(e: &Expr) -> Option<bool> {
    match e {
        Expr::Lit(v) => Some(*v != 0),
        _ => None,
    }
}

fn fold_stmt(s: &mut Stmt) {
    match s {
        Stmt::Expr(e) | Stmt::Return(Some(e)) => fold_expr(e),
        Stmt::Decl(decls) => {
            for (_, init) in decls {
                if let Some(e) = init {
                    fold_expr(e);
                }
            }
        }
        Stmt::If(cond, then, els) => {
            fold_expr(cond);
            fold_stmt(then);
            if let Some(els) = els {
                fold_stmt(els);
            }
            match truthiness(cond) {
                Some(true) => {
                    *s = std::mem::replace(then, Box::new(Stmt::Empty))
                        .as_ref()
                        .clone()
                }
                Some(false) => {
                    *s = match els.take() {
                        Some(e) => *e,
                        None => Stmt::Empty,
                    }
                }
                None => {}
            }
        }
        Stmt::While(cond, body) => {
            fold_expr(cond);
            fold_stmt(body);
            if truthiness(cond) == Some(false) {
                *s = Stmt::Empty;
            }
        }
        Stmt::DoWhile(body, cond) => {
            fold_stmt(body);
            fold_expr(cond);
        }
        Stmt::For(init, cond, step, body) => {
            if let Some(init) = init {
                fold_stmt(init);
            }
            if let Some(cond) = cond {
                fold_expr(cond);
            }
            if let Some(step) = step {
                fold_expr(step);
            }
            fold_stmt(body);
        }
        Stmt::Block(body) => {
            for s in body.iter_mut() {
                fold_stmt(s);
            }
            body.retain(|s| !matches!(s, Stmt::Empty));
        }
        Stmt::Switch(scrutinee, cases) => {
            fold_expr(scrutinee);
            for case in cases {
                for s in &mut case.body {
                    fold_stmt(s);
                }
            }
        }
        Stmt::Return(None) | Stmt::Break | Stmt::Continue | Stmt::Empty => {}
    }
}

/// Evaluate a binary operator on constants with target semantics.
fn eval_bin(op: BinaryOp, a: i32, b: i32) -> i32 {
    match op {
        BinaryOp::Add => a.wrapping_add(b),
        BinaryOp::Sub => a.wrapping_sub(b),
        BinaryOp::Mul => a.wrapping_mul(b),
        BinaryOp::Div => {
            if b == 0 || (a == i32::MIN && b == -1) {
                0
            } else {
                a / b
            }
        }
        BinaryOp::Rem => {
            if b == 0 || (a == i32::MIN && b == -1) {
                0
            } else {
                a % b
            }
        }
        BinaryOp::And => a & b,
        BinaryOp::Or => a | b,
        BinaryOp::Xor => a ^ b,
        BinaryOp::Shl => ((a as u32) << (b as u32 & 31)) as i32,
        BinaryOp::Shr => a >> (b as u32 & 31),
        BinaryOp::Lt => i32::from(a < b),
        BinaryOp::Le => i32::from(a <= b),
        BinaryOp::Gt => i32::from(a > b),
        BinaryOp::Ge => i32::from(a >= b),
        BinaryOp::Eq => i32::from(a == b),
        BinaryOp::Ne => i32::from(a != b),
        BinaryOp::LogAnd => i32::from(a != 0 && b != 0),
        BinaryOp::LogOr => i32::from(a != 0 || b != 0),
    }
}

fn fold_expr(e: &mut Expr) {
    match e {
        Expr::Lit(_) => {}
        Expr::Load(lv) => fold_lvalue(lv),
        Expr::Unary(op, inner) => {
            fold_expr(inner);
            if let Expr::Lit(v) = **inner {
                *e = Expr::Lit(match op {
                    UnaryOp::Neg => v.wrapping_neg(),
                    UnaryOp::Not => !v,
                    UnaryOp::LogNot => i32::from(v == 0),
                });
            }
        }
        Expr::Binary(op, a, b) => {
            fold_expr(a);
            fold_expr(b);
            match (&**a, &**b, *op) {
                (Expr::Lit(x), Expr::Lit(y), _) => *e = Expr::Lit(eval_bin(*op, *x, *y)),
                // Short-circuit with a constant left side: the right
                // side either decides alone or never runs.
                (Expr::Lit(x), _, BinaryOp::LogAnd) => {
                    *e = if *x == 0 {
                        Expr::Lit(0)
                    } else {
                        // truthiness of b
                        Expr::Binary(
                            BinaryOp::Ne,
                            std::mem::replace(b, Box::new(Expr::Lit(0))),
                            Box::new(Expr::Lit(0)),
                        )
                    };
                }
                (Expr::Lit(x), _, BinaryOp::LogOr) => {
                    *e = if *x != 0 {
                        Expr::Lit(1)
                    } else {
                        Expr::Binary(
                            BinaryOp::Ne,
                            std::mem::replace(b, Box::new(Expr::Lit(0))),
                            Box::new(Expr::Lit(0)),
                        )
                    };
                }
                // Identities that cost an instruction on a
                // memory-to-memory machine.
                (_, Expr::Lit(0), BinaryOp::Add | BinaryOp::Sub | BinaryOp::Or | BinaryOp::Xor)
                | (_, Expr::Lit(0), BinaryOp::Shl | BinaryOp::Shr)
                | (_, Expr::Lit(1), BinaryOp::Mul | BinaryOp::Div) => {
                    *e = *std::mem::replace(a, Box::new(Expr::Lit(0)));
                }
                _ => {}
            }
        }
        Expr::Assign(lv, rhs) | Expr::AssignOp(_, lv, rhs) => {
            fold_lvalue(lv);
            fold_expr(rhs);
        }
        Expr::IncDec { lv, .. } => fold_lvalue(lv),
        Expr::Call(_, args) => {
            for a in args {
                fold_expr(a);
            }
        }
        Expr::Cond(c, a, b) => {
            fold_expr(c);
            fold_expr(a);
            fold_expr(b);
            match truthiness(c) {
                Some(true) => {
                    *e = std::mem::replace(a, Box::new(Expr::Lit(0)))
                        .as_ref()
                        .clone()
                }
                Some(false) => {
                    *e = std::mem::replace(b, Box::new(Expr::Lit(0)))
                        .as_ref()
                        .clone()
                }
                None => {}
            }
        }
    }
}

fn fold_lvalue(lv: &mut crate::ast::LValue) {
    if let crate::ast::LValue::Index(_, idx) = lv {
        fold_expr(idx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn folded_main(src: &str) -> Vec<Stmt> {
        let mut unit = parse(src).unwrap();
        fold_unit(&mut unit);
        unit.function("main").unwrap().body.clone()
    }

    #[test]
    fn arithmetic_folds() {
        let body = folded_main("int r; void main() { r = 2 + 3 * 4; }");
        assert!(matches!(&body[0], Stmt::Expr(Expr::Assign(_, e)) if **e == Expr::Lit(14)));
    }

    #[test]
    fn wrapping_and_division_match_target() {
        let body = folded_main(
            "int a; int b; int c;
             void main() { a = 0x7fffffff + 1; b = 5 / 0; c = -9 >> 1; }",
        );
        let lit = |s: &Stmt| match s {
            Stmt::Expr(Expr::Assign(_, e)) => match **e {
                Expr::Lit(v) => v,
                _ => panic!("not folded: {e:?}"),
            },
            other => panic!("{other:?}"),
        };
        assert_eq!(lit(&body[0]), i32::MIN);
        assert_eq!(lit(&body[1]), 0);
        assert_eq!(lit(&body[2]), -5);
    }

    #[test]
    fn constant_if_drops_dead_arm() {
        let body = folded_main("int r; void main() { if (1) r = 10; else r = 20; if (0) r = 30; }");
        assert_eq!(body.len(), 2);
        assert!(matches!(&body[0], Stmt::Expr(Expr::Assign(..))));
        assert!(matches!(&body[1], Stmt::Empty));
    }

    #[test]
    fn while_false_disappears_while_true_stays() {
        let body = folded_main("int r; void main() { while (0) r++; while (1) { break; } }");
        assert!(matches!(&body[0], Stmt::Empty));
        assert!(matches!(&body[1], Stmt::While(..)));
    }

    #[test]
    fn short_circuit_with_constant_lhs() {
        let body = folded_main("int r; int x; void main() { r = 0 && x; r = 1 || x; r = 1 && x; }");
        let expr = |s: &Stmt| match s {
            Stmt::Expr(Expr::Assign(_, e)) => (**e).clone(),
            other => panic!("{other:?}"),
        };
        assert_eq!(expr(&body[0]), Expr::Lit(0));
        assert_eq!(expr(&body[1]), Expr::Lit(1));
        assert!(matches!(expr(&body[2]), Expr::Binary(BinaryOp::Ne, ..)));
    }

    #[test]
    fn identities_elide_operations() {
        let body = folded_main("int r; int x; void main() { r = x + 0; r = x * 1; }");
        for s in &body {
            let Stmt::Expr(Expr::Assign(_, e)) = s else {
                panic!()
            };
            assert!(matches!(**e, Expr::Load(_)), "{e:?}");
        }
    }

    #[test]
    fn ternary_with_constant_condition() {
        let body = folded_main("int r; int x; void main() { r = 1 ? x : 99; r = 0 ? 99 : x; }");
        for s in &body {
            let Stmt::Expr(Expr::Assign(_, e)) = s else {
                panic!()
            };
            assert!(matches!(**e, Expr::Load(_)), "{e:?}");
        }
    }

    #[test]
    fn folding_is_semantics_preserving_end_to_end() {
        // The pass runs inside compile_crisp; compare against the
        // paper-faithful expectation directly.
        use crisp_sim::{FunctionalSim, Machine};
        let src = "
            int r;
            void main() {
                int i;
                r = 0;
                for (i = 0; i < 3 * 4; i++) {
                    if (2 > 1) r += i * 1 + 0;
                    r = 1 ? r : 12345;
                }
            }
        ";
        let image = crate::compile_crisp(src, &crate::CompileOptions::default()).unwrap();
        let run = FunctionalSim::new(Machine::load(&image).unwrap())
            .run()
            .unwrap();
        let r = run
            .machine
            .mem
            .read_word(crisp_asm::Image::DEFAULT_DATA_BASE)
            .unwrap();
        assert_eq!(r, (0..12).sum::<i32>());
    }
}

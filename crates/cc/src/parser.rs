//! Recursive-descent parser for the mini-C language.

use crate::ast::{BinaryOp, Expr, Function, Item, LValue, Stmt, SwitchCase, UnaryOp, Unit};
use crate::lexer::{lex, Kw, Tok, Token};
use crate::CcError;

/// Parse a translation unit.
///
/// # Errors
///
/// [`CcError::Lex`] / [`CcError::Parse`] with line numbers.
pub fn parse(src: &str) -> Result<Unit, CcError> {
    let tokens = lex(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        depth: 0,
    };
    let mut unit = Unit::default();
    while !p.at_eof() {
        unit.items.extend(p.item()?);
    }
    Ok(unit)
}

/// Recursion budget for nested statements/expressions. Far beyond any
/// real program, but small enough that the parse stack at the limit
/// (roughly a dozen frames per level through the precedence chain)
/// stays well inside a default thread stack; hostile input like
/// `((((...` errors out instead of overflowing.
const MAX_DEPTH: usize = 64;

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    depth: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].kind
    }

    fn line(&self) -> usize {
        self.tokens[self.pos].line
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), Tok::Eof)
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, CcError> {
        Err(CcError::Parse {
            line: self.line(),
            message: message.into(),
        })
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), Tok::Punct(q) if *q == p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), CcError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            self.err(format!("expected `{p}`, found {}", self.peek()))
        }
    }

    fn eat_kw(&mut self, k: Kw) -> bool {
        if matches!(self.peek(), Tok::Kw(q) if *q == k) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, CcError> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => self.err(format!("expected identifier, found {other}")),
        }
    }

    fn int_lit(&mut self) -> Result<i32, CcError> {
        let neg = self.eat_punct("-");
        match self.bump() {
            Tok::Int(v) => {
                let v = if neg { -v } else { v };
                i32::try_from(v)
                    .or_else(|_| u32::try_from(v).map(|u| u as i32))
                    .or_else(|_| self.err(format!("constant {v} out of 32-bit range")))
            }
            other => self.err(format!("expected integer constant, found {other}")),
        }
    }

    // ---- items ----

    fn item(&mut self) -> Result<Vec<Item>, CcError> {
        let returns_value = if self.eat_kw(Kw::Int) {
            true
        } else if self.eat_kw(Kw::Void) {
            false
        } else {
            return self.err(format!("expected `int` or `void`, found {}", self.peek()));
        };
        let name = self.ident()?;

        if self.eat_punct("(") {
            // Function definition or prototype.
            let mut params = Vec::new();
            if !self.eat_punct(")") {
                loop {
                    if !self.eat_kw(Kw::Int) {
                        return self.err("expected `int` parameter");
                    }
                    params.push(self.ident()?);
                    if self.eat_punct(")") {
                        break;
                    }
                    self.expect_punct(",")?;
                }
            }
            if self.eat_punct(";") {
                // Forward declaration: name resolution is whole-unit, so
                // prototypes carry no information beyond documentation.
                return Ok(vec![]);
            }
            self.expect_punct("{")?;
            let body = self.block_body()?;
            return Ok(vec![Item::Function(Function {
                name,
                params,
                returns_value,
                body,
            })]);
        }

        if !returns_value {
            return self.err("global variables must be `int`");
        }
        // Global scalar(s) or array.
        let mut items = Vec::new();
        let mut current = name;
        loop {
            if self.eat_punct("[") {
                let len = self.int_lit()?;
                if len <= 0 {
                    return self.err("array length must be positive");
                }
                self.expect_punct("]")?;
                let mut init = Vec::new();
                if self.eat_punct("=") {
                    self.expect_punct("{")?;
                    if !self.eat_punct("}") {
                        loop {
                            init.push(self.int_lit()?);
                            if self.eat_punct("}") {
                                break;
                            }
                            self.expect_punct(",")?;
                        }
                    }
                    if init.len() > len as usize {
                        return self.err("too many array initialisers");
                    }
                }
                items.push(Item::Array {
                    name: current,
                    len: len as u32,
                    init,
                });
            } else {
                let init = if self.eat_punct("=") {
                    Some(self.int_lit()?)
                } else {
                    None
                };
                items.push(Item::Global {
                    name: current,
                    init,
                });
            }
            if self.eat_punct(";") {
                break;
            }
            self.expect_punct(",")?;
            current = self.ident()?;
        }
        Ok(items)
    }

    // ---- statements ----

    fn block_body(&mut self) -> Result<Vec<Stmt>, CcError> {
        let mut out = Vec::new();
        while !self.eat_punct("}") {
            if self.at_eof() {
                return self.err("unterminated block");
            }
            out.push(self.stmt()?);
        }
        Ok(out)
    }

    /// Enter one level of statement/expression nesting, erroring out
    /// (instead of overflowing the stack) past [`MAX_DEPTH`].
    fn descend(&mut self) -> Result<(), CcError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return self.err("nesting too deep");
        }
        Ok(())
    }

    fn stmt(&mut self) -> Result<Stmt, CcError> {
        self.descend()?;
        let r = self.stmt_inner();
        self.depth -= 1;
        r
    }

    fn stmt_inner(&mut self) -> Result<Stmt, CcError> {
        if self.eat_punct("{") {
            return Ok(Stmt::Block(self.block_body()?));
        }
        if self.eat_punct(";") {
            return Ok(Stmt::Empty);
        }
        if self.eat_kw(Kw::Int) {
            let mut decls = Vec::new();
            loop {
                let name = self.ident()?;
                let init = if self.eat_punct("=") {
                    Some(self.expr()?)
                } else {
                    None
                };
                decls.push((name, init));
                if self.eat_punct(";") {
                    break;
                }
                self.expect_punct(",")?;
            }
            return Ok(Stmt::Decl(decls));
        }
        if self.eat_kw(Kw::If) {
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            let then = Box::new(self.stmt()?);
            let els = if self.eat_kw(Kw::Else) {
                Some(Box::new(self.stmt()?))
            } else {
                None
            };
            return Ok(Stmt::If(cond, then, els));
        }
        if self.eat_kw(Kw::While) {
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            return Ok(Stmt::While(cond, Box::new(self.stmt()?)));
        }
        if self.eat_kw(Kw::Do) {
            let body = Box::new(self.stmt()?);
            if !self.eat_kw(Kw::While) {
                return self.err("expected `while` after `do` body");
            }
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            self.expect_punct(";")?;
            return Ok(Stmt::DoWhile(body, cond));
        }
        if self.eat_kw(Kw::For) {
            self.expect_punct("(")?;
            let init = if self.eat_punct(";") {
                None
            } else if matches!(self.peek(), Tok::Kw(Kw::Int)) {
                Some(Box::new(self.stmt()?)) // consumes the `;`
            } else {
                let e = self.expr()?;
                self.expect_punct(";")?;
                Some(Box::new(Stmt::Expr(e)))
            };
            let cond = if self.eat_punct(";") {
                None
            } else {
                let e = self.expr()?;
                self.expect_punct(";")?;
                Some(e)
            };
            let step = if self.eat_punct(")") {
                None
            } else {
                let e = self.expr()?;
                self.expect_punct(")")?;
                Some(e)
            };
            return Ok(Stmt::For(init, cond, step, Box::new(self.stmt()?)));
        }
        if self.eat_kw(Kw::Switch) {
            self.expect_punct("(")?;
            let scrutinee = self.expr()?;
            self.expect_punct(")")?;
            self.expect_punct("{")?;
            let mut cases: Vec<SwitchCase> = Vec::new();
            let mut seen_default = false;
            loop {
                if self.eat_punct("}") {
                    break;
                }
                if self.eat_kw(Kw::Case) {
                    let v = self.int_lit()?;
                    self.expect_punct(":")?;
                    if cases.iter().any(|c| c.value == Some(v)) {
                        return self.err(format!("duplicate case {v}"));
                    }
                    cases.push(SwitchCase {
                        value: Some(v),
                        body: Vec::new(),
                    });
                    continue;
                }
                if self.eat_kw(Kw::Default) {
                    self.expect_punct(":")?;
                    if seen_default {
                        return self.err("duplicate `default`");
                    }
                    seen_default = true;
                    cases.push(SwitchCase {
                        value: None,
                        body: Vec::new(),
                    });
                    continue;
                }
                let Some(current) = cases.last_mut() else {
                    return self.err("statement before the first `case`");
                };
                current.body.push(self.stmt()?);
            }
            return Ok(Stmt::Switch(scrutinee, cases));
        }
        if self.eat_kw(Kw::Return) {
            if self.eat_punct(";") {
                return Ok(Stmt::Return(None));
            }
            let e = self.expr()?;
            self.expect_punct(";")?;
            return Ok(Stmt::Return(Some(e)));
        }
        if self.eat_kw(Kw::Break) {
            self.expect_punct(";")?;
            return Ok(Stmt::Break);
        }
        if self.eat_kw(Kw::Continue) {
            self.expect_punct(";")?;
            return Ok(Stmt::Continue);
        }
        let e = self.expr()?;
        self.expect_punct(";")?;
        Ok(Stmt::Expr(e))
    }

    // ---- expressions (precedence climbing) ----

    fn expr(&mut self) -> Result<Expr, CcError> {
        self.descend()?;
        let r = self.assignment();
        self.depth -= 1;
        r
    }

    fn assignment(&mut self) -> Result<Expr, CcError> {
        let lhs = self.ternary()?;
        let op = match self.peek() {
            Tok::Punct("=") => None,
            Tok::Punct("+=") => Some(BinaryOp::Add),
            Tok::Punct("-=") => Some(BinaryOp::Sub),
            Tok::Punct("*=") => Some(BinaryOp::Mul),
            Tok::Punct("/=") => Some(BinaryOp::Div),
            Tok::Punct("%=") => Some(BinaryOp::Rem),
            Tok::Punct("&=") => Some(BinaryOp::And),
            Tok::Punct("|=") => Some(BinaryOp::Or),
            Tok::Punct("^=") => Some(BinaryOp::Xor),
            Tok::Punct("<<=") => Some(BinaryOp::Shl),
            Tok::Punct(">>=") => Some(BinaryOp::Shr),
            _ => return Ok(lhs),
        };
        let lv = match lhs {
            Expr::Load(lv) => lv,
            _ => return self.err("left side of assignment is not assignable"),
        };
        self.bump();
        let rhs = Box::new(self.assignment()?);
        Ok(match op {
            None => Expr::Assign(lv, rhs),
            Some(op) => Expr::AssignOp(op, lv, rhs),
        })
    }

    fn ternary(&mut self) -> Result<Expr, CcError> {
        let cond = self.binary(0)?;
        if self.eat_punct("?") {
            let a = self.expr()?;
            self.expect_punct(":")?;
            let b = self.ternary()?;
            return Ok(Expr::Cond(Box::new(cond), Box::new(a), Box::new(b)));
        }
        Ok(cond)
    }

    /// Binary operators by precedence level (loosest first).
    fn binary(&mut self, level: usize) -> Result<Expr, CcError> {
        const LEVELS: &[&[(&str, BinaryOp)]] = &[
            &[("||", BinaryOp::LogOr)],
            &[("&&", BinaryOp::LogAnd)],
            &[("|", BinaryOp::Or)],
            &[("^", BinaryOp::Xor)],
            &[("&", BinaryOp::And)],
            &[("==", BinaryOp::Eq), ("!=", BinaryOp::Ne)],
            &[
                ("<=", BinaryOp::Le),
                (">=", BinaryOp::Ge),
                ("<", BinaryOp::Lt),
                (">", BinaryOp::Gt),
            ],
            &[("<<", BinaryOp::Shl), (">>", BinaryOp::Shr)],
            &[("+", BinaryOp::Add), ("-", BinaryOp::Sub)],
            &[
                ("*", BinaryOp::Mul),
                ("/", BinaryOp::Div),
                ("%", BinaryOp::Rem),
            ],
        ];
        if level == LEVELS.len() {
            return self.unary();
        }
        let mut lhs = self.binary(level + 1)?;
        'outer: loop {
            for &(p, op) in LEVELS[level] {
                if matches!(self.peek(), Tok::Punct(q) if *q == p) {
                    self.bump();
                    let rhs = self.binary(level + 1)?;
                    lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
                    continue 'outer;
                }
            }
            return Ok(lhs);
        }
    }

    fn unary(&mut self) -> Result<Expr, CcError> {
        // `----x` recurses here without passing through `expr`, so the
        // chain needs its own depth guard.
        self.descend()?;
        let r = self.unary_inner();
        self.depth -= 1;
        r
    }

    fn unary_inner(&mut self) -> Result<Expr, CcError> {
        if self.eat_punct("-") {
            return Ok(Expr::Unary(UnaryOp::Neg, Box::new(self.unary()?)));
        }
        if self.eat_punct("~") {
            return Ok(Expr::Unary(UnaryOp::Not, Box::new(self.unary()?)));
        }
        if self.eat_punct("!") {
            return Ok(Expr::Unary(UnaryOp::LogNot, Box::new(self.unary()?)));
        }
        if self.eat_punct("+") {
            return self.unary();
        }
        if self.eat_punct("++") {
            let lv = self.lvalue_expr()?;
            return Ok(Expr::IncDec {
                lv,
                delta: 1,
                post: false,
            });
        }
        if self.eat_punct("--") {
            let lv = self.lvalue_expr()?;
            return Ok(Expr::IncDec {
                lv,
                delta: -1,
                post: false,
            });
        }
        self.postfix()
    }

    fn lvalue_expr(&mut self) -> Result<LValue, CcError> {
        match self.primary()? {
            Expr::Load(lv) => Ok(lv),
            _ => self.err("operand of ++/-- is not assignable"),
        }
    }

    fn postfix(&mut self) -> Result<Expr, CcError> {
        let mut e = self.primary()?;
        loop {
            if self.eat_punct("++") {
                let Expr::Load(lv) = e else {
                    return self.err("operand of ++ is not assignable");
                };
                e = Expr::IncDec {
                    lv,
                    delta: 1,
                    post: true,
                };
            } else if self.eat_punct("--") {
                let Expr::Load(lv) = e else {
                    return self.err("operand of -- is not assignable");
                };
                e = Expr::IncDec {
                    lv,
                    delta: -1,
                    post: true,
                };
            } else {
                return Ok(e);
            }
        }
    }

    fn primary(&mut self) -> Result<Expr, CcError> {
        if self.eat_punct("(") {
            let e = self.expr()?;
            self.expect_punct(")")?;
            return Ok(e);
        }
        match self.bump() {
            Tok::Int(v) => {
                let v = i32::try_from(v)
                    .or_else(|_| u32::try_from(v).map(|u| u as i32))
                    .map_err(|_| CcError::Parse {
                        line: self.line(),
                        message: format!("constant {v} out of 32-bit range"),
                    })?;
                Ok(Expr::Lit(v))
            }
            Tok::Ident(name) => {
                if self.eat_punct("(") {
                    let mut args = Vec::new();
                    if !self.eat_punct(")") {
                        loop {
                            args.push(self.expr()?);
                            if self.eat_punct(")") {
                                break;
                            }
                            self.expect_punct(",")?;
                        }
                    }
                    return Ok(Expr::Call(name, args));
                }
                if self.eat_punct("[") {
                    let idx = self.expr()?;
                    self.expect_punct("]")?;
                    return Ok(Expr::Load(LValue::Index(name, Box::new(idx))));
                }
                Ok(Expr::Load(LValue::Var(name)))
            }
            other => self.err(format!("expected expression, found {other}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_figure3_shape() {
        let unit = parse(
            "
            int odd; int even;
            void main() {
                int i, j, sum;
                j = sum = 0;
                for (i = 0; i < 1024; i++) {
                    sum += i;
                    if (i & 1) odd++;
                    else even++;
                    j = sum;
                }
            }
            ",
        )
        .unwrap();
        assert_eq!(unit.items.len(), 3);
        let main = unit.function("main").unwrap();
        assert!(!main.returns_value);
        assert_eq!(main.body.len(), 3);
        assert!(matches!(main.body[2], Stmt::For(..)));
    }

    #[test]
    fn precedence() {
        let unit = parse("void f() { int x; x = 1 + 2 * 3; }").unwrap();
        let f = unit.function("f").unwrap();
        let Stmt::Expr(Expr::Assign(_, rhs)) = &f.body[1] else {
            panic!("{:?}", f.body)
        };
        // 1 + (2*3)
        let Expr::Binary(BinaryOp::Add, a, b) = rhs.as_ref() else {
            panic!("{rhs:?}")
        };
        assert_eq!(**a, Expr::Lit(1));
        assert!(matches!(**b, Expr::Binary(BinaryOp::Mul, ..)));
    }

    #[test]
    fn comparison_binds_looser_than_shift() {
        let unit = parse("void f() { int x; x = 1 << 2 < 3; }").unwrap();
        let f = unit.function("f").unwrap();
        let Stmt::Expr(Expr::Assign(_, rhs)) = &f.body[1] else {
            panic!()
        };
        assert!(matches!(rhs.as_ref(), Expr::Binary(BinaryOp::Lt, ..)));
    }

    #[test]
    fn short_circuit_and_ternary() {
        let unit = parse("int f(int a, int b) { return a && b ? a : b || 1; }").unwrap();
        let f = unit.function("f").unwrap();
        let Stmt::Return(Some(Expr::Cond(c, _, e))) = &f.body[0] else {
            panic!("{:?}", f.body)
        };
        assert!(matches!(c.as_ref(), Expr::Binary(BinaryOp::LogAnd, ..)));
        assert!(matches!(e.as_ref(), Expr::Binary(BinaryOp::LogOr, ..)));
    }

    #[test]
    fn incdec_forms() {
        let unit = parse("void f() { int i; i++; ++i; i--; --i; }").unwrap();
        let f = unit.function("f").unwrap();
        assert!(matches!(
            f.body[1],
            Stmt::Expr(Expr::IncDec {
                delta: 1,
                post: true,
                ..
            })
        ));
        assert!(matches!(
            f.body[2],
            Stmt::Expr(Expr::IncDec {
                delta: 1,
                post: false,
                ..
            })
        ));
        assert!(matches!(
            f.body[3],
            Stmt::Expr(Expr::IncDec {
                delta: -1,
                post: true,
                ..
            })
        ));
    }

    #[test]
    fn arrays_and_calls() {
        let unit = parse(
            "
            int a[16] = {1, 2, 3};
            int get(int i) { return a[i]; }
            void main() { a[3] = get(2) + a[0]; }
            ",
        )
        .unwrap();
        assert!(matches!(&unit.items[0], Item::Array { len: 16, init, .. } if init.len() == 3));
        let main = unit.function("main").unwrap();
        assert!(matches!(
            &main.body[0],
            Stmt::Expr(Expr::Assign(LValue::Index(..), _))
        ));
    }

    #[test]
    fn global_lists_and_inits() {
        let unit = parse("int a, b = 5, c;").unwrap();
        assert_eq!(unit.items.len(), 3);
        assert!(matches!(&unit.items[1], Item::Global { init: Some(5), .. }));
    }

    #[test]
    fn loops() {
        let unit = parse(
            "
            void f() {
                while (1) break;
                do { continue; } while (0);
                for (;;) break;
            }
            ",
        )
        .unwrap();
        let f = unit.function("f").unwrap();
        assert!(matches!(f.body[0], Stmt::While(..)));
        assert!(matches!(f.body[1], Stmt::DoWhile(..)));
        assert!(matches!(f.body[2], Stmt::For(None, None, None, _)));
    }

    #[test]
    fn errors_report_lines() {
        let err = parse("void f() {\n  int x\n}").unwrap_err();
        assert!(matches!(err, CcError::Parse { line: 3, .. }), "{err:?}");
        let err = parse("void f() { 1 = 2; }").unwrap_err();
        assert!(matches!(err, CcError::Parse { .. }));
        let err = parse("float f;").unwrap_err();
        assert!(matches!(err, CcError::Parse { line: 1, .. }));
    }

    #[test]
    fn hostile_nesting_is_an_error_not_a_stack_overflow() {
        let parens = format!(
            "void f() {{ int x; x = {}1{}; }}",
            "(".repeat(5000),
            ")".repeat(5000)
        );
        assert!(matches!(parse(&parens), Err(CcError::Parse { .. })));
        let negs = format!("void f() {{ int x; x = {}1; }}", "-".repeat(5000));
        assert!(matches!(parse(&negs), Err(CcError::Parse { .. })));
        let blocks = format!("void f() {}1; {}", "{".repeat(5000), "}".repeat(5000));
        assert!(parse(&blocks).is_err());
        // Realistic nesting stays well inside the budget.
        let ok = format!(
            "void f() {{ int x; x = {}1{}; }}",
            "(".repeat(25),
            ")".repeat(25)
        );
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn assignment_is_right_associative() {
        let unit = parse("void f() { int a, b; a = b = 3; }").unwrap();
        let f = unit.function("f").unwrap();
        let Stmt::Expr(Expr::Assign(_, rhs)) = &f.body[1] else {
            panic!()
        };
        assert!(matches!(rhs.as_ref(), Expr::Assign(..)));
    }
}

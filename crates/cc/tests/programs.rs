//! End-to-end compiler torture tests: each program runs under every
//! compiler-option combination on the functional engine, and its
//! outputs (globals, in declaration order) must match the expected
//! values computed by ordinary Rust.

use crisp_asm::Image;
use crisp_cc::{compile_crisp, CompileOptions, PredictionMode};
use crisp_sim::{FunctionalSim, Machine};

fn run_all_options(src: &str, expected: &[i32]) {
    let combos = [
        CompileOptions {
            spread: false,
            prediction: PredictionMode::NotTaken,
        },
        CompileOptions {
            spread: false,
            prediction: PredictionMode::Taken,
        },
        CompileOptions {
            spread: true,
            prediction: PredictionMode::Btfnt,
        },
        CompileOptions {
            spread: true,
            prediction: PredictionMode::Ftbnt,
        },
    ];
    for opts in combos {
        let image = compile_crisp(src, &opts).unwrap_or_else(|e| panic!("{opts:?}: {e}"));
        let run = FunctionalSim::new(Machine::load(&image).unwrap())
            .run()
            .unwrap_or_else(|e| panic!("{opts:?}: {e}"));
        assert!(run.halted);
        for (i, &want) in expected.iter().enumerate() {
            let got = run
                .machine
                .mem
                .read_word(Image::DEFAULT_DATA_BASE + 4 * i as u32)
                .unwrap();
            assert_eq!(got, want, "global {i} under {opts:?}\n{src}");
        }
    }
}

#[test]
fn operator_precedence_and_associativity() {
    run_all_options(
        "
        int a; int b; int c; int d; int e; int f;
        void main() {
            a = 2 + 3 * 4 - 5;          // 9
            b = (2 + 3) * (4 - 6);      // -10
            c = 100 / 10 / 2;           // 5 (left assoc)
            d = 1 << 2 << 1;            // 8
            e = 7 - 3 - 2;              // 2
            f = -3 + +4;                // 1
        }
        ",
        &[9, -10, 5, 8, 2, 1],
    );
}

#[test]
fn comparisons_as_values() {
    run_all_options(
        "
        int a; int b; int c; int d;
        void main() {
            a = (3 < 4) + (4 < 3);      // 1
            b = (5 == 5) * 10;          // 10
            c = !(2 > 1);               // 0
            d = !0 + !7;                // 1
        }
        ",
        &[1, 10, 0, 1],
    );
}

#[test]
fn short_circuit_evaluation_order() {
    run_all_options(
        "
        int hits; int r1; int r2; int r3;
        int bump() { hits++; return 1; }
        void main() {
            hits = 0;
            r1 = 0 && bump();   // bump not called
            r2 = 1 || bump();   // bump not called
            r3 = 1 && bump();   // called once
        }
        ",
        &[1, 0, 1, 1],
    );
}

#[test]
fn ternary_expressions() {
    run_all_options(
        "
        int a; int b; int c;
        void main() {
            int x;
            x = 7;
            a = x > 5 ? 100 : 200;
            b = x < 5 ? 100 : 200;
            c = (x == 7 ? 1 : 0) + (x != 7 ? 10 : 20);
        }
        ",
        &[100, 200, 21],
    );
}

#[test]
fn while_do_while_and_break_continue() {
    run_all_options(
        "
        int a; int b; int c;
        void main() {
            int i;
            a = 0; i = 0;
            while (i < 10) { i++; if (i == 3) continue; if (i == 8) break; a += i; }
            b = 0; i = 0;
            do { b += i; i++; } while (i < 5);
            c = 0;
            for (i = 0; i < 100; i++) { if (i >= 4) break; c += 10; }
        }
        ",
        // a = 1+2+4+5+6+7 = 25; b = 0+1+2+3+4 = 10; c = 40
        &[25, 10, 40],
    );
}

#[test]
fn nested_loops_with_shadowing() {
    run_all_options(
        "
        int total;
        void main() {
            int i, j;
            total = 0;
            for (i = 0; i < 5; i++) {
                int acc;
                acc = 0;
                for (j = 0; j <= i; j++) {
                    int acc2;
                    acc2 = j * 2;
                    acc += acc2;
                }
                total += acc;
            }
        }
        ",
        // sum over i of 2*(0+..+i) = 2*(0+1+3+6+10) = 40
        &[40],
    );
}

#[test]
fn global_arrays_and_index_expressions() {
    run_all_options(
        "
        int a[10];
        int sum; int back;
        void main() {
            int i;
            for (i = 0; i < 10; i++) a[i] = i * i;
            sum = 0;
            for (i = 0; i < 10; i++) sum += a[i];
            back = a[a[3]];  // a[9] = 81
        }
        ",
        &[0, 1, 4, 9, 16, 25, 36, 49, 64, 81, 285, 81],
    );
}

#[test]
fn array_initialisers() {
    run_all_options(
        "
        int a[5] = {10, 20, 30};
        int s;
        void main() { s = a[0] + a[1] + a[2] + a[3] + a[4]; }
        ",
        &[10, 20, 30, 0, 0, 60],
    );
}

#[test]
fn functions_with_many_args_and_nesting() {
    run_all_options(
        "
        int r1; int r2;
        int mix(int a, int b, int c, int d) { return a * 1000 + b * 100 + c * 10 + d; }
        int twice(int x) { return x * 2; }
        void main() {
            r1 = mix(1, 2, 3, 4);
            r2 = mix(twice(1), twice(2), twice(3), twice(4));
        }
        ",
        &[1234, 2468],
    );
}

#[test]
fn mutual_recursion() {
    run_all_options(
        "
        int evens; int odds;
        int is_odd(int n);
        int is_even(int n) { if (n == 0) return 1; return is_odd(n - 1); }
        int is_odd(int n) { if (n == 0) return 0; return is_even(n - 1); }
        void main() {
            int i;
            evens = odds = 0;
            for (i = 0; i < 12; i++) {
                if (is_even(i)) evens++;
                else odds++;
            }
        }
        ",
        &[6, 6],
    );
}

#[test]
fn signed_arithmetic_edge_cases() {
    run_all_options(
        "
        int a; int b; int c; int d; int e;
        void main() {
            a = -7 / 2;         // -3 (trunc toward zero)
            b = -7 % 2;         // -1
            c = -1 >> 1;        // -1 (arithmetic shift)
            d = 0x7fffffff + 1; // wraps to INT_MIN
            e = -0x80000000 - 1;// wraps to INT_MAX
        }
        ",
        &[-3, -1, -1, i32::MIN, i32::MAX],
    );
}

#[test]
fn compound_assignments() {
    run_all_options(
        "
        int a; int b;
        void main() {
            int x;
            x = 100;
            x += 10; x -= 5; x *= 2; x /= 3; x %= 50;
            a = x;              // ((105*2)/3)%50 = 70%50 = 20
            x = 0x0F;
            x &= 0x3C; x |= 0x40; x ^= 0xFF; x <<= 2; x >>= 1;
            a = a;              // keep
            b = x;
        }
        ",
        &[20, (((0x0F & 0x3C) | 0x40) ^ 0xFF) << 2 >> 1],
    );
}

#[test]
fn increment_decrement_value_semantics() {
    run_all_options(
        "
        int a; int b; int c; int d;
        void main() {
            int x;
            x = 5;  a = x++ + 10;  // 15, x=6
            b = ++x + 10;          // 17, x=7
            c = x-- + 10;          // 17, x=6
            d = --x + 10;          // 15, x=5
        }
        ",
        &[15, 17, 17, 15],
    );
}

#[test]
fn char_literals_and_hex() {
    run_all_options(
        "
        int a; int b;
        void main() {
            a = 'A' + 1;      // 66
            b = 0xFF & 0x0F;  // 15
        }
        ",
        &[66, 15],
    );
}

#[test]
fn deeply_nested_expressions_spill_correctly() {
    // Forces accumulator spills at every level.
    run_all_options(
        "
        int r;
        void main() {
            r = ((1+2)*(3+4)) + ((5+6)*(7+8)) + ((9+10)*(11+12)) - ((2*3)*(4*5));
        }
        ",
        &[(3 * 7) + (11 * 15) + (19 * 23) - 120],
    );
}

#[test]
fn spreading_with_aliased_fill_candidates() {
    // The statement after the if touches the same variables as the
    // arms: fill must be refused, and results stay correct.
    run_all_options(
        "
        int odd; int even; int total;
        void main() {
            int i;
            for (i = 0; i < 10; i++) {
                if (i & 1) odd++;
                else even++;
                total = odd + even;  // reads what the arms write
            }
        }
        ",
        &[5, 5, 10],
    );
}

#[test]
fn fill_across_if_without_else() {
    run_all_options(
        "
        int hits; int steps;
        void main() {
            int i;
            for (i = 0; i < 16; i++) {
                if (i % 3 == 0) hits++;
                steps += 1;
            }
        }
        ",
        &[6, 16],
    );
}

#[test]
fn early_returns() {
    run_all_options(
        "
        int r1; int r2;
        int classify(int x) {
            if (x < 0) return -1;
            if (x == 0) return 0;
            return 1;
        }
        void main() {
            r1 = classify(-5) + classify(0) + classify(9);  // 0
            r2 = classify(3) * 7;                           // 7
        }
        ",
        &[0, 7],
    );
}

#[test]
fn sieve_of_eratosthenes() {
    run_all_options(
        "
        int sieve[100];
        int primes;
        void main() {
            int i, j;
            for (i = 0; i < 100; i++) sieve[i] = 1;
            sieve[0] = sieve[1] = 0;
            for (i = 2; i < 100; i++) {
                if (sieve[i]) {
                    for (j = i * i; j < 100; j += i) sieve[j] = 0;
                }
            }
            primes = 0;
            for (i = 0; i < 100; i++) primes += sieve[i];
        }
        ",
        // primes below 100: 25 — check the counter (global index 100).
        &{
            let mut v = [0i32; 101];
            let mut sieve = [true; 100];
            sieve[0] = false;
            sieve[1] = false;
            let mut i = 2;
            while i < 100 {
                if sieve[i] {
                    let mut j = i * i;
                    while j < 100 {
                        sieve[j] = false;
                        j += i;
                    }
                }
                i += 1;
            }
            for (k, &p) in sieve.iter().enumerate() {
                v[k] = i32::from(p);
            }
            v[100] = sieve.iter().filter(|&&p| p).count() as i32;
            v
        },
    );
}

#[test]
fn insertion_sort() {
    run_all_options(
        "
        int a[16];
        int sorted;
        void main() {
            int i, j, key, n, seed;
            n = 16;
            seed = 42;
            for (i = 0; i < n; i++) {
                seed = seed * 1103515245 + 12345;
                a[i] = (seed >> 16) & 0xFF;
            }
            for (i = 1; i < n; i++) {
                key = a[i];
                j = i - 1;
                while (j >= 0 && a[j] > key) {
                    a[j + 1] = a[j];
                    j--;
                }
                a[j + 1] = key;
            }
            sorted = 1;
            for (i = 1; i < n; i++) {
                if (a[i - 1] > a[i]) sorted = 0;
            }
        }
        ",
        &{
            // Mirror the LCG and sort in Rust.
            let mut vals = [0i32; 16];
            let mut seed: i32 = 42;
            for v in &mut vals {
                seed = seed.wrapping_mul(1103515245).wrapping_add(12345);
                *v = (seed >> 16) & 0xFF;
            }
            vals.sort_unstable();
            let mut out = [0i32; 17];
            out[..16].copy_from_slice(&vals);
            out[16] = 1;
            out
        },
    );
}

#[test]
fn switch_dense_jump_table() {
    // 5 contiguous cases: compiles to an indirect jump table — the
    // construct for which the paper says indirect branches are
    // "occasionally generated ... for such constructs as case
    // statements".
    run_all_options(
        "
        int out[8];
        void main() {
            int i, r;
            for (i = -1; i < 7; i++) {
                switch (i) {
                    case 0: r = 100; break;
                    case 1: r = 101; break;
                    case 2: r = 102; break;
                    case 3: r = 103; break;
                    case 4: r = 104; break;
                    default: r = -1; break;
                }
                out[i + 1] = r;
            }
        }
        ",
        &[-1, 100, 101, 102, 103, 104, -1, -1],
    );
}

#[test]
fn switch_sparse_compare_chain() {
    run_all_options(
        "
        int a; int b; int c;
        int pick(int x) {
            switch (x) {
                case 1: return 10;
                case 100: return 20;
                case -50: return 30;
            }
            return 0;
        }
        void main() {
            a = pick(100);
            b = pick(-50);
            c = pick(7);
        }
        ",
        &[20, 30, 0],
    );
}

#[test]
fn switch_fallthrough_semantics() {
    run_all_options(
        "
        int out[5];
        void main() {
            int i, acc;
            for (i = 0; i < 5; i++) {
                acc = 0;
                switch (i) {
                    case 0: acc += 1;      // falls through
                    case 1: acc += 10;     // falls through
                    case 2: acc += 100; break;
                    case 3: acc += 1000; break;
                    default: acc = -1;
                }
                out[i] = acc;
            }
        }
        ",
        &[111, 110, 100, 1000, -1],
    );
}

#[test]
fn switch_without_default_or_match() {
    run_all_options(
        "
        int r;
        void main() {
            r = 42;
            switch (9) {
                case 1: r = 1; break;
                case 2: r = 2; break;
            }
        }
        ",
        &[42],
    );
}

#[test]
fn switch_inside_loop_with_continue() {
    // `continue` inside the switch must target the enclosing loop.
    run_all_options(
        "
        int sum; int skipped;
        void main() {
            int i;
            for (i = 0; i < 10; i++) {
                switch (i & 3) {
                    case 0: skipped++; continue;
                    case 1: sum += 10; break;
                    default: sum += 1; break;
                }
                sum += 1000;
            }
        }
        ",
        // i%4==0 for 0,4,8 -> skipped=3; i%4==1 for 1,5,9 -> +10 each;
        // others (2,3,6,7) -> +1 each; non-skipped add 1000 each (7x).
        &[30 + 4 + 7000, 3],
    );
}

#[test]
fn nested_switches() {
    run_all_options(
        "
        int r;
        int classify(int a, int b) {
            switch (a) {
                case 0:
                    switch (b) {
                        case 0: return 1;
                        case 1: return 2;
                        case 2: return 3;
                        case 3: return 4;
                        default: return 5;
                    }
                case 1: return 10;
                default: return 20;
            }
        }
        void main() {
            r = classify(0, 2) * 10000 + classify(1, 0) * 100 + classify(9, 9);
        }
        ",
        &[3 * 10000 + 10 * 100 + 20],
    );
}

//! Integration tests that drive the built binaries end to end.

use std::io::Write as _;
use std::process::{Command, Stdio};

const PROGRAM: &str = "int r; void main() { int i; for (i = 0; i < 9; i++) r += i; }";

fn run_tool(exe: &str, args: &[&str], stdin: &str) -> (String, String, bool) {
    let mut child = Command::new(exe)
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("tool spawns");
    child
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(stdin.as_bytes())
        .expect("stdin writes");
    let out = child.wait_with_output().expect("tool runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn crispc_lists_code_from_stdin() {
    let (stdout, stderr, ok) = run_tool(env!("CARGO_BIN_EXE_crispc"), &[], PROGRAM);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("enter"), "{stdout}");
    assert!(stdout.contains("ifjmpy"), "{stdout}");
    assert!(stdout.contains("folds with next"), "{stdout}");
}

#[test]
fn crispc_emits_vax() {
    let (stdout, stderr, ok) =
        run_tool(env!("CARGO_BIN_EXE_crispc"), &["--emit", "vax"], PROGRAM);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("addl2"), "{stdout}");
    assert!(stdout.contains("jbr") || stdout.contains("jgeq"), "{stdout}");
}

#[test]
fn crispc_summary_lists_symbols() {
    let (stdout, stderr, ok) =
        run_tool(env!("CARGO_BIN_EXE_crispc"), &["--emit", "summary"], PROGRAM);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("main"), "{stdout}");
    assert!(stdout.contains("parcels"), "{stdout}");
}

#[test]
fn crispc_reports_compile_errors() {
    let (_, stderr, ok) = run_tool(env!("CARGO_BIN_EXE_crispc"), &[], "void main() { x = 1; }");
    assert!(!ok);
    assert!(stderr.contains("undefined"), "{stderr}");
}

#[test]
fn crisp_run_functional() {
    let (stdout, stderr, ok) = run_tool(env!("CARGO_BIN_EXE_crisp-run"), &[], PROGRAM);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("program instructions"), "{stdout}");
    assert!(stdout.contains("folded branches"), "{stdout}");
}

#[test]
fn crisp_run_cycles_with_machine_flags() {
    let (stdout, stderr, ok) = run_tool(
        env!("CARGO_BIN_EXE_crisp-run"),
        &["--cycles", "--fold", "none", "--icache", "64"],
        PROGRAM,
    );
    assert!(ok, "{stderr}");
    assert!(stdout.contains("cycles"), "{stdout}");
    assert!(stdout.contains("mispredicts"), "{stdout}");
}

#[test]
fn crisp_run_assembly_input() {
    let asm = "
        mov 0(sp),$0
    top:
        add 0(sp),$1
        cmp.s< 0(sp),$5
        ifjmpy.t top
        halt
    ";
    let (stdout, stderr, ok) = run_tool(env!("CARGO_BIN_EXE_crisp-run"), &["--asm"], asm);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("conditional branches : 5"), "{stdout}");
}

#[test]
fn crisp_run_trace_output() {
    let (stdout, stderr, ok) =
        run_tool(env!("CARGO_BIN_EXE_crisp-run"), &["--trace"], PROGRAM);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("branch trace"), "{stdout}");
    assert!(stdout.contains("taken"), "{stdout}");
}

#[test]
fn unknown_flags_fail_cleanly() {
    let (_, stderr, ok) = run_tool(env!("CARGO_BIN_EXE_crisp-run"), &["--bogus"], PROGRAM);
    assert!(!ok);
    assert!(stderr.contains("unknown flag"), "{stderr}");
    let (_, stderr, ok) =
        run_tool(env!("CARGO_BIN_EXE_crispc"), &["--emit", "pdf"], PROGRAM);
    assert!(!ok);
    assert!(stderr.contains("unknown --emit"), "{stderr}");
}

//! Integration tests that drive the built binaries end to end.

use std::io::{ErrorKind, Write as _};
use std::process::{Command, Stdio};

const PROGRAM: &str = "int r; void main() { int i; for (i = 0; i < 9; i++) r += i; }";

fn run_tool(exe: &str, args: &[&str], stdin: &str) -> (String, String, bool) {
    let mut child = Command::new(exe)
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("tool spawns");
    // A tool that rejects its flags exits before reading stdin; the
    // resulting EPIPE is part of the scenario, not a harness failure.
    match child
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(stdin.as_bytes())
    {
        Ok(()) => {}
        Err(e) if e.kind() == ErrorKind::BrokenPipe => {}
        Err(e) => panic!("stdin writes: {e}"),
    }
    let out = child.wait_with_output().expect("tool runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn crispc_lists_code_from_stdin() {
    let (stdout, stderr, ok) = run_tool(env!("CARGO_BIN_EXE_crispc"), &[], PROGRAM);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("enter"), "{stdout}");
    assert!(stdout.contains("ifjmpy"), "{stdout}");
    assert!(stdout.contains("folds with next"), "{stdout}");
}

#[test]
fn crispc_emits_vax() {
    let (stdout, stderr, ok) = run_tool(env!("CARGO_BIN_EXE_crispc"), &["--emit", "vax"], PROGRAM);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("addl2"), "{stdout}");
    assert!(
        stdout.contains("jbr") || stdout.contains("jgeq"),
        "{stdout}"
    );
}

#[test]
fn crispc_summary_lists_symbols() {
    let (stdout, stderr, ok) = run_tool(
        env!("CARGO_BIN_EXE_crispc"),
        &["--emit", "summary"],
        PROGRAM,
    );
    assert!(ok, "{stderr}");
    assert!(stdout.contains("main"), "{stdout}");
    assert!(stdout.contains("parcels"), "{stdout}");
}

#[test]
fn crispc_reports_compile_errors() {
    let (_, stderr, ok) = run_tool(env!("CARGO_BIN_EXE_crispc"), &[], "void main() { x = 1; }");
    assert!(!ok);
    assert!(stderr.contains("undefined"), "{stderr}");
}

#[test]
fn crisp_run_functional() {
    let (stdout, stderr, ok) = run_tool(env!("CARGO_BIN_EXE_crisp-run"), &[], PROGRAM);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("program instructions"), "{stdout}");
    assert!(stdout.contains("folded branches"), "{stdout}");
}

#[test]
fn crisp_run_cycles_with_machine_flags() {
    let (stdout, stderr, ok) = run_tool(
        env!("CARGO_BIN_EXE_crisp-run"),
        &["--cycles", "--fold", "none", "--icache", "64"],
        PROGRAM,
    );
    assert!(ok, "{stderr}");
    assert!(stdout.contains("cycles"), "{stdout}");
    assert!(stdout.contains("mispredicts"), "{stdout}");
}

#[test]
fn crisp_run_assembly_input() {
    let asm = "
        mov 0(sp),$0
    top:
        add 0(sp),$1
        cmp.s< 0(sp),$5
        ifjmpy.t top
        halt
    ";
    let (stdout, stderr, ok) = run_tool(env!("CARGO_BIN_EXE_crisp-run"), &["--asm"], asm);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("conditional branches : 5"), "{stdout}");
}

#[test]
fn crisp_run_branch_trace_output() {
    let (stdout, stderr, ok) = run_tool(
        env!("CARGO_BIN_EXE_crisp-run"),
        &["--branch-trace"],
        PROGRAM,
    );
    assert!(ok, "{stderr}");
    assert!(stdout.contains("branch trace"), "{stdout}");
    assert!(stdout.contains("taken"), "{stdout}");
}

#[test]
fn crisp_run_trace_profile_and_stats_export() {
    let trace = std::env::temp_dir().join(format!("crisp_run_trace_{}.jsonl", std::process::id()));
    let trace_path = trace.to_str().unwrap();
    let (stdout, stderr, ok) = run_tool(
        env!("CARGO_BIN_EXE_crisp-run"),
        &[
            "--cycles",
            "--trace",
            trace_path,
            "--profile",
            "--stats-json",
            "-",
        ],
        PROGRAM,
    );
    let jsonl = std::fs::read_to_string(&trace);
    std::fs::remove_file(&trace).ok();
    assert!(ok, "{stderr}");
    assert!(stdout.contains("branch-site profile"), "{stdout}");
    assert!(stdout.contains(r#""cycles":"#), "{stdout}");
    let jsonl = jsonl.expect("trace file written");
    assert!(jsonl.lines().count() > 10, "{jsonl}");
    assert!(jsonl.contains(r#""ev":"issue""#), "{jsonl}");
    assert!(jsonl.contains(r#""ev":"branch_retire""#), "{jsonl}");
}

#[test]
fn crisp_run_chrome_trace_and_timeline() {
    let out = std::env::temp_dir().join(format!("crisp_run_chrome_{}.json", std::process::id()));
    let out_path = out.to_str().unwrap();
    let (stdout, stderr, ok) = run_tool(
        env!("CARGO_BIN_EXE_crisp-run"),
        &["--cycles", "--chrome-trace", out_path, "--timeline"],
        PROGRAM,
    );
    let chrome = std::fs::read_to_string(&out);
    std::fs::remove_file(&out).ok();
    assert!(ok, "{stderr}");
    // The loop exit mispredicts, so a timeline window is printed.
    assert!(stdout.contains("I=IR O=OR R=RR"), "{stdout}");
    let chrome = chrome.expect("chrome trace written");
    assert!(chrome.contains(r#""traceEvents":["#), "{chrome}");

    // Chrome trace and timeline are cycle-engine features.
    let (_, stderr, ok) = run_tool(env!("CARGO_BIN_EXE_crisp-run"), &["--timeline"], PROGRAM);
    assert!(!ok);
    assert!(stderr.contains("--timeline needs --cycles"), "{stderr}");
}

#[test]
fn crisp_run_cpi_breakdown_conserves_cycles() {
    let (stdout, stderr, ok) = run_tool(
        env!("CARGO_BIN_EXE_crisp-run"),
        &["--cycles", "--cpi-breakdown"],
        PROGRAM,
    );
    assert!(ok, "{stderr}");
    assert!(stdout.contains("cycle accounting ("), "{stdout}");
    assert!(stdout.contains("useful issue"), "{stdout}");
    assert!(stdout.contains("pipeline startup"), "{stdout}");
    // The total row carries the full cycle count and a 100% share:
    // the buckets partition the run.
    let cycles: u64 = stdout
        .lines()
        .find(|l| l.starts_with("cycles"))
        .and_then(|l| l.split(':').nth(1))
        .and_then(|v| v.trim().parse().ok())
        .expect("cycles line");
    let total = stdout
        .lines()
        .find(|l| l.trim_start().starts_with("total"))
        .expect("total row");
    assert!(total.contains(&cycles.to_string()), "{total}");
    assert!(total.contains("100.00%"), "{total}");

    // Accounting is a cycle-engine feature.
    let (_, stderr, ok) = run_tool(
        env!("CARGO_BIN_EXE_crisp-run"),
        &["--cpi-breakdown"],
        PROGRAM,
    );
    assert!(!ok);
    assert!(
        stderr.contains("--cpi-breakdown needs --cycles"),
        "{stderr}"
    );
}

#[test]
fn crisp_run_stats_json_carries_accounts_and_trace_footer() {
    let trace = std::env::temp_dir().join(format!("crisp_run_footer_{}.jsonl", std::process::id()));
    let trace_path = trace.to_str().unwrap();
    let (stdout, stderr, ok) = run_tool(
        env!("CARGO_BIN_EXE_crisp-run"),
        &["--cycles", "--trace", trace_path, "--stats-json", "-"],
        PROGRAM,
    );
    let jsonl = std::fs::read_to_string(&trace);
    std::fs::remove_file(&trace).ok();
    assert!(ok, "{stderr}");
    assert!(stdout.contains(r#""schema_version":6"#), "{stdout}");
    assert!(stdout.contains(r#""accounts":{"useful":"#), "{stdout}");
    assert!(stdout.contains(r#""dropped_events":0"#), "{stdout}");
    assert!(stdout.contains(r#""predicted_by":"static""#), "{stdout}");
    // The trace ends with the completeness footer, and its event count
    // matches the body.
    let jsonl = jsonl.expect("trace file written");
    let last = jsonl.lines().last().expect("trace non-empty");
    assert!(last.contains(r#""ev":"trace_footer""#), "{last}");
    assert!(last.contains(r#""dropped":0"#), "{last}");
    let body_lines = jsonl.lines().count() as u64 - 1;
    assert!(
        last.contains(&format!(r#""events":{body_lines}"#)),
        "{last}"
    );
}

#[test]
fn campaign_drivers_emit_heartbeat_telemetry() {
    for (exe, extra) in [
        (env!("CARGO_BIN_EXE_crisp-diff"), ["--programs", "3"]),
        (env!("CARGO_BIN_EXE_crisp-fault"), ["--faults", "8"]),
    ] {
        let mut args = vec!["--smoke", "--jobs", "2", "--heartbeat", "1"];
        args.extend(extra);
        let (_, stderr, ok) = run_tool(exe, &args, "");
        assert!(ok, "{stderr}");
        // The heartbeat emits one snapshot immediately, so even a
        // sub-second campaign produces at least one line plus the
        // final report.
        assert!(stderr.contains(r#""type":"heartbeat""#), "{stderr}");
        let last = stderr
            .lines()
            .rev()
            .find(|l| l.contains(r#""type":"final""#))
            .expect("final report line");
        assert!(last.contains(r#""findings":0"#), "{last}");
        assert!(last.contains(r#""eta_s":null"#), "{last}");

        let (_, stderr, ok) = run_tool(exe, &["--smoke", "--heartbeat", "0"], "");
        assert!(!ok);
        assert!(stderr.contains("--heartbeat: bad value"), "{stderr}");
    }
}

#[test]
fn crisp_run_predictor_flag_drives_live_prediction() {
    // A loop whose static bit is wrong on every iteration: the BTB
    // learns it after the first taken retirement, so the dynamic run
    // must be faster and report its predictor in the stats.
    let asm = "
        mov 0(sp),$0
    top:
        add 0(sp),$1
        cmp.s< 0(sp),$50
        ifjmpy.nt top
        halt
    ";
    let cycles_of = |stdout: &str| -> u64 {
        stdout
            .lines()
            .find(|l| l.starts_with("cycles"))
            .and_then(|l| l.split(':').nth(1))
            .and_then(|v| v.trim().parse().ok())
            .expect("cycles line")
    };
    let (static_out, stderr, ok) =
        run_tool(env!("CARGO_BIN_EXE_crisp-run"), &["--asm", "--cycles"], asm);
    assert!(ok, "{stderr}");
    let (btb_out, stderr, ok) = run_tool(
        env!("CARGO_BIN_EXE_crisp-run"),
        &[
            "--asm",
            "--cycles",
            "--predictor",
            "btb",
            "--stats-json",
            "-",
        ],
        asm,
    );
    assert!(ok, "{stderr}");
    assert!(cycles_of(&btb_out) < cycles_of(&static_out));
    assert!(
        btb_out.contains("predictor            : btb128x4"),
        "{btb_out}"
    );
    assert!(
        btb_out.contains(r#""predicted_by":"btb128x4""#),
        "{btb_out}"
    );

    let (_, stderr, ok) = run_tool(
        env!("CARGO_BIN_EXE_crisp-run"),
        &["--cycles", "--predictor", "oracle"],
        asm,
    );
    assert!(!ok);
    assert!(stderr.contains("bad --predictor value"), "{stderr}");
}

#[test]
fn crisp_diff_smoke_with_pinned_predictor() {
    let (stdout, stderr, ok) = run_tool(
        env!("CARGO_BIN_EXE_crisp-diff"),
        &[
            "--smoke",
            "--programs",
            "3",
            "--c-programs",
            "1",
            "--predictor",
            "counter2",
        ],
        "",
    );
    assert!(ok, "{stderr}");
    // Pinning collapses the 4-way predictor dimension of the 32-config
    // sweep to 8 deduplicated configurations.
    assert!(stdout.contains("x 8 configurations"), "{stdout}");
    assert!(stdout.contains("all agree"), "{stdout}");
}

#[test]
fn campaign_checkpoint_from_larger_campaign_is_rejected() {
    let cp = std::env::temp_dir().join(format!("crisp_diff_cp_{}.json", std::process::id()));
    let cp_path = cp.to_str().unwrap();
    std::fs::write(&cp, r#"{"completed":500}"#).unwrap();
    let (_, stderr, ok) = run_tool(
        env!("CARGO_BIN_EXE_crisp-diff"),
        &[
            "--smoke",
            "--programs",
            "2",
            "--c-programs",
            "0",
            "--resume",
            cp_path,
        ],
        "",
    );
    std::fs::remove_file(&cp).ok();
    assert!(!ok);
    assert!(
        stderr.contains("500 completed cases") && stderr.contains("different campaign"),
        "{stderr}"
    );
}

#[test]
fn unknown_flags_fail_cleanly() {
    let (_, stderr, ok) = run_tool(env!("CARGO_BIN_EXE_crisp-run"), &["--bogus"], PROGRAM);
    assert!(!ok);
    assert!(stderr.contains("unknown flag"), "{stderr}");
    let (_, stderr, ok) = run_tool(env!("CARGO_BIN_EXE_crispc"), &["--emit", "pdf"], PROGRAM);
    assert!(!ok);
    assert!(stderr.contains("unknown --emit"), "{stderr}");
}

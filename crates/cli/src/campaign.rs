//! The shared campaign supervisor: everything `crisp-diff` and
//! `crisp-fault` used to duplicate around their worker loops.
//!
//! A campaign is a deterministic list of `total` cases, a self-
//! scheduling [`WorkQueue`] over it, and `jobs` worker threads that
//! claim cases in blocks, run them through a driver-supplied closure,
//! and fold the results into a crash-safe [`Checkpoint`]. The
//! supervisor owns the cross-cutting machinery:
//!
//! * **Batched claiming** — workers claim `block` cases at a time so
//!   the driver can run them through a lane-parallel batch kernel
//!   (`crisp_sim::MachineBatch`); `block = 1` is the scalar campaign.
//! * **Panic isolation** — a panicking block is retried case by case
//!   on fresh worker state, so only the offending case is quarantined
//!   (recorded, skipped, campaign continues) while its innocent
//!   blockmates complete normally. With `block = 1` this reduces to
//!   the old retry-once-then-quarantine behavior exactly.
//! * **Checkpointing** — completed cases join the queue's contiguous
//!   prefix; tallies are folded into the checkpoint in prefix order
//!   and persisted every `save_every` cases, so `--resume` restarts
//!   replay the identical campaign.
//! * **Telemetry** — a [`CampaignMonitor`] times every case and an
//!   optional [`Heartbeat`] thread samples it onto stderr.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crisp_telemetry::{CampaignMonitor, Heartbeat};

use crate::{Checkpoint, WorkQueue};

/// How one campaign case resolved, as reported by the driver's block
/// runner.
pub enum CaseResult<T, E> {
    /// The case completed; `T` is its checkpoint contribution.
    Done(T),
    /// Deterministic verification failure — the property under test is
    /// violated, so the campaign stops and reports `E`.
    Fail(E),
    /// Harness failure (I/O, a program that will not load): the
    /// campaign aborts with the message.
    Abort(String),
}

/// Campaign-wide settings, shared by both drivers.
pub struct CampaignSpec<'a> {
    /// Total cases in the deterministic work list.
    pub total: u64,
    /// Worker threads.
    pub jobs: usize,
    /// Cases claimed (and run) per block; the batch kernels' lane
    /// count. `1` is the scalar campaign.
    pub block: u64,
    /// Persist the checkpoint every this many completed cases.
    pub save_every: u64,
    /// Checkpoint file, when `--resume` was given.
    pub resume_path: Option<&'a String>,
    /// Heartbeat period in seconds, when `--heartbeat` was given.
    pub heartbeat_secs: Option<u64>,
    /// The starting checkpoint (freshly default or loaded from
    /// `resume_path`).
    pub checkpoint: Checkpoint,
}

/// What a finished campaign hands back to the driver.
#[derive(Debug)]
pub struct CampaignReport<E, Q> {
    /// The final checkpoint (already saved when `resume_path` is set
    /// and the campaign succeeded).
    pub checkpoint: Checkpoint,
    /// The first deterministic failure, if the campaign aborted on
    /// one.
    pub failure: Option<E>,
    /// Cases whose worker panicked twice (once in a block, once solo).
    pub quarantined: Vec<Q>,
}

/// What one completed case carries through the work queue.
struct CaseDone<T> {
    /// `Some` when the case produced a checkpoint contribution (it is
    /// `None` for quarantined cases).
    payload: Option<T>,
    /// The case was re-run after a block panic.
    retried: bool,
    /// Both attempts panicked; the case was set aside.
    quarantined: bool,
}

/// Render a panic payload as text.
fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("worker panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("worker panicked: {s}")
    } else {
        "worker panicked".into()
    }
}

/// Run a campaign to completion (or first failure).
///
/// `worker_state` builds one `W` per worker thread (machine pools,
/// lockstep buffers); it is rebuilt whenever a panic may have poisoned
/// it. `run_block` runs a claimed block of case indices and reports
/// one [`CaseResult`] per case — it may panic, and the supervisor
/// contains the blast radius. `tally_case` folds one completed case's
/// payload into the checkpoint (called in contiguous-prefix order).
/// `quarantine` renders a twice-panicking case into the driver's
/// quarantine record.
///
/// # Errors
///
/// Harness-level failures only: checkpoint I/O errors and
/// [`CaseResult::Abort`] messages. Deterministic case failures come
/// back as [`CampaignReport::failure`].
pub fn run_campaign<W, T, E, Q>(
    spec: CampaignSpec<'_>,
    worker_state: impl Fn() -> W + Sync,
    run_block: impl Fn(&[u64], &mut W) -> Vec<(u64, CaseResult<T, E>)> + Sync,
    tally_case: impl Fn(&mut Checkpoint, T) + Sync,
    quarantine: impl Fn(u64, String) -> Q + Sync,
) -> Result<CampaignReport<E, Q>, String>
where
    T: Send,
    E: Send,
    Q: Send,
{
    let CampaignSpec {
        total,
        jobs,
        block: block_size,
        save_every,
        resume_path,
        heartbeat_secs,
        checkpoint,
    } = spec;
    assert!(block_size >= 1, "a campaign block needs at least one case");
    let failure: Mutex<Option<E>> = Mutex::new(None);
    let quarantine_log: Mutex<Vec<Q>> = Mutex::new(Vec::new());
    let abort_msg: Mutex<Option<String>> = Mutex::new(None);
    let queue: WorkQueue<CaseDone<T>> = WorkQueue::new(checkpoint.completed, total);
    let progress = Mutex::new((checkpoint, 0u64));
    let monitor = Arc::new(CampaignMonitor::new(queue.remaining(), jobs));
    let heartbeat =
        heartbeat_secs.map(|s| Heartbeat::start(Arc::clone(&monitor), Duration::from_secs(s)));

    std::thread::scope(|scope| {
        for w in 0..jobs {
            let (queue, progress) = (&queue, &progress);
            let (failure, quarantine_log, abort_msg) = (&failure, &quarantine_log, &abort_msg);
            let monitor = &monitor;
            let (worker_state, run_block) = (&worker_state, &run_block);
            let (tally_case, quarantine) = (&tally_case, &quarantine);
            scope.spawn(move || {
                // Settle one completed case: push it through the
                // queue's prefix tracker, fold released payloads into
                // the checkpoint, and persist on the save cadence.
                // Returns false when the worker must stop (I/O error).
                let settle = |i: u64, done: CaseDone<T>| -> bool {
                    let drained = queue.complete(i, done);
                    if drained.payloads.is_empty() {
                        return true;
                    }
                    let (cp, last_saved) = &mut *progress.lock().unwrap();
                    for case in drained.payloads {
                        if let Some(t) = case.payload {
                            tally_case(cp, t);
                        }
                        if case.retried {
                            cp.tally("retries", 1);
                        }
                        if case.quarantined {
                            cp.tally("quarantined", 1);
                        }
                    }
                    cp.completed = drained.completed;
                    if let Some(path) = resume_path {
                        if drained.completed >= *last_saved + save_every {
                            if let Err(e) = cp.save(path) {
                                *abort_msg.lock().unwrap() = Some(e.to_string());
                                queue.abort();
                                return false;
                            }
                            *last_saved = drained.completed;
                        }
                    }
                    true
                };
                // Apply one block's results. Returns false when the
                // worker must stop (failure, abort, or I/O error).
                let apply = |results: Vec<(u64, CaseResult<T, E>)>, retried: bool| -> bool {
                    for (i, result) in results {
                        match result {
                            CaseResult::Done(t) => {
                                if !settle(
                                    i,
                                    CaseDone {
                                        payload: Some(t),
                                        retried,
                                        quarantined: false,
                                    },
                                ) {
                                    return false;
                                }
                            }
                            CaseResult::Fail(e) => {
                                monitor.record_finding();
                                *failure.lock().unwrap() = Some(e);
                                queue.abort();
                                return false;
                            }
                            CaseResult::Abort(msg) => {
                                *abort_msg.lock().unwrap() = Some(msg);
                                queue.abort();
                                return false;
                            }
                        }
                    }
                    true
                };

                let mut state = worker_state();
                loop {
                    let mut block: Vec<u64> = Vec::with_capacity(block_size as usize);
                    while (block.len() as u64) < block_size {
                        match queue.claim() {
                            Some(i) => block.push(i),
                            None => break,
                        }
                    }
                    if block.is_empty() {
                        return;
                    }
                    let start = Instant::now();
                    let attempt = catch_unwind(AssertUnwindSafe(|| run_block(&block, &mut state)));
                    match attempt {
                        Ok(results) => {
                            let each = start.elapsed() / block.len() as u32;
                            for _ in &block {
                                monitor.record_case(w, each);
                            }
                            if !apply(results, false) {
                                return;
                            }
                        }
                        Err(_) => {
                            // The block panicked; the shared state may
                            // be poisoned. Re-run each case solo on
                            // fresh state so only the offender is
                            // quarantined.
                            for &i in &block {
                                monitor.record_retry();
                                state = worker_state();
                                let solo_start = Instant::now();
                                let solo =
                                    catch_unwind(AssertUnwindSafe(|| run_block(&[i], &mut state)));
                                monitor.record_case(w, solo_start.elapsed());
                                match solo {
                                    Ok(results) => {
                                        if !apply(results, true) {
                                            return;
                                        }
                                    }
                                    Err(payload) => {
                                        monitor.record_quarantine();
                                        state = worker_state();
                                        quarantine_log
                                            .lock()
                                            .unwrap()
                                            .push(quarantine(i, panic_text(payload)));
                                        if !settle(
                                            i,
                                            CaseDone {
                                                payload: None,
                                                retried: true,
                                                quarantined: true,
                                            },
                                        ) {
                                            return;
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            });
        }
    });
    if let Some(hb) = heartbeat {
        hb.finish();
    }

    if let Some(msg) = abort_msg.into_inner().unwrap() {
        return Err(msg);
    }
    let (checkpoint, _) = progress.into_inner().unwrap();
    Ok(CampaignReport {
        checkpoint,
        failure: failure.into_inner().unwrap(),
        quarantined: quarantine_log.into_inner().unwrap(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(total: u64, block: u64) -> CampaignSpec<'static> {
        CampaignSpec {
            total,
            jobs: 3,
            block,
            save_every: 1000,
            resume_path: None,
            heartbeat_secs: None,
            checkpoint: Checkpoint::default(),
        }
    }

    #[test]
    fn campaign_completes_and_tallies_every_case() {
        for block in [1, 4] {
            let report = run_campaign(
                spec(100, block),
                || (),
                |cases, ()| {
                    cases
                        .iter()
                        .map(|&i| (i, CaseResult::<u64, String>::Done(i)))
                        .collect()
                },
                |cp, i| cp.tally("sum", i),
                |i, msg| format!("case {i}: {msg}"),
            )
            .unwrap();
            assert_eq!(report.checkpoint.completed, 100);
            assert_eq!(report.checkpoint.get("sum"), (0..100).sum::<u64>());
            assert!(report.failure.is_none());
            assert!(report.quarantined.is_empty());
        }
    }

    #[test]
    fn block_panic_quarantines_only_the_offender() {
        let report = run_campaign(
            spec(32, 8),
            || (),
            |cases, ()| {
                if cases.contains(&13) {
                    panic!("poisoned case");
                }
                cases
                    .iter()
                    .map(|&i| (i, CaseResult::<u64, String>::Done(1)))
                    .collect()
            },
            |cp, n| cp.tally("done", n),
            |i, msg| (i, msg),
        )
        .unwrap();
        // Every case except 13 completed; 13 was quarantined after its
        // solo retry panicked too.
        assert_eq!(report.checkpoint.completed, 32);
        assert_eq!(report.checkpoint.get("done"), 31);
        assert_eq!(report.checkpoint.get("quarantined"), 1);
        assert!(report.checkpoint.get("retries") >= 1);
        let (case, msg) = &report.quarantined[0];
        assert_eq!(*case, 13);
        assert!(msg.contains("poisoned case"), "{msg}");
    }

    #[test]
    fn failure_aborts_the_campaign() {
        let report = run_campaign(
            spec(1000, 1),
            || (),
            |cases, ()| {
                cases
                    .iter()
                    .map(|&i| {
                        (
                            i,
                            if i == 5 {
                                CaseResult::Fail(format!("case {i} diverged"))
                            } else {
                                CaseResult::<_, String>::Done(1u64)
                            },
                        )
                    })
                    .collect()
            },
            |cp, n| cp.tally("done", n),
            |_, msg| msg,
        )
        .unwrap();
        assert_eq!(report.failure.as_deref(), Some("case 5 diverged"));
        // The queue stopped early: nowhere near all 1000 cases ran.
        assert!(report.checkpoint.completed < 1000);
    }

    #[test]
    fn abort_surfaces_as_a_harness_error() {
        let err = run_campaign(
            spec(10, 2),
            || (),
            |cases, ()| {
                cases
                    .iter()
                    .map(|&i| (i, CaseResult::<u64, String>::Abort("disk on fire".into())))
                    .collect()
            },
            |cp, n| cp.tally("done", n),
            |_, msg| msg,
        )
        .unwrap_err();
        assert!(err.contains("disk on fire"), "{err}");
    }
}

//! Shared plumbing for the command-line tools.
//!
//! `crispc` compiles mini-C to CRISP code (listing, disassembly or a
//! summary); `crisp-run` compiles — or assembles `.s` files — and
//! executes on the functional or cycle engine, printing the statistics
//! the paper's tables are made of.

#![warn(missing_docs)]

use std::fmt;

use crisp_cc::{CompileOptions, PredictionMode};
use crisp_isa::FoldPolicy;
use crisp_sim::SimConfig;

/// Parsed common command-line options.
#[derive(Debug, Clone, Default)]
pub struct CommonArgs {
    /// Input path (`-` for stdin).
    pub input: Option<String>,
    /// Compiler options.
    pub compile: CompileOptions,
    /// Simulator configuration.
    pub sim: SimConfig,
    /// Remaining tool-specific flags.
    pub rest: Vec<String>,
}

/// A CLI usage error (message already formatted for the user).
#[derive(Debug)]
pub struct UsageError(pub String);

impl fmt::Display for UsageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for UsageError {}

fn err<T>(msg: impl Into<String>) -> Result<T, UsageError> {
    Err(UsageError(msg.into()))
}

/// Parse the options shared by both tools:
///
/// ```text
/// --no-spread            disable Branch Spreading
/// --predict MODE         taken | not-taken | btfnt | ftbnt
/// --fold POLICY          none | host1 | host13 | all
/// --icache N             decoded-cache entries (power of two)
/// --mem-latency N        cycles per 4-parcel instruction fetch
/// ```
///
/// # Errors
///
/// [`UsageError`] on unknown flags or bad values.
pub fn parse_common(args: impl Iterator<Item = String>) -> Result<CommonArgs, UsageError> {
    let mut out = CommonArgs {
        input: None,
        compile: CompileOptions::default(),
        sim: SimConfig::default(),
        rest: Vec::new(),
    };
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        let value_for = |flag: &str, args: &mut std::iter::Peekable<_>| match args.next() {
            Some(v) => Ok(v),
            None => err(format!("{flag} requires a value")),
        };
        match arg.as_str() {
            "--no-spread" => out.compile.spread = false,
            "--predict" => {
                let v: String = value_for("--predict", &mut args)?;
                out.compile.prediction = match v.as_str() {
                    "taken" => PredictionMode::Taken,
                    "not-taken" => PredictionMode::NotTaken,
                    "btfnt" => PredictionMode::Btfnt,
                    "ftbnt" => PredictionMode::Ftbnt,
                    other => return err(format!("unknown prediction mode `{other}`")),
                };
            }
            "--fold" => {
                let v: String = value_for("--fold", &mut args)?;
                out.sim.fold_policy = match v.as_str() {
                    "none" => FoldPolicy::None,
                    "host1" => FoldPolicy::Host1,
                    "host13" => FoldPolicy::Host13,
                    "all" => FoldPolicy::All,
                    other => return err(format!("unknown fold policy `{other}`")),
                };
            }
            "--icache" => {
                let v: String = value_for("--icache", &mut args)?;
                out.sim.icache_entries = match v.parse() {
                    Ok(n) => n,
                    Err(_) => return err(format!("bad --icache value `{v}`")),
                };
            }
            "--mem-latency" => {
                let v: String = value_for("--mem-latency", &mut args)?;
                out.sim.mem_latency = match v.parse() {
                    Ok(n) => n,
                    Err(_) => return err(format!("bad --mem-latency value `{v}`")),
                };
            }
            other if other.starts_with("--") => out.rest.push(arg),
            _ => {
                if out.input.is_some() {
                    return err(format!("unexpected extra input `{arg}`"));
                }
                out.input = Some(arg);
            }
        }
    }
    Ok(out)
}

/// Remove `--name VALUE` from an argument vector, returning the value.
///
/// # Errors
///
/// [`UsageError`] when the flag is present without a value.
pub fn extract_flag(args: &mut Vec<String>, name: &str) -> Result<Option<String>, UsageError> {
    if let Some(pos) = args.iter().position(|a| a == name) {
        if pos + 1 >= args.len() {
            return err(format!("{name} requires a value"));
        }
        let value = args.remove(pos + 1);
        args.remove(pos);
        return Ok(Some(value));
    }
    Ok(None)
}

/// Remove a boolean `--name` switch from an argument vector.
pub fn extract_switch(args: &mut Vec<String>, name: &str) -> bool {
    if let Some(pos) = args.iter().position(|a| a == name) {
        args.remove(pos);
        true
    } else {
        false
    }
}

/// Read the input file (or stdin when the path is `-` or absent).
///
/// # Errors
///
/// [`UsageError`] describing the I/O failure.
pub fn read_input(input: &Option<String>) -> Result<String, UsageError> {
    use std::io::Read as _;
    match input.as_deref() {
        None | Some("-") => {
            let mut buf = String::new();
            match std::io::stdin().read_to_string(&mut buf) {
                Ok(_) => Ok(buf),
                Err(e) => err(format!("reading stdin: {e}")),
            }
        }
        Some(path) => match std::fs::read_to_string(path) {
            Ok(s) => Ok(s),
            Err(e) => err(format!("reading {path}: {e}")),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<CommonArgs, UsageError> {
        parse_common(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&["prog.c"]).unwrap();
        assert_eq!(a.input.as_deref(), Some("prog.c"));
        assert!(a.compile.spread);
        assert_eq!(a.sim.icache_entries, 32);
    }

    #[test]
    fn flags() {
        let a = parse(&[
            "--no-spread",
            "--predict",
            "not-taken",
            "--fold",
            "none",
            "--icache",
            "64",
            "--mem-latency",
            "3",
            "x.c",
        ])
        .unwrap();
        assert!(!a.compile.spread);
        assert_eq!(a.compile.prediction, PredictionMode::NotTaken);
        assert_eq!(a.sim.fold_policy, FoldPolicy::None);
        assert_eq!(a.sim.icache_entries, 64);
        assert_eq!(a.sim.mem_latency, 3);
    }

    #[test]
    fn tool_specific_flags_pass_through() {
        let a = parse(&["--cycles", "x.c"]).unwrap();
        assert_eq!(a.rest, vec!["--cycles".to_string()]);
    }

    #[test]
    fn errors() {
        assert!(parse(&["--predict"]).is_err());
        assert!(parse(&["--predict", "sideways"]).is_err());
        assert!(parse(&["--fold", "sometimes"]).is_err());
        assert!(parse(&["--icache", "lots"]).is_err());
        assert!(parse(&["a.c", "b.c"]).is_err());
    }
}

//! Shared plumbing for the command-line tools.
//!
//! `crispc` compiles mini-C to CRISP code (listing, disassembly or a
//! summary); `crisp-run` compiles — or assembles `.s` files — and
//! executes on the functional or cycle engine, printing the statistics
//! the paper's tables are made of.

#![warn(missing_docs)]

pub mod campaign;

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use crisp_cc::{CompileOptions, PredictionMode};
use crisp_isa::FoldPolicy;
use crisp_sim::{
    nth_field, nth_pdu_field, nth_predictor_field, predictor_fault_space, DegradePolicy, FaultPlan,
    FaultTarget, HwPredictor, ParityMode, PipelineGeometry, SimConfig, FAULT_SPACE, MAX_DEPTH,
    MIN_DEPTH, PDU_FAULT_SPACE,
};

/// Parsed common command-line options.
#[derive(Debug, Clone, Default)]
pub struct CommonArgs {
    /// Input path (`-` for stdin).
    pub input: Option<String>,
    /// Compiler options.
    pub compile: CompileOptions,
    /// Simulator configuration.
    pub sim: SimConfig,
    /// Remaining tool-specific flags.
    pub rest: Vec<String>,
}

/// A CLI usage error (message already formatted for the user).
#[derive(Debug)]
pub struct UsageError(pub String);

impl fmt::Display for UsageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for UsageError {}

fn err<T>(msg: impl Into<String>) -> Result<T, UsageError> {
    Err(UsageError(msg.into()))
}

/// Parse the options shared by both tools:
///
/// ```text
/// --no-spread            disable Branch Spreading
/// --predict MODE         taken | not-taken | btfnt | ftbnt
/// --predictor HW         live hardware predictor: static |
///                        counterN[xM] | btb[SxW] | jumptrace[N]
/// --fold POLICY          none | host1 | host13 | all
/// --icache N             decoded-cache entries (power of two)
/// --eu-depth N           execution-unit stages between issue and
///                        retire (2..=8; 3 is the paper's IR/OR/RR)
/// --mem-latency N        cycles per 4-parcel instruction fetch
/// --max-cycles N         watchdog: end the run after N cycles/steps
/// --max-insns N          watchdog: end the run after N instructions
/// --parity MODE          front-end parity: off | detect
/// --degrade N            disable a cache slot / BTB way after N
///                        detected parity errors (needs --parity
///                        detect to ever trigger)
/// --inject T:C:S:B       arm a single-bit fault: target T (cache |
///                        btb | pdu), cycle C, slot S, bit-site B
///                        (an index into the target's fault space)
/// ```
///
/// # Errors
///
/// [`UsageError`] on unknown flags or bad values.
pub fn parse_common(args: impl Iterator<Item = String>) -> Result<CommonArgs, UsageError> {
    let mut out = CommonArgs {
        input: None,
        compile: CompileOptions::default(),
        sim: SimConfig::default(),
        rest: Vec::new(),
    };
    // `--inject btb:...` needs the predictor to enumerate fault sites,
    // and `--predictor` may appear later on the line — resolve after
    // the loop.
    let mut inject_spec: Option<String> = None;
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        let value_for = |flag: &str, args: &mut std::iter::Peekable<_>| match args.next() {
            Some(v) => Ok(v),
            None => err(format!("{flag} requires a value")),
        };
        match arg.as_str() {
            "--no-spread" => out.compile.spread = false,
            "--predict" => {
                let v: String = value_for("--predict", &mut args)?;
                out.compile.prediction = match v.as_str() {
                    "taken" => PredictionMode::Taken,
                    "not-taken" => PredictionMode::NotTaken,
                    "btfnt" => PredictionMode::Btfnt,
                    "ftbnt" => PredictionMode::Ftbnt,
                    other => return err(format!("unknown prediction mode `{other}`")),
                };
            }
            "--predictor" => {
                let v: String = value_for("--predictor", &mut args)?;
                out.sim.predictor = HwPredictor::parse(&v)
                    .map_err(|e| UsageError(format!("bad --predictor value `{v}`: {e}")))?;
            }
            "--fold" => {
                let v: String = value_for("--fold", &mut args)?;
                out.sim.fold_policy = match v.as_str() {
                    "none" => FoldPolicy::None,
                    "host1" => FoldPolicy::Host1,
                    "host13" => FoldPolicy::Host13,
                    "all" => FoldPolicy::All,
                    other => return err(format!("unknown fold policy `{other}`")),
                };
            }
            "--icache" => {
                let v: String = value_for("--icache", &mut args)?;
                out.sim.icache_entries = match v.parse() {
                    Ok(n) => n,
                    Err(_) => return err(format!("bad --icache value `{v}`")),
                };
            }
            "--eu-depth" => {
                let v: String = value_for("--eu-depth", &mut args)?;
                out.sim.geometry = match v.parse() {
                    Ok(n) if (MIN_DEPTH..=MAX_DEPTH).contains(&n) => PipelineGeometry::new(n),
                    _ => {
                        return err(format!(
                            "bad --eu-depth value `{v}` (want {MIN_DEPTH}..={MAX_DEPTH})"
                        ))
                    }
                };
            }
            "--mem-latency" => {
                let v: String = value_for("--mem-latency", &mut args)?;
                out.sim.mem_latency = match v.parse() {
                    Ok(n) => n,
                    Err(_) => return err(format!("bad --mem-latency value `{v}`")),
                };
            }
            "--max-cycles" => {
                let v: String = value_for("--max-cycles", &mut args)?;
                out.sim.max_cycles = match v.parse() {
                    Ok(n) if n > 0 => n,
                    _ => return err(format!("bad --max-cycles value `{v}`")),
                };
            }
            "--max-insns" => {
                let v: String = value_for("--max-insns", &mut args)?;
                out.sim.max_insns = match v.parse() {
                    Ok(n) if n > 0 => Some(n),
                    _ => return err(format!("bad --max-insns value `{v}`")),
                };
            }
            "--parity" => {
                let v: String = value_for("--parity", &mut args)?;
                out.sim.parity = match v.as_str() {
                    "off" => ParityMode::Off,
                    "detect" => ParityMode::DetectInvalidate,
                    other => return err(format!("unknown --parity mode `{other}`")),
                };
            }
            "--degrade" => {
                let v: String = value_for("--degrade", &mut args)?;
                out.sim.degrade = match v.parse() {
                    Ok(n) if n > 0 => Some(DegradePolicy { parity_limit: n }),
                    _ => return err(format!("bad --degrade value `{v}` (want a count >= 1)")),
                };
            }
            "--inject" => {
                inject_spec = Some(value_for("--inject", &mut args)?);
            }
            other if other.starts_with("--") => out.rest.push(arg),
            _ => {
                if out.input.is_some() {
                    return err(format!("unexpected extra input `{arg}`"));
                }
                out.input = Some(arg);
            }
        }
    }
    if let Some(spec) = inject_spec {
        out.sim.fault_plan = Some(parse_fault_spec(&spec, out.sim.predictor)?);
    }
    Ok(out)
}

/// Parse a `--inject TARGET:CYCLE:SLOT:SITE` fault specification into a
/// [`FaultPlan`], resolving the bit site against the target's
/// enumerable fault space (`btb` sites depend on the live predictor).
fn parse_fault_spec(spec: &str, predictor: HwPredictor) -> Result<FaultPlan, UsageError> {
    let bad = || format!("bad --inject value `{spec}` (want TARGET:CYCLE:SLOT:SITE)");
    let parts: Vec<&str> = spec.split(':').collect();
    let [target, cycle, slot, site] = parts.as_slice() else {
        return err(bad());
    };
    let target = match *target {
        "cache" => FaultTarget::Cache,
        "btb" => FaultTarget::Predictor,
        "pdu" => FaultTarget::Pdu,
        other => return err(format!("unknown --inject target `{other}`")),
    };
    let cycle: u64 = cycle.parse().map_err(|_| UsageError(bad()))?;
    let slot: u32 = slot.parse().map_err(|_| UsageError(bad()))?;
    let site: u64 = site.parse().map_err(|_| UsageError(bad()))?;
    let space = match target {
        FaultTarget::Cache => FAULT_SPACE,
        FaultTarget::Predictor => predictor_fault_space(predictor),
        FaultTarget::Pdu => PDU_FAULT_SPACE,
    };
    if site >= space {
        return err(format!(
            "--inject bit-site {site} out of range (this target has {space} fault sites)"
        ));
    }
    let field = match target {
        FaultTarget::Cache => nth_field(site),
        FaultTarget::Predictor => nth_predictor_field(predictor, site)
            .expect("site is in range, so the predictor has state"),
        FaultTarget::Pdu => nth_pdu_field(site),
    };
    Ok(FaultPlan {
        cycle,
        slot,
        field,
        target,
    })
}

/// Remove `--name VALUE` from an argument vector, returning the value.
///
/// # Errors
///
/// [`UsageError`] when the flag is present without a value.
pub fn extract_flag(args: &mut Vec<String>, name: &str) -> Result<Option<String>, UsageError> {
    if let Some(pos) = args.iter().position(|a| a == name) {
        if pos + 1 >= args.len() {
            return err(format!("{name} requires a value"));
        }
        let value = args.remove(pos + 1);
        args.remove(pos);
        return Ok(Some(value));
    }
    Ok(None)
}

/// Remove a boolean `--name` switch from an argument vector.
pub fn extract_switch(args: &mut Vec<String>, name: &str) -> bool {
    if let Some(pos) = args.iter().position(|a| a == name) {
        args.remove(pos);
        true
    } else {
        false
    }
}

/// A crash-safe campaign checkpoint: how many leading cases of the
/// deterministic work list are already done, plus accumulated named
/// counters (for `crisp-fault` these are `<field>.<outcome>` tallies).
///
/// Serialised as one flat JSON object — `{"completed":N,"key":count}` —
/// so a half-written file from a crash mid-save is detectably invalid
/// rather than silently truncating the campaign.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Checkpoint {
    /// Number of leading campaign cases already completed.
    pub completed: u64,
    /// Accumulated named counters, in first-seen order.
    pub tallies: Vec<(String, u64)>,
}

impl Checkpoint {
    /// Add `n` to the named counter (creating it at zero).
    pub fn tally(&mut self, key: &str, n: u64) {
        match self.tallies.iter_mut().find(|(k, _)| k == key) {
            Some((_, v)) => *v += n,
            None => self.tallies.push((key.to_string(), n)),
        }
    }

    /// Current value of the named counter (zero when absent).
    pub fn get(&self, key: &str) -> u64 {
        self.tallies
            .iter()
            .find(|(k, _)| k == key)
            .map_or(0, |(_, v)| *v)
    }

    /// Serialise as a flat JSON object.
    pub fn to_json(&self) -> String {
        let mut out = format!("{{\"completed\":{}", self.completed);
        for (k, v) in &self.tallies {
            out.push_str(&format!(",\"{k}\":{v}"));
        }
        out.push('}');
        out
    }

    /// Parse the flat JSON object written by [`Checkpoint::to_json`].
    ///
    /// # Errors
    ///
    /// [`UsageError`] on malformed input (including a truncated file
    /// left behind by a crash mid-save).
    pub fn from_json(text: &str) -> Result<Checkpoint, UsageError> {
        let bad = |what: &str| UsageError(format!("checkpoint: {what}"));
        let body = text
            .trim()
            .strip_prefix('{')
            .and_then(|t| t.strip_suffix('}'))
            .ok_or_else(|| bad("not a JSON object"))?;
        let mut cp = Checkpoint::default();
        let mut saw_completed = false;
        for pair in body.split(',') {
            let pair = pair.trim();
            if pair.is_empty() {
                continue;
            }
            let (key, value) = pair
                .split_once(':')
                .ok_or_else(|| bad("entry is not `key:value`"))?;
            let key = key
                .trim()
                .strip_prefix('"')
                .and_then(|k| k.strip_suffix('"'))
                .ok_or_else(|| bad("key is not a quoted string"))?;
            let value: u64 = value
                .trim()
                .parse()
                .map_err(|_| bad("value is not a non-negative integer"))?;
            if key == "completed" {
                cp.completed = value;
                saw_completed = true;
            } else {
                cp.tally(key, value);
            }
        }
        if !saw_completed {
            return Err(bad("missing `completed` field"));
        }
        Ok(cp)
    }

    /// Load a checkpoint from `path`. A missing file is a fresh start
    /// (`Ok(None)`); an unreadable or malformed file is an error.
    ///
    /// # Errors
    ///
    /// [`UsageError`] on I/O failure (other than not-found) or parse
    /// failure.
    pub fn load(path: &str) -> Result<Option<Checkpoint>, UsageError> {
        match std::fs::read_to_string(path) {
            Ok(text) => Checkpoint::from_json(&text).map(Some),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => err(format!("reading {path}: {e}")),
        }
    }

    /// Load a checkpoint for a campaign of `total` cases: like
    /// [`Checkpoint::load`], but a checkpoint claiming more completed
    /// cases than the campaign has is rejected — it belongs to a
    /// different (larger) campaign, and resuming from it would make
    /// the work queue's remaining-case arithmetic underflow.
    ///
    /// # Errors
    ///
    /// [`UsageError`] on I/O failure, parse failure, or a `completed`
    /// count exceeding `total`.
    pub fn load_for_campaign(path: &str, total: u64) -> Result<Option<Checkpoint>, UsageError> {
        match Checkpoint::load(path)? {
            Some(cp) if cp.completed > total => err(format!(
                "checkpoint {path} claims {} completed cases but this campaign has only {total}; \
                 it belongs to a different campaign — delete it or run without --resume",
                cp.completed
            )),
            other => Ok(other),
        }
    }

    /// Persist to `path` via write-temp, fsync, rename: a reader never
    /// sees a half-written checkpoint (the rename is atomic on POSIX
    /// filesystems), and the fsync ensures the rename cannot land
    /// before the data — a crash or SIGKILL at any point leaves either
    /// the previous complete checkpoint or the new complete one, never
    /// a torn file.
    ///
    /// # Errors
    ///
    /// [`UsageError`] describing the I/O failure.
    pub fn save(&self, path: &str) -> Result<(), UsageError> {
        use std::io::Write as _;
        let tmp = format!("{path}.tmp");
        let write_synced = || -> std::io::Result<()> {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(self.to_json().as_bytes())?;
            f.sync_all()
        };
        if let Err(e) = write_synced() {
            return err(format!("writing {tmp}: {e}"));
        }
        if let Err(e) = std::fs::rename(&tmp, path) {
            return err(format!("renaming {tmp} to {path}: {e}"));
        }
        Ok(())
    }
}

/// A self-scheduling campaign work queue with contiguous-prefix
/// completion tracking.
///
/// Workers [`claim`](WorkQueue::claim) indices one at a time — no fixed
/// chunking, so one slow case never leaves the other threads idle at a
/// chunk boundary — and report each finished case together with its
/// checkpoint payload. Payloads are handed back to the caller only once
/// their case joins the contiguous completed prefix, which keeps
/// `--resume` checkpoints sound: a checkpoint claiming N completed
/// cases accounts for exactly the first N cases even though cases
/// finish out of order.
pub struct WorkQueue<T> {
    next: AtomicU64,
    total: u64,
    stop: AtomicBool,
    state: Mutex<QueueState<T>>,
}

struct QueueState<T> {
    /// Cases `0..prefix` are complete and their payloads drained.
    prefix: u64,
    /// Finished cases still waiting for an earlier one (bounded by the
    /// worker count, so the linear scans below stay cheap).
    pending: Vec<(u64, T)>,
}

/// Prefix progress released by [`WorkQueue::complete`].
pub struct Drained<T> {
    /// Cases now in the contiguous completed prefix.
    pub completed: u64,
    /// Payloads of the cases that just joined the prefix, in index
    /// order. Empty when the completed case is still waiting on an
    /// earlier in-flight one.
    pub payloads: Vec<T>,
}

impl<T> WorkQueue<T> {
    /// A queue over cases `start..total` (cases below `start` were
    /// completed by a previous run and come from the checkpoint).
    pub fn new(start: u64, total: u64) -> Self {
        WorkQueue {
            next: AtomicU64::new(start),
            total,
            stop: AtomicBool::new(false),
            state: Mutex::new(QueueState {
                prefix: start,
                pending: Vec::new(),
            }),
        }
    }

    /// Claim the next unprocessed case, or `None` when the queue is
    /// drained or aborted.
    pub fn claim(&self) -> Option<u64> {
        if self.stop.load(Ordering::Relaxed) {
            return None;
        }
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        (i < self.total).then_some(i)
    }

    /// Stop handing out work (a failure was recorded); in-flight cases
    /// finish on their own.
    pub fn abort(&self) {
        self.stop.store(true, Ordering::Relaxed);
    }

    /// Whether [`abort`](WorkQueue::abort) has been called.
    pub fn aborted(&self) -> bool {
        self.stop.load(Ordering::Relaxed)
    }

    /// Record case `index` as finished with its checkpoint payload and
    /// collect any payloads that just became part of the contiguous
    /// prefix.
    pub fn complete(&self, index: u64, payload: T) -> Drained<T> {
        let mut st = self.state.lock().unwrap();
        st.pending.push((index, payload));
        let mut payloads = Vec::new();
        while let Some(pos) = st.pending.iter().position(|(i, _)| *i == st.prefix) {
            let (_, p) = st.pending.swap_remove(pos);
            payloads.push(p);
            st.prefix += 1;
        }
        Drained {
            completed: st.prefix,
            payloads,
        }
    }

    /// Current contiguous completed prefix.
    pub fn completed(&self) -> u64 {
        self.state.lock().unwrap().prefix
    }

    /// Cases not yet handed out by [`claim`](WorkQueue::claim). Read
    /// before the workers start, this is the work left for this run
    /// (total minus the checkpoint prefix), which is what campaign
    /// monitors use as their progress denominator: a resumed run
    /// reports progress over its own remaining work rather than the
    /// full campaign.
    pub fn remaining(&self) -> u64 {
        self.total - self.next.load(Ordering::Relaxed).min(self.total)
    }
}

/// Read the input file (or stdin when the path is `-` or absent).
///
/// # Errors
///
/// [`UsageError`] describing the I/O failure.
pub fn read_input(input: &Option<String>) -> Result<String, UsageError> {
    use std::io::Read as _;
    match input.as_deref() {
        None | Some("-") => {
            let mut buf = String::new();
            match std::io::stdin().read_to_string(&mut buf) {
                Ok(_) => Ok(buf),
                Err(e) => err(format!("reading stdin: {e}")),
            }
        }
        Some(path) => match std::fs::read_to_string(path) {
            Ok(s) => Ok(s),
            Err(e) => err(format!("reading {path}: {e}")),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<CommonArgs, UsageError> {
        parse_common(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&["prog.c"]).unwrap();
        assert_eq!(a.input.as_deref(), Some("prog.c"));
        assert!(a.compile.spread);
        assert_eq!(a.sim.icache_entries, 32);
    }

    #[test]
    fn flags() {
        let a = parse(&[
            "--no-spread",
            "--predict",
            "not-taken",
            "--fold",
            "none",
            "--icache",
            "64",
            "--mem-latency",
            "3",
            "x.c",
        ])
        .unwrap();
        assert!(!a.compile.spread);
        assert_eq!(a.compile.prediction, PredictionMode::NotTaken);
        assert_eq!(a.sim.fold_policy, FoldPolicy::None);
        assert_eq!(a.sim.icache_entries, 64);
        assert_eq!(a.sim.mem_latency, 3);
    }

    #[test]
    fn eu_depth_flag_sets_geometry() {
        let a = parse(&["--eu-depth", "5", "x.c"]).unwrap();
        assert_eq!(a.sim.geometry.depth(), 5);
        let a = parse(&["x.c"]).unwrap();
        assert_eq!(a.sim.geometry, PipelineGeometry::crisp());
    }

    #[test]
    fn tool_specific_flags_pass_through() {
        let a = parse(&["--cycles", "x.c"]).unwrap();
        assert_eq!(a.rest, vec!["--cycles".to_string()]);
    }

    #[test]
    fn watchdog_flags() {
        let a = parse(&["--max-cycles", "5000", "--max-insns", "200", "x.c"]).unwrap();
        assert_eq!(a.sim.max_cycles, 5000);
        assert_eq!(a.sim.max_insns, Some(200));
    }

    #[test]
    fn fault_injection_flags() {
        let a = parse(&["--parity", "detect", "--degrade", "2", "x.c"]).unwrap();
        assert_eq!(a.sim.parity, ParityMode::DetectInvalidate);
        assert_eq!(a.sim.degrade, Some(DegradePolicy { parity_limit: 2 }));

        let a = parse(&["--inject", "cache:60:7:0", "x.c"]).unwrap();
        let plan = a.sim.fault_plan.unwrap();
        assert_eq!(plan.target, FaultTarget::Cache);
        assert_eq!((plan.cycle, plan.slot), (60, 7));
        assert_eq!(plan.field, nth_field(0));

        // `--inject btb:...` resolves against the predictor even when
        // `--predictor` comes later on the line.
        let a = parse(&["--inject", "btb:40:0:5", "--predictor", "btb", "x.c"]).unwrap();
        let plan = a.sim.fault_plan.unwrap();
        assert_eq!(plan.target, FaultTarget::Predictor);
        assert_eq!(plan.field, nth_predictor_field(a.sim.predictor, 5).unwrap());

        let a = parse(&["--inject", "pdu:10:3:40", "x.c"]).unwrap();
        assert_eq!(a.sim.fault_plan.unwrap().field, nth_pdu_field(40));
    }

    #[test]
    fn fault_injection_flag_errors() {
        assert!(parse(&["--parity", "maybe"]).is_err());
        assert!(parse(&["--degrade", "0"]).is_err());
        assert!(parse(&["--degrade", "many"]).is_err());
        assert!(parse(&["--inject", "cache:60:7"]).is_err());
        assert!(parse(&["--inject", "dram:60:7:0"]).is_err());
        assert!(parse(&["--inject", "cache:60:7:999"]).is_err());
        // The static-bit predictor has no strikable state.
        assert!(parse(&["--inject", "btb:60:0:0", "x.c"]).is_err());
        let e = parse(&["--inject", "pdu:10:3:999"]).unwrap_err();
        assert!(e.0.contains("fault sites"), "{e}");
    }

    #[test]
    fn errors() {
        assert!(parse(&["--predict"]).is_err());
        assert!(parse(&["--predict", "sideways"]).is_err());
        assert!(parse(&["--fold", "sometimes"]).is_err());
        assert!(parse(&["--icache", "lots"]).is_err());
        assert!(parse(&["--eu-depth", "1"]).is_err());
        assert!(parse(&["--eu-depth", "9"]).is_err());
        assert!(parse(&["--eu-depth", "deep"]).is_err());
        assert!(parse(&["--max-cycles", "0"]).is_err());
        assert!(parse(&["--max-insns", "soon"]).is_err());
        assert!(parse(&["a.c", "b.c"]).is_err());
    }

    #[test]
    fn checkpoint_round_trips() {
        let mut cp = Checkpoint {
            completed: 37,
            tallies: Vec::new(),
        };
        cp.tally("next-pc.masked", 4);
        cp.tally("valid.hang", 1);
        cp.tally("next-pc.masked", 2);
        let json = cp.to_json();
        assert_eq!(
            json,
            r#"{"completed":37,"next-pc.masked":6,"valid.hang":1}"#
        );
        let back = Checkpoint::from_json(&json).unwrap();
        assert_eq!(back, cp);
        assert_eq!(back.get("next-pc.masked"), 6);
        assert_eq!(back.get("absent"), 0);
    }

    #[test]
    fn checkpoint_rejects_malformed_input() {
        assert!(Checkpoint::from_json("").is_err());
        assert!(Checkpoint::from_json("{").is_err());
        assert!(Checkpoint::from_json("{\"completed\":1,\"k\":-3}").is_err());
        assert!(Checkpoint::from_json("{\"k\":1}").is_err());
        assert!(Checkpoint::from_json("{\"completed\":1,\"k\"}").is_err());
        assert!(Checkpoint::from_json("{completed:1}").is_err());
    }

    #[test]
    fn predictor_flag_selects_hardware_predictor() {
        let a = parse(&["x.c"]).unwrap();
        assert_eq!(a.sim.predictor, crisp_sim::HwPredictor::StaticBit);
        let a = parse(&["--predictor", "btb", "x.c"]).unwrap();
        assert_eq!(
            a.sim.predictor,
            crisp_sim::HwPredictor::Btb {
                entries: 128,
                ways: 4
            }
        );
        let a = parse(&["--predictor", "counter2x32", "x.c"]).unwrap();
        assert_eq!(
            a.sim.predictor,
            crisp_sim::HwPredictor::Dynamic {
                bits: 2,
                entries: 32
            }
        );
        let e = parse(&["--predictor", "oracle", "x.c"]).unwrap_err();
        assert!(e.0.contains("--predictor"), "{}", e.0);
        assert!(parse(&["--predictor"]).is_err());
    }

    #[test]
    fn checkpoint_load_for_campaign_rejects_oversized_completed() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!(
            "crisp-checkpoint-total-{}.json",
            std::process::id()
        ));
        let path = path.to_str().unwrap().to_string();
        // Missing file: fresh start regardless of total.
        assert_eq!(Checkpoint::load_for_campaign(&path, 5).unwrap(), None);
        let cp = Checkpoint {
            completed: 10,
            tallies: Vec::new(),
        };
        cp.save(&path).unwrap();
        // Fits the campaign: accepted.
        assert_eq!(
            Checkpoint::load_for_campaign(&path, 10).unwrap(),
            Some(cp.clone())
        );
        assert_eq!(Checkpoint::load_for_campaign(&path, 200).unwrap(), Some(cp));
        // Claims more cases than the campaign has: clean usage error,
        // not a queue-arithmetic underflow.
        let e = Checkpoint::load_for_campaign(&path, 9).unwrap_err();
        assert!(
            e.0.contains("10 completed cases") && e.0.contains("only 9"),
            "{}",
            e.0
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn work_queue_hands_out_each_case_once() {
        let q: WorkQueue<u64> = WorkQueue::new(3, 6);
        assert_eq!(q.claim(), Some(3));
        assert_eq!(q.claim(), Some(4));
        assert_eq!(q.claim(), Some(5));
        assert_eq!(q.claim(), None);
        assert_eq!(q.claim(), None);
    }

    #[test]
    fn work_queue_releases_payloads_in_prefix_order() {
        let q: WorkQueue<&str> = WorkQueue::new(0, 4);
        for _ in 0..4 {
            q.claim();
        }
        // Case 2 finishes first: nothing is released yet.
        let d = q.complete(2, "two");
        assert_eq!(d.completed, 0);
        assert!(d.payloads.is_empty());
        // Case 0 joins: 0 is released, 1 still in flight blocks 2.
        let d = q.complete(0, "zero");
        assert_eq!(d.completed, 1);
        assert_eq!(d.payloads, ["zero"]);
        // Case 1 joins and unblocks the parked case 2.
        let d = q.complete(1, "one");
        assert_eq!(d.completed, 3);
        assert_eq!(d.payloads, ["one", "two"]);
        let d = q.complete(3, "three");
        assert_eq!(d.completed, 4);
        assert_eq!(d.payloads, ["three"]);
        assert_eq!(q.completed(), 4);
    }

    #[test]
    fn work_queue_abort_stops_claims() {
        let q: WorkQueue<()> = WorkQueue::new(0, 100);
        assert_eq!(q.claim(), Some(0));
        assert!(!q.aborted());
        q.abort();
        assert!(q.aborted());
        assert_eq!(q.claim(), None);
    }

    #[test]
    fn work_queue_under_thread_contention() {
        let q: WorkQueue<u64> = WorkQueue::new(0, 500);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    while let Some(i) = q.claim() {
                        q.complete(i, i);
                    }
                });
            }
        });
        assert_eq!(q.completed(), 500);
        assert_eq!(q.claim(), None);
    }

    #[test]
    fn checkpoint_file_round_trip() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("crisp-checkpoint-test-{}.json", std::process::id()));
        let path = path.to_str().unwrap().to_string();
        assert_eq!(Checkpoint::load(&path).unwrap(), None);
        let mut cp = Checkpoint {
            completed: 12,
            tallies: Vec::new(),
        };
        cp.tally("opcode.sdc", 3);
        cp.save(&path).unwrap();
        assert_eq!(Checkpoint::load(&path).unwrap(), Some(cp));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn checkpoint_load_rejects_torn_file() {
        // A torn file can only appear if something other than `save`
        // wrote it (save is write-temp/fsync/rename), e.g. a direct
        // write interrupted mid-flight. The loader must reject it with
        // a descriptive error, never resume from garbage.
        let dir = std::env::temp_dir();
        let path = dir.join(format!("crisp-checkpoint-torn-{}.json", std::process::id()));
        let path = path.to_str().unwrap().to_string();
        let mut cp = Checkpoint {
            completed: 40,
            tallies: Vec::new(),
        };
        cp.tally("verified", 40);
        let full = cp.to_json();
        // Every strict prefix of a valid checkpoint is malformed: the
        // JSON object never closes, or a key/value is cut in half.
        for cut in 1..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let e = Checkpoint::load(&path).unwrap_err();
            assert!(e.0.contains("checkpoint"), "cut at {cut}: {}", e.0);
            assert!(
                Checkpoint::load_for_campaign(&path, 100).is_err(),
                "cut at {cut}"
            );
        }
        // The intact file still loads.
        std::fs::write(&path, &full).unwrap();
        assert_eq!(Checkpoint::load(&path).unwrap(), Some(cp));
        std::fs::remove_file(&path).unwrap();
    }
}

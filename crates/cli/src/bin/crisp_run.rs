//! `crisp-run` — compile (or assemble) and execute a program.
//!
//! ```text
//! crisp-run [OPTIONS] [FILE]     run FILE (or stdin)
//!
//!   --asm                        input is CRISP assembly, not mini-C
//!   --cycles                     use the cycle-level pipeline (default:
//!                                functional engine)
//!   --trace                      print the branch trace (functional only)
//!   --fold POLICY --icache N --mem-latency N   machine configuration
//!   --no-spread --predict MODE                 compiler configuration
//! ```
//!
//! Examples:
//!
//! ```sh
//! crisp-run --cycles program.c
//! crisp-run --asm loop.s
//! echo 'void main(){}' | crisp-run
//! ```

use std::process::ExitCode;

use crisp_asm::assemble_text;
use crisp_cc::compile_crisp;
use crisp_cli::{extract_switch, parse_common, read_input};
use crisp_sim::{CycleSim, FunctionalSim, Machine};

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("crisp-run: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.iter().any(|a| a == "--help" || a == "-h") {
        println!("usage: crisp-run [--asm] [--cycles] [--trace] [OPTIONS] [FILE]");
        return Ok(());
    }
    let is_asm = extract_switch(&mut raw, "--asm");
    let cycles = extract_switch(&mut raw, "--cycles");
    let trace = extract_switch(&mut raw, "--trace");
    let args = parse_common(raw.into_iter()).map_err(|e| e.to_string())?;
    if let Some(flag) = args.rest.first() {
        return Err(format!("unknown flag `{flag}`"));
    }

    let source = read_input(&args.input).map_err(|e| e.to_string())?;
    let image = if is_asm {
        assemble_text(&source).map_err(|e| e.to_string())?
    } else {
        compile_crisp(&source, &args.compile).map_err(|e| e.to_string())?
    };
    let machine = Machine::load(&image).map_err(|e| e.to_string())?;

    if cycles {
        let run = CycleSim::new(machine, args.sim).run().map_err(|e| e.to_string())?;
        println!("cycles               : {}", run.stats.cycles);
        println!("instructions issued  : {}", run.stats.issued);
        println!("program instructions : {}", run.stats.program_instrs);
        println!("issued CPI           : {:.3}", run.stats.cycles_per_issued());
        println!("apparent CPI         : {:.3}", run.stats.apparent_cpi());
        println!("conditional branches : {}", run.stats.cond_branches);
        println!(
            "mispredicts          : {} (by resolve stage {:?})",
            run.stats.mispredicts(),
            run.stats.mispredicts_by_stage
        );
        println!("resolved at fetch    : {}", run.stats.resolved_at_fetch);
        println!(
            "decoded cache        : {} hits / {} misses",
            run.stats.icache_hits, run.stats.icache_misses
        );
        println!("accumulator          : {}", run.machine.accum);
    } else {
        let run = FunctionalSim::new(machine)
            .record_trace(trace)
            .run()
            .map_err(|e| e.to_string())?;
        println!("program instructions : {}", run.stats.program_instrs);
        println!("pipeline entries     : {}", run.stats.entries);
        println!("folded branches      : {}", run.stats.folded);
        println!("conditional branches : {}", run.stats.cond_branches);
        println!("static mispredicts   : {}", run.stats.static_mispredicts);
        println!("accumulator          : {}", run.machine.accum);
        println!("opcode mix:");
        print!("{}", run.stats.opcodes);
        if trace {
            println!("branch trace ({} events):", run.trace.len());
            for e in &run.trace {
                println!("  {e}");
            }
        }
    }
    Ok(())
}

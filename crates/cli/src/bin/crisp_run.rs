//! `crisp-run` — compile (or assemble) and execute a program.
//!
//! ```text
//! crisp-run [OPTIONS] [FILE]     run FILE (or stdin)
//!
//!   --asm                        input is CRISP assembly, not mini-C
//!   --cycles                     use the cycle-level pipeline (default:
//!                                functional engine)
//!   --engine ENGINE              functional engine tier: interp (the
//!                                one-entry reference interpreter,
//!                                default here) or threaded (the
//!                                block-translating superinstruction
//!                                tier — same architectural results,
//!                                several times faster; incompatible
//!                                with --cycles)
//!   --trace PATH                 write a JSONL pipeline event trace
//!                                (`-` = stdout); the cycle engine emits
//!                                the full fetch/decode/fold/squash
//!                                stream, the functional engine its
//!                                commit stream
//!   --chrome-trace PATH          write a Chrome trace_event JSON file
//!                                (open in chrome://tracing or Perfetto;
//!                                needs --cycles)
//!   --profile                    print the per-branch-site profile
//!   --timeline                   print an ASCII pipeline timeline
//!                                around the first mispredict (needs
//!                                --cycles)
//!   --stats-json PATH            write run statistics as JSON
//!                                (`-` = stdout)
//!   --cpi-breakdown              print the top-down cycle accounting
//!                                table: every cycle attributed to one
//!                                cause bucket (needs --cycles)
//!   --branch-trace               print the branch trace (functional
//!                                engine only)
//!   --fold POLICY --icache N --mem-latency N   machine configuration
//!   --eu-depth N                 execution-unit depth (2..=8, default 3;
//!                                cycle engine geometry)
//!   --predictor HW               live hardware predictor consulted by
//!                                the PDU: static (the compiled bit,
//!                                default), counterN[xM] saturating
//!                                counters, btb[SxW] branch target
//!                                buffer, jumptrace[N] MU5-style FIFO
//!                                (needs --cycles to matter)
//!   --max-cycles N --max-insns N               watchdog limits (a run
//!                                              that exceeds one ends
//!                                              gracefully with halt
//!                                              reason `watchdog`)
//!   --parity MODE                front-end parity: off | detect
//!   --degrade N                  disable a cache slot / BTB way after
//!                                N detected parity errors (degraded
//!                                runs report `degraded_ways` in the
//!                                stats; needs --cycles and --parity
//!                                detect)
//!   --inject T:C:S:B             arm a single-bit fault into target T
//!                                (cache | btb | pdu) at cycle C, slot
//!                                S, bit-site B — the knob behind
//!                                crisp-fault, exposed for one-off
//!                                what-does-this-strike-cost runs
//!   --no-spread --predict MODE                 compiler configuration
//! ```
//!
//! Examples:
//!
//! ```sh
//! crisp-run --cycles --profile program.c
//! crisp-run --cycles --trace run.jsonl --chrome-trace run.json program.c
//! crisp-run --asm --stats-json - loop.s
//! ```

use std::io::{self, Write as _};
use std::process::ExitCode;

use crisp_asm::assemble_text;
use crisp_cc::compile_crisp;
use crisp_cli::{extract_flag, extract_switch, parse_common, read_input};
use crisp_sim::{
    mispredict_cycles, render_timeline_for, write_chrome_trace_for, write_jsonl,
    write_trace_footer, BranchProfiler, CycleSim, Engine, EventRing, FunctionalSim, Machine,
    PipeEvent, PipelineGeometry, ThreadedSim, TraceFooter,
};

/// Event-ring capacity for `--trace`/`--chrome-trace`/`--timeline`:
/// large enough for any workload in this repo; overflow is reported.
const TRACE_CAPACITY: usize = 1 << 20;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("crisp-run: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// Write through `emit` to the file at `path`, or to stdout for `-`.
fn write_output(
    path: &str,
    emit: impl FnOnce(&mut dyn io::Write) -> io::Result<()>,
) -> Result<(), String> {
    let result = if path == "-" {
        let stdout = io::stdout();
        let mut w = stdout.lock();
        emit(&mut w).and_then(|()| w.flush())
    } else {
        std::fs::File::create(path).and_then(|f| {
            let mut w = io::BufWriter::new(f);
            emit(&mut w).and_then(|()| w.flush())
        })
    };
    result.map_err(|e| format!("writing {path}: {e}"))
}

fn run() -> Result<(), String> {
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "usage: crisp-run [--asm] [--cycles] [--engine interp|threaded] [--trace PATH] \
             [--chrome-trace PATH] [--profile] [--timeline] [--stats-json PATH] \
             [--cpi-breakdown] [--branch-trace] [OPTIONS] [FILE]"
        );
        return Ok(());
    }
    let is_asm = extract_switch(&mut raw, "--asm");
    let cycles = extract_switch(&mut raw, "--cycles");
    // One-shot runs default to the reference interpreter; campaign
    // drivers (crisp-diff, crisp-fault, bench_sim) default to threaded.
    let engine = match extract_flag(&mut raw, "--engine").map_err(|e| e.to_string())? {
        Some(name) => Engine::parse(&name)
            .ok_or_else(|| format!("unknown engine `{name}` (interp | threaded)"))?,
        None => Engine::Interp,
    };
    let trace_path = extract_flag(&mut raw, "--trace").map_err(|e| e.to_string())?;
    let chrome_path = extract_flag(&mut raw, "--chrome-trace").map_err(|e| e.to_string())?;
    let stats_path = extract_flag(&mut raw, "--stats-json").map_err(|e| e.to_string())?;
    let profile = extract_switch(&mut raw, "--profile");
    let timeline = extract_switch(&mut raw, "--timeline");
    let branch_trace = extract_switch(&mut raw, "--branch-trace");
    let cpi_breakdown = extract_switch(&mut raw, "--cpi-breakdown");
    let args = parse_common(raw.into_iter()).map_err(|e| e.to_string())?;
    if let Some(flag) = args.rest.first() {
        return Err(format!("unknown flag `{flag}`"));
    }
    if !cycles && chrome_path.is_some() {
        return Err("--chrome-trace needs --cycles".into());
    }
    if !cycles && timeline {
        return Err("--timeline needs --cycles".into());
    }
    if !cycles && cpi_breakdown {
        return Err("--cpi-breakdown needs --cycles".into());
    }
    if cycles && engine == Engine::Threaded {
        return Err("--engine threaded applies to the functional engine (drop --cycles)".into());
    }

    let source = read_input(&args.input).map_err(|e| e.to_string())?;
    let image = if is_asm {
        assemble_text(&source).map_err(|e| e.to_string())?
    } else {
        compile_crisp(&source, &args.compile).map_err(|e| e.to_string())?
    };
    let machine = Machine::load(&image).map_err(|e| e.to_string())?;

    let observing = trace_path.is_some() || chrome_path.is_some() || profile || timeline;

    if cycles {
        let (mut run, events, dropped, profiler) = if observing {
            let obs = (
                EventRing::new(TRACE_CAPACITY),
                BranchProfiler::with_geometry(args.sim.geometry),
            );
            let (run, (ring, prof)) = CycleSim::with_observer(machine, args.sim, obs)
                .run_observed()
                .map_err(|e| e.to_string())?;
            if ring.dropped > 0 {
                eprintln!(
                    "crisp-run: trace ring overflowed; {} oldest events dropped",
                    ring.dropped
                );
            }
            let dropped = ring.dropped;
            (run, ring.into_vec(), dropped, Some(prof))
        } else {
            let run = CycleSim::new(machine, args.sim)
                .run()
                .map_err(|e| e.to_string())?;
            (run, Vec::new(), 0, None)
        };
        // Ring overflow is a property of this driver's capture, not of
        // the engine; fold it into the exported stats here.
        run.stats.dropped_events = dropped;

        print!("{}", run.stats);
        println!("halt reason          : {}", run.halt_reason.name());
        println!("accumulator          : {}", run.machine.accum);
        if cpi_breakdown {
            print!("{}", run.stats.cpi_breakdown());
        }
        emit_observations(
            &events,
            dropped,
            profiler.as_ref().filter(|_| profile),
            &trace_path,
            &chrome_path,
            timeline,
            args.sim.geometry,
        )?;
        if let Some(path) = &stats_path {
            write_output(path, |w| writeln!(w, "{}", run.stats.to_json()))?;
        }
    } else {
        let mut obs = (EventRing::new(TRACE_CAPACITY), BranchProfiler::new());
        // The functional engine has no cycle clock: the watchdog bounds
        // pipeline entries (steps) instead. `--max-insns` tightens the
        // same bound, since entries never exceed program instructions.
        let steps = args
            .sim
            .max_insns
            .map_or(args.sim.max_cycles, |n| n.min(args.sim.max_cycles));
        let run = match engine {
            Engine::Interp => {
                let sim = FunctionalSim::new(machine)
                    .record_trace(branch_trace)
                    .max_steps(steps);
                if observing {
                    sim.run_observed(&mut obs).map_err(|e| e.to_string())?
                } else {
                    sim.run().map_err(|e| e.to_string())?
                }
            }
            Engine::Threaded => {
                let sim = ThreadedSim::new(machine)
                    .record_trace(branch_trace)
                    .max_steps(steps);
                if observing {
                    sim.run_observed(&mut obs).map_err(|e| e.to_string())?
                } else {
                    sim.run().map_err(|e| e.to_string())?
                }
            }
        };
        let (ring, profiler) = obs;

        println!("program instructions : {}", run.stats.program_instrs);
        println!("pipeline entries     : {}", run.stats.entries);
        println!("folded branches      : {}", run.stats.folded);
        println!("conditional branches : {}", run.stats.cond_branches);
        println!("static mispredicts   : {}", run.stats.static_mispredicts);
        if engine == Engine::Threaded {
            println!("translated blocks    : {}", run.stats.blocks_translated);
            println!("superinstr dispatch  : {}", run.stats.superinstr_dispatches);
            println!("deopt falls          : {}", run.stats.deopt_falls);
        }
        println!("halt reason          : {}", run.halt_reason.name());
        println!("accumulator          : {}", run.machine.accum);
        println!("opcode mix:");
        print!("{}", run.stats.opcodes);
        if branch_trace {
            println!("branch trace ({} events):", run.trace.len());
            for e in &run.trace {
                println!("  {e}");
            }
        }
        let dropped = ring.dropped;
        let events = ring.into_vec();
        emit_observations(
            &events,
            dropped,
            Some(&profiler).filter(|_| profile),
            &trace_path,
            &None,
            false,
            args.sim.geometry,
        )?;
        if let Some(path) = &stats_path {
            write_output(path, |w| writeln!(w, "{}", run.stats.to_json()))?;
        }
    }
    Ok(())
}

/// Emit the trace/profile/timeline renderings common to both engines.
fn emit_observations(
    events: &[PipeEvent],
    dropped: u64,
    profiler: Option<&BranchProfiler>,
    trace_path: &Option<String>,
    chrome_path: &Option<String>,
    timeline: bool,
    geometry: PipelineGeometry,
) -> Result<(), String> {
    if let Some(path) = trace_path {
        write_output(path, |w| {
            write_jsonl(w, events)?;
            // Footer makes capture completeness auditable downstream:
            // a consumer can tell a short trace from a truncated one.
            write_trace_footer(
                w,
                TraceFooter {
                    events: events.len() as u64,
                    dropped,
                },
            )
        })?;
    }
    if let Some(path) = chrome_path {
        write_output(path, |w| write_chrome_trace_for(w, events, geometry))?;
    }
    if let Some(prof) = profiler {
        print!("{prof}");
    }
    if timeline {
        match mispredict_cycles(events).first() {
            Some(&center) => {
                let from = center.saturating_sub(6);
                print!(
                    "{}",
                    render_timeline_for(events, from, center + 6, geometry)
                );
            }
            None => println!("timeline: no mispredicts in this run"),
        }
    }
    Ok(())
}

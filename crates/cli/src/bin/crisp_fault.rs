//! `crisp-fault` — soft-error fault-injection campaign driver.
//!
//! Generates seeded random programs, injects single-bit transient
//! faults into live decoded-cache entries at chosen cycles, and
//! measures the outcome twice per fault:
//!
//! * Under `ParityMode::DetectInvalidate` every injected fault must be
//!   masked — the parity check detects the flip at issue, the entry is
//!   invalidated and redecoded, and the commit stream matches the
//!   fault-free reference. Anything else is a bug in the recovery path
//!   and fails the campaign.
//! * Under `ParityMode::Off` each fault is classified as masked, SDC
//!   (silent data corruption), control-flow divergence or hang,
//!   accumulating AVF-style per-field vulnerability statistics.
//!
//! ```text
//! crisp-fault [OPTIONS]
//!
//!   --seed N          base seed for the campaign (default 0)
//!   --programs N      generated programs (default 8)
//!   --faults N        faults injected per program (default 64)
//!   --max-blocks N    block budget per generated program (default 10)
//!   --jobs N          worker threads (default: available cores)
//!   --max-cycles N    watchdog budget per run (default 200000)
//!   --eu-depth N      execution-unit depth for every run (2..=8;
//!                     default 3, the paper's IR/OR/RR)
//!   --predictor HW    live hardware predictor for every run (static |
//!                     counterN[xM] | btb[SxW] | jumptrace[N]) —
//!                     recovery must mask faults under any predictor
//!   --smoke           bounded CI run (2 programs x 32 faults)
//!   --resume FILE     checkpoint campaign progress in FILE
//!   --report FILE     write the JSON AVF report to FILE
//!   --heartbeat SECS  emit JSONL campaign snapshots to stderr every
//!                     SECS seconds, plus a final campaign report
//! ```
//!
//! Worker panics are caught per case and reported as failures with the
//! offending seed and fault plan. Exit status is 0 when every fault is
//! recovered under parity protection, 1 otherwise.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::process::ExitCode;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crisp_asm::rand_prog::{GenProgram, Rng};
use crisp_asm::Image;
use crisp_cli::{extract_flag, extract_switch, Checkpoint, WorkQueue};
use crisp_sim::{
    classify_fault_pooled, nth_field, ClassifyBuffers, FaultOutcome, FaultPlan, HwPredictor,
    ParityMode, PipelineGeometry, PredecodedImage, SimConfig, FAULT_SPACE, FIELD_NAMES, MAX_DEPTH,
    MIN_DEPTH,
};
use crisp_telemetry::{CampaignMonitor, Heartbeat};

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("crisp-fault: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// One failed campaign case: either the parity recovery missed an
/// injected fault, or a worker panicked mid-case.
struct Failure {
    program_seed: u64,
    plan: FaultPlan,
    detail: String,
}

/// Result of the `ParityMode::Off` classification phase.
enum CaseClass {
    /// Both phases ran; the unprotected outcome is tallied.
    Classified(FaultOutcome),
    /// The fault-free reference did not halt within the watchdog
    /// budget — the case is tallied as skipped, not failed.
    Skipped,
}

fn parse_num<T: std::str::FromStr>(
    raw: &mut Vec<String>,
    name: &str,
    default: T,
) -> Result<T, String> {
    match extract_flag(raw, name).map_err(|e| e.to_string())? {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("{name}: bad value `{v}`")),
    }
}

/// Derive the deterministic fault plan for campaign case `case`.
fn plan_for(seed: u64, case: u64, icache_entries: u64) -> FaultPlan {
    let mut rng = Rng::new(seed.wrapping_mul(0x9E37_79B9).wrapping_add(case));
    FaultPlan {
        // Bias strike cycles toward the start of the run so most
        // faults land before the program halts.
        cycle: rng.below(400),
        slot: rng.below(icache_entries) as u32,
        field: nth_field(rng.below(FAULT_SPACE)),
    }
}

/// Run one case: verify parity recovery, then classify unprotected.
///
/// Both phases share the image's predecoded table and the worker's
/// recycled machine buffers — the fault-free reference and the faulted
/// run decode nothing on the steady-state path.
///
/// `Err` means the parity-protected run did NOT reconverge to the
/// fault-free commit stream — a recovery bug.
fn run_case(
    image: &Image,
    table: &Arc<PredecodedImage>,
    plan: FaultPlan,
    max_cycles: u64,
    geometry: PipelineGeometry,
    predictor: HwPredictor,
    bufs: &mut ClassifyBuffers,
) -> Result<CaseClass, String> {
    let protected = SimConfig {
        parity: ParityMode::DetectInvalidate,
        fault_plan: Some(plan),
        max_cycles,
        geometry,
        predictor,
        ..SimConfig::default()
    };
    match classify_fault_pooled(image, protected, Some(table), bufs) {
        Err(_) => return Ok(CaseClass::Skipped),
        Ok(FaultOutcome::Masked) => {}
        Ok(other) => {
            return Err(format!(
                "DetectInvalidate failed to mask the fault (outcome: {})",
                other.name()
            ))
        }
    }
    let unprotected = SimConfig {
        parity: ParityMode::Off,
        ..protected
    };
    match classify_fault_pooled(image, unprotected, Some(table), bufs) {
        Err(_) => Ok(CaseClass::Skipped),
        Ok(outcome) => Ok(CaseClass::Classified(outcome)),
    }
}

/// Render a panic payload as text.
fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("worker panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("worker panicked: {s}")
    } else {
        "worker panicked".into()
    }
}

fn run() -> Result<ExitCode, String> {
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "usage: crisp-fault [--seed N] [--programs N] [--faults N] [--max-blocks N] \
             [--jobs N] [--max-cycles N] [--eu-depth N] [--predictor HW] [--smoke] \
             [--resume FILE] [--report FILE] [--heartbeat SECS]"
        );
        return Ok(ExitCode::SUCCESS);
    }
    let smoke = extract_switch(&mut raw, "--smoke");
    let seed: u64 = parse_num(&mut raw, "--seed", 0)?;
    let default_programs: u64 = if smoke { 2 } else { 8 };
    let default_faults: u64 = if smoke { 32 } else { 64 };
    let programs: u64 = parse_num(&mut raw, "--programs", default_programs)?;
    let faults: u64 = parse_num(&mut raw, "--faults", default_faults)?;
    let max_blocks: usize = parse_num(&mut raw, "--max-blocks", 10)?;
    let max_cycles: u64 = parse_num(&mut raw, "--max-cycles", 200_000)?;
    let eu_depth: usize = parse_num(
        &mut raw,
        "--eu-depth",
        SimConfig::default().geometry.depth(),
    )?;
    let jobs: usize = parse_num(
        &mut raw,
        "--jobs",
        std::thread::available_parallelism().map_or(1, |n| n.get()),
    )?;
    let predictor: HwPredictor = extract_flag(&mut raw, "--predictor")
        .map_err(|e| e.to_string())?
        .map_or(Ok(SimConfig::default().predictor), |v| {
            HwPredictor::parse(&v).map_err(|e| format!("--predictor: bad value `{v}`: {e}"))
        })?;
    let resume_path = extract_flag(&mut raw, "--resume").map_err(|e| e.to_string())?;
    let report_path = extract_flag(&mut raw, "--report").map_err(|e| e.to_string())?;
    let heartbeat_secs: Option<u64> = extract_flag(&mut raw, "--heartbeat")
        .map_err(|e| e.to_string())?
        .map(|v| {
            v.parse()
                .ok()
                .filter(|&n| n > 0)
                .ok_or_else(|| format!("--heartbeat: bad value `{v}` (want seconds >= 1)"))
        })
        .transpose()?;
    if let Some(flag) = raw.first() {
        return Err(format!("unknown flag `{flag}`"));
    }
    if jobs == 0 {
        return Err("--jobs must be at least 1".into());
    }
    if programs == 0 || faults == 0 {
        return Err("--programs and --faults must be at least 1".into());
    }
    if max_cycles == 0 {
        return Err("--max-cycles must be at least 1".into());
    }
    if !(MIN_DEPTH..=MAX_DEPTH).contains(&eu_depth) {
        return Err(format!(
            "--eu-depth: bad value `{eu_depth}` (want {MIN_DEPTH}..={MAX_DEPTH})"
        ));
    }
    let geometry = PipelineGeometry::new(eu_depth);

    // The work list is deterministic in (seed, programs, faults,
    // max_blocks), which is what makes --resume sound: case i always
    // means the same (program, fault plan) pair. Each image is decoded
    // once here; every fault case (and both phases within a case)
    // shares the predecoded table.
    let fold_policy = SimConfig::default().fold_policy;
    let mut images: Vec<(u64, Image, Arc<PredecodedImage>)> = Vec::with_capacity(programs as usize);
    for p in 0..programs {
        let pseed = seed.wrapping_add(p);
        let prog = GenProgram::generate(pseed, max_blocks);
        let image = prog
            .image()
            .map_err(|e| format!("assembling program seed {pseed}: {e}"))?;
        let table = PredecodedImage::shared(&image, fold_policy)
            .map_err(|e| format!("predecoding program seed {pseed}: {e}"))?;
        images.push((pseed, image, table));
    }
    let icache_entries = SimConfig::default().icache_entries as u64;

    let total = programs * faults;
    let cp = match &resume_path {
        Some(path) => {
            let loaded = Checkpoint::load_for_campaign(path, total).map_err(|e| e.to_string())?;
            if let Some(cp) = &loaded {
                println!(
                    "crisp-fault: resuming from {path} ({} / {total} cases done)",
                    cp.completed
                );
            }
            loaded.unwrap_or_default()
        }
        None => Checkpoint::default(),
    };

    println!(
        "crisp-fault: {programs} programs x {faults} faults on {jobs} threads (base seed {seed})"
    );

    let failure: Mutex<Option<Failure>> = Mutex::new(None);
    let io_error: Mutex<Option<String>> = Mutex::new(None);
    // Single self-scheduling queue over the whole campaign: no chunk
    // barriers, and the contiguous-prefix tracker means a saved
    // checkpoint accounts for exactly its first `completed` cases even
    // though cases finish out of order.
    let queue: WorkQueue<Option<String>> = WorkQueue::new(cp.completed, total);
    let save_every = (jobs as u64 * 32).max(64);
    let progress = Mutex::new((cp, 0u64));
    // Campaign telemetry: workers time each case into the monitor; the
    // heartbeat thread (when requested) samples it onto stderr.
    let monitor = Arc::new(CampaignMonitor::new(queue.remaining(), jobs));
    let heartbeat =
        heartbeat_secs.map(|s| Heartbeat::start(Arc::clone(&monitor), Duration::from_secs(s)));
    std::thread::scope(|scope| {
        for w in 0..jobs {
            let (queue, images) = (&queue, &images);
            let (progress, resume_path) = (&progress, &resume_path);
            let (failure, io_error) = (&failure, &io_error);
            let monitor = &monitor;
            scope.spawn(move || {
                // Per-worker machine buffers, recycled across cases.
                let mut bufs = ClassifyBuffers::default();
                while let Some(i) = queue.claim() {
                    let (pseed, image, table) = &images[(i / faults) as usize];
                    let plan = plan_for(seed, i, icache_entries);
                    let case_start = Instant::now();
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        run_case(
                            image, table, plan, max_cycles, geometry, predictor, &mut bufs,
                        )
                    }));
                    monitor.record_case(w, case_start.elapsed());
                    // The checkpoint payload: the outcome key to tally,
                    // or None for a skipped case.
                    let payload = match outcome {
                        Ok(Ok(CaseClass::Classified(o))) => {
                            Some(format!("{}.{}", plan.field.name(), o.name()))
                        }
                        Ok(Ok(CaseClass::Skipped)) => None,
                        Ok(Err(detail)) => {
                            monitor.record_finding();
                            *failure.lock().unwrap() = Some(Failure {
                                program_seed: *pseed,
                                plan,
                                detail,
                            });
                            queue.abort();
                            return;
                        }
                        Err(payload) => {
                            monitor.record_finding();
                            *failure.lock().unwrap() = Some(Failure {
                                program_seed: *pseed,
                                plan,
                                detail: panic_text(payload),
                            });
                            queue.abort();
                            return;
                        }
                    };
                    let drained = queue.complete(i, payload);
                    if drained.payloads.is_empty() {
                        continue;
                    }
                    let (cp, last_saved) = &mut *progress.lock().unwrap();
                    for key in drained.payloads {
                        match key {
                            Some(key) => {
                                cp.tally("verified", 1);
                                cp.tally(&key, 1);
                            }
                            None => cp.tally("skipped", 1),
                        }
                    }
                    cp.completed = drained.completed;
                    if let Some(path) = &resume_path {
                        if drained.completed >= *last_saved + save_every {
                            if let Err(e) = cp.save(path) {
                                *io_error.lock().unwrap() = Some(e.to_string());
                                queue.abort();
                                return;
                            }
                            *last_saved = drained.completed;
                        }
                    }
                }
            });
        }
    });
    if let Some(hb) = heartbeat {
        hb.finish();
    }

    if let Some(msg) = io_error.into_inner().unwrap() {
        return Err(msg);
    }
    let (cp, _) = progress.into_inner().unwrap();
    if let Some(f) = failure.into_inner().unwrap() {
        println!("crisp-fault: FAILURE");
        println!("  program seed : {}", f.program_seed);
        println!(
            "  fault plan   : cycle {} slot {} field {:?}",
            f.plan.cycle, f.plan.slot, f.plan.field
        );
        println!("  detail       : {}", f.detail);
        println!(
            "  reproduce    : crisp-fault --seed {seed} --programs {programs} --faults {faults}"
        );
        return Ok(ExitCode::FAILURE);
    }

    if let Some(path) = &resume_path {
        cp.save(path).map_err(|e| e.to_string())?;
    }
    print_report(&cp, programs, faults, report_path.as_deref())?;
    Ok(ExitCode::SUCCESS)
}

/// Per-field outcome counts pulled back out of the checkpoint tallies.
struct FieldRow {
    field: &'static str,
    counts: [u64; 4],
    total: u64,
    avf: f64,
}

fn field_rows(cp: &Checkpoint) -> Vec<FieldRow> {
    FIELD_NAMES
        .iter()
        .map(|field| {
            let mut counts = [0u64; 4];
            for (slot, outcome) in FaultOutcome::ALL.iter().enumerate() {
                counts[slot] = cp.get(&format!("{field}.{}", outcome.name()));
            }
            let total: u64 = counts.iter().sum();
            // Architectural Vulnerability Factor: the fraction of
            // injected faults that were NOT masked.
            let avf = if total == 0 {
                0.0
            } else {
                1.0 - counts[0] as f64 / total as f64
            };
            FieldRow {
                field,
                counts,
                total,
                avf,
            }
        })
        .collect()
}

fn print_report(
    cp: &Checkpoint,
    programs: u64,
    faults: u64,
    report_path: Option<&str>,
) -> Result<(), String> {
    let rows = field_rows(cp);
    let verified = cp.get("verified");
    let skipped = cp.get("skipped");

    println!("crisp-fault: {verified} faults recovered under DetectInvalidate, {skipped} skipped");
    println!(
        "  {:<10} {:>6} {:>7} {:>5} {:>9} {:>5}   {:>6}",
        "field", "total", "masked", "sdc", "ctrl-div", "hang", "AVF"
    );
    for r in &rows {
        println!(
            "  {:<10} {:>6} {:>7} {:>5} {:>9} {:>5}   {:>6.3}",
            r.field, r.total, r.counts[0], r.counts[1], r.counts[2], r.counts[3], r.avf
        );
    }

    let mut json = format!(
        "{{\"programs\":{programs},\"faults_per_program\":{faults},\"cases\":{},\
         \"verified\":{verified},\"skipped\":{skipped},\"fields\":[",
        cp.completed
    );
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "{{\"field\":\"{}\",\"masked\":{},\"sdc\":{},\"control-divergence\":{},\
             \"hang\":{},\"total\":{},\"avf\":{:.6}}}",
            r.field, r.counts[0], r.counts[1], r.counts[2], r.counts[3], r.total, r.avf
        ));
    }
    json.push_str("]}");

    match report_path {
        Some(path) => {
            std::fs::write(path, &json).map_err(|e| format!("writing {path}: {e}"))?;
            println!("crisp-fault: report written to {path}");
        }
        None => println!("{json}"),
    }
    Ok(())
}

//! `crisp-fault` — whole-front-end fault-injection campaign driver.
//!
//! Generates seeded random programs, injects single-bit transient
//! faults into live front-end state — decoded-cache entries, dynamic
//! predictor tables (BTB tags/counters/valid bits, saturating
//! counters, jump-trace entries) or PDU fold slots — at chosen cycles,
//! and measures the outcome twice per fault:
//!
//! * Under `ParityMode::DetectInvalidate` every injected fault must be
//!   masked — the parity check detects the flip at issue (cache) or at
//!   the fill port (PDU), the entry is invalidated and redecoded, and
//!   the commit stream matches the fault-free reference. Anything else
//!   is a bug in the recovery path and fails the campaign.
//! * Under `ParityMode::Off` each cache/PDU fault is classified as
//!   masked, SDC (silent data corruption), control-flow divergence or
//!   hang, accumulating AVF-style per-field vulnerability statistics.
//!   Predictor-state faults are held to a stricter bar: they may only
//!   ever cost cycles, so a non-masked outcome in *either* phase is an
//!   architectural-safety violation and fails the campaign.
//!
//! ```text
//! crisp-fault [OPTIONS]
//!
//!   --seed N          base seed for the campaign (default 0)
//!   --programs N      generated programs (default 8)
//!   --faults N        faults injected per program (default 64)
//!   --max-blocks N    block budget per generated program (default 10)
//!   --jobs N          worker threads (default: available cores)
//!   --max-cycles N    watchdog budget per run (default 200000)
//!   --eu-depth N      execution-unit depth for every run (2..=8;
//!                     default 3, the paper's IR/OR/RR)
//!   --predictor HW    live hardware predictor for every run (static |
//!                     counterN[xM] | btb[SxW] | jumptrace[N]) —
//!                     recovery must mask faults under any predictor
//!   --target T        front-end structure to strike: cache | btb |
//!                     pdu | all (default cache; btb needs a dynamic
//!                     --predictor)
//!   --engine ENGINE   functional tier for the fault-free reference
//!                     run: threaded (default) or interp. Faulted runs
//!                     always use the cycle engine — the struck state
//!                     only exists there
//!   --batch N         cycle-engine lanes per worker (default 8);
//!                     --batch 1 is the scalar campaign, and any N
//!                     produces byte-identical reports
//!   --smoke           bounded CI run (2 programs x 32 faults)
//!   --resume FILE     checkpoint campaign progress in FILE
//!   --report FILE     write the JSON AVF report to FILE
//!   --heartbeat SECS  emit JSONL campaign snapshots to stderr every
//!                     SECS seconds, plus a final campaign report
//! ```
//!
//! Workers claim cases in `--batch`-sized blocks and run both phases
//! of every case through the lane-parallel batch kernel
//! ([`crisp_sim::MachineBatch`]); the fault-free reference commit log
//! is computed once per program and shared by every case that strikes
//! it. Worker panics are contained per block: the block is re-run case
//! by case on fresh machine buffers and only a case that panics solo
//! is quarantined (recorded, skipped, campaign continues) — a single
//! pathological case can no longer abort a multi-hour campaign. Exit
//! status is 0 when every fault is recovered under parity protection
//! and nothing was quarantined, 1 otherwise.

use std::process::ExitCode;
use std::sync::{Arc, OnceLock};

use crisp_asm::rand_prog::{GenProgram, Rng};
use crisp_asm::Image;
use crisp_cli::campaign::{run_campaign, CampaignSpec, CaseResult};
use crisp_cli::{extract_flag, extract_switch, Checkpoint};
use crisp_sim::{
    classify_batch, fault_reference, nth_field, nth_pdu_field, nth_predictor_field,
    predictor_fault_space, Engine, FaultOutcome, FaultPlan, FaultReference, FaultTarget,
    HwPredictor, MachinePool, ParityMode, PipelineGeometry, PredecodedImage, SimConfig,
    TranslatedImage, FAULT_SPACE, MAX_DEPTH, MIN_DEPTH, PDU_FAULT_SPACE,
};

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("crisp-fault: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// One failed campaign case: the parity recovery missed an injected
/// fault, or a predictor-state fault leaked into architectural state.
struct Failure {
    program_seed: u64,
    plan: FaultPlan,
    detail: String,
}

/// One quarantined case: the worker died twice on it (panic in a
/// block, panic again solo), so the supervisor set it aside and kept
/// the campaign going.
struct Quarantine {
    case: u64,
    program_seed: u64,
    plan: FaultPlan,
    detail: String,
}

fn parse_num<T: std::str::FromStr>(
    raw: &mut Vec<String>,
    name: &str,
    default: T,
) -> Result<T, String> {
    match extract_flag(raw, name).map_err(|e| e.to_string())? {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("{name}: bad value `{v}`")),
    }
}

/// Derive the deterministic fault plan for campaign case `case`. The
/// strike target rotates through `targets` per-case via the same
/// seeded stream that picks the cycle, slot and field, so a resumed
/// campaign replays exactly the plans it would have run uninterrupted.
fn plan_for(
    seed: u64,
    case: u64,
    icache_entries: u64,
    targets: &[FaultTarget],
    predictor: HwPredictor,
) -> FaultPlan {
    let mut rng = Rng::new(seed.wrapping_mul(0x9E37_79B9).wrapping_add(case));
    let target = targets[rng.below(targets.len() as u64) as usize];
    // Bias strike cycles toward the start of the run so most faults
    // land before the program halts.
    let cycle = rng.below(400);
    match target {
        FaultTarget::Cache => FaultPlan {
            cycle,
            slot: rng.below(icache_entries) as u32,
            field: nth_field(rng.below(FAULT_SPACE)),
            target,
        },
        FaultTarget::Predictor => {
            // `targets` only includes Predictor when the configured
            // predictor has state, so the space is nonzero here.
            let space = predictor_fault_space(predictor).max(1);
            let field = nth_predictor_field(predictor, rng.below(space))
                .expect("stateful predictor has a nonzero fault space");
            FaultPlan {
                cycle,
                // The corrupter indexes resident entries modulo
                // occupancy; any slot number is a valid strike point.
                slot: rng.below(1 << 10) as u32,
                field,
                target,
            }
        }
        FaultTarget::Pdu => FaultPlan {
            cycle,
            // Taken modulo the in-flight queue length at fire time;
            // 8 covers the deepest PIR pipeline.
            slot: rng.below(8) as u32,
            field: nth_pdu_field(rng.below(PDU_FAULT_SPACE)),
            target,
        },
    }
}

/// Judge one finished case from its two [`classify_batch`] outcomes.
///
/// `Fail` means the parity-protected run did NOT reconverge to the
/// fault-free commit stream — a recovery bug — or, for predictor-state
/// faults, that the *unprotected* run diverged architecturally, which
/// the predictor contract forbids outright (a wrong prediction may
/// cost cycles, never correctness).
fn case_verdict(
    program_seed: u64,
    plan: FaultPlan,
    protected: FaultOutcome,
    unprotected: FaultOutcome,
) -> CaseResult<Option<String>, Failure> {
    if protected != FaultOutcome::Masked {
        return CaseResult::Fail(Failure {
            program_seed,
            plan,
            detail: format!(
                "DetectInvalidate failed to mask the {} fault (outcome: {})",
                plan.target.name(),
                protected.name()
            ),
        });
    }
    if plan.target == FaultTarget::Predictor && unprotected != FaultOutcome::Masked {
        return CaseResult::Fail(Failure {
            program_seed,
            plan,
            detail: format!(
                "predictor-state fault changed architectural state with parity off \
                 (outcome: {})",
                unprotected.name()
            ),
        });
    }
    CaseResult::Done(Some(format!(
        "{}.{}",
        plan.field.name(),
        unprotected.name()
    )))
}

/// Parse `--target` into the set of structures this campaign strikes.
fn parse_targets(spec: &str, predictor: HwPredictor) -> Result<Vec<FaultTarget>, String> {
    let has_predictor_state = predictor_fault_space(predictor) > 0;
    match spec {
        "cache" => Ok(vec![FaultTarget::Cache]),
        "pdu" => Ok(vec![FaultTarget::Pdu]),
        "btb" => {
            if !has_predictor_state {
                return Err(
                    "--target btb needs a dynamic --predictor (the static bit has no \
                     hardware state to strike)"
                        .into(),
                );
            }
            Ok(vec![FaultTarget::Predictor])
        }
        "all" => {
            let mut targets = vec![FaultTarget::Cache];
            if has_predictor_state {
                targets.push(FaultTarget::Predictor);
            }
            targets.push(FaultTarget::Pdu);
            Ok(targets)
        }
        other => Err(format!(
            "--target: bad value `{other}` (want cache | btb | pdu | all)"
        )),
    }
}

fn run() -> Result<ExitCode, String> {
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "usage: crisp-fault [--seed N] [--programs N] [--faults N] [--max-blocks N] \
             [--jobs N] [--max-cycles N] [--eu-depth N] [--predictor HW] \
             [--target cache|btb|pdu|all] [--engine interp|threaded] [--batch N] [--smoke] \
             [--resume FILE] [--report FILE] [--heartbeat SECS]"
        );
        return Ok(ExitCode::SUCCESS);
    }
    let smoke = extract_switch(&mut raw, "--smoke");
    let seed: u64 = parse_num(&mut raw, "--seed", 0)?;
    let default_programs: u64 = if smoke { 2 } else { 8 };
    let default_faults: u64 = if smoke { 32 } else { 64 };
    let programs: u64 = parse_num(&mut raw, "--programs", default_programs)?;
    let faults: u64 = parse_num(&mut raw, "--faults", default_faults)?;
    let max_blocks: usize = parse_num(&mut raw, "--max-blocks", 10)?;
    let max_cycles: u64 = parse_num(&mut raw, "--max-cycles", 200_000)?;
    let eu_depth: usize = parse_num(
        &mut raw,
        "--eu-depth",
        SimConfig::default().geometry.depth(),
    )?;
    let jobs: usize = parse_num(
        &mut raw,
        "--jobs",
        std::thread::available_parallelism().map_or(1, |n| n.get()),
    )?;
    let batch: u64 = parse_num(&mut raw, "--batch", 8)?;
    let predictor: HwPredictor = extract_flag(&mut raw, "--predictor")
        .map_err(|e| e.to_string())?
        .map_or(Ok(SimConfig::default().predictor), |v| {
            HwPredictor::parse(&v).map_err(|e| format!("--predictor: bad value `{v}`: {e}"))
        })?;
    let target_spec = extract_flag(&mut raw, "--target")
        .map_err(|e| e.to_string())?
        .unwrap_or_else(|| "cache".into());
    let targets = parse_targets(&target_spec, predictor)?;
    // Campaigns default to the threaded tier for the fault-free
    // reference phase; --engine interp keeps the one-entry interpreter.
    let engine = match extract_flag(&mut raw, "--engine").map_err(|e| e.to_string())? {
        Some(name) => Engine::parse(&name)
            .ok_or_else(|| format!("unknown engine `{name}` (interp | threaded)"))?,
        None => Engine::default(),
    };
    let resume_path = extract_flag(&mut raw, "--resume").map_err(|e| e.to_string())?;
    let report_path = extract_flag(&mut raw, "--report").map_err(|e| e.to_string())?;
    let heartbeat_secs: Option<u64> = extract_flag(&mut raw, "--heartbeat")
        .map_err(|e| e.to_string())?
        .map(|v| {
            v.parse()
                .ok()
                .filter(|&n| n > 0)
                .ok_or_else(|| format!("--heartbeat: bad value `{v}` (want seconds >= 1)"))
        })
        .transpose()?;
    if let Some(flag) = raw.first() {
        return Err(format!("unknown flag `{flag}`"));
    }
    if jobs == 0 {
        return Err("--jobs must be at least 1".into());
    }
    if batch == 0 {
        return Err("--batch must be at least 1".into());
    }
    if programs == 0 || faults == 0 {
        return Err("--programs and --faults must be at least 1".into());
    }
    if max_cycles == 0 {
        return Err("--max-cycles must be at least 1".into());
    }
    if !(MIN_DEPTH..=MAX_DEPTH).contains(&eu_depth) {
        return Err(format!(
            "--eu-depth: bad value `{eu_depth}` (want {MIN_DEPTH}..={MAX_DEPTH})"
        ));
    }
    let geometry = PipelineGeometry::new(eu_depth);

    // The work list is deterministic in (seed, programs, faults,
    // max_blocks, targets), which is what makes --resume sound: case i
    // always means the same (program, fault plan) pair. Each image is
    // decoded once here; every fault case (and both phases within a
    // case) shares the predecoded table.
    let fold_policy = SimConfig::default().fold_policy;
    // Translation (when the threaded engine is selected) is likewise
    // hoisted: one superinstruction table per program, shared by every
    // fault case's reference run.
    type CampaignImage = (
        u64,
        Image,
        Arc<PredecodedImage>,
        Option<Arc<TranslatedImage>>,
    );
    let mut images: Vec<CampaignImage> = Vec::with_capacity(programs as usize);
    for p in 0..programs {
        let pseed = seed.wrapping_add(p);
        let prog = GenProgram::generate(pseed, max_blocks);
        let image = prog
            .image()
            .map_err(|e| format!("assembling program seed {pseed}: {e}"))?;
        let table = PredecodedImage::shared(&image, fold_policy)
            .map_err(|e| format!("predecoding program seed {pseed}: {e}"))?;
        let translated = (engine == Engine::Threaded)
            .then(|| Arc::new(TranslatedImage::from_predecoded(Arc::clone(&table))));
        images.push((pseed, image, table, translated));
    }
    let icache_entries = SimConfig::default().icache_entries as u64;
    // The fault-free reference commit log for each program, computed
    // once by whichever worker strikes the program first and shared by
    // every later case (the old scalar driver re-ran the reference
    // twice per case). `None` records that the reference did not halt
    // within the watchdog budget: every case of that program is
    // skipped, exactly as when the per-case reference run hit the
    // limit.
    let references: Vec<OnceLock<Option<Arc<FaultReference>>>> =
        (0..programs).map(|_| OnceLock::new()).collect();

    let total = programs * faults;
    let cp = match &resume_path {
        Some(path) => {
            let loaded = Checkpoint::load_for_campaign(path, total).map_err(|e| e.to_string())?;
            if let Some(cp) = &loaded {
                println!(
                    "crisp-fault: resuming from {path} ({} / {total} cases done)",
                    cp.completed
                );
            }
            loaded.unwrap_or_default()
        }
        None => Checkpoint::default(),
    };

    println!(
        "crisp-fault: {programs} programs x {faults} faults on {jobs} threads \
         (base seed {seed}, target {target_spec}, batch {batch})"
    );

    // Run one claimed block: group its cases by program so each group
    // shares one reference lookup, then push both phases of every case
    // through the lane-parallel batch kernel.
    let run_block = |cases: &[u64], pool: &mut MachinePool| {
        let mut out: Vec<(u64, CaseResult<Option<String>, Failure>)> =
            Vec::with_capacity(cases.len());
        let mut k = 0;
        while k < cases.len() {
            let p = cases[k] / faults;
            let mut end = k + 1;
            while end < cases.len() && cases[end] / faults == p {
                end += 1;
            }
            let group = &cases[k..end];
            k = end;
            let (pseed, image, table, translated) = &images[p as usize];
            let reference = references[p as usize].get_or_init(|| {
                let cfg = SimConfig {
                    max_cycles,
                    geometry,
                    predictor,
                    ..SimConfig::default()
                };
                fault_reference(image, cfg, Some(table), translated.as_ref(), pool)
                    .ok()
                    .map(Arc::new)
            });
            let Some(reference) = reference else {
                out.extend(group.iter().map(|&i| (i, CaseResult::Done(None))));
                continue;
            };
            let mut cfgs = Vec::with_capacity(group.len() * 2);
            let mut plans = Vec::with_capacity(group.len());
            for &i in group {
                let plan = plan_for(seed, i, icache_entries, &targets, predictor);
                let protected = SimConfig {
                    parity: ParityMode::DetectInvalidate,
                    fault_plan: Some(plan),
                    max_cycles,
                    geometry,
                    predictor,
                    ..SimConfig::default()
                };
                cfgs.push(protected);
                cfgs.push(SimConfig {
                    parity: ParityMode::Off,
                    ..protected
                });
                plans.push(plan);
            }
            match classify_batch(image, &cfgs, Some(table), reference, batch as usize, pool) {
                // A load failure is deterministic per program: tally
                // the group skipped, as the scalar classifier did.
                Err(_) => out.extend(group.iter().map(|&i| (i, CaseResult::Done(None)))),
                Ok(outcomes) => {
                    for (j, &i) in group.iter().enumerate() {
                        let verdict =
                            case_verdict(*pseed, plans[j], outcomes[2 * j], outcomes[2 * j + 1]);
                        out.push((i, verdict));
                    }
                }
            }
        }
        out
    };
    let report = run_campaign(
        CampaignSpec {
            total,
            jobs,
            block: batch,
            save_every: (jobs as u64 * 32).max(64),
            resume_path: resume_path.as_ref(),
            heartbeat_secs,
            checkpoint: cp,
        },
        MachinePool::default,
        run_block,
        |cp, key: Option<String>| match key {
            Some(key) => {
                cp.tally("verified", 1);
                cp.tally(&key, 1);
            }
            None => cp.tally("skipped", 1),
        },
        |i, detail| Quarantine {
            case: i,
            program_seed: images[(i / faults) as usize].0,
            plan: plan_for(seed, i, icache_entries, &targets, predictor),
            detail,
        },
    )?;

    let cp = report.checkpoint;
    if let Some(f) = report.failure {
        println!("crisp-fault: FAILURE");
        println!("  program seed : {}", f.program_seed);
        println!(
            "  fault plan   : target {} cycle {} slot {} field {:?}",
            f.plan.target.name(),
            f.plan.cycle,
            f.plan.slot,
            f.plan.field
        );
        println!("  detail       : {}", f.detail);
        println!(
            "  reproduce    : crisp-fault --seed {seed} --programs {programs} --faults {faults} \
             --target {target_spec}"
        );
        return Ok(ExitCode::FAILURE);
    }

    if let Some(path) = &resume_path {
        cp.save(path).map_err(|e| e.to_string())?;
    }
    let quarantined = report.quarantined;
    print_report(&cp, programs, faults, &quarantined, report_path.as_deref())?;
    if !quarantined.is_empty() {
        println!(
            "crisp-fault: {} case(s) quarantined — campaign completed, but the \
             quarantined plans need investigation",
            quarantined.len()
        );
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

/// Every AVF-report row key: the seven decoded-cache entry fields
/// (also the PDU fold-slot fields, which alias `next-pc`/`alt-pc`),
/// then the predictor-state field groups.
const REPORT_FIELDS: [&str; 12] = [
    "next-pc",
    "alt-pc",
    "predict",
    "valid",
    "opcode",
    "operand",
    "tag",
    "btb-tag",
    "btb-counter",
    "btb-valid",
    "counter-bit",
    "jump-trace",
];

/// Per-field outcome counts pulled back out of the checkpoint tallies.
struct FieldRow {
    field: &'static str,
    counts: [u64; 4],
    total: u64,
    avf: f64,
}

fn field_rows(cp: &Checkpoint) -> Vec<FieldRow> {
    REPORT_FIELDS
        .iter()
        .map(|field| {
            let mut counts = [0u64; 4];
            for (slot, outcome) in FaultOutcome::ALL.iter().enumerate() {
                counts[slot] = cp.get(&format!("{field}.{}", outcome.name()));
            }
            let total: u64 = counts.iter().sum();
            // Architectural Vulnerability Factor: the fraction of
            // injected faults that were NOT masked.
            let avf = if total == 0 {
                0.0
            } else {
                1.0 - counts[0] as f64 / total as f64
            };
            FieldRow {
                field,
                counts,
                total,
                avf,
            }
        })
        .collect()
}

fn print_report(
    cp: &Checkpoint,
    programs: u64,
    faults: u64,
    quarantined: &[Quarantine],
    report_path: Option<&str>,
) -> Result<(), String> {
    let rows = field_rows(cp);
    let verified = cp.get("verified");
    let skipped = cp.get("skipped");
    let retries = cp.get("retries");
    let quarantined_total = cp.get("quarantined");

    println!("crisp-fault: {verified} faults recovered under DetectInvalidate, {skipped} skipped");
    if retries > 0 || quarantined_total > 0 {
        println!("  supervisor   : {retries} case(s) retried, {quarantined_total} quarantined");
    }
    println!(
        "  {:<11} {:>6} {:>7} {:>5} {:>9} {:>5}   {:>6}",
        "field", "total", "masked", "sdc", "ctrl-div", "hang", "AVF"
    );
    for r in &rows {
        if r.total == 0 {
            continue;
        }
        println!(
            "  {:<11} {:>6} {:>7} {:>5} {:>9} {:>5}   {:>6.3}",
            r.field, r.total, r.counts[0], r.counts[1], r.counts[2], r.counts[3], r.avf
        );
    }
    for q in quarantined {
        println!(
            "  quarantined  : case {} (seed {}, target {} cycle {} slot {} field {:?}): {}",
            q.case,
            q.program_seed,
            q.plan.target.name(),
            q.plan.cycle,
            q.plan.slot,
            q.plan.field,
            q.detail
        );
    }

    let mut json = format!(
        "{{\"programs\":{programs},\"faults_per_program\":{faults},\"cases\":{},\
         \"verified\":{verified},\"skipped\":{skipped},\"retries\":{retries},\
         \"quarantined\":{quarantined_total},\"fields\":[",
        cp.completed
    );
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "{{\"field\":\"{}\",\"masked\":{},\"sdc\":{},\"control-divergence\":{},\
             \"hang\":{},\"total\":{},\"avf\":{:.6}}}",
            r.field, r.counts[0], r.counts[1], r.counts[2], r.counts[3], r.total, r.avf
        ));
    }
    json.push_str("],\"quarantined_cases\":[");
    for (i, q) in quarantined.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "{{\"case\":{},\"program_seed\":{},\"target\":\"{}\",\"cycle\":{},\
             \"slot\":{},\"field\":\"{}\"}}",
            q.case,
            q.program_seed,
            q.plan.target.name(),
            q.plan.cycle,
            q.plan.slot,
            q.plan.field.name()
        ));
    }
    json.push_str("]}");

    match report_path {
        Some(path) => {
            std::fs::write(path, &json).map_err(|e| format!("writing {path}: {e}"))?;
            println!("crisp-fault: report written to {path}");
        }
        None => println!("{json}"),
    }
    Ok(())
}

//! `crispc` — compile mini-C to CRISP code.
//!
//! ```text
//! crispc [OPTIONS] [FILE]        read FILE (or stdin), print a listing
//!
//!   --emit list|vax|summary      output kind (default: list)
//!   --no-spread                  disable Branch Spreading
//!   --predict MODE               taken | not-taken | btfnt | ftbnt
//!   --fold POLICY                fold policy used for listing markers
//! ```
//!
//! Examples:
//!
//! ```sh
//! echo 'int r; void main(){int i; for(i=0;i<9;i++) r+=i;}' | crispc
//! crispc --emit vax program.c
//! crispc --emit summary --no-spread program.c
//! ```

use std::process::ExitCode;

use crisp_asm::{assemble, listing_of};
use crisp_cc::{compile_crisp_module, compile_vax};
use crisp_cli::{extract_flag, extract_switch, parse_common, read_input};

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("crispc: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.iter().any(|a| a == "--help" || a == "-h") {
        println!("usage: crispc [--emit list|vax|summary] [OPTIONS] [FILE]");
        return Ok(());
    }
    let emit = extract_flag(&mut raw, "--emit")
        .map_err(|e| e.to_string())?
        .unwrap_or("list".into());
    let _ = extract_switch(&mut raw, "--"); // tolerate a bare separator
    let args = parse_common(raw.into_iter()).map_err(|e| e.to_string())?;
    if let Some(flag) = args.rest.first() {
        return Err(format!("unknown flag `{flag}`"));
    }

    let source = read_input(&args.input).map_err(|e| e.to_string())?;

    match emit.as_str() {
        "vax" => {
            let program = compile_vax(&source).map_err(|e| e.to_string())?;
            print!("{}", program.listing());
        }
        "list" => {
            let module = compile_crisp_module(&source, &args.compile).map_err(|e| e.to_string())?;
            let image = assemble(&module).map_err(|e| e.to_string())?;
            let text = listing_of(&image, args.sim.fold_policy)
                .map_err(|(addr, e)| format!("disassembly failed at {addr:#x}: {e}"))?;
            print!("{text}");
        }
        "summary" => {
            let module = compile_crisp_module(&source, &args.compile).map_err(|e| e.to_string())?;
            let image = assemble(&module).map_err(|e| e.to_string())?;
            println!("code bytes    : {}", image.code_bytes());
            println!("parcels       : {}", image.parcels.len());
            println!("data blocks   : {}", image.data.len());
            println!("entry         : {:#06x}", image.entry);
            println!("symbols       :");
            for (name, addr) in &image.symbols {
                if !name.starts_with('.') {
                    println!("  {addr:#06x}  {name}");
                }
            }
        }
        other => return Err(format!("unknown --emit kind `{other}`")),
    }
    Ok(())
}

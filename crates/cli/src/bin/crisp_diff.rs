//! `crisp-diff` — differential co-simulation campaign driver.
//!
//! Generates seeded random programs (assembly-level hard cases plus
//! compiled mini-C), then runs every one in lockstep on the functional
//! and cycle engines across the full fold-policy × cache-size ×
//! predictor sweep. The first divergence is shrunk to a minimal
//! reproducer and printed with a pipeline-timeline excerpt.
//!
//! ```text
//! crisp-diff [OPTIONS]
//!
//!   --seed N          base seed for the campaign (default 0)
//!   --programs N      generated assembly programs (default 1000)
//!   --c-programs N    generated mini-C programs (default 50)
//!   --max-blocks N    block budget per generated program (default 10)
//!   --jobs N          worker threads (default: available cores)
//!   --max-cycles N    watchdog budget per lockstep run (overrides
//!                     every sweep configuration)
//!   --eu-depth N      execution-unit depth for every sweep
//!                     configuration (2..=8; default 3, the paper's
//!                     IR/OR/RR)
//!   --predictor HW    pin every sweep configuration to one live
//!                     hardware predictor (static | counterN[xM] |
//!                     btb[SxW] | jumptrace[N]) instead of sweeping
//!                     all four
//!   --engine ENGINE   functional tier cross-check: threaded (default)
//!                     additionally proves the threaded-code tier
//!                     bit-identical to the interpreter on every
//!                     program (commit streams, final state, traces,
//!                     stats) once per fold policy; interp skips that
//!                     pass
//!   --batch N         cycle-engine lanes per worker (default 8): each
//!                     program's sweep configurations run as parallel
//!                     batch lanes against one shared functional
//!                     reference; --batch 1 is the scalar sweep, and
//!                     any N produces identical output
//!   --smoke           bounded CI run (64 asm + 8 C programs)
//!   --resume FILE     checkpoint campaign progress in FILE
//!   --heartbeat SECS  emit a campaign-telemetry JSONL snapshot to
//!                     stderr every SECS seconds (throughput, worker
//!                     utilization, queue depth, p50/p99 case latency,
//!                     ETA) plus a final campaign report
//!   --inject          demonstrate the oracle: run with the
//!                     skip-OR-squash fault injected, expect it to be
//!                     caught and shrunk
//! ```
//!
//! Worker panics are caught per program, retried once on fresh machine
//! buffers, and quarantined (recorded with the offending seed, skipped,
//! campaign continues) if the retry dies too. Exit status is 0 when
//! every program agrees on every configuration and nothing was
//! quarantined (or when `--inject` catches the planted bug),
//! 1 otherwise.

use std::process::ExitCode;
use std::sync::Arc;

use crisp_asm::rand_prog::{shrink, GenProgram};
use crisp_cc::{compile_crisp, generate_c, CompileOptions, PredictionMode};
use crisp_cli::campaign::{run_campaign, CampaignSpec, CaseResult};
use crisp_cli::{extract_flag, extract_switch, Checkpoint};
use crisp_sim::{
    diff_reference, run_lockstep, run_lockstep_batched, sweep_configs, verify_threaded_pooled,
    Divergence, Engine, FaultInjection, HwPredictor, LockstepBuffers, LockstepOutcome, MachinePool,
    PipelineGeometry, PredecodedImage, SimConfig, TranslatedImage, MAX_DEPTH, MIN_DEPTH,
};

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("crisp-diff: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// One failing (program, configuration) pair from the campaign.
struct Failure {
    program: Program,
    cfg: SimConfig,
    divergence: FailureKind,
}

/// What kind of disagreement ended the campaign.
enum FailureKind {
    /// The functional and cycle engines diverged in lockstep.
    Lockstep(Divergence),
    /// The threaded tier broke bit-identity with the interpreter.
    Threaded(String),
}

/// A campaign work item: either a generated assembly program or a
/// compiled mini-C program (under one compiler-option set).
enum Program {
    Asm(GenProgram),
    C {
        seed: u64,
        source: String,
        opts: CompileOptions,
    },
}

impl Program {
    fn image(&self) -> Result<crisp_asm::Image, String> {
        match self {
            Program::Asm(p) => p.image().map_err(|e| format!("assembling: {e}")),
            Program::C { source, opts, .. } => {
                compile_crisp(source, opts).map_err(|e| format!("compiling: {e}"))
            }
        }
    }

    fn describe(&self) -> String {
        match self {
            Program::Asm(p) => {
                let kinds: Vec<&str> = p
                    .blocks
                    .iter()
                    .zip(&p.enabled)
                    .filter(|(_, e)| **e)
                    .map(|(b, _)| b.kind.name())
                    .collect();
                format!(
                    "asm seed {} ({} iterations; blocks: {})",
                    p.seed,
                    p.iters,
                    kinds.join(", ")
                )
            }
            Program::C { seed, opts, .. } => format!("mini-C seed {seed} under {opts:?}"),
        }
    }

    fn listing(&self) -> String {
        match self {
            Program::Asm(p) => match p.image() {
                Ok(image) => crisp_asm::listing_of(&image, crisp_isa::FoldPolicy::None)
                    .unwrap_or_else(|(pc, e)| format!("<listing stops at {pc:#x}: {e}>")),
                Err(e) => format!("<listing unavailable: {e}>"),
            },
            Program::C { source, .. } => source.clone(),
        }
    }
}

fn parse_num<T: std::str::FromStr>(
    raw: &mut Vec<String>,
    name: &str,
    default: T,
) -> Result<T, String> {
    match extract_flag(raw, name).map_err(|e| e.to_string())? {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("{name}: bad value `{v}`")),
    }
}

fn run() -> Result<ExitCode, String> {
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "usage: crisp-diff [--seed N] [--programs N] [--c-programs N] \
             [--max-blocks N] [--jobs N] [--max-cycles N] [--eu-depth N] \
             [--predictor HW] [--engine interp|threaded] [--batch N] [--smoke] \
             [--resume FILE] [--heartbeat SECS] [--inject]"
        );
        return Ok(ExitCode::SUCCESS);
    }
    let smoke = extract_switch(&mut raw, "--smoke");
    let inject = extract_switch(&mut raw, "--inject");
    let seed: u64 = parse_num(&mut raw, "--seed", 0)?;
    let default_programs: u64 = if smoke { 64 } else { 1000 };
    let default_c: u64 = if smoke { 8 } else { 50 };
    let programs: u64 = parse_num(&mut raw, "--programs", default_programs)?;
    let c_programs: u64 = parse_num(&mut raw, "--c-programs", default_c)?;
    let max_blocks: usize = parse_num(&mut raw, "--max-blocks", 10)?;
    let jobs: usize = parse_num(
        &mut raw,
        "--jobs",
        std::thread::available_parallelism().map_or(1, |n| n.get()),
    )?;
    let batch: u64 = parse_num(&mut raw, "--batch", 8)?;
    let max_cycles: Option<u64> = extract_flag(&mut raw, "--max-cycles")
        .map_err(|e| e.to_string())?
        .map(|v| {
            v.parse()
                .map_err(|_| format!("--max-cycles: bad value `{v}`"))
        })
        .transpose()?;
    let eu_depth: Option<usize> = extract_flag(&mut raw, "--eu-depth")
        .map_err(|e| e.to_string())?
        .map(|v| {
            v.parse()
                .ok()
                .filter(|n| (MIN_DEPTH..=MAX_DEPTH).contains(n))
                .ok_or_else(|| {
                    format!("--eu-depth: bad value `{v}` (want {MIN_DEPTH}..={MAX_DEPTH})")
                })
        })
        .transpose()?;
    let predictor: Option<HwPredictor> = extract_flag(&mut raw, "--predictor")
        .map_err(|e| e.to_string())?
        .map(|v| HwPredictor::parse(&v).map_err(|e| format!("--predictor: bad value `{v}`: {e}")))
        .transpose()?;
    // Campaigns default to the threaded tier: every program then also
    // cross-checks threaded-vs-interpreter bit-identity per fold policy.
    let engine = match extract_flag(&mut raw, "--engine").map_err(|e| e.to_string())? {
        Some(name) => Engine::parse(&name)
            .ok_or_else(|| format!("unknown engine `{name}` (interp | threaded)"))?,
        None => Engine::default(),
    };
    let resume_path = extract_flag(&mut raw, "--resume").map_err(|e| e.to_string())?;
    let heartbeat_secs: Option<u64> = extract_flag(&mut raw, "--heartbeat")
        .map_err(|e| e.to_string())?
        .map(|v| {
            v.parse()
                .ok()
                .filter(|&n| n > 0)
                .ok_or_else(|| format!("--heartbeat: bad value `{v}` (want seconds >= 1)"))
        })
        .transpose()?;
    if let Some(flag) = raw.first() {
        return Err(format!("unknown flag `{flag}`"));
    }
    if jobs == 0 {
        return Err("--jobs must be at least 1".into());
    }
    if batch == 0 {
        return Err("--batch must be at least 1".into());
    }
    if max_cycles == Some(0) {
        return Err("--max-cycles must be at least 1".into());
    }
    let geometry = eu_depth.map(PipelineGeometry::new);

    if inject {
        return demonstrate_injection(seed, max_blocks, geometry);
    }

    // Build the work list up front: sharing `GenProgram`s across
    // threads is cheap and keeps the sweep loop allocation-free.
    let mut work: Vec<Program> = (0..programs)
        .map(|i| Program::Asm(GenProgram::generate(seed.wrapping_add(i), max_blocks)))
        .collect();
    for i in 0..c_programs {
        let c = generate_c(seed.wrapping_add(i));
        for opts in [
            CompileOptions::default(),
            CompileOptions {
                spread: false,
                prediction: PredictionMode::NotTaken,
            },
        ] {
            work.push(Program::C {
                seed: c.seed,
                source: c.source.clone(),
                opts,
            });
        }
    }

    let mut configs = sweep_configs();
    if let Some(mc) = max_cycles {
        for cfg in &mut configs {
            cfg.max_cycles = mc;
        }
    }
    if let Some(geo) = geometry {
        for cfg in &mut configs {
            cfg.geometry = geo;
        }
    }
    if let Some(p) = predictor {
        // Pinning collapses the sweep's predictor dimension; drop the
        // duplicates it leaves behind.
        for cfg in &mut configs {
            cfg.predictor = p;
        }
        configs.dedup();
    }
    let total = work.len() as u64;
    let cp = match &resume_path {
        Some(path) => {
            let loaded = Checkpoint::load_for_campaign(path, total).map_err(|e| e.to_string())?;
            if let Some(cp) = &loaded {
                println!(
                    "crisp-diff: resuming from {path} ({} / {total} programs done)",
                    cp.completed
                );
            }
            loaded.unwrap_or_default()
        }
        None => Checkpoint::default(),
    };

    println!(
        "crisp-diff: {total} programs x {} configurations on {jobs} threads \
         (base seed {seed}, batch {batch})",
        configs.len()
    );

    // One claimed block is one program; its whole configuration sweep
    // runs as batch lanes inside check_program.
    let run_block = |cases: &[u64], state: &mut (LockstepBuffers, MachinePool)| {
        let (bufs, pool) = state;
        cases
            .iter()
            .map(|&i| {
                let program = &work[i as usize];
                let result =
                    match check_program(program, &configs, engine, batch as usize, bufs, pool) {
                        Ok(commits) => CaseResult::Done(commits),
                        Err(CheckFail::Load(msg)) => {
                            CaseResult::Abort(format!("campaign aborted: {msg}"))
                        }
                        Err(CheckFail::Diverge(cfg, d)) => {
                            CaseResult::Fail(shrink_failure(program, cfg, *d))
                        }
                        Err(CheckFail::Threaded(cfg, detail)) => CaseResult::Fail(Failure {
                            program: clone_program(program),
                            cfg,
                            divergence: FailureKind::Threaded(detail),
                        }),
                    };
                (i, result)
            })
            .collect()
    };
    let report = run_campaign(
        CampaignSpec {
            total,
            jobs,
            block: 1,
            save_every: (jobs as u64 * 8).max(32),
            resume_path: resume_path.as_ref(),
            heartbeat_secs,
            checkpoint: cp,
        },
        || (LockstepBuffers::default(), MachinePool::default()),
        run_block,
        |cp, commits| cp.tally("commits", commits),
        |i, what| format!("{}: {what}", work[i as usize].describe()),
    )?;

    let cp = report.checkpoint;
    let quarantined = report.quarantined;
    match report.failure {
        None => {
            if let Some(path) = &resume_path {
                cp.save(path).map_err(|e| e.to_string())?;
            }
            println!(
                "crisp-diff: all agree ({} commits compared)",
                cp.get("commits")
            );
            let retries = cp.get("retries");
            if retries > 0 || !quarantined.is_empty() {
                println!(
                    "crisp-diff: supervisor retried {retries} program(s), quarantined {}",
                    cp.get("quarantined")
                );
            }
            if quarantined.is_empty() {
                Ok(ExitCode::SUCCESS)
            } else {
                for q in &quarantined {
                    println!("  quarantined : {q}");
                }
                Ok(ExitCode::FAILURE)
            }
        }
        Some(f) => {
            print_failure(&f);
            Ok(ExitCode::FAILURE)
        }
    }
}

/// Why one program's configuration sweep stopped.
enum CheckFail {
    /// The program would not assemble/compile or load — a harness bug.
    Load(String),
    /// The engines disagreed under this configuration. Boxed: the
    /// divergence record is large and the happy path returns `Ok(())`.
    Diverge(SimConfig, Box<Divergence>),
    /// The threaded tier and the interpreter disagreed under this
    /// configuration's fold policy.
    Threaded(SimConfig, String),
}

/// Run one program across every sweep configuration, returning the
/// number of compared commits. The sweep is grouped by fold policy:
/// each policy's image is decoded once into a shared
/// [`PredecodedImage`], its functional reference commit log is
/// computed once by [`diff_reference`], and all of the policy's
/// configurations then run as parallel cycle-engine lanes against that
/// log via [`run_lockstep_batched`] (which falls back to the scalar
/// lockstep oracle on any lane that does not cleanly agree, so
/// divergence reports are identical to the scalar sweep's).
fn check_program(
    program: &Program,
    configs: &[SimConfig],
    engine: Engine,
    lanes: usize,
    bufs: &mut LockstepBuffers,
    pool: &mut MachinePool,
) -> Result<u64, CheckFail> {
    let image = program
        .image()
        .map_err(|e| CheckFail::Load(format!("{}: {e}", program.describe())))?;
    let mut commits = 0u64;
    // Translated superinstruction tables are verified once per image x
    // policy, not once per configuration.
    let mut verified: Vec<Arc<TranslatedImage>> = Vec::with_capacity(4);
    let mut idx = 0;
    while idx < configs.len() {
        // The sweep orders configurations policy-major; one contiguous
        // group shares a predecode table and a functional reference.
        let policy = configs[idx].fold_policy;
        let mut end = idx + 1;
        while end < configs.len() && configs[end].fold_policy == policy {
            end += 1;
        }
        let group = &configs[idx..end];
        idx = end;
        let table = PredecodedImage::shared(&image, policy).map_err(|e| {
            CheckFail::Load(format!(
                "{}: predecode failed under {:?}: {e}",
                program.describe(),
                group[0]
            ))
        })?;
        let reference = diff_reference(&image, policy, group[0].max_cycles, Some(&table), pool)
            .map_err(|e| {
                CheckFail::Load(format!(
                    "{}: load failed under {:?}: {e}",
                    program.describe(),
                    group[0]
                ))
            })?;
        let outcomes =
            run_lockstep_batched(&image, group, Some(&table), &reference, lanes, pool, bufs)
                .map_err(|e| {
                    CheckFail::Load(format!(
                        "{}: load failed under {:?}: {e}",
                        program.describe(),
                        group[0]
                    ))
                })?;
        for (cfg, out) in group.iter().zip(outcomes) {
            match out {
                LockstepOutcome::Agree { commits: c, .. } => commits += c,
                LockstepOutcome::Diverge(d) => return Err(CheckFail::Diverge(*cfg, d)),
            }
        }
        // Lockstep co-steps the two engines entry by entry, so the
        // threaded tier (which retires whole blocks) cannot replace the
        // functional side there; instead prove it bit-identical to the
        // interpreter once per fold policy, on pooled machines.
        if engine == Engine::Threaded && !verified.iter().any(|t| t.policy() == policy) {
            let t = Arc::new(TranslatedImage::from_predecoded(table));
            verified.push(Arc::clone(&t));
            match verify_threaded_pooled(&image, &t, group[0].max_cycles, bufs) {
                Ok(None) => {}
                Ok(Some(detail)) => return Err(CheckFail::Threaded(group[0], detail)),
                Err(e) => {
                    return Err(CheckFail::Load(format!(
                        "{}: threaded verify failed under {:?}: {e}",
                        program.describe(),
                        group[0]
                    )))
                }
            }
        }
    }
    Ok(commits)
}

/// Clone a work item for failure reporting.
fn clone_program(program: &Program) -> Program {
    match program {
        Program::Asm(p) => Program::Asm(p.clone()),
        Program::C { seed, source, opts } => Program::C {
            seed: *seed,
            source: source.clone(),
            opts: *opts,
        },
    }
}

/// Shrink a failing assembly program (mini-C failures are reported
/// whole — the compiler path has no block structure to bisect).
fn shrink_failure(program: &Program, cfg: SimConfig, divergence: Divergence) -> Failure {
    let fails = |p: &GenProgram| {
        p.image()
            .ok()
            .and_then(|image| run_lockstep(&image, cfg).ok())
            .is_some_and(|out| !out.is_agree())
    };
    match program {
        Program::Asm(p) => {
            let min = shrink(p.clone(), fails);
            let divergence = min
                .image()
                .ok()
                .and_then(|image| run_lockstep(&image, cfg).ok())
                .and_then(|out| match out {
                    LockstepOutcome::Diverge(d) => Some(*d),
                    LockstepOutcome::Agree { .. } => None,
                })
                .unwrap_or(divergence);
            Failure {
                program: Program::Asm(min),
                cfg,
                divergence: FailureKind::Lockstep(divergence),
            }
        }
        Program::C { seed, source, opts } => Failure {
            program: Program::C {
                seed: *seed,
                source: source.clone(),
                opts: *opts,
            },
            cfg,
            divergence: FailureKind::Lockstep(divergence),
        },
    }
}

fn print_failure(f: &Failure) {
    println!("crisp-diff: DIVERGENCE — minimal reproducer follows");
    println!("  program : {}", f.program.describe());
    println!("  config  : {:?}", f.cfg);
    println!();
    for line in f.program.listing().lines() {
        println!("    {line}");
    }
    println!();
    match &f.divergence {
        FailureKind::Lockstep(d) => println!("{d}"),
        FailureKind::Threaded(detail) => {
            println!("threaded tier diverged from the interpreter: {detail}")
        }
    }
}

/// `--inject`: plant the skip-OR-squash pipeline bug and prove the
/// oracle catches it with a shrunk reproducer.
fn demonstrate_injection(
    seed: u64,
    max_blocks: usize,
    geometry: Option<PipelineGeometry>,
) -> Result<ExitCode, String> {
    let cfg = SimConfig {
        fault: Some(FaultInjection::SkipOrSquash),
        geometry: geometry.unwrap_or_default(),
        ..SimConfig::default()
    };
    let fails = |p: &GenProgram| {
        p.image()
            .ok()
            .and_then(|image| run_lockstep(&image, cfg).ok())
            .is_some_and(|out| !out.is_agree())
    };
    for i in 0..10_000 {
        let prog = GenProgram::generate(seed.wrapping_add(i), max_blocks);
        if !fails(&prog) {
            continue;
        }
        let min = shrink(prog, fails);
        let image = min.image().map_err(|e| e.to_string())?;
        let divergence = match run_lockstep(&image, cfg).map_err(|e| e.to_string())? {
            LockstepOutcome::Diverge(d) => *d,
            LockstepOutcome::Agree { .. } => return Err("shrunk program stopped failing".into()),
        };
        println!("crisp-diff: injected fault caught (skip-OR-squash)");
        print_failure(&Failure {
            program: Program::Asm(min),
            cfg,
            divergence: FailureKind::Lockstep(divergence),
        });
        return Ok(ExitCode::SUCCESS);
    }
    Err("injected fault was never exposed — oracle is blind".into())
}

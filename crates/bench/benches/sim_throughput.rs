//! Simulator throughput: functional vs cycle engine on the Figure 3
//! program, and cycle-engine sensitivity to cache geometry.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use crisp_cc::{compile_crisp, CompileOptions};
use crisp_sim::{CycleSim, FunctionalSim, Machine, SimConfig};
use crisp_workloads::figure3_with_count;

fn bench_engines(c: &mut Criterion) {
    let src = figure3_with_count(256);
    let image = compile_crisp(&src, &CompileOptions::default()).expect("compiles");
    // Program instructions per run, for throughput units.
    let instrs = FunctionalSim::new(Machine::load(&image).unwrap())
        .run()
        .unwrap()
        .stats
        .program_instrs;

    let mut g = c.benchmark_group("sim");
    g.throughput(Throughput::Elements(instrs));
    g.bench_function("functional_figure3_256", |b| {
        b.iter_batched(
            || Machine::load(&image).unwrap(),
            |m| FunctionalSim::new(m).run().unwrap(),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("cycle_figure3_256", |b| {
        b.iter_batched(
            || Machine::load(&image).unwrap(),
            |m| CycleSim::new(m, SimConfig::default()).run().unwrap(),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("cycle_figure3_256_nofold", |b| {
        b.iter_batched(
            || Machine::load(&image).unwrap(),
            |m| CycleSim::new(m, SimConfig::without_folding()).run().unwrap(),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_cache_sizes(c: &mut Criterion) {
    let src = figure3_with_count(128);
    let image = compile_crisp(&src, &CompileOptions::default()).expect("compiles");
    let mut g = c.benchmark_group("cycle_cache");
    for entries in [8usize, 32, 128] {
        g.bench_function(format!("icache_{entries}"), |b| {
            b.iter_batched(
                || Machine::load(&image).unwrap(),
                |m| {
                    CycleSim::new(m, SimConfig { icache_entries: entries, ..Default::default() })
                        .run()
                        .unwrap()
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_engines, bench_cache_sizes);
criterion_main!(benches);

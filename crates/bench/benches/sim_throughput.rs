//! Simulator throughput: functional vs cycle engine on the Figure 3
//! program, the batched (predecoded + pooled-machine) kernel the
//! campaign drivers use, and cycle-engine sensitivity to cache
//! geometry.

use std::sync::Arc;

use crisp_cc::{compile_crisp, CompileOptions};
use crisp_sim::{
    BranchProfiler, CycleSim, EventRing, FunctionalSim, Machine, PredecodedImage, SimConfig,
};
use crisp_workloads::{figure3_large, figure3_with_count, FIGURE3_LARGE_ITERS};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

fn bench_engines(c: &mut Criterion) {
    let src = figure3_with_count(256);
    let image = compile_crisp(&src, &CompileOptions::default()).expect("compiles");
    // Program instructions per run, for throughput units.
    let instrs = FunctionalSim::new(Machine::load(&image).unwrap())
        .run()
        .unwrap()
        .stats
        .program_instrs;

    let mut g = c.benchmark_group("sim");
    g.throughput(Throughput::Elements(instrs));
    g.bench_function("functional_figure3_256", |b| {
        b.iter_batched(
            || Machine::load(&image).unwrap(),
            |m| FunctionalSim::new(m).run().unwrap(),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("cycle_figure3_256", |b| {
        b.iter_batched(
            || Machine::load(&image).unwrap(),
            |m| CycleSim::new(m, SimConfig::default()).run().unwrap(),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("cycle_figure3_256_nofold", |b| {
        b.iter_batched(
            || Machine::load(&image).unwrap(),
            |m| {
                CycleSim::new(m, SimConfig::without_folding())
                    .run()
                    .unwrap()
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

/// Observability overhead guard. `cycle_nullobs` is the default engine —
/// the `NullObserver` path, which must stay within noise (≤2 %) of
/// `cycle_figure3_256` above since `O::ENABLED` guards compile away.
/// `cycle_ring_profiler` measures the real cost of full tracing plus
/// branch-site profiling, for calibrating `--trace`/`--profile` runs.
fn bench_observer_overhead(c: &mut Criterion) {
    let src = figure3_with_count(256);
    let image = compile_crisp(&src, &CompileOptions::default()).expect("compiles");
    let instrs = FunctionalSim::new(Machine::load(&image).unwrap())
        .run()
        .unwrap()
        .stats
        .program_instrs;

    let mut g = c.benchmark_group("observer");
    g.throughput(Throughput::Elements(instrs));
    g.bench_function("cycle_nullobs", |b| {
        b.iter_batched(
            || Machine::load(&image).unwrap(),
            |m| CycleSim::new(m, SimConfig::default()).run().unwrap(),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("cycle_ring_profiler", |b| {
        b.iter_batched(
            || Machine::load(&image).unwrap(),
            |m| {
                let obs = (EventRing::new(1 << 20), BranchProfiler::new());
                CycleSim::with_observer(m, SimConfig::default(), obs)
                    .run_observed()
                    .unwrap()
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

/// The batched campaign kernel: a shared [`PredecodedImage`] replaces
/// per-run demand decode, and a pooled [`Machine`] recycled with
/// `reset_from` replaces a fresh `Machine::load` per case. The
/// `*_fresh` entries are the per-case costs the campaign drivers used
/// to pay; the `*_pooled` entries are what they pay now.
fn bench_batch_kernel(c: &mut Criterion) {
    let src = figure3_large();
    let image = compile_crisp(&src, &CompileOptions::default()).expect("compiles");
    let instrs = FunctionalSim::new(Machine::load(&image).unwrap())
        .run()
        .unwrap()
        .stats
        .program_instrs;
    let policy = SimConfig::default().fold_policy;
    let table = PredecodedImage::shared(&image, policy).expect("predecodes");

    let mut g = c.benchmark_group("batch");
    g.throughput(Throughput::Elements(instrs));
    g.sample_size(20);
    let iters = FIGURE3_LARGE_ITERS;
    g.bench_function(format!("functional_figure3_{iters}_fresh"), |b| {
        b.iter_batched(
            || Machine::load(&image).unwrap(),
            |m| FunctionalSim::with_policy(m, policy).run().unwrap(),
            BatchSize::SmallInput,
        )
    });
    g.bench_function(format!("functional_figure3_{iters}_pooled"), |b| {
        let mut pool: Option<Machine> = None;
        b.iter(|| {
            let mut m = pool
                .take()
                .unwrap_or_else(|| Machine::load(&image).unwrap());
            m.reset_from(&image).unwrap();
            let run = FunctionalSim::with_predecoded(m, Arc::clone(&table))
                .run()
                .unwrap();
            let commits = run.stats.program_instrs;
            pool = Some(run.machine);
            commits
        })
    });
    g.bench_function(format!("cycle_figure3_{iters}_fresh"), |b| {
        b.iter_batched(
            || Machine::load(&image).unwrap(),
            |m| CycleSim::new(m, SimConfig::default()).run().unwrap(),
            BatchSize::SmallInput,
        )
    });
    g.bench_function(format!("cycle_figure3_{iters}_pooled"), |b| {
        let mut pool: Option<Machine> = None;
        b.iter(|| {
            let mut m = pool
                .take()
                .unwrap_or_else(|| Machine::load(&image).unwrap());
            m.reset_from(&image).unwrap();
            let mut sim = CycleSim::new(m, SimConfig::default());
            sim.set_predecoded(Arc::clone(&table));
            let run = sim.run().unwrap();
            let cycles = run.stats.cycles;
            pool = Some(run.machine);
            cycles
        })
    });
    g.finish();
}

fn bench_cache_sizes(c: &mut Criterion) {
    let src = figure3_with_count(128);
    let image = compile_crisp(&src, &CompileOptions::default()).expect("compiles");
    let mut g = c.benchmark_group("cycle_cache");
    for entries in [8usize, 32, 128] {
        g.bench_function(format!("icache_{entries}"), |b| {
            b.iter_batched(
                || Machine::load(&image).unwrap(),
                |m| {
                    CycleSim::new(
                        m,
                        SimConfig {
                            icache_entries: entries,
                            ..Default::default()
                        },
                    )
                    .run()
                    .unwrap()
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_engines,
    bench_observer_overhead,
    bench_batch_kernel,
    bench_cache_sizes
);
criterion_main!(benches);

//! Simulator throughput: functional vs cycle engine on the Figure 3
//! program, and cycle-engine sensitivity to cache geometry.

use crisp_cc::{compile_crisp, CompileOptions};
use crisp_sim::{BranchProfiler, CycleSim, EventRing, FunctionalSim, Machine, SimConfig};
use crisp_workloads::figure3_with_count;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

fn bench_engines(c: &mut Criterion) {
    let src = figure3_with_count(256);
    let image = compile_crisp(&src, &CompileOptions::default()).expect("compiles");
    // Program instructions per run, for throughput units.
    let instrs = FunctionalSim::new(Machine::load(&image).unwrap())
        .run()
        .unwrap()
        .stats
        .program_instrs;

    let mut g = c.benchmark_group("sim");
    g.throughput(Throughput::Elements(instrs));
    g.bench_function("functional_figure3_256", |b| {
        b.iter_batched(
            || Machine::load(&image).unwrap(),
            |m| FunctionalSim::new(m).run().unwrap(),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("cycle_figure3_256", |b| {
        b.iter_batched(
            || Machine::load(&image).unwrap(),
            |m| CycleSim::new(m, SimConfig::default()).run().unwrap(),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("cycle_figure3_256_nofold", |b| {
        b.iter_batched(
            || Machine::load(&image).unwrap(),
            |m| {
                CycleSim::new(m, SimConfig::without_folding())
                    .run()
                    .unwrap()
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

/// Observability overhead guard. `cycle_nullobs` is the default engine —
/// the `NullObserver` path, which must stay within noise (≤2 %) of
/// `cycle_figure3_256` above since `O::ENABLED` guards compile away.
/// `cycle_ring_profiler` measures the real cost of full tracing plus
/// branch-site profiling, for calibrating `--trace`/`--profile` runs.
fn bench_observer_overhead(c: &mut Criterion) {
    let src = figure3_with_count(256);
    let image = compile_crisp(&src, &CompileOptions::default()).expect("compiles");
    let instrs = FunctionalSim::new(Machine::load(&image).unwrap())
        .run()
        .unwrap()
        .stats
        .program_instrs;

    let mut g = c.benchmark_group("observer");
    g.throughput(Throughput::Elements(instrs));
    g.bench_function("cycle_nullobs", |b| {
        b.iter_batched(
            || Machine::load(&image).unwrap(),
            |m| CycleSim::new(m, SimConfig::default()).run().unwrap(),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("cycle_ring_profiler", |b| {
        b.iter_batched(
            || Machine::load(&image).unwrap(),
            |m| {
                let obs = (EventRing::new(1 << 20), BranchProfiler::new());
                CycleSim::with_observer(m, SimConfig::default(), obs)
                    .run_observed()
                    .unwrap()
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_cache_sizes(c: &mut Criterion) {
    let src = figure3_with_count(128);
    let image = compile_crisp(&src, &CompileOptions::default()).expect("compiles");
    let mut g = c.benchmark_group("cycle_cache");
    for entries in [8usize, 32, 128] {
        g.bench_function(format!("icache_{entries}"), |b| {
            b.iter_batched(
                || Machine::load(&image).unwrap(),
                |m| {
                    CycleSim::new(
                        m,
                        SimConfig {
                            icache_entries: entries,
                            ..Default::default()
                        },
                    )
                    .run()
                    .unwrap()
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_engines,
    bench_observer_overhead,
    bench_cache_sizes
);
criterion_main!(benches);

//! End-to-end table regeneration as Criterion benchmarks, so
//! `cargo bench` exercises every experiment path (smaller loop counts
//! keep wall-clock reasonable; the `table*` binaries print the
//! full-scale numbers).

use crisp_bench::{ablation_fold_policy, ablation_icache, table2, table3, table4_with_count};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("tables");
    g.sample_size(10);
    g.bench_function("table2", |b| b.iter(table2));
    g.bench_function("table3", |b| b.iter(table3));
    g.bench_function("table4_n128", |b| b.iter(|| table4_with_count(128)));
    g.bench_function("ablation_icache", |b| {
        b.iter(|| ablation_icache(&[8, 32, 128], 128))
    });
    g.bench_function("ablation_fold", |b| b.iter(|| ablation_fold_policy(128)));
    g.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);

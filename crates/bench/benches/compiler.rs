//! Compiler and encoder throughput.

use crisp_cc::{compile_crisp, CompileOptions, PredictionMode};
use crisp_isa::{encoding, BinOp, Cond, Instr, Operand};
use crisp_workloads::{DHRY_SOURCE, FIGURE3_SOURCE};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_compile(c: &mut Criterion) {
    let mut g = c.benchmark_group("compile");
    for (name, src) in [("figure3", FIGURE3_SOURCE), ("dhry", DHRY_SOURCE)] {
        g.bench_function(format!("{name}_spread"), |b| {
            b.iter(|| compile_crisp(src, &CompileOptions::default()).unwrap())
        });
        g.bench_function(format!("{name}_plain"), |b| {
            b.iter(|| {
                compile_crisp(
                    src,
                    &CompileOptions {
                        spread: false,
                        prediction: PredictionMode::NotTaken,
                    },
                )
                .unwrap()
            })
        });
    }
    g.finish();
}

fn bench_encoding(c: &mut Criterion) {
    let instrs: Vec<Instr> = vec![
        Instr::Op2 {
            op: BinOp::Add,
            dst: Operand::SpOff(0),
            src: Operand::SpOff(4),
        },
        Instr::Op2 {
            op: BinOp::Mov,
            dst: Operand::Abs(0x10000),
            src: Operand::Imm(123_456),
        },
        Instr::Op3 {
            op: BinOp::And,
            a: Operand::SpOff(4),
            b: Operand::Imm(1),
        },
        Instr::Cmp {
            cond: Cond::LtS,
            a: Operand::SpOff(4),
            b: Operand::Imm(1024),
        },
        Instr::IfJmp {
            on_true: true,
            predict_taken: true,
            target: crisp_isa::BranchTarget::PcRel(-16),
        },
        Instr::Enter { bytes: 32 },
    ];
    let encoded: Vec<u16> = instrs
        .iter()
        .flat_map(|i| encoding::encode(i).unwrap())
        .collect();

    let mut g = c.benchmark_group("encoding");
    g.throughput(Throughput::Elements(instrs.len() as u64));
    g.bench_function("encode6", |b| {
        b.iter(|| {
            for i in &instrs {
                criterion::black_box(encoding::encode(i).unwrap());
            }
        })
    });
    g.bench_function("decode6", |b| {
        b.iter(|| {
            let mut at = 0;
            while at < encoded.len() {
                let (i, len) = encoding::decode(&encoded, at).unwrap();
                criterion::black_box(i);
                at += len;
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench_compile, bench_encoding);
criterion_main!(benches);

//! Predictor-model throughput over a real workload trace.

use crisp_bench::trace_of;
use crisp_predict::{evaluate_dynamic, evaluate_static_optimal, Btb, BtbConfig, JumpTrace};
use crisp_workloads::TROFF_PROXY_SOURCE;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_predictors(c: &mut Criterion) {
    let trace = trace_of(TROFF_PROXY_SOURCE);
    let mut g = c.benchmark_group("predict");
    g.throughput(Throughput::Elements(trace.len() as u64));
    g.bench_function("static_optimal", |b| {
        b.iter(|| evaluate_static_optimal(&trace))
    });
    for bits in [1u8, 2, 3] {
        g.bench_function(format!("dynamic_{bits}bit"), |b| {
            b.iter(|| evaluate_dynamic(&trace, bits))
        });
    }
    g.bench_function("btb_128x4", |b| {
        b.iter(|| Btb::new(BtbConfig::default()).evaluate(&trace))
    });
    g.bench_function("jump_trace_8", |b| {
        b.iter(|| JumpTrace::new(JumpTrace::MU5_ENTRIES).evaluate(&trace))
    });
    g.finish();
}

criterion_group!(benches, bench_predictors);
criterion_main!(benches);

//! Machine-readable simulator-throughput measurement with a regression
//! gate.
//!
//! Runs the hot-path simulation kernels (fresh-load vs the batched
//! pooled-machine + shared-predecode variants the campaign drivers
//! use) on the Figure 3 workload, and writes the minima to a JSON
//! report — the committed copy at the repo root (`BENCH_sim.json`) is
//! the throughput baseline CI guards against.
//!
//! ```text
//! bench_sim [--out FILE] [--reduced] [--passes N] [--check BASELINE] [--tolerance PCT]
//! ```
//!
//! * `--out FILE`      write the JSON report there (default `BENCH_sim.json`)
//! * `--reduced`       fewer samples; the CI smoke mode
//! * `--passes N`      run the whole suite N times spread over time and
//!   keep per-benchmark minima — use `--passes 4` when regenerating the
//!   committed baseline so it records fast-window numbers
//! * `--check FILE`    after measuring, compare each benchmark against
//!   the named baseline report and exit non-zero if any is more than
//!   `--tolerance` percent slower (default 15)
//!
//! Timings are the *minimum* wall-clock time over repeated
//! whole-program runs: interference only ever adds time, so the
//! minimum is the stable estimator of the true cost on a shared
//! machine — medians were observed to swing by tens of percent between
//! invocations on busy hosts.
//!
//! Two further defences make `--check` reliable on virtualised hosts,
//! where the effective core speed was observed to flip between a fast
//! and a ~35%-slower state for seconds at a time (hypervisor/neighbour
//! effects invisible to the guest — thread CPU time tracked wall time
//! to 0.1%, so this is not preemption, and no in-process calibration
//! kernel tracked it):
//!
//! * a fixed calibration kernel is timed into every report, and
//!   `--check` scales the baseline by the calibration ratio — this
//!   normalises *hardware* differences (a permanently slower CI
//!   runner) where kernel and simulator scale together;
//! * a failed check re-measures with sleeps in between, folding each
//!   pass into the running minima, until it passes or the attempt
//!   budget is exhausted — this rides out *transient* slow windows.
//!   The gate can only false-fail, never false-pass: a real >tolerance
//!   code regression stays over tolerance in every window, fast or
//!   slow, so no amount of retrying launders it.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use crisp_asm::Image;
use crisp_cc::{compile_crisp, CompileOptions};
use crisp_sim::{
    classify_batch, fault_reference, nth_field, CommitLog, CycleSim, FaultOutcome, FaultPlan,
    FaultTarget, FunctionalSim, HaltReason, Machine, MachinePool, ParityMode, PredecodedImage,
    SimConfig, SimError, ThreadedSim, TranslatedImage, FAULT_SPACE,
};
use crisp_workloads::{
    campaign_workloads, dispatch_workload, figure3_large, figure3_with_count, FIGURE3_LARGE_ITERS,
};

/// Seed-commit medians (ns per run, `cargo bench` on the reference
/// host) for the benchmarks that existed before the batch kernel.
/// `speedup_vs_seed` in the report is computed against these.
const SEED_FUNCTIONAL_256_NS: u64 = 153_135;
const SEED_CYCLE_256_NS: u64 = 91_896;

/// Attempt budget for `--check`: total measurement passes before an
/// over-tolerance result is declared a real regression. Slow host
/// windows observed on shared VMs last seconds to a few tens of
/// seconds; ten passes spaced [`RETRY_SLEEP_MS`] apart span about a
/// minute, comfortably past the windows observed in practice. The
/// typical (quiet-host) cost is one pass.
const CHECK_ATTEMPTS: u32 = 10;
const RETRY_SLEEP_MS: u64 = 4_000;

struct Measured {
    name: &'static str,
    ns_per_run: u64,
    elements: u64,
}

impl Measured {
    fn melems_per_s(&self) -> f64 {
        if self.ns_per_run == 0 {
            return 0.0;
        }
        self.elements as f64 * 1e3 / self.ns_per_run as f64
    }
}

/// Host-speed probe: a fixed deterministic integer/memory kernel of
/// the same character as the simulator hot loops (xorshift arithmetic,
/// data-dependent branches, loads and stores over a 64 KiB working
/// set). Its minimum wall-clock time tracks how fast this host runs
/// *this kind of code* right now; `--check` uses the ratio against the
/// baseline's recorded value to compare like with like across hosts
/// and across frequency-scaling states.
fn calibrate() -> u64 {
    const WORDS: usize = 16 * 1024;
    let mut arr = vec![0u32; WORDS];
    let mut sink = 0u32;
    let mut best = u64::MAX;
    for _ in 0..9 {
        let t0 = Instant::now();
        let mut x = 0x1234_5678u32;
        for _ in 0..400_000u32 {
            x ^= x << 13;
            x ^= x >> 17;
            x ^= x << 5;
            let idx = (x as usize) % WORDS;
            let v = arr[idx].wrapping_add(x);
            arr[idx] = v;
            if v & 1 == 0 {
                sink = sink.wrapping_add(v);
            } else {
                sink ^= v.rotate_left(7);
            }
        }
        best = best.min(t0.elapsed().as_nanos() as u64);
    }
    std::hint::black_box(sink);
    best
}

/// Minimum wall-clock ns over `samples` single runs of `body` (which
/// returns the element count of one run), after `warmup` unmeasured
/// runs.
fn measure(
    name: &'static str,
    warmup: usize,
    samples: usize,
    mut body: impl FnMut() -> u64,
) -> Measured {
    let mut elements = 0;
    for _ in 0..warmup {
        elements = body();
    }
    let mut best = u64::MAX;
    for _ in 0..samples {
        let t0 = Instant::now();
        elements = body();
        best = best.min(t0.elapsed().as_nanos() as u64);
    }
    Measured {
        name,
        ns_per_run: best,
        elements,
    }
}

fn run_suite(reduced: bool) -> Vec<Measured> {
    // Single runs cost tens of microseconds, so samples are nearly
    // free: take plenty, spanning enough wall-clock that a transient
    // slowdown (post-build thermal throttle, a noisy neighbour burst)
    // cannot inflate every sample of a benchmark.
    let (warmup, samples) = if reduced { (2, 51) } else { (3, 201) };

    let small = compile_crisp(&figure3_with_count(256), &CompileOptions::default())
        .expect("figure 3 compiles");
    let large =
        compile_crisp(&figure3_large(), &CompileOptions::default()).expect("figure 3 compiles");
    let dispatch = compile_crisp(dispatch_workload().source, &CompileOptions::default())
        .expect("dispatch compiles");
    let policy = SimConfig::default().fold_policy;
    let small_table = PredecodedImage::shared(&small, policy).expect("predecodes");
    let large_table = PredecodedImage::shared(&large, policy).expect("predecodes");
    let dispatch_table = PredecodedImage::shared(&dispatch, policy).expect("predecodes");
    // Superinstruction tables for the threaded tier, hoisted exactly as
    // the campaign drivers hoist them: translated once, shared by every
    // pooled run.
    let small_threaded = Arc::new(TranslatedImage::from_predecoded(Arc::clone(&small_table)));
    let large_threaded = Arc::new(TranslatedImage::from_predecoded(Arc::clone(&large_table)));
    let dispatch_threaded = Arc::new(TranslatedImage::from_predecoded(Arc::clone(
        &dispatch_table,
    )));

    let mut out = Vec::new();

    out.push(measure(
        "functional_figure3_256_fresh",
        warmup,
        samples,
        || {
            FunctionalSim::with_policy(Machine::load(&small).unwrap(), policy)
                .run()
                .unwrap()
                .stats
                .program_instrs
        },
    ));
    let mut pool: Option<Machine> = None;
    out.push(measure(
        "functional_figure3_256_pooled",
        warmup,
        samples,
        || {
            let mut m = pool
                .take()
                .unwrap_or_else(|| Machine::load(&small).unwrap());
            m.reset_from(&small).unwrap();
            let run = FunctionalSim::with_predecoded(m, Arc::clone(&small_table))
                .run()
                .unwrap();
            let n = run.stats.program_instrs;
            pool = Some(run.machine);
            n
        },
    ));

    let mut pool: Option<Machine> = None;
    out.push(measure(
        "functional_threaded_figure3_256_pooled",
        warmup,
        samples,
        || {
            let mut m = pool
                .take()
                .unwrap_or_else(|| Machine::load(&small).unwrap());
            m.reset_from(&small).unwrap();
            let run = ThreadedSim::with_translated(m, Arc::clone(&small_threaded))
                .run()
                .unwrap();
            let n = run.stats.program_instrs;
            pool = Some(run.machine);
            n
        },
    ));

    out.push(measure("cycle_figure3_256_fresh", warmup, samples, || {
        CycleSim::new(Machine::load(&small).unwrap(), SimConfig::default())
            .run()
            .unwrap()
            .stats
            .program_instrs
    }));
    let mut pool: Option<Machine> = None;
    out.push(measure("cycle_figure3_256_pooled", warmup, samples, || {
        let mut m = pool
            .take()
            .unwrap_or_else(|| Machine::load(&small).unwrap());
        m.reset_from(&small).unwrap();
        let mut sim = CycleSim::new(m, SimConfig::default());
        sim.set_predecoded(Arc::clone(&small_table));
        let run = sim.run().unwrap();
        let n = run.stats.program_instrs;
        pool = Some(run.machine);
        n
    }));

    // The large workload amortises per-run setup away entirely; only
    // the pooled variants run it (the fresh/pooled split is already
    // covered above, and the long runs dominate CI time).
    let (lwarm, lsamples) = if reduced { (1, 9) } else { (2, 31) };
    let mut pool: Option<Machine> = None;
    out.push(measure(
        "functional_figure3_large_pooled",
        lwarm,
        lsamples,
        || {
            let mut m = pool
                .take()
                .unwrap_or_else(|| Machine::load(&large).unwrap());
            m.reset_from(&large).unwrap();
            let run = FunctionalSim::with_predecoded(m, Arc::clone(&large_table))
                .run()
                .unwrap();
            let n = run.stats.program_instrs;
            pool = Some(run.machine);
            n
        },
    ));
    let mut pool: Option<Machine> = None;
    out.push(measure(
        "functional_threaded_figure3_large_pooled",
        lwarm,
        lsamples,
        || {
            let mut m = pool
                .take()
                .unwrap_or_else(|| Machine::load(&large).unwrap());
            m.reset_from(&large).unwrap();
            let run = ThreadedSim::with_translated(m, Arc::clone(&large_threaded))
                .run()
                .unwrap();
            let n = run.stats.program_instrs;
            pool = Some(run.machine);
            n
        },
    ));
    // The dispatch-loop workload is branchy, indirect-jump-heavy code —
    // the threaded tier's worst case (three and a half thousand deopt
    // falls to the interpreter per run). Benchmarked under both engines
    // so the gate guards the deopt/rejoin path, not just straight-line
    // superblocks.
    let mut pool: Option<Machine> = None;
    out.push(measure(
        "functional_dispatch_pooled",
        lwarm,
        lsamples,
        || {
            let mut m = pool
                .take()
                .unwrap_or_else(|| Machine::load(&dispatch).unwrap());
            m.reset_from(&dispatch).unwrap();
            let run = FunctionalSim::with_predecoded(m, Arc::clone(&dispatch_table))
                .run()
                .unwrap();
            let n = run.stats.program_instrs;
            pool = Some(run.machine);
            n
        },
    ));
    let mut pool: Option<Machine> = None;
    out.push(measure(
        "functional_threaded_dispatch_pooled",
        lwarm,
        lsamples,
        || {
            let mut m = pool
                .take()
                .unwrap_or_else(|| Machine::load(&dispatch).unwrap());
            m.reset_from(&dispatch).unwrap();
            let run = ThreadedSim::with_translated(m, Arc::clone(&dispatch_threaded))
                .run()
                .unwrap();
            let n = run.stats.program_instrs;
            pool = Some(run.machine);
            n
        },
    ));
    let mut pool: Option<Machine> = None;
    out.push(measure(
        "cycle_figure3_large_pooled",
        lwarm,
        lsamples,
        || {
            let mut m = pool
                .take()
                .unwrap_or_else(|| Machine::load(&large).unwrap());
            m.reset_from(&large).unwrap();
            let mut sim = CycleSim::new(m, SimConfig::default());
            sim.set_predecoded(Arc::clone(&large_table));
            let run = sim.run().unwrap();
            let n = run.stats.program_instrs;
            pool = Some(run.machine);
            n
        },
    ));

    // Campaign kernel: the fault-classification loop that dominates
    // `crisp-fault` wall-clock, measured in both shapes over the
    // branch-diverse campaign workloads (sort + fsm). `percase` is the
    // pre-batch drivers' loop, reproduced exactly — every case pays a
    // full functional reference run plus a full cycle-engine faulted
    // run, compared post hoc. `batched8` hoists one shared reference
    // per program and steps the faulted runs through the 8-lane batch
    // with first-divergent-commit ejection and parity settling, exactly
    // as `crisp-fault --batch 8` does. The ratio between the two is the
    // report's campaign speedup headline.
    let base = SimConfig {
        max_cycles: 400_000,
        ..SimConfig::default()
    };
    let campaign: Vec<(Image, Arc<PredecodedImage>, Vec<SimConfig>)> = campaign_workloads()
        .iter()
        .map(|w| {
            let image = compile_crisp(w.source, &CompileOptions::default())
                .unwrap_or_else(|e| panic!("{} compiles: {e:?}", w.name));
            let table = PredecodedImage::shared(&image, base.fold_policy).expect("predecodes");
            let cfgs = campaign_fault_cases(&image, base);
            (image, table, cfgs)
        })
        .collect();
    let (cwarm, csamples) = if reduced { (1, 5) } else { (1, 15) };
    let mut pool = MachinePool::default();
    out.push(measure("campaign_fault_percase", cwarm, csamples, || {
        let mut n = 0;
        for (image, table, cfgs) in &campaign {
            for cfg in cfgs {
                std::hint::black_box(classify_percase(image, *cfg, table, &mut pool));
                n += 1;
            }
        }
        n
    }));
    let mut pool = MachinePool::default();
    out.push(measure("campaign_fault_batched8", cwarm, csamples, || {
        let mut n = 0;
        for (image, table, cfgs) in &campaign {
            let reference = fault_reference(image, base, Some(table), None, &mut pool)
                .expect("campaign workloads run");
            let outcomes = classify_batch(image, cfgs, Some(table), &reference, 8, &mut pool)
                .expect("campaign workloads classify");
            n += std::hint::black_box(outcomes.len() as u64);
            pool.put(reference.into_machine());
        }
        n
    }));

    out
}

/// The fault-campaign case block the `campaign_fault_*` benchmarks
/// classify: sixteen cache-fault plans per program that actually land,
/// each classified under parity protection and again unprotected — the
/// same protected/unprotected pairing `crisp-fault` runs per case.
///
/// The plans come from a deterministic pre-pass that keeps candidates
/// whose fault is injected into live decoded state and caught by the
/// parity check under protection. A plan that misses (the slot was
/// empty at the strike cycle, or refilled before its next read) is
/// trivially masked in every kernel shape and would measure nothing but
/// the reference run, so the block samples the campaign's armed cases —
/// the ones classification actually spends its time on.
fn campaign_fault_cases(image: &Image, base: SimConfig) -> Vec<SimConfig> {
    let mut cfgs = Vec::new();
    let mut k = 0u64;
    while cfgs.len() < 32 {
        assert!(k < 256, "armed-fault search space exhausted");
        let plan = FaultPlan {
            cycle: 50 + k.wrapping_mul(0x9E37_79B9) % 2000,
            slot: (k % 8) as u32,
            field: nth_field(k.wrapping_mul(13) % FAULT_SPACE),
            target: FaultTarget::Cache,
        };
        k += 1;
        let protected = SimConfig {
            parity: ParityMode::DetectInvalidate,
            fault_plan: Some(plan),
            ..base
        };
        let probe = CycleSim::new(Machine::load(image).expect("workload loads"), protected)
            .run()
            .expect("protected campaign run completes");
        if probe.stats.faults_injected == 0 || probe.stats.parity_invalidates == 0 {
            continue;
        }
        cfgs.push(protected);
        cfgs.push(SimConfig {
            parity: ParityMode::Off,
            ..protected
        });
    }
    cfgs
}

/// The pre-batch scalar fault classifier, reproduced exactly as the
/// campaign drivers ran it before the batched kernel: a full
/// functional reference run and a full cycle-engine faulted run per
/// case (no reference sharing, no early ejection), compared record by
/// record after the fact. The "before" arm of the campaign headline.
fn classify_percase(
    image: &Image,
    cfg: SimConfig,
    table: &Arc<PredecodedImage>,
    pool: &mut MachinePool,
) -> FaultOutcome {
    let machine = pool.take(image).expect("campaign workload loads");
    let mut ref_log = CommitLog::default();
    let reference = FunctionalSim::with_predecoded(machine, Arc::clone(table))
        .max_steps(cfg.max_cycles)
        .run_observed(&mut ref_log)
        .expect("campaign reference runs");
    assert_eq!(reference.halt_reason, HaltReason::Halted, "reference halts");
    let mut sim = CycleSim::with_observer(
        pool.take(image).expect("campaign workload loads"),
        cfg,
        CommitLog::default(),
    );
    sim.set_predecoded(Arc::clone(table));
    let (run, log) = match sim.run_observed() {
        Ok(pair) => pair,
        Err(e) => {
            pool.put(reference.machine);
            return match e {
                SimError::Decode { .. } => FaultOutcome::ControlDivergence,
                _ => FaultOutcome::Sdc,
            };
        }
    };
    let outcome = (|| {
        let shared = ref_log.records.len().min(log.records.len());
        for i in 0..shared {
            let (r, f) = (&ref_log.records[i], &log.records[i]);
            if r != f {
                return if r.pc != f.pc
                    || r.next_pc != f.next_pc
                    || r.branch_pc != f.branch_pc
                    || r.folded != f.folded
                    || r.taken != f.taken
                    || r.halted != f.halted
                {
                    FaultOutcome::ControlDivergence
                } else {
                    FaultOutcome::Sdc
                };
            }
        }
        if run.halt_reason == HaltReason::Watchdog {
            return FaultOutcome::Hang;
        }
        if ref_log.records.len() != log.records.len() {
            return FaultOutcome::ControlDivergence;
        }
        let (fm, cm) = (&reference.machine, &run.machine);
        if fm.accum != cm.accum || fm.sp != cm.sp || fm.psw.flag != cm.psw.flag || fm.mem != cm.mem
        {
            return FaultOutcome::Sdc;
        }
        FaultOutcome::Masked
    })();
    pool.put(reference.machine);
    pool.put(run.machine);
    outcome
}

/// One deterministic instrumented run of the large workload: the
/// top-down cycle accounting the throughput numbers decompose into.
/// Recorded alongside the timings so a throughput regression can be
/// read against where the simulated cycles actually went. The leading
/// key is deliberately not `name` — [`parse_results`] scans for
/// `{"name":"` and must not pick this object up as a benchmark.
fn cpi_breakdown() -> String {
    let large =
        compile_crisp(&figure3_large(), &CompileOptions::default()).expect("figure 3 compiles");
    let run = CycleSim::new(Machine::load(&large).unwrap(), SimConfig::default())
        .run()
        .expect("figure 3 runs");
    format!(
        "{{\"workload\":\"cycle_figure3_large\",\"cycles\":{},\"program_instrs\":{},\"accounts\":{}}}",
        run.stats.cycles,
        run.stats.program_instrs,
        run.stats.accounts.json()
    )
}

fn ns_of<'a>(results: &'a [Measured], name: &str) -> Option<&'a Measured> {
    results.iter().find(|m| m.name == name)
}

/// Fold a fresh suite pass into running per-benchmark minima.
fn merge_minima(results: &mut [Measured], fresh: &[Measured]) {
    for m in results {
        if let Some(f) = fresh.iter().find(|f| f.name == m.name) {
            m.ns_per_run = m.ns_per_run.min(f.ns_per_run);
        }
    }
}

fn render_report(
    results: &[Measured],
    reduced: bool,
    calibration_ns: u64,
    cpi_breakdown: &str,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"crisp-bench-sim/1\",\n");
    s.push_str(&format!("  \"reduced\": {reduced},\n"));
    s.push_str(&format!("  \"calibration_ns\": {calibration_ns},\n"));
    s.push_str(&format!(
        "  \"workloads\": {{\"small_iters\": 256, \"large_iters\": {FIGURE3_LARGE_ITERS}}},\n"
    ));
    s.push_str(&format!("  \"cpi_breakdown\": {cpi_breakdown},\n"));
    s.push_str("  \"results\": [\n");
    for (i, m) in results.iter().enumerate() {
        let sep = if i + 1 == results.len() { "" } else { "," };
        s.push_str(&format!(
            "    {{\"name\":\"{}\",\"ns_per_run\":{},\"elements\":{},\"melems_per_s\":{:.2}}}{sep}\n",
            m.name,
            m.ns_per_run,
            m.elements,
            m.melems_per_s()
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&format!(
        "  \"seed_baseline_ns\": {{\"functional_figure3_256\": {SEED_FUNCTIONAL_256_NS}, \"cycle_figure3_256\": {SEED_CYCLE_256_NS}}},\n"
    ));
    let f = ns_of(results, "functional_figure3_256_pooled")
        .map(|m| SEED_FUNCTIONAL_256_NS as f64 / m.ns_per_run as f64)
        .unwrap_or(0.0);
    let c = ns_of(results, "cycle_figure3_256_pooled")
        .map(|m| SEED_CYCLE_256_NS as f64 / m.ns_per_run as f64)
        .unwrap_or(0.0);
    s.push_str(&format!(
        "  \"speedup_vs_seed\": {{\"functional\": {f:.2}, \"cycle\": {c:.2}}},\n"
    ));
    // The headline tentpole ratio: interpreter vs threaded tier on the
    // same workload, same host window, same calibration.
    let t = match (
        ns_of(results, "functional_figure3_large_pooled"),
        ns_of(results, "functional_threaded_figure3_large_pooled"),
    ) {
        (Some(interp), Some(thr)) if thr.ns_per_run > 0 => {
            interp.ns_per_run as f64 / thr.ns_per_run as f64
        }
        _ => 0.0,
    };
    s.push_str(&format!(
        "  \"functional_threaded\": {{\"figure3_large_speedup_vs_interp\": {t:.2}}},\n"
    ));
    // The batched-campaign-kernel tentpole ratio: the fault-campaign
    // classification block in the pre-batch per-case shape vs the
    // hoisted-reference 8-lane batch, same cases, same host window.
    let b = match (
        ns_of(results, "campaign_fault_percase"),
        ns_of(results, "campaign_fault_batched8"),
    ) {
        (Some(percase), Some(batched)) if batched.ns_per_run > 0 => {
            percase.ns_per_run as f64 / batched.ns_per_run as f64
        }
        _ => 0.0,
    };
    s.push_str(&format!(
        "  \"campaign\": {{\"fault_batched8_speedup_vs_percase\": {b:.2}}}\n"
    ));
    s.push_str("}\n");
    s
}

/// Pull the `calibration_ns` value back out of a report written by
/// [`render_report`]. `None` for reports predating the field.
fn parse_calibration(report: &str) -> Option<u64> {
    let key = "\"calibration_ns\":";
    let i = report.find(key)?;
    let digits: String = report[i + key.len()..]
        .chars()
        .skip_while(char::is_ascii_whitespace)
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// Pull `(name, ns_per_run)` pairs back out of a report written by
/// [`render_report`] (one result object per line, fixed key order — a
/// full JSON parser would be overkill for our own format).
fn parse_results(report: &str) -> Vec<(String, u64)> {
    let mut out = Vec::new();
    let mut rest = report;
    while let Some(i) = rest.find("{\"name\":\"") {
        rest = &rest[i + 9..];
        let Some(q) = rest.find('"') else { break };
        let name = rest[..q].to_string();
        let Some(k) = rest.find("\"ns_per_run\":") else {
            break;
        };
        let digits: String = rest[k + 13..]
            .chars()
            .take_while(char::is_ascii_digit)
            .collect();
        match digits.parse() {
            Ok(ns) => out.push((name, ns)),
            Err(_) => break,
        }
    }
    out
}

fn check_against(
    results: &[Measured],
    baseline_path: &str,
    tolerance_pct: f64,
    calibration_ns: u64,
) -> bool {
    let baseline = match std::fs::read_to_string(baseline_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bench_sim: cannot read baseline {baseline_path}: {e}");
            return false;
        }
    };
    // Normalise out host-speed differences: the baseline was taken at
    // some calibration-kernel speed; scale its numbers to the speed
    // this run observed. Reports without the field compare unscaled.
    let scale = match parse_calibration(&baseline) {
        Some(base_calib) if base_calib > 0 && calibration_ns > 0 => {
            let s = calibration_ns as f64 / base_calib as f64;
            println!(
                "bench_sim: calibration {calibration_ns} ns vs baseline {base_calib} ns \
                 (host speed scale {s:.3})"
            );
            s
        }
        _ => 1.0,
    };
    let baseline = parse_results(&baseline);
    if baseline.is_empty() {
        eprintln!("bench_sim: no results found in baseline {baseline_path}");
        return false;
    }
    let mut ok = true;
    for (name, base_ns) in &baseline {
        let Some(m) = ns_of(results, name) else {
            eprintln!("bench_sim: FAIL {name}: in baseline but not measured");
            ok = false;
            continue;
        };
        // The per-case arm replays the pre-batch classifier shape as
        // the denominator of the campaign speedup ratio. Its ~1 s
        // samples leave the minimum-of-N too noisy to gate on absolute
        // time, and that time getting slower would not be a regression
        // in anything the suite defends — it is gated below through
        // the batched-vs-percase ratio, which is measured in the same
        // host window and so is robust where the absolute time is not.
        if name == "campaign_fault_percase" {
            println!("bench_sim: skip {name}: gated via the campaign speedup ratio");
            continue;
        }
        let scaled = *base_ns as f64 * scale;
        let limit = scaled * (1.0 + tolerance_pct / 100.0);
        let ratio = m.ns_per_run as f64 / scaled;
        if (m.ns_per_run as f64) > limit {
            eprintln!(
                "bench_sim: FAIL {name}: {} ns vs scaled baseline {scaled:.0} ns ({:+.1}% > +{tolerance_pct}%)",
                m.ns_per_run,
                (ratio - 1.0) * 100.0
            );
            ok = false;
        } else {
            println!(
                "bench_sim: ok   {name}: {} ns vs scaled baseline {scaled:.0} ns ({:+.1}%)",
                m.ns_per_run,
                (ratio - 1.0) * 100.0
            );
        }
    }
    // The campaign acceptance bar: the batched kernel must hold >= 3x
    // over the per-case shape. Both arms run back to back in this
    // process, so the ratio self-calibrates against host speed.
    if let (Some(p), Some(b)) = (
        ns_of(results, "campaign_fault_percase"),
        ns_of(results, "campaign_fault_batched8"),
    ) {
        if b.ns_per_run > 0 {
            let ratio = p.ns_per_run as f64 / b.ns_per_run as f64;
            if ratio < 3.0 {
                eprintln!(
                    "bench_sim: FAIL campaign speedup: batched8 is {ratio:.2}x percase (< 3x)"
                );
                ok = false;
            } else {
                println!(
                    "bench_sim: ok   campaign speedup: batched8 is {ratio:.2}x percase (>= 3x)"
                );
            }
        }
    }
    ok
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = String::from("BENCH_sim.json");
    let mut reduced = false;
    let mut check: Option<String> = None;
    let mut tolerance = 15.0;
    let mut passes = 1u32;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" if i + 1 < args.len() => {
                out_path = args[i + 1].clone();
                i += 2;
            }
            "--check" if i + 1 < args.len() => {
                check = Some(args[i + 1].clone());
                i += 2;
            }
            "--tolerance" if i + 1 < args.len() => {
                tolerance = match args[i + 1].parse() {
                    Ok(t) => t,
                    Err(_) => {
                        eprintln!("bench_sim: bad --tolerance {}", args[i + 1]);
                        return ExitCode::FAILURE;
                    }
                };
                i += 2;
            }
            "--passes" if i + 1 < args.len() => {
                passes = match args[i + 1].parse() {
                    Ok(n) if n >= 1 => n,
                    _ => {
                        eprintln!("bench_sim: bad --passes {}", args[i + 1]);
                        return ExitCode::FAILURE;
                    }
                };
                i += 2;
            }
            "--reduced" => {
                reduced = true;
                i += 1;
            }
            other => {
                eprintln!(
                    "bench_sim: unknown argument {other}\n\
                     usage: bench_sim [--out FILE] [--reduced] [--passes N] \
                     [--check BASELINE] [--tolerance PCT]"
                );
                return ExitCode::FAILURE;
            }
        }
    }

    let mut calibration_ns = calibrate();
    // Deterministic (same simulation every pass), so computed once.
    let cpi = cpi_breakdown();
    let mut results = run_suite(reduced);
    for _ in 1..passes {
        std::thread::sleep(std::time::Duration::from_millis(RETRY_SLEEP_MS));
        calibration_ns = calibration_ns.min(calibrate());
        merge_minima(&mut results, &run_suite(reduced));
    }
    for m in &results {
        println!(
            "bench_sim: {:<34} {:>12} ns/run  {:>8.2} Melem/s",
            m.name,
            m.ns_per_run,
            m.melems_per_s()
        );
    }
    let write_report = |results: &[Measured], calibration_ns: u64| -> bool {
        match std::fs::write(
            &out_path,
            render_report(results, reduced, calibration_ns, &cpi),
        ) {
            Ok(()) => {
                println!("bench_sim: wrote {out_path}");
                true
            }
            Err(e) => {
                eprintln!("bench_sim: cannot write {out_path}: {e}");
                false
            }
        }
    };
    if !write_report(&results, calibration_ns) {
        return ExitCode::FAILURE;
    }

    if let Some(path) = check {
        // Retry-until-fast-window (see the doc header): a pass that is
        // over tolerance usually just measured a slow host window, so
        // re-measure with sleeps in between, folding each pass into the
        // running minima, until the check passes or the attempt budget
        // runs out. A real code regression stays over tolerance in
        // every window, so retries can rescue noise but never a
        // regression.
        let mut attempts = 1u32;
        while !check_against(&results, &path, tolerance, calibration_ns) {
            if attempts >= CHECK_ATTEMPTS {
                write_report(&results, calibration_ns);
                eprintln!(
                    "bench_sim: still over tolerance after {attempts} attempts; \
                     treating as a real regression (if the host is known to be \
                     under sustained load, re-run; if its hardware changed, \
                     re-baseline with --passes 4)"
                );
                return ExitCode::FAILURE;
            }
            attempts += 1;
            eprintln!(
                "bench_sim: over tolerance; re-measuring (attempt {attempts}/{CHECK_ATTEMPTS}) \
                 to rule out a slow host window"
            );
            std::thread::sleep(std::time::Duration::from_millis(RETRY_SLEEP_MS));
            calibration_ns = calibration_ns.min(calibrate());
            merge_minima(&mut results, &run_suite(reduced));
        }
        write_report(&results, calibration_ns);
        println!("bench_sim: within {tolerance}% of {path} (attempt {attempts}/{CHECK_ATTEMPTS})");
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_round_trips_through_parser() {
        let results = vec![
            Measured {
                name: "functional_figure3_256_pooled",
                ns_per_run: 61_000,
                elements: 9737,
            },
            Measured {
                name: "cycle_figure3_256_pooled",
                ns_per_run: 65_000,
                elements: 9737,
            },
        ];
        let cpi = "{\"workload\":\"cycle_figure3_large\",\"cycles\":10,\
                   \"program_instrs\":10,\"accounts\":{\"useful\":10}}";
        let report = render_report(&results, true, 1_234_567, cpi);
        let parsed = parse_results(&report);
        assert_eq!(
            parsed,
            vec![
                ("functional_figure3_256_pooled".to_string(), 61_000),
                ("cycle_figure3_256_pooled".to_string(), 65_000),
            ]
        );
        assert_eq!(parse_calibration(&report), Some(1_234_567));
    }

    #[test]
    fn calibration_absent_from_legacy_reports() {
        assert_eq!(
            parse_calibration("{\"results\": [{\"name\":\"x\",\"ns_per_run\":1}]}"),
            None
        );
    }
}

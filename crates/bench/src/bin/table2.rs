//! Regenerate the paper's Table 2: dynamic instruction counts for the
//! Figure 3 program on CRISP and on the VAX-lite comparison substrate.

fn main() {
    let t = crisp_bench::table2();
    println!("Table 2. Instruction counts for the program of Figure 3.");
    println!();
    println!("CRISP — total of {} instructions", t.crisp_total);
    println!("{:<10} {:>8} {:>9}", "opcode", "count", "percent");
    for (name, count) in t.crisp.sorted_desc() {
        println!(
            "{name:<10} {count:>8} {:>8.2}%",
            count as f64 * 100.0 / t.crisp_total as f64
        );
    }
    println!();
    println!("VAX — total of {} instructions", t.vax_total);
    println!("{:<10} {:>8} {:>9}", "opcode", "count", "percent");
    for (name, count) in t.vax.sorted_desc() {
        println!(
            "{name:<10} {count:>8} {:>8.2}%",
            count as f64 * 100.0 / t.vax_total as f64
        );
    }
}

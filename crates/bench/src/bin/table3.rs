//! Regenerate the paper's Table 3: the CRISP code for the Figure 3 loop
//! before and after Branch Spreading, with fold pairs annotated.

fn main() {
    let (before, after) = crisp_bench::table3();
    println!("Table 3. CRISP code before and after Branch Spreading.");
    println!();
    println!("== Without Branch Spreading ==");
    println!("{before}");
    println!("== With Branch Spreading ==");
    println!("{after}");
}

//! Regenerate the paper's Table 1: accuracies of branch-prediction
//! techniques (optimal static bit vs 1/2/3 bits of dynamic history with
//! an infinite table) over the six workloads.

fn main() {
    println!("Table 1. Accuracies of branch prediction techniques.");
    println!("(paper: troff .94/.93/.95/.95, cc .74/.77/.77/.74, DRC .89/.95/.95/.95,");
    println!("        dhry .86/.72/.79/.79, cwhet .84/.68/.79/.79, puzzle .92/.87/.87/.87)");
    println!();
    println!(
        "{:<12} {:>7} {:>7} {:>7} {:>7} {:>12}",
        "program", "static", "1-bit", "2-bit", "3-bit", "branches"
    );
    for row in crisp_bench::table1() {
        println!("{row}");
    }
}

//! Regenerate the "Comparison to Other Schemes" data: Lee-Smith branch
//! target buffer (128 sets × 4 ways) and MU5 8-entry jump trace against
//! CRISP's optimal static bit.

fn main() {
    let rows = crisp_bench::btb_compare();

    println!("Comparison to other schemes (paper: MU5 jump trace 40-65%,");
    println!("Lee-Smith BTB up to 78%; CRISP uses the static bit instead).");
    println!();
    println!(
        "{:<12} {:>8} {:>10} {:>10} {:>11}",
        "program", "static", "BTB128x4", "MU5-jt8", "transfers"
    );
    for r in &rows {
        println!(
            "{:<12} {:>8.2} {:>10.2} {:>10.2} {:>11}",
            r.program, r.static_acc, r.btb, r.jump_trace, r.transfers
        );
    }

    println!();
    println!("Live in the pipeline (cycle engine, retired-branch correct");
    println!("rate and end-to-end cycles per predictor):");
    println!();
    println!(
        "{:<12} {:>9} {:>9} {:>12} {:>12} {:>12}",
        "program", "btb-live", "jt-live", "cyc-static", "cyc-btb", "cyc-jt"
    );
    for r in &rows {
        println!(
            "{:<12} {:>9.2} {:>9.2} {:>12} {:>12} {:>12}",
            r.program,
            r.btb_live,
            r.jump_trace_live,
            r.live_cycles[0],
            r.live_cycles[1],
            r.live_cycles[2]
        );
    }
}

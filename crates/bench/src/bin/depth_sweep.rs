//! EU-depth sweep: the Figure 3 penalty-vs-spreading-distance curve at
//! every supported pipeline depth, plus the Figure 3 workload's cycle
//! count per depth.
//!
//! The paper's machine resolves branches in a 3-stage EU, fixing the
//! penalty schedule at 3/2/1/0. Sweeping the depth shows the schedule
//! is structural: the resolve-stage index *is* the penalty, so a
//! depth-D pipe pays D cycles for a folded compare and needs D
//! instructions of spreading to reach the free fetch-time resolution.

fn main() {
    let rows = crisp_bench::depth_sweep(&[2, 3, 4, 5, 6], 1024);

    println!("== Mispredict penalty by spreading distance (cycles) ==");
    println!("(distance 0 = folded compare; the resolve-stage index is the penalty)");
    let max_depth = rows.iter().map(|r| r.depth).max().unwrap_or(0);
    print!("{:>6}", "depth");
    for d in 0..=max_depth {
        print!(" {:>5}", format!("d={d}"));
    }
    println!();
    for row in &rows {
        print!("{:>6}", row.depth);
        for d in 0..=max_depth {
            match row.penalties.iter().find(|&&(dist, _, _)| dist == d) {
                Some(&(_, _, measured)) => print!(" {measured:>5}"),
                None => print!(" {:>5}", "-"),
            }
        }
        println!();
    }
    println!();

    println!("== Figure 3 workload (1024 iterations) by depth ==");
    println!("{:>6} {:>10} {:>14}", "depth", "cycles", "apparent CPI");
    for row in &rows {
        println!(
            "{:>6} {:>10} {:>14.3}",
            row.depth, row.figure3_cycles, row.figure3_cpi
        );
    }
    println!();

    println!("== Figure 3 cycles by depth x live predictor ==");
    print!("{:>6}", "depth");
    if let Some(first) = rows.first() {
        for (label, _, _) in &first.figure3_by_predictor {
            print!(" {label:>12}");
        }
    }
    println!();
    for row in &rows {
        print!("{:>6}", row.depth);
        for (_, cycles, _) in &row.figure3_by_predictor {
            print!(" {cycles:>12}");
        }
        println!();
    }
}

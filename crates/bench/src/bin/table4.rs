//! Regenerate the paper's Table 4: execution statistics for the
//! Figure 3 program under cases A–E (folding × prediction × spreading).

fn main() {
    println!("Table 4. Execution statistics on CRISP for the Figure 3 program.");
    println!("(paper reference: A=14422cy/1.0x, B=11359/1.3, C=8789/1.6, D=7250/2.0, E=9815/1.5)");
    println!();
    println!("Case  Fold  Predict Spread     Cycles    Issued  Rel.  Iss.CPI  App.CPI");
    for row in crisp_bench::table4() {
        println!("{row}");
    }
}

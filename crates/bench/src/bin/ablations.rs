//! Ablation studies over the design choices the paper calls out:
//! decoded-cache size, fold policy, and memory latency.

fn main() {
    println!("== Decoded instruction cache size (Figure 3, 1024 iterations) ==");
    println!("(the paper: \"true zero delay for branches can only occur if the");
    println!(" instruction cache has a hit\")");
    println!("{:>8} {:>10}", "entries", "cycles");
    for (entries, cycles) in crisp_bench::ablation_icache(&[4, 8, 16, 32, 64, 128], 1024) {
        println!("{entries:>8} {cycles:>10}");
    }
    println!();

    println!("== Fold policy (paper ships Host13; \"doing the remaining cases");
    println!(" significantly increases the amount of hardware required, with only");
    println!(" a marginal increase in performance\") ==");
    println!("{:<10} {:>10} {:>10}", "policy", "cycles", "issued");
    for (policy, cycles, issued) in crisp_bench::ablation_fold_policy(1024) {
        println!("{:<10} {cycles:>10} {issued:>10}", format!("{policy:?}"));
    }
    println!();

    println!("== Instruction-memory latency (decoupling via the decoded cache) ==");
    println!("{:>8} {:>10}", "latency", "cycles");
    for (lat, cycles) in crisp_bench::ablation_mem_latency(&[1, 2, 4, 8, 16, 32], 1024) {
        println!("{lat:>8} {cycles:>10}");
    }
    println!();

    println!("== Hardware predictor: static bit vs finite dynamic tables ==");
    println!("(the road CRISP did not take, measured in cycles)");
    println!(
        "{:<12} {:>10} {:>10} {:>10}",
        "program", "static", "dyn-1bit", "dyn-2bit"
    );
    for (name, st, d1, d2) in crisp_bench::ablation_predictor() {
        println!("{name:<12} {st:>10} {d1:>10} {d2:>10}");
    }
    println!();

    println!("== Finite vs infinite dynamic-history tables (2-bit) ==");
    println!("(Table 1 assumed an infinite table; \"in practice only a small");
    println!(" number of recent predictions would be cached\")");
    let sizes = [8usize, 32, 128, 512];
    println!(
        "{:<12} {:>9} {:>7} {:>7} {:>7} {:>7}",
        "program", "infinite", 8, 32, 128, 512
    );
    for (name, infinite, by_size) in crisp_bench::ablation_finite_dynamic(&sizes) {
        print!("{name:<12} {infinite:>9.3}");
        for v in by_size {
            print!(" {v:>7.3}");
        }
        println!();
    }
    println!();

    println!("== Basic-block size vs Branch Spreading benefit ==");
    println!("(the paper: CRISP basic blocks are ~3 instructions — short blocks");
    println!(" limit what spreading can move; larger ones let it zero the penalty)");
    println!(
        "{:>6} {:>16} {:>16} {:>8}",
        "block", "prediction-only", "with-spreading", "gain"
    );
    for (n, plain, spread) in crisp_bench::ablation_bbsize(&[0, 1, 2, 3, 4, 6, 8]) {
        println!("{n:>6} {plain:>16} {spread:>16} {:>8}", plain - spread);
    }
}

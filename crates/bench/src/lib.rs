//! Experiment drivers regenerating every table and figure of the paper.
//!
//! Each function returns structured results; the `src/bin/*` binaries
//! print them in the paper's layout. The per-experiment index lives in
//! `DESIGN.md`; measured-vs-paper numbers are recorded in
//! `EXPERIMENTS.md`.

#![warn(missing_docs)]

use std::collections::HashMap;
use std::fmt;

use crisp_asm::{listing_of, Image};
use crisp_cc::{
    apply_profile, compile_crisp, compile_crisp_module, compile_vax, CompileOptions, PredictionMode,
};
use crisp_isa::FoldPolicy;
use crisp_predict::{
    evaluate_dynamic, evaluate_predictor, evaluate_static_optimal, Btb, BtbConfig, FinitePredictor,
    JumpTrace,
};
use crisp_sim::{
    CycleSim, FunctionalSim, HwPredictor, Machine, PipelineGeometry, SimConfig, Trace,
};
use crisp_workloads::{figure3_with_count, prediction_workloads, FIGURE3_SOURCE};

// ---------------------------------------------------------------------
// Shared plumbing
// ---------------------------------------------------------------------

/// Compile a source and collect its branch trace with the functional
/// engine.
///
/// # Panics
///
/// Panics on compile or simulation failure (experiment inputs are
/// static).
pub fn trace_of(source: &str) -> Trace {
    let image = compile_crisp(source, &CompileOptions::default()).expect("workload compiles");
    FunctionalSim::new(Machine::load(&image).expect("image loads"))
        .record_trace(true)
        .run()
        .expect("workload halts")
        .trace
}

/// Run an image through the cycle simulator.
///
/// # Panics
///
/// Panics on simulation failure.
pub fn cycles_of(image: &Image, cfg: SimConfig) -> crisp_sim::CycleRun {
    CycleSim::new(Machine::load(image).expect("image loads"), cfg)
        .run()
        .expect("cycle run halts")
}

// ---------------------------------------------------------------------
// Table 1 — prediction accuracy
// ---------------------------------------------------------------------

/// One row of Table 1.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Program name.
    pub program: String,
    /// Optimal static prediction accuracy.
    pub static_acc: f64,
    /// 1/2/3-bit dynamic accuracies (infinite table).
    pub dynamic: [f64; 3],
    /// Conditional branches executed.
    pub branches: u64,
}

/// Regenerate Table 1: prediction accuracy per workload.
pub fn table1() -> Vec<Table1Row> {
    prediction_workloads()
        .into_iter()
        .map(|w| {
            let trace = trace_of(w.source);
            let st = evaluate_static_optimal(&trace);
            let dynamic = [1u8, 2, 3].map(|bits| evaluate_dynamic(&trace, bits).ratio());
            Table1Row {
                program: w.name.to_owned(),
                static_acc: st.accuracy.ratio(),
                dynamic,
                branches: st.accuracy.total,
            }
        })
        .collect()
}

impl fmt::Display for Table1Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<12} {:>7.2} {:>7.2} {:>7.2} {:>7.2} {:>12}",
            self.program,
            self.static_acc,
            self.dynamic[0],
            self.dynamic[1],
            self.dynamic[2],
            self.branches
        )
    }
}

// ---------------------------------------------------------------------
// Table 2 — CRISP vs VAX dynamic instruction counts
// ---------------------------------------------------------------------

/// Results for Table 2.
#[derive(Debug, Clone)]
pub struct Table2 {
    /// CRISP per-opcode dynamic counts.
    pub crisp: crisp_sim::OpcodeCounts,
    /// CRISP total.
    pub crisp_total: u64,
    /// VAX-lite per-opcode dynamic counts.
    pub vax: vax_lite::Counts,
    /// VAX total.
    pub vax_total: u64,
}

/// Regenerate Table 2: dynamic instruction distributions of the Figure 3
/// program on CRISP and VAX.
///
/// # Panics
///
/// Panics on compile or run failure.
pub fn table2() -> Table2 {
    let image = compile_crisp(
        FIGURE3_SOURCE,
        &CompileOptions {
            spread: false,
            prediction: PredictionMode::Taken,
        },
    )
    .expect("figure3 compiles");
    let run = FunctionalSim::new(Machine::load(&image).expect("loads"))
        .run()
        .expect("halts");
    let vax = compile_vax(FIGURE3_SOURCE)
        .expect("figure3 compiles for VAX")
        .run(100_000_000)
        .expect("VAX run halts");
    Table2 {
        crisp_total: run.stats.opcodes.total(),
        crisp: run.stats.opcodes,
        vax_total: vax.counts.total(),
        vax: vax.counts,
    }
}

// ---------------------------------------------------------------------
// Table 3 — loop code before/after Branch Spreading
// ---------------------------------------------------------------------

/// Regenerate Table 3: the CRISP code for the Figure 3 loop without and
/// with Branch Spreading, as annotated listings (fold pairs marked).
///
/// # Panics
///
/// Panics on compile failure.
pub fn table3() -> (String, String) {
    let render = |spread: bool| {
        let module = compile_crisp_module(
            FIGURE3_SOURCE,
            &CompileOptions {
                spread,
                prediction: PredictionMode::Taken,
            },
        )
        .expect("figure3 compiles");
        let image = crisp_asm::assemble(&module).expect("assembles");
        listing_of(&image, FoldPolicy::Host13).expect("listing renders")
    };
    (render(false), render(true))
}

// ---------------------------------------------------------------------
// Table 4 — execution statistics, cases A–E
// ---------------------------------------------------------------------

/// One row of Table 4.
#[derive(Debug, Clone)]
pub struct Table4Row {
    /// Case letter (A–E).
    pub case: char,
    /// Branch folding enabled.
    pub folding: bool,
    /// "Branch prediction yes/no" in the paper's sense (the end-of-loop
    /// branch's bit; the `if` branch is always predicted taken).
    pub prediction: bool,
    /// Branch spreading applied.
    pub spreading: bool,
    /// Cycles to execute.
    pub cycles: u64,
    /// Instructions issued by the pipeline.
    pub issued: u64,
    /// Program instructions (issued + folded branches).
    pub program_instrs: u64,
    /// Performance relative to case A.
    pub relative_perf: f64,
    /// Issued cycles per instruction.
    pub issued_cpi: f64,
    /// Apparent (black-box) cycles per instruction.
    pub apparent_cpi: f64,
}

impl fmt::Display for Table4Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let yn = |b: bool| if b { "yes" } else { "no " };
        write!(
            f,
            "{}     {}      {}      {}    {:>9} {:>9}  {:>5.2} {:>7.2} {:>9.2}",
            self.case,
            yn(self.folding),
            yn(self.prediction),
            yn(self.spreading),
            self.cycles,
            self.issued,
            self.relative_perf,
            self.issued_cpi,
            self.apparent_cpi
        )
    }
}

/// Regenerate Table 4 with a configurable loop count (the paper uses
/// 1024 and notes the results are insensitive to it).
pub fn table4_with_count(count: u32) -> Vec<Table4Row> {
    let src = figure3_with_count(count);
    // (case, folding, prediction-yes, spreading)
    let cases = [
        ('A', false, false, false),
        ('B', false, true, false),
        ('C', true, true, false),
        ('D', true, true, true),
        ('E', false, true, true),
    ];
    let mut rows = Vec::new();
    let mut base_cycles = None;
    for (case, folding, prediction, spreading) in cases {
        // "Prediction yes" = the backward loop branch predicted taken;
        // the forward if branch is predicted taken in ALL cases (the
        // paper: "the particular setting is irrelevant"). Taken covers
        // both; case A inverts only the backward branch via Ftbnt.
        let mode = if prediction {
            PredictionMode::Taken
        } else {
            PredictionMode::Ftbnt
        };
        let image = compile_crisp(
            &src,
            &CompileOptions {
                spread: spreading,
                prediction: mode,
            },
        )
        .expect("figure3 compiles");
        let cfg = SimConfig {
            fold_policy: if folding {
                FoldPolicy::Host13
            } else {
                FoldPolicy::None
            },
            ..SimConfig::default()
        };
        let run = cycles_of(&image, cfg);
        let base = *base_cycles.get_or_insert(run.stats.cycles);
        rows.push(Table4Row {
            case,
            folding,
            prediction,
            spreading,
            cycles: run.stats.cycles,
            issued: run.stats.issued,
            program_instrs: run.stats.program_instrs,
            relative_perf: base as f64 / run.stats.cycles as f64,
            issued_cpi: run.stats.cycles_per_issued(),
            apparent_cpi: run.stats.apparent_cpi(),
        });
    }
    rows
}

/// Regenerate Table 4 at the paper's loop count of 1024.
pub fn table4() -> Vec<Table4Row> {
    table4_with_count(1024)
}

// ---------------------------------------------------------------------
// Comparison section — BTB and MU5 jump trace
// ---------------------------------------------------------------------

/// One row of the BTB / jump-trace comparison.
#[derive(Debug, Clone)]
pub struct BtbRow {
    /// Program name.
    pub program: String,
    /// CRISP's optimal static bit (for reference).
    pub static_acc: f64,
    /// Lee-Smith BTB (128 sets × 4 ways) effectiveness.
    pub btb: f64,
    /// MU5 8-entry jump trace correct rate.
    pub jump_trace: f64,
    /// Transfers evaluated.
    pub transfers: u64,
    /// Live in-pipeline correct rate with the same BTB geometry
    /// (`1 - mispredicts / retired conditional branches` from a cycle
    /// run under [`HwPredictor::Btb`]).
    pub btb_live: f64,
    /// Live in-pipeline correct rate under [`HwPredictor::JumpTrace`].
    pub jump_trace_live: f64,
    /// Cycle counts under the static bit, the live BTB and the live
    /// jump trace — what each scheme actually costs end to end.
    pub live_cycles: [u64; 3],
}

/// Correct-prediction rate of a live cycle run: retired conditional
/// branches that were not charged a mispredict. Wrong-path branches can
/// resolve (and mispredict) without retiring, so this is a floor.
fn live_correct_rate(run: &crisp_sim::CycleRun) -> f64 {
    let branches = run.stats.cond_branches;
    if branches == 0 {
        return 1.0;
    }
    branches.saturating_sub(run.stats.mispredicts()) as f64 / branches as f64
}

/// Evaluate the BTB and jump-trace schemes the paper compares against —
/// trace-driven (the paper's methodology) and live in the pipeline,
/// side by side.
pub fn btb_compare() -> Vec<BtbRow> {
    prediction_workloads()
        .into_iter()
        .map(|w| {
            let trace = trace_of(w.source);
            let st = evaluate_static_optimal(&trace);
            let btb = Btb::new(BtbConfig::default()).evaluate(&trace);
            let jt = JumpTrace::new(JumpTrace::MU5_ENTRIES).evaluate(&trace);
            let image = compile_crisp(w.source, &CompileOptions::default()).expect("compiles");
            let live = |predictor| {
                cycles_of(
                    &image,
                    SimConfig {
                        predictor,
                        ..SimConfig::default()
                    },
                )
            };
            let st_run = live(HwPredictor::StaticBit);
            let btb_run = live(HwPredictor::Btb {
                entries: 128,
                ways: 4,
            });
            let jt_run = live(HwPredictor::JumpTrace {
                entries: JumpTrace::MU5_ENTRIES,
            });
            BtbRow {
                program: w.name.to_owned(),
                static_acc: st.accuracy.ratio(),
                btb: btb.effectiveness(),
                jump_trace: jt.ratio(),
                transfers: btb.total,
                btb_live: live_correct_rate(&btb_run),
                jump_trace_live: live_correct_rate(&jt_run),
                live_cycles: [
                    st_run.stats.cycles,
                    btb_run.stats.cycles,
                    jt_run.stats.cycles,
                ],
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Profile-guided (optimal) static bits end-to-end
// ---------------------------------------------------------------------

/// Compile a source, profile it, patch optimal static bits, and return
/// `(default-bit mispredicts, optimal-bit mispredicts)` from functional
/// runs — the end-to-end path behind Table 1's static column.
pub fn profile_guided_mispredicts(source: &str) -> (u64, u64) {
    let opts = CompileOptions::default();
    let mut image = compile_crisp(source, &opts).expect("compiles");
    let before = FunctionalSim::new(Machine::load(&image).expect("loads"))
        .record_trace(true)
        .run()
        .expect("halts");
    let majority: HashMap<u32, bool> = evaluate_static_optimal(&before.trace)
        .majority
        .into_iter()
        .collect();
    apply_profile(&mut image, &majority);
    let after = FunctionalSim::new(Machine::load(&image).expect("loads"))
        .run()
        .expect("halts");
    (
        before.stats.static_mispredicts,
        after.stats.static_mispredicts,
    )
}

// ---------------------------------------------------------------------
// Ablations
// ---------------------------------------------------------------------

/// Decoded-cache size sweep on the Figure 3 loop (the paper: "true zero
/// delay for branches can only occur if the instruction cache has a
/// hit"). Returns `(entries, cycles)` pairs.
pub fn ablation_icache(sizes: &[usize], count: u32) -> Vec<(usize, u64)> {
    let src = figure3_with_count(count);
    let image = compile_crisp(&src, &CompileOptions::default()).expect("compiles");
    sizes
        .iter()
        .map(|&entries| {
            let cfg = SimConfig {
                icache_entries: entries,
                ..SimConfig::default()
            };
            (entries, cycles_of(&image, cfg).stats.cycles)
        })
        .collect()
}

/// Fold-policy sweep (None / 1-parcel hosts / CRISP's 1&3 / everything),
/// quantifying "doing the remaining cases significantly increases the
/// amount of hardware required, with only a marginal increase in
/// performance". Returns `(policy, cycles, issued)` rows.
pub fn ablation_fold_policy(count: u32) -> Vec<(FoldPolicy, u64, u64)> {
    let src = figure3_with_count(count);
    let image = compile_crisp(&src, &CompileOptions::default()).expect("compiles");
    [
        FoldPolicy::None,
        FoldPolicy::Host1,
        FoldPolicy::Host13,
        FoldPolicy::All,
    ]
    .into_iter()
    .map(|policy| {
        let cfg = SimConfig {
            fold_policy: policy,
            ..SimConfig::default()
        };
        let run = cycles_of(&image, cfg);
        (policy, run.stats.cycles, run.stats.issued)
    })
    .collect()
}

/// Memory-latency sweep showing the decoupling value of the decoded
/// instruction cache. Returns `(latency, cycles)` pairs.
pub fn ablation_mem_latency(latencies: &[u32], count: u32) -> Vec<(u32, u64)> {
    let src = figure3_with_count(count);
    let image = compile_crisp(&src, &CompileOptions::default()).expect("compiles");
    latencies
        .iter()
        .map(|&lat| {
            let cfg = SimConfig {
                mem_latency: lat,
                ..SimConfig::default()
            };
            (lat, cycles_of(&image, cfg).stats.cycles)
        })
        .collect()
}

/// Hardware-predictor comparison: the static bit (shipped) vs finite
/// dynamic counter tables, measured in cycles over the Table 1
/// workloads — the road CRISP did not take, quantified. Returns rows of
/// `(program, static cycles, 1-bit cycles, 2-bit cycles)`.
pub fn ablation_predictor() -> Vec<(String, u64, u64, u64)> {
    prediction_workloads()
        .into_iter()
        .map(|w| {
            let image = compile_crisp(w.source, &CompileOptions::default()).expect("compiles");
            let run = |predictor| {
                cycles_of(
                    &image,
                    SimConfig {
                        predictor,
                        ..SimConfig::default()
                    },
                )
                .stats
                .cycles
            };
            (
                w.name.to_owned(),
                run(HwPredictor::StaticBit),
                run(HwPredictor::Dynamic {
                    bits: 1,
                    entries: 512,
                }),
                run(HwPredictor::Dynamic {
                    bits: 2,
                    entries: 512,
                }),
            )
        })
        .collect()
}

/// How optimistic was Table 1's infinite dynamic table? ("In practice
/// only a small number of recent predictions would be cached.")
/// Evaluates a 2-bit finite table at several sizes against the infinite
/// table, per workload. Returns `(program, infinite, by_size)` where
/// `by_size[i]` corresponds to `sizes[i]`.
pub fn ablation_finite_dynamic(sizes: &[usize]) -> Vec<(String, f64, Vec<f64>)> {
    prediction_workloads()
        .into_iter()
        .map(|w| {
            let trace = trace_of(w.source);
            let infinite = evaluate_dynamic(&trace, 2).ratio();
            let by_size = sizes
                .iter()
                .map(|&n| evaluate_predictor(&trace, &mut FinitePredictor::new(2, n)).ratio())
                .collect();
            (w.name.to_owned(), infinite, by_size)
        })
        .collect()
}

/// Basic-block-size sensitivity: the paper chose prediction over delayed
/// branch "because basic block sizes in CRISP are typically short, on
/// the order of 3 instructions". This sweep builds loops with bodies of
/// `n` independent statements split by an alternating `if`, and compares
/// prediction-only against prediction+spreading. Returns rows of
/// `(block_size, cycles_prediction_only, cycles_with_spreading)`.
pub fn ablation_bbsize(sizes: &[usize]) -> Vec<(usize, u64, u64)> {
    sizes
        .iter()
        .map(|&n| {
            // n filler statements after the if, all candidates for fill.
            // Locals (one-parcel instructions) keep every fill statement
            // a legal fold host, so the sweep isolates the
            // penalty-vs-distance effect.
            let mut body = String::new();
            for i in 0..n {
                let inc = i + 1;
                body.push_str(&format!("t{i} += {inc}; "));
            }
            let decls: String = if n == 0 {
                String::new()
            } else {
                let names: Vec<String> = (0..n).map(|i| format!("t{i}")).collect();
                format!("int {};", names.join(", "))
            };
            let src = format!(
                "
                int odd; int even;
                void main() {{
                    int i; {decls}
                    for (i = 0; i < 512; i++) {{
                        if (i & 1) odd++;
                        else even++;
                        {body}
                    }}
                }}
                "
            );
            let run = |spread: bool| {
                let image = compile_crisp(
                    &src,
                    &CompileOptions {
                        spread,
                        prediction: PredictionMode::Btfnt,
                    },
                )
                .expect("compiles");
                // A large decoded cache isolates the branch effects: big
                // bodies would otherwise overflow the 32-entry cache and
                // conflict noise would swamp the measurement.
                let cfg = SimConfig {
                    icache_entries: 512,
                    ..SimConfig::default()
                };
                cycles_of(&image, cfg).stats.cycles
            };
            (n, run(false), run(true))
        })
        .collect()
}

// ---------------------------------------------------------------------
// Pipeline-depth sweep
// ---------------------------------------------------------------------

/// Penalty-vs-spreading-distance curve measured at one EU depth — the
/// Figure 3 penalty schedule, generalized beyond the paper's 3-stage
/// machine.
#[derive(Debug, Clone)]
pub struct DepthSweepRow {
    /// EU depth of this row (3 = the paper's IR/OR/RR).
    pub depth: usize,
    /// `(spreading distance, expected resolve stage, measured penalty)`
    /// triples; distance 0 is the folded compare, which resolves at
    /// retire. The resolve-stage index *is* the penalty, so columns two
    /// and three must agree.
    pub penalties: Vec<(usize, usize, usize)>,
    /// Figure 3 workload cycles at this depth (default configuration).
    pub figure3_cycles: u64,
    /// Figure 3 apparent CPI at this depth.
    pub figure3_cpi: f64,
    /// Figure 3 `(predictor label, cycles, apparent CPI)` per hardware
    /// predictor at this depth — deeper pipes pay more per mispredict,
    /// so the static-vs-dynamic gap widens with depth.
    pub figure3_by_predictor: Vec<(String, u64, f64)>,
}

/// The predictor lineup every live sweep measures: the shipped static
/// bit against the hardware schemes the paper compared on traces.
pub fn sweep_predictors() -> [HwPredictor; 4] {
    [
        HwPredictor::StaticBit,
        HwPredictor::Dynamic {
            bits: 2,
            entries: 64,
        },
        HwPredictor::Btb {
            entries: 128,
            ways: 4,
        },
        HwPredictor::JumpTrace {
            entries: JumpTrace::MU5_ENTRIES,
        },
    ]
}

/// Measure the per-mispredict penalty of a branch whose compare sits
/// `distance` instructions ahead (0 = folded) at EU depth `depth`.
///
/// Steady-state measurement: a 24-iteration loop whose back branch is
/// statically predicted right (one exit mispredict) vs wrong (23). The
/// cycle delta is 22 penalties plus a ±few-cycle cold-start difference,
/// so rounding to the nearest multiple of 22 recovers the penalty. The
/// counter lives in the accumulator because only `cmp.cond Accum,imm5`
/// is one parcel — the folded case needs a one-parcel host.
fn measured_penalty(depth: usize, distance: usize) -> usize {
    use crisp_asm::assemble_text;
    let filler: String = (0..distance.saturating_sub(1))
        .map(|i| format!("add {}(sp),$1\n", 8 + 4 * i))
        .collect();
    let src_with = |bit: &str| {
        format!(
            "
            mov Accum,$0
        top:
            add Accum,$1
            cmp.s< Accum,$24
            {filler}
            ifjmpy.{bit} top
            halt
        "
        )
    };
    let cfg = SimConfig {
        geometry: PipelineGeometry::new(depth),
        fold_policy: if distance == 0 {
            FoldPolicy::Host13
        } else {
            FoldPolicy::None
        },
        ..SimConfig::default()
    };
    let run = |bit: &str| {
        let image = assemble_text(&src_with(bit)).expect("assembles");
        cycles_of(&image, cfg)
    };
    let wrong = run("nt");
    let right = run("t");
    assert!(wrong.stats.mispredicts() >= 23);
    let delta = wrong.stats.cycles as i64 - right.stats.cycles as i64;
    usize::try_from(((delta + 11).div_euclid(22)).max(0)).expect("non-negative penalty")
}

/// Sweep EU depth: for each depth, the measured penalty at every
/// spreading distance (the Figure 3 curve at that depth) plus the
/// Figure 3 workload's cycles and apparent CPI. Deeper pipes pay more
/// for late resolution and need proportionally more spreading to reach
/// the free fetch-time resolution.
pub fn depth_sweep(depths: &[usize], count: u32) -> Vec<DepthSweepRow> {
    let src = figure3_with_count(count);
    let image = compile_crisp(&src, &CompileOptions::default()).expect("compiles");
    depths
        .iter()
        .map(|&depth| {
            let geo = PipelineGeometry::new(depth);
            let mut penalties = vec![(0, geo.retire_stage(), measured_penalty(depth, 0))];
            for d in 1..=depth {
                penalties.push((
                    d,
                    geo.resolve_stage_for_distance(d),
                    measured_penalty(depth, d),
                ));
            }
            let cfg = SimConfig {
                geometry: geo,
                ..SimConfig::default()
            };
            let run = cycles_of(&image, cfg);
            let figure3_by_predictor = sweep_predictors()
                .into_iter()
                .map(|predictor| {
                    let r = cycles_of(&image, SimConfig { predictor, ..cfg });
                    (predictor.label(), r.stats.cycles, r.stats.apparent_cpi())
                })
                .collect();
            DepthSweepRow {
                depth,
                penalties,
                figure3_cycles: run.stats.cycles,
                figure3_cpi: run.stats.apparent_cpi(),
                figure3_by_predictor,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_shape_matches_paper() {
        // Smaller loop count for test speed; the paper notes the results
        // are insensitive to it.
        let rows = table4_with_count(256);
        let by = |c: char| rows.iter().find(|r| r.case == c).expect("case exists");
        let (a, b, c, d, e) = (by('A'), by('B'), by('C'), by('D'), by('E'));

        // Ordering: A slowest; D fastest; E between B and C.
        assert!(
            b.cycles < a.cycles,
            "prediction helps: {} vs {}",
            b.cycles,
            a.cycles
        );
        assert!(
            c.cycles < b.cycles,
            "folding helps: {} vs {}",
            c.cycles,
            b.cycles
        );
        assert!(
            d.cycles < c.cycles,
            "spreading helps: {} vs {}",
            d.cycles,
            c.cycles
        );
        assert!(e.cycles < b.cycles && e.cycles > d.cycles, "E sits between");

        // Folding removes the branches from the issue stream.
        assert!(c.issued < a.issued);
        assert_eq!(a.issued, b.issued);
        assert_eq!(a.program_instrs, c.program_instrs);

        // Case C/D apparent CPI drops below 1 (the headline result).
        assert!(c.apparent_cpi < 1.0, "C apparent CPI = {}", c.apparent_cpi);
        assert!(d.apparent_cpi < c.apparent_cpi);

        // Case D roughly doubles case A's performance (paper: 2.0).
        assert!(
            d.relative_perf > 1.6 && d.relative_perf < 2.6,
            "D relative = {}",
            d.relative_perf
        );

        // Case D issues ~1 instruction per cycle in steady state.
        assert!(d.issued_cpi < 1.1, "D issued CPI = {}", d.issued_cpi);
    }

    #[test]
    fn depth_sweep_penalty_equals_resolve_stage() {
        // Small depth set and loop count for test speed; the full 2..=6
        // sweep is the depth_sweep binary's job.
        for row in depth_sweep(&[2, 4], 64) {
            for &(distance, expected, measured) in &row.penalties {
                assert_eq!(
                    measured, expected,
                    "depth {} distance {distance}: measured {measured}, expected {expected}",
                    row.depth
                );
            }
            assert!(row.figure3_cycles > 0);
            // The predictor dimension: four labelled entries, the
            // static-bit one identical to the default-config run.
            assert_eq!(row.figure3_by_predictor.len(), 4);
            let (label, cycles, cpi) = &row.figure3_by_predictor[0];
            assert_eq!(label, "static");
            assert_eq!(*cycles, row.figure3_cycles);
            assert!((cpi - row.figure3_cpi).abs() < 1e-12);
            for (label, cycles, _) in &row.figure3_by_predictor {
                assert!(*cycles > 0, "{label}");
            }
        }
    }

    #[test]
    fn table2_totals_agree() {
        let t = table2();
        // The paper: "essentially identical" totals (9734 vs 9736).
        let diff = t.crisp_total.abs_diff(t.vax_total);
        assert!(
            diff * 100 < t.crisp_total,
            "CRISP {} vs VAX {}",
            t.crisp_total,
            t.vax_total
        );
        assert_eq!(t.crisp.get("and"), 1024);
        assert_eq!(t.vax.get("bitl"), 1024);
    }

    #[test]
    fn table3_listings_differ_and_fold() {
        let (before, after) = table3();
        assert_ne!(before, after);
        assert!(after.contains("folds with next"));
        // Spreading moves the accumulator test to the loop top: in the
        // spread listing the and3 appears before the first add.
        let and_pos = after.find("and3").expect("and3 present");
        assert!(after[..and_pos].matches("add").count() <= 2, "{after}");
    }

    #[test]
    fn table1_shape() {
        let rows = table1();
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert!(r.static_acc > 0.5, "{}: static {}", r.program, r.static_acc);
            assert!(r.branches > 200, "{}: {} branches", r.program, r.branches);
        }
        // The benchmark rows (dhry, cwhet) must show static beating
        // 1-bit dynamic — the paper's headline Table 1 observation.
        for name in ["dhry", "cwhet"] {
            let r = rows.iter().find(|r| r.program == name).expect("row");
            assert!(
                r.static_acc > r.dynamic[0],
                "{name}: static {} vs 1-bit {}",
                r.static_acc,
                r.dynamic[0]
            );
        }
    }

    #[test]
    fn btb_rows_have_sane_ranges() {
        for r in btb_compare() {
            assert!(r.btb > 0.3 && r.btb <= 1.0, "{}: btb {}", r.program, r.btb);
            assert!(
                r.jump_trace <= r.btb + 0.2,
                "{}: jt {}",
                r.program,
                r.jump_trace
            );
            assert!(r.transfers > 0);
            // Live in-pipeline rates are real probabilities and the live
            // BTB should predict most retired branches on these loops.
            assert!(
                (0.0..=1.0).contains(&r.btb_live) && r.btb_live > 0.5,
                "{}: live btb {}",
                r.program,
                r.btb_live
            );
            assert!(
                (0.0..=1.0).contains(&r.jump_trace_live),
                "{}: live jt {}",
                r.program,
                r.jump_trace_live
            );
            for cycles in r.live_cycles {
                assert!(cycles > 0, "{}: {:?}", r.program, r.live_cycles);
            }
        }
    }

    #[test]
    fn profile_guidance_never_hurts() {
        for w in prediction_workloads() {
            let (before, after) = profile_guided_mispredicts(w.source);
            assert!(after <= before, "{}: {} -> {}", w.name, before, after);
        }
    }

    #[test]
    fn icache_ablation_monotone_at_extremes() {
        let rows = ablation_icache(&[4, 32, 256], 128);
        assert!(rows[0].1 > rows[1].1, "tiny cache slower: {rows:?}");
        assert!(rows[1].1 >= rows[2].1, "bigger never slower: {rows:?}");
    }

    #[test]
    fn fold_policy_ablation() {
        let rows = ablation_fold_policy(128);
        let cycles: Vec<u64> = rows.iter().map(|r| r.1).collect();
        // None is slowest; CRISP's Host13 close to All (the paper's
        // "marginal increase in performance" claim).
        assert!(cycles[0] > cycles[2], "{rows:?}");
        let host13 = cycles[2] as f64;
        let all = cycles[3] as f64;
        assert!((host13 - all) / host13 < 0.10, "{rows:?}");
    }

    #[test]
    fn predictor_ablation_runs_everywhere() {
        for (name, st, d1, d2) in ablation_predictor() {
            assert!(st > 0 && d1 > 0 && d2 > 0, "{name}");
            // Finite 2-bit hardware should be within 25% of the static
            // bit either way on these workloads.
            let ratio = d2 as f64 / st as f64;
            assert!((0.75..1.25).contains(&ratio), "{name}: ratio {ratio}");
        }
    }

    #[test]
    fn finite_tables_approach_the_infinite_one() {
        for (name, infinite, by_size) in ablation_finite_dynamic(&[16, 1024]) {
            let small = by_size[0];
            let large = by_size[1];
            assert!(
                large >= small - 0.01,
                "{name}: {small} -> {large} should not degrade"
            );
            assert!(
                (large - infinite).abs() < 0.03,
                "{name}: 1024-entry {large} vs infinite {infinite}"
            );
        }
    }

    #[test]
    fn bbsize_ablation_spreading_gain_grows_with_block() {
        let rows = ablation_bbsize(&[0, 1, 3]);
        // Spreading never hurts on these loops...
        for r in &rows {
            assert!(r.2 <= r.1, "{rows:?}");
        }
        // ... and the absolute gain grows with the number of fillable
        // statements: with 0 the step alone moves (penalty 3 -> 2), with
        // 3 the branch resolves at fetch (penalty 3 -> 0).
        let gain = |r: &(usize, u64, u64)| r.1 - r.2;
        assert!(gain(&rows[2]) > gain(&rows[0]), "{rows:?}");
    }

    #[test]
    fn mem_latency_ablation_bounded_by_cache() {
        let rows = ablation_mem_latency(&[1, 4, 16], 256);
        assert!(rows[2].1 > rows[0].1);
        // The decoded cache decouples the EU: even 16-cycle memory
        // costs far less than 16x.
        assert!((rows[2].1 as f64) < (rows[0].1 as f64) * 2.0, "{rows:?}");
    }
}

use std::fmt;

use crisp_isa::IsaError;

/// Errors produced while parsing or assembling a module.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AsmError {
    /// A branch referenced a label never defined.
    UndefinedLabel {
        /// The missing label.
        label: String,
    },
    /// The same label was defined twice.
    DuplicateLabel {
        /// The offending label.
        label: String,
    },
    /// A source line could not be parsed.
    Parse {
        /// 1-based line number within the source text.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// Instruction encoding failed after layout.
    Encode {
        /// Byte address of the offending instruction.
        at: u32,
        /// The underlying ISA error.
        source: IsaError,
    },
    /// Branch relaxation failed to converge (cannot happen with a
    /// monotone promotion scheme; kept as a defensive bound).
    RelaxationDiverged,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UndefinedLabel { label } => write!(f, "undefined label `{label}`"),
            AsmError::DuplicateLabel { label } => write!(f, "duplicate label `{label}`"),
            AsmError::Parse { line, message } => write!(f, "line {line}: {message}"),
            AsmError::Encode { at, source } => {
                write!(f, "encoding failed at {at:#x}: {source}")
            }
            AsmError::RelaxationDiverged => write!(f, "branch relaxation did not converge"),
        }
    }
}

impl std::error::Error for AsmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AsmError::Encode { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<IsaError> for AsmError {
    fn from(source: IsaError) -> Self {
        AsmError::Encode { at: 0, source }
    }
}

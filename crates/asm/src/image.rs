use std::collections::BTreeMap;

/// An executable program image: code parcels plus initialised data,
/// the unit the simulator loads.
///
/// The default memory map places code at address 0, global data at
/// [`Image::DEFAULT_DATA_BASE`], and the initial stack pointer at
/// [`Image::DEFAULT_STACK_TOP`] growing down. The compiler and assembler
/// both emit images; the simulator's `Machine::load` consumes them.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Image {
    /// Byte address at which `parcels[0]` is loaded (2-aligned).
    pub code_base: u32,
    /// The encoded instruction stream.
    pub parcels: Vec<u16>,
    /// Initialised data blocks: `(byte_address, words)`.
    pub data: Vec<(u32, Vec<i32>)>,
    /// Entry-point byte address.
    pub entry: u32,
    /// Initial stack pointer (4-aligned); `None` selects the simulator's
    /// default of [`Image::DEFAULT_STACK_TOP`].
    pub stack_top: Option<u32>,
    /// Label/symbol table: name → byte address.
    pub symbols: BTreeMap<String, u32>,
}

impl Image {
    /// Default base address for global data.
    pub const DEFAULT_DATA_BASE: u32 = 0x0001_0000;
    /// Default initial stack pointer. Sits 64 KiB below the top of the
    /// default memory so that positive SP-relative slots (the current
    /// frame's locals) always have headroom.
    pub const DEFAULT_STACK_TOP: u32 = 0x0003_0000;

    /// An empty image with entry at `code_base`.
    pub fn new(code_base: u32) -> Image {
        Image {
            code_base,
            entry: code_base,
            ..Image::default()
        }
    }

    /// Total code size in bytes.
    pub fn code_bytes(&self) -> u32 {
        self.parcels.len() as u32 * 2
    }

    /// Address of a symbol.
    pub fn symbol(&self, name: &str) -> Option<u32> {
        self.symbols.get(name).copied()
    }

    /// The smallest memory size (in bytes) that contains the code, all
    /// data blocks and the stack top.
    pub fn min_memory_bytes(&self) -> u32 {
        let mut end = self.code_base + self.code_bytes();
        for (addr, words) in &self.data {
            end = end.max(addr + words.len() as u32 * 4);
        }
        end = end.max(self.stack_top.unwrap_or(Image::DEFAULT_STACK_TOP) + 4);
        end
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_memory_covers_everything() {
        let mut img = Image::new(0);
        img.parcels = vec![0; 10]; // 20 bytes of code
        img.data.push((0x100, vec![1, 2, 3]));
        img.stack_top = Some(0x200);
        assert_eq!(img.min_memory_bytes(), 0x204);
        img.data.push((0x300, vec![0]));
        assert_eq!(img.min_memory_bytes(), 0x304);
    }

    #[test]
    fn symbol_lookup() {
        let mut img = Image::new(0);
        img.symbols.insert("main".into(), 0x40);
        assert_eq!(img.symbol("main"), Some(0x40));
        assert_eq!(img.symbol("nope"), None);
    }
}

//! Disassembler and listing generation.
//!
//! [`disassemble`] walks a parcel stream linearly, decoding one
//! instruction at a time. [`listing`] renders an annotated listing and —
//! given a [`FoldPolicy`] — marks the instruction pairs the PDU would
//! fold, which is how the paper's Table 3 "before/after" listings are
//! produced by the bench harness.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crisp_isa::{decode_and_fold, encoding, FoldPolicy, Instr, IsaError};

use crate::Image;

/// One disassembled instruction: `(byte_address, instruction, parcels)`.
pub type DisasmLine = (u32, Instr, usize);

/// Linearly disassemble a parcel stream loaded at `base`.
///
/// Stops at the end of the stream.
///
/// # Errors
///
/// Propagates decode errors (with the byte address folded into the
/// result) when the stream contains unassigned opcodes — e.g. when data
/// words are interleaved with code; callers that expect mixed streams
/// should disassemble per-function ranges.
pub fn disassemble(parcels: &[u16], base: u32) -> Result<Vec<DisasmLine>, (u32, IsaError)> {
    let mut out = Vec::new();
    let mut at = 0usize;
    while at < parcels.len() {
        let addr = base + at as u32 * 2;
        let (instr, len) = encoding::decode(parcels, at).map_err(|e| (addr, e))?;
        out.push((addr, instr, len));
        at += len;
    }
    Ok(out)
}

/// Render an annotated listing.
///
/// Each line shows the byte address, the instruction, and — when `policy`
/// permits folding with the *next* instruction — a `\ folded` marker on
/// the host plus a `/` continuation on the absorbed branch, making the
/// pairs the PDU merges visible:
///
/// ```text
/// 0x0000  add 0(sp),$1        \ folds with next
/// 0x0002  ifjmpy.t .-2        /
/// 0x0004  halt
/// ```
///
/// # Errors
///
/// Same conditions as [`disassemble`].
pub fn listing(parcels: &[u16], base: u32, policy: FoldPolicy) -> Result<String, (u32, IsaError)> {
    listing_with_symbols(parcels, base, policy, &BTreeMap::new())
}

/// [`listing`] with label lines interleaved from a symbol table
/// (`name → address`), as produced by the assembler. Compiler-internal
/// labels (starting with `.`) are skipped.
///
/// # Errors
///
/// Same conditions as [`disassemble`].
pub fn listing_with_symbols(
    parcels: &[u16],
    base: u32,
    policy: FoldPolicy,
    symbols: &BTreeMap<String, u32>,
) -> Result<String, (u32, IsaError)> {
    let lines = disassemble(parcels, base)?;
    let mut by_addr: BTreeMap<u32, Vec<&str>> = BTreeMap::new();
    for (name, &addr) in symbols {
        if !name.starts_with('.') {
            by_addr.entry(addr).or_default().push(name);
        }
    }
    let mut out = String::new();
    let mut absorbed_next = false;
    for (addr, instr, _len) in &lines {
        if let Some(names) = by_addr.get(addr) {
            for name in names {
                let _ = writeln!(out, "{name}:");
            }
        }
        let parcel_at = (addr - base) as usize / 2;
        let folds = !absorbed_next
            && decode_and_fold(parcels, parcel_at, *addr, policy)
                .map(|d| d.folded)
                .unwrap_or(false);
        let marker = if folds {
            "\\ folds with next"
        } else if absorbed_next {
            "/"
        } else {
            ""
        };
        let text = instr.to_string();
        let _ = writeln!(out, "{addr:#06x}  {text:<28}{marker}");
        absorbed_next = folds;
    }
    Ok(out)
}

/// Convenience: annotated listing of a whole image, using its symbol
/// table.
///
/// # Errors
///
/// Same conditions as [`disassemble`].
pub fn listing_of(image: &Image, policy: FoldPolicy) -> Result<String, (u32, IsaError)> {
    listing_with_symbols(&image.parcels, image.code_base, policy, &image.symbols)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assemble_text;

    #[test]
    fn disassemble_round_trips_addresses() {
        let img = assemble_text(
            "
            top: add 0(sp),$1
                 cmp.s< 0(sp),$1024
                 ifjmpy.t top
                 halt
            ",
        )
        .unwrap();
        let lines = disassemble(&img.parcels, 0).unwrap();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0].0, 0);
        assert_eq!(lines[1].0, 2); // add is 1 parcel
        assert_eq!(lines[2].0, 8); // cmp is 3 parcels
        assert_eq!(lines[3].0, 10);
    }

    #[test]
    fn listing_marks_folds() {
        let img = assemble_text(
            "
            top: add 0(sp),$1
                 ifjmpy.t top
                 halt
            ",
        )
        .unwrap();
        let text = listing(&img.parcels, 0, FoldPolicy::Host13).unwrap();
        assert!(text.contains("folds with next"), "{text}");
        let text_nofold = listing(&img.parcels, 0, FoldPolicy::None).unwrap();
        assert!(!text_nofold.contains("folds with next"), "{text_nofold}");
    }

    #[test]
    fn absorbed_branch_does_not_refold() {
        // Three instructions where the middle one is a branch: the
        // branch must not itself be marked as folding into the halt.
        let img = assemble_text(
            "
            a: add 0(sp),$1
               jmp a
               add 0(sp),$2
               jmp a
            ",
        )
        .unwrap();
        let text = listing(&img.parcels, 0, FoldPolicy::Host13).unwrap();
        let folds = text.matches("folds with next").count();
        assert_eq!(folds, 2, "{text}");
    }

    #[test]
    fn symbol_listing_interleaves_labels() {
        let mut img = assemble_text(
            "
            main: nop
            loop: add 0(sp),$1
                  ifjmpy.t loop
                  halt
            ",
        )
        .unwrap();
        // Compiler-internal labels (only creatable through the Module
        // API) start with `.`.
        img.symbols.insert(".hidden".into(), 6);
        let text = crate::listing_of(&img, FoldPolicy::Host13).unwrap();
        assert!(text.contains("main:"), "{text}");
        assert!(text.contains("loop:"), "{text}");
        // Compiler-internal labels are suppressed.
        assert!(!text.contains(".hidden"), "{text}");
        // The label precedes its instruction.
        let l = text.find("loop:").unwrap();
        let a = text.find("add").unwrap();
        assert!(l < a);
    }

    #[test]
    fn bad_stream_reports_address() {
        // op6 = 47 unassigned, placed after one good parcel.
        let parcels = vec![0u16, 47 << 10];
        let err = disassemble(&parcels, 0x100).unwrap_err();
        assert_eq!(err.0, 0x102);
    }
}

//! Seeded random program generation for the differential harness.
//!
//! [`GenProgram::generate`] builds terminating programs from a small
//! PRNG seed, deliberately biased toward the cases that stress the
//! cycle engine's speculation machinery: compares folded with their
//! branches (RR-stage resolution), spread compares (OR/IR/fetch
//! resolution), branches whose targets are themselves branches, stores
//! sitting in the squash window behind a mispredicted branch,
//! deliberately unaligned absolute operands, call/return pairs, and
//! padding runs sized to alias in small decoded caches.
//!
//! Every program is a counted outer loop whose body is a sequence of
//! independent *blocks*; branches inside a block only jump forward
//! within it, so the program terminates for any subset of blocks. That
//! subset structure is what [`shrink`] exploits: a failing program is
//! minimised by bisecting windows of blocks off the enabled mask
//! (delta-debugging style) and then shrinking the iteration count,
//! re-running the caller's failure predicate at each step.

use crisp_isa::{BinOp, Cond, Instr, Operand};

use crate::{assemble, AsmError, Image, Item, Module};

/// Base of the absolute-operand scratch region blocks store into
/// (inside the default data segment, well away from code and stack).
const SCRATCH_BASE: u32 = 0x0001_0000;
/// Size of the scratch region in bytes.
const SCRATCH_SIZE: u32 = 0x400;
/// Stack slots available to blocks: `4..=4 * MAX_SLOT` (slot 0 is the
/// outer loop counter).
const MAX_SLOT: u64 = 30;

/// A small deterministic PRNG (splitmix64): one `u64` of state, full
/// 64-bit output, good enough mixing for test-case generation and —
/// unlike a library RNG — trivially reproducible from the seed printed
/// in a failure report.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// Seed the generator.
    pub fn new(seed: u64) -> Rng {
        Rng(seed)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n` must be nonzero).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// A fair coin.
    pub fn flip(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Pick one element of a nonempty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len() as u64) as usize]
    }
}

/// The hard-case family a generated block belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockKind {
    /// `cmp` immediately followed by its branch: folds under
    /// `Host1`/`Host13`/`All`, resolving (possibly mispredicted) at RR.
    FoldedCompare,
    /// `cmp` with 1–3 fillers before the branch: resolution at
    /// OR, IR, or cache-read time.
    SpreadCompare,
    /// A conditional branch whose target is itself a branch.
    BranchIntoBranch,
    /// A wide (3- or 5-parcel) host directly before a branch — the
    /// 3-parcel form folds under `Host13`/`All` but not `Host1`, the
    /// 5-parcel form only under `All`.
    WideHostFold,
    /// Stores on both paths of a conditional branch, so a mispredict
    /// puts a store in the squash window.
    SquashStores,
    /// A straight run of instructions long enough to alias in a small
    /// decoded cache.
    CacheConflict,
    /// Loads and stores through deliberately unaligned absolute
    /// addresses (exercising the round-down masking contract).
    UnalignedAbs,
    /// A call to a local leaf function and back.
    CallRet,
    /// Accumulator ALU traffic, including division/remainder edge
    /// cases and shifts.
    AccumAlu,
}

impl BlockKind {
    /// Stable kebab-case name (used in reports).
    pub fn name(self) -> &'static str {
        match self {
            BlockKind::FoldedCompare => "folded-compare",
            BlockKind::SpreadCompare => "spread-compare",
            BlockKind::BranchIntoBranch => "branch-into-branch",
            BlockKind::WideHostFold => "wide-host-fold",
            BlockKind::SquashStores => "squash-stores",
            BlockKind::CacheConflict => "cache-conflict",
            BlockKind::UnalignedAbs => "unaligned-abs",
            BlockKind::CallRet => "call-ret",
            BlockKind::AccumAlu => "accum-alu",
        }
    }
}

/// One self-contained fragment of a generated program. All internal
/// branches are forward and target labels within the block, so any
/// subset of a program's blocks still assembles and terminates.
#[derive(Debug, Clone)]
pub struct Block {
    /// Which hard-case family produced it.
    pub kind: BlockKind,
    /// The assembly items.
    pub items: Vec<Item>,
}

/// A generated program: an enabled subset of blocks inside a counted
/// outer loop. [`GenProgram::image`] assembles the current subset;
/// [`shrink`] minimises it against a failure predicate.
#[derive(Debug, Clone)]
pub struct GenProgram {
    /// The seed that produced it (carried for failure reports).
    pub seed: u64,
    /// The block pool, in program order.
    pub blocks: Vec<Block>,
    /// Which blocks are currently part of the program
    /// (`enabled[i]` ↔ `blocks[i]`; starts all-true).
    pub enabled: Vec<bool>,
    /// Outer-loop iteration count (at least 1).
    pub iters: u8,
}

impl GenProgram {
    /// Generate a program from `seed` with up to `max_blocks` blocks.
    pub fn generate(seed: u64, max_blocks: usize) -> GenProgram {
        let mut rng = Rng::new(seed);
        let n_blocks = 1 + rng.below(max_blocks.max(1) as u64) as usize;
        let blocks: Vec<Block> = (0..n_blocks).map(|i| gen_block(&mut rng, i)).collect();
        let enabled = vec![true; blocks.len()];
        let iters = 1 + rng.below(24) as u8;
        GenProgram {
            seed,
            blocks,
            enabled,
            iters,
        }
    }

    /// Number of currently enabled blocks.
    pub fn enabled_blocks(&self) -> usize {
        self.enabled.iter().filter(|e| **e).count()
    }

    /// Lower the program to an assembly module: the enabled blocks
    /// wrapped in the counted outer loop.
    pub fn module(&self) -> Module {
        let mut m = Module::new();
        m.push(Item::Instr(Instr::Op2 {
            op: BinOp::Mov,
            dst: Operand::SpOff(0),
            src: Operand::Imm(0),
        }));
        m.push(Item::Label("top".into()));
        for (block, _) in self.blocks.iter().zip(&self.enabled).filter(|(_, on)| **on) {
            m.items.extend(block.items.iter().cloned());
        }
        m.push(Item::Instr(Instr::Op2 {
            op: BinOp::Add,
            dst: Operand::SpOff(0),
            src: Operand::Imm(1),
        }));
        m.push(Item::Instr(Instr::Cmp {
            cond: Cond::LtS,
            a: Operand::SpOff(0),
            b: Operand::Imm(self.iters as i32),
        }));
        m.push(Item::IfJmpTo {
            on_true: true,
            predict_taken: true,
            label: "top".into(),
        });
        m.push(Item::Instr(Instr::Halt));
        m
    }

    /// Assemble the current subset into an executable image.
    ///
    /// # Errors
    ///
    /// Propagates [`AsmError`] — which generated programs never hit;
    /// an error here is a generator bug worth surfacing.
    pub fn image(&self) -> Result<Image, AsmError> {
        assemble(&self.module())
    }
}

fn slot(rng: &mut Rng) -> Operand {
    Operand::SpOff(4 * (1 + rng.below(MAX_SLOT)) as i32)
}

/// A scratch-region absolute address; unaligned three times in four so
/// the round-down masking contract is always in play.
fn scratch(rng: &mut Rng) -> Operand {
    Operand::Abs(SCRATCH_BASE + rng.below(SCRATCH_SIZE as u64) as u32)
}

fn src(rng: &mut Rng) -> Operand {
    match rng.below(8) {
        0..=2 => slot(rng),
        3 | 4 => Operand::Imm(rng.next_u64() as i32 % 1000),
        5 => Operand::Imm(rng.next_u64() as i32), // full-range constants
        6 => Operand::Accum,
        _ => scratch(rng),
    }
}

fn store_dst(rng: &mut Rng) -> Operand {
    match rng.below(4) {
        0 | 1 => slot(rng),
        2 => Operand::Accum,
        _ => scratch(rng),
    }
}

fn alu(rng: &mut Rng) -> Item {
    let op = *rng.pick(&BinOp::ALL);
    if rng.flip() {
        Item::Instr(Instr::Op2 {
            op,
            dst: store_dst(rng),
            src: src(rng),
        })
    } else {
        let op = if op == BinOp::Mov { BinOp::Add } else { op };
        Item::Instr(Instr::Op3 {
            op,
            a: src(rng),
            b: src(rng),
        })
    }
}

fn cmp(rng: &mut Rng) -> Item {
    Item::Instr(Instr::Cmp {
        cond: *rng.pick(&Cond::ALL),
        a: src(rng),
        b: src(rng),
    })
}

fn ifjmp(rng: &mut Rng, label: &str) -> Item {
    Item::IfJmpTo {
        on_true: rng.flip(),
        predict_taken: rng.flip(),
        label: label.to_owned(),
    }
}

/// Generate one block. `idx` namespaces the labels so blocks compose.
fn gen_block(rng: &mut Rng, idx: usize) -> Block {
    let lbl = |n: &str| format!("b{idx}_{n}");
    let kind = match rng.below(15) {
        0..=2 => BlockKind::FoldedCompare,
        3..=4 => BlockKind::SpreadCompare,
        5..=6 => BlockKind::SquashStores,
        7..=8 => BlockKind::BranchIntoBranch,
        9 => BlockKind::WideHostFold,
        10 => BlockKind::CacheConflict,
        11 => BlockKind::UnalignedAbs,
        12 => BlockKind::CallRet,
        _ => BlockKind::AccumAlu,
    };
    let mut items = Vec::new();
    match kind {
        BlockKind::FoldedCompare => {
            items.push(cmp(rng));
            items.push(ifjmp(rng, &lbl("end")));
            for _ in 0..1 + rng.below(2) {
                items.push(alu(rng));
            }
            items.push(Item::Label(lbl("end")));
        }
        BlockKind::SpreadCompare => {
            items.push(cmp(rng));
            for _ in 0..1 + rng.below(3) {
                items.push(alu(rng));
            }
            items.push(ifjmp(rng, &lbl("end")));
            items.push(alu(rng));
            items.push(Item::Label(lbl("end")));
        }
        BlockKind::BranchIntoBranch => {
            items.push(cmp(rng));
            items.push(ifjmp(rng, &lbl("mid")));
            items.push(alu(rng));
            // The first branch's target is itself a branch.
            items.push(Item::Label(lbl("mid")));
            items.push(ifjmp(rng, &lbl("end")));
            items.push(alu(rng));
            items.push(Item::Label(lbl("end")));
        }
        BlockKind::WideHostFold => {
            items.push(cmp(rng));
            // Multi-parcel host directly before the branch. A long
            // immediate (> 31) costs one extension parcel → a 3-parcel
            // host that Host1 refuses but Host13/All fold; an absolute
            // operand costs two → a 5-parcel host only All folds.
            let src = if rng.flip() {
                Operand::Imm(32 + rng.below(1 << 20) as i32)
            } else {
                scratch(rng)
            };
            items.push(Item::Instr(Instr::Op2 {
                op: BinOp::Add,
                dst: slot(rng),
                src,
            }));
            items.push(ifjmp(rng, &lbl("end")));
            items.push(alu(rng));
            items.push(Item::Label(lbl("end")));
        }
        BlockKind::SquashStores => {
            items.push(cmp(rng));
            items.push(ifjmp(rng, &lbl("taken")));
            // Fallthrough-path store: squashed iff the branch was
            // mispredicted not-taken.
            items.push(Item::Instr(Instr::Op2 {
                op: BinOp::Mov,
                dst: scratch(rng),
                src: src(rng),
            }));
            items.push(Item::JmpTo { label: lbl("end") });
            items.push(Item::Label(lbl("taken")));
            // Taken-path store: in the squash window the other way.
            items.push(Item::Instr(Instr::Op2 {
                op: BinOp::Mov,
                dst: store_dst(rng),
                src: src(rng),
            }));
            items.push(Item::Label(lbl("end")));
        }
        BlockKind::CacheConflict => {
            // Enough distinct entry PCs to overflow a small decoded
            // cache every iteration.
            for _ in 0..16 + rng.below(32) {
                if rng.below(4) == 0 {
                    items.push(Item::Instr(Instr::Nop));
                } else {
                    items.push(alu(rng));
                }
            }
        }
        BlockKind::UnalignedAbs => {
            for _ in 0..2 + rng.below(3) {
                if rng.flip() {
                    items.push(Item::Instr(Instr::Op2 {
                        op: BinOp::Mov,
                        dst: scratch(rng),
                        src: src(rng),
                    }));
                } else {
                    items.push(Item::Instr(Instr::Op2 {
                        op: *rng.pick(&[BinOp::Add, BinOp::Xor, BinOp::Or]),
                        dst: slot(rng),
                        src: scratch(rng),
                    }));
                }
            }
        }
        BlockKind::CallRet => {
            items.push(Item::JmpTo { label: lbl("over") });
            items.push(Item::Label(lbl("fn")));
            // Leaf body: accumulator-only, so the frame (where the
            // return address now sits at 0(sp)) stays untouched.
            for _ in 0..1 + rng.below(2) {
                items.push(Item::Instr(Instr::Op3 {
                    op: *rng.pick(&[BinOp::Add, BinOp::Xor, BinOp::Mul]),
                    a: Operand::Accum,
                    b: src(rng),
                }));
            }
            items.push(Item::Instr(Instr::Ret));
            items.push(Item::Label(lbl("over")));
            items.push(Item::CallTo { label: lbl("fn") });
        }
        BlockKind::AccumAlu => {
            for _ in 0..1 + rng.below(3) {
                let op = *rng.pick(&[
                    BinOp::Div,
                    BinOp::Rem,
                    BinOp::Shl,
                    BinOp::Shr,
                    BinOp::Sar,
                    BinOp::Mul,
                    BinOp::Sub,
                ]);
                items.push(Item::Instr(Instr::Op3 {
                    op,
                    a: if rng.flip() { Operand::Accum } else { src(rng) },
                    b: src(rng),
                }));
            }
        }
    }
    Block { kind, items }
}

/// Minimise a failing program: repeatedly bisect windows of enabled
/// blocks off the program (largest windows first, delta-debugging
/// style), then shrink the outer iteration count, keeping every
/// candidate for which `fails` still returns `true`. The result fails
/// and is 1-minimal over whole blocks: disabling any single remaining
/// block (or halving the iterations again) makes the failure vanish.
///
/// `fails` must return `true` for `prog` itself; the caller checks
/// this before shrinking.
pub fn shrink(mut prog: GenProgram, mut fails: impl FnMut(&GenProgram) -> bool) -> GenProgram {
    let mut chunk = prog.enabled_blocks().max(1);
    loop {
        let mut start = 0;
        while start < prog.blocks.len() {
            let mut cand = prog.clone();
            let mut any = false;
            for on in cand
                .enabled
                .iter_mut()
                .skip(start)
                .take(chunk)
                .filter(|on| **on)
            {
                *on = false;
                any = true;
            }
            if any && fails(&cand) {
                prog = cand;
            }
            start += chunk;
        }
        if chunk == 1 {
            break;
        }
        chunk = chunk.div_ceil(2);
    }
    // Iteration count: halve while the failure survives, then step down.
    while prog.iters > 1 {
        let mut cand = prog.clone();
        cand.iters /= 2;
        if !fails(&cand) {
            break;
        }
        prog = cand;
    }
    while prog.iters > 1 {
        let mut cand = prog.clone();
        cand.iters -= 1;
        if !fails(&cand) {
            break;
        }
        prog = cand;
    }
    prog
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = GenProgram::generate(42, 12);
        let b = GenProgram::generate(42, 12);
        assert_eq!(a.iters, b.iters);
        assert_eq!(a.blocks.len(), b.blocks.len());
        assert_eq!(
            a.image().unwrap().parcels,
            b.image().unwrap().parcels,
            "same seed, same program"
        );
        let c = GenProgram::generate(43, 12);
        assert!(
            a.blocks.len() != c.blocks.len()
                || a.image().unwrap().parcels != c.image().unwrap().parcels
        );
    }

    #[test]
    fn every_seed_assembles_with_any_subset() {
        for seed in 0..200 {
            let mut p = GenProgram::generate(seed, 10);
            p.image()
                .unwrap_or_else(|e| panic!("seed {seed} failed to assemble: {e:?}"));
            // Arbitrary subsets must assemble too (shrinking relies
            // on it).
            let mut rng = Rng::new(seed ^ 0xDEAD_BEEF);
            for on in p.enabled.iter_mut() {
                *on = rng.flip();
            }
            p.image()
                .unwrap_or_else(|e| panic!("seed {seed} subset failed: {e:?}"));
        }
    }

    #[test]
    fn hard_case_kinds_all_appear() {
        let mut seen = std::collections::BTreeSet::new();
        for seed in 0..300 {
            for b in &GenProgram::generate(seed, 12).blocks {
                seen.insert(b.kind.name());
            }
        }
        for kind in [
            "folded-compare",
            "spread-compare",
            "branch-into-branch",
            "wide-host-fold",
            "squash-stores",
            "cache-conflict",
            "unaligned-abs",
            "call-ret",
            "accum-alu",
        ] {
            assert!(seen.contains(kind), "{kind} never generated");
        }
    }

    #[test]
    fn shrink_reaches_a_minimal_failing_subset() {
        // Synthetic predicate: "fails" iff a particular block is
        // enabled and iters >= 3. Shrinking must isolate exactly that
        // block at exactly 3 iterations.
        let prog = GenProgram::generate(7, 12);
        assert!(prog.blocks.len() > 1, "want a multi-block program");
        let guilty = prog.blocks.len() / 2;
        let mut prog = prog;
        prog.iters = prog.iters.max(9);
        let min = shrink(prog, |p| p.enabled[guilty] && p.iters >= 3);
        assert_eq!(min.enabled_blocks(), 1);
        assert!(min.enabled[guilty]);
        assert_eq!(min.iters, 3);
    }
}

//! Assembler and disassembler for the CRISP-like instruction set.
//!
//! The assembler consumes a [`Module`] — a sequence of labels,
//! instructions, label-targeted branches and data words — lays it out,
//! *relaxes* branches (a label branch becomes a one-parcel PC-relative
//! form when the 10-bit offset reaches it, otherwise the three-parcel
//! absolute form), and produces an executable [`Image`].
//!
//! A small textual syntax is also provided ([`assemble_text`]) for
//! hand-written programs and for round-tripping the disassembler
//! ([`disassemble`], [`listing`]).
//!
//! # Example
//!
//! ```
//! use crisp_asm::assemble_text;
//!
//! let image = assemble_text(
//!     "
//!     start:
//!         mov 0(sp),$0
//!     loop:
//!         add 0(sp),$1
//!         cmp.s< 0(sp),$10
//!         ifjmpy.t loop
//!         halt
//!     ",
//! )?;
//! assert!(image.parcels.len() > 0);
//! assert_eq!(image.symbols["loop"], image.symbols["start"] + 2);
//! # Ok::<(), crisp_asm::AsmError>(())
//! ```

#![warn(missing_docs)]

mod disasm;
mod error;
mod image;
mod module;
mod parse;
pub mod rand_prog;

pub use disasm::{disassemble, listing, listing_of, listing_with_symbols};
pub use error::AsmError;
pub use image::Image;
pub use module::{assemble, Item, Module};
pub use parse::{assemble_text, parse_module};
pub use rand_prog::{shrink, Block, BlockKind, GenProgram, Rng};

//! Textual assembly syntax.
//!
//! The syntax mirrors the paper's listings (Table 3) and this crate's
//! `Display` implementations:
//!
//! ```text
//! ; comment
//! main:
//!     enter 16
//! loop:
//!     add 0(sp),$1         ; slot += imm
//!     and3 4(sp),$1        ; Accum = slot & imm
//!     cmp.= Accum,$0
//!     ifjmpy.t loop        ; branch if flag true, predicted taken
//!     mov *0x10000,Accum   ; absolute
//!     mov [8(sp)],$5       ; stack-indirect
//!     call f
//!     jmp .+4              ; explicit pc-relative
//!     leave 16
//!     ret
//!     halt
//!     .align
//!     .word 1, 2, 3
//!     .entry main
//! ```

use crisp_isa::{BinOp, BranchTarget, Cond, Instr, Operand};

use crate::{assemble, AsmError, Image, Item, Module};

/// Parse assembly text into a [`Module`].
///
/// # Errors
///
/// [`AsmError::Parse`] with a 1-based line number on any syntax error.
pub fn parse_module(src: &str) -> Result<Module, AsmError> {
    let mut module = Module::new();
    for (lineno, raw) in src.lines().enumerate() {
        let line = lineno + 1;
        let text = strip_comment(raw).trim();
        if text.is_empty() {
            continue;
        }
        let mut rest = text;
        // Leading labels (possibly several, possibly with an instruction after).
        while let Some(colon) = find_label(rest) {
            let (label, tail) = rest.split_at(colon);
            let label = label.trim();
            if !is_ident(label) {
                return err(line, format!("invalid label `{label}`"));
            }
            module.push(Item::Label(label.to_owned()));
            rest = tail[1..].trim();
        }
        if rest.is_empty() {
            continue;
        }
        let item = parse_stmt(rest, line)?;
        match item {
            Stmt::Item(item) => {
                module.push(item);
            }
            Stmt::Words(ws) => {
                for w in ws {
                    module.push(Item::Word(w));
                }
            }
            Stmt::Entry(label) => module.entry = Some(label),
        }
    }
    Ok(module)
}

/// Parse and assemble in one step.
///
/// # Errors
///
/// Any [`AsmError`] from parsing or assembly.
pub fn assemble_text(src: &str) -> Result<Image, AsmError> {
    assemble(&parse_module(src)?)
}

enum Stmt {
    Item(Item),
    Words(Vec<i32>),
    Entry(String),
}

fn strip_comment(line: &str) -> &str {
    match line.find([';', '#']) {
        Some(pos) => &line[..pos],
        None => line,
    }
}

/// Find the colon ending a leading label, ignoring colons elsewhere.
fn find_label(s: &str) -> Option<usize> {
    let colon = s.find(':')?;
    // Only treat it as a label if everything before it is an identifier.
    is_ident(s[..colon].trim()).then_some(colon)
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn err<T>(line: usize, message: String) -> Result<T, AsmError> {
    Err(AsmError::Parse { line, message })
}

fn parse_int(s: &str, line: usize) -> Result<i64, AsmError> {
    let s = s.trim();
    let (neg, body) = match s.strip_prefix('-') {
        Some(b) => (true, b),
        None => (false, s),
    };
    let value = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16)
    } else {
        body.parse::<i64>()
    };
    match value {
        Ok(v) => Ok(if neg { -v } else { v }),
        Err(_) => err(line, format!("bad number `{s}`")),
    }
}

fn parse_operand(s: &str, line: usize) -> Result<Operand, AsmError> {
    let s = s.trim();
    if s.eq_ignore_ascii_case("accum") {
        return Ok(Operand::Accum);
    }
    if let Some(imm) = s.strip_prefix('$') {
        return Ok(Operand::Imm(parse_int(imm, line)? as i32));
    }
    if let Some(inner) = s.strip_prefix('[').and_then(|t| t.strip_suffix(']')) {
        let inner = inner.trim();
        let off = inner
            .strip_suffix("(sp)")
            .ok_or(())
            .or_else(|()| err(line, format!("bad stack-indirect operand `{s}`")))?;
        return Ok(Operand::SpInd(parse_int(off, line)? as i32));
    }
    if let Some(abs) = s.strip_prefix('*') {
        return Ok(Operand::Abs(parse_int(abs, line)? as u32));
    }
    if let Some(off) = s.strip_suffix("(sp)") {
        return Ok(Operand::SpOff(parse_int(off, line)? as i32));
    }
    err(line, format!("bad operand `{s}`"))
}

fn split2(args: &str, line: usize) -> Result<(&str, &str), AsmError> {
    let mut parts = args.splitn(2, ',');
    let a = parts.next().unwrap_or("").trim();
    let b = parts.next().unwrap_or("").trim();
    if a.is_empty() || b.is_empty() {
        return err(line, format!("expected two operands in `{args}`"));
    }
    Ok((a, b))
}

/// A branch target in source form: label, `.±N`, `*abs`, `*N(sp)` or a
/// bare number (absolute).
enum SrcTarget {
    Label(String),
    Concrete(BranchTarget),
}

fn parse_target(s: &str, line: usize) -> Result<SrcTarget, AsmError> {
    let s = s.trim();
    if is_ident(s) {
        return Ok(SrcTarget::Label(s.to_owned()));
    }
    if let Some(rel) = s.strip_prefix('.') {
        return Ok(SrcTarget::Concrete(BranchTarget::PcRel(
            parse_int(rel, line)? as i32,
        )));
    }
    if let Some(ind) = s.strip_prefix('*') {
        if let Some(off) = ind.strip_suffix("(sp)") {
            return Ok(SrcTarget::Concrete(BranchTarget::IndSp(
                parse_int(off, line)? as i32,
            )));
        }
        return Ok(SrcTarget::Concrete(BranchTarget::IndAbs(
            parse_int(ind, line)? as u32,
        )));
    }
    Ok(SrcTarget::Concrete(BranchTarget::Abs(
        parse_int(s, line)? as u32
    )))
}

fn binop_by_name(name: &str) -> Option<BinOp> {
    BinOp::ALL.into_iter().find(|op| op.mnemonic() == name)
}

fn parse_stmt(text: &str, line: usize) -> Result<Stmt, AsmError> {
    let (mnemonic, args) = match text.find(char::is_whitespace) {
        Some(pos) => (&text[..pos], text[pos..].trim()),
        None => (text, ""),
    };
    let m = mnemonic.to_ascii_lowercase();

    // Directives.
    if let Some(rest) = m.strip_prefix('.') {
        return match rest {
            "word" => {
                let mut words = Vec::new();
                for part in args.split(',') {
                    words.push(parse_int(part, line)? as i32);
                }
                Ok(Stmt::Words(words))
            }
            "align" => Ok(Stmt::Item(Item::Align4)),
            "entry" => {
                if !is_ident(args) {
                    return err(line, format!("bad entry label `{args}`"));
                }
                Ok(Stmt::Entry(args.to_owned()))
            }
            other => err(line, format!("unknown directive `.{other}`")),
        };
    }

    // cmp.<cond>
    if let Some(cond_s) = m.strip_prefix("cmp.") {
        let cond = Cond::from_suffix(cond_s)
            .ok_or(())
            .or_else(|()| err(line, format!("unknown condition `{cond_s}`")))?;
        let (a, b) = split2(args, line)?;
        return Ok(Stmt::Item(Item::Instr(Instr::Cmp {
            cond,
            a: parse_operand(a, line)?,
            b: parse_operand(b, line)?,
        })));
    }

    // ifjmp{y,n}[.t|.nt]
    if let Some(rest) = m.strip_prefix("ifjmp") {
        let (sense, pred) = match rest {
            "y" | "y.t" => (true, true),
            "y.nt" => (true, false),
            "n" | "n.t" => (false, true),
            "n.nt" => (false, false),
            _ => return err(line, format!("unknown mnemonic `{mnemonic}`")),
        };
        return Ok(Stmt::Item(match parse_target(args, line)? {
            SrcTarget::Label(label) => Item::IfJmpTo {
                on_true: sense,
                predict_taken: pred,
                label,
            },
            SrcTarget::Concrete(target) => Item::Instr(Instr::IfJmp {
                on_true: sense,
                predict_taken: pred,
                target,
            }),
        }));
    }

    // 3-operand accumulator ops: add3, and3, ...
    if let Some(base) = m.strip_suffix('3') {
        if let Some(op) = binop_by_name(base) {
            let (a, b) = split2(args, line)?;
            return Ok(Stmt::Item(Item::Instr(Instr::Op3 {
                op,
                a: parse_operand(a, line)?,
                b: parse_operand(b, line)?,
            })));
        }
    }

    match m.as_str() {
        "nop" => Ok(Stmt::Item(Item::Instr(Instr::Nop))),
        "halt" => Ok(Stmt::Item(Item::Instr(Instr::Halt))),
        "ret" => Ok(Stmt::Item(Item::Instr(Instr::Ret))),
        "enter" | "leave" => {
            let bytes = parse_int(args, line)? as u32;
            Ok(Stmt::Item(Item::Instr(if m == "enter" {
                Instr::Enter { bytes }
            } else {
                Instr::Leave { bytes }
            })))
        }
        "jmp" => Ok(Stmt::Item(match parse_target(args, line)? {
            SrcTarget::Label(label) => Item::JmpTo { label },
            SrcTarget::Concrete(target) => Item::Instr(Instr::Jmp { target }),
        })),
        "call" => Ok(Stmt::Item(match parse_target(args, line)? {
            SrcTarget::Label(label) => Item::CallTo { label },
            SrcTarget::Concrete(target) => Item::Instr(Instr::Call { target }),
        })),
        name => {
            if let Some(op) = binop_by_name(name) {
                let (dst, src) = split2(args, line)?;
                return Ok(Stmt::Item(Item::Instr(Instr::Op2 {
                    op,
                    dst: parse_operand(dst, line)?,
                    src: parse_operand(src, line)?,
                })));
            }
            err(line, format!("unknown mnemonic `{mnemonic}`"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crisp_isa::encoding;

    fn decode_all(image: &Image) -> Vec<Instr> {
        let mut out = Vec::new();
        let mut at = 0;
        while at < image.parcels.len() {
            let (i, len) = encoding::decode(&image.parcels, at).unwrap();
            out.push(i);
            at += len;
        }
        out
    }

    #[test]
    fn parses_paper_style_loop() {
        // The paper's Table 3 loop, transliterated to our syntax.
        let img = assemble_text(
            "
            _4: add 16(sp),0(sp)    ; add sum,i
                and3 0(sp),$1       ; and3 i,1
                cmp.= Accum,$0
                ifjmpy.t _5
                add 8(sp),$1        ; add odd,1
                jmp _6
            _5: add 12(sp),$1       ; add even,1
            _6: mov 4(sp),16(sp)    ; mov j,sum
                add 0(sp),$1        ; add i,1
                cmp.s< 0(sp),$1024
                ifjmpy.t _4
                halt
            ",
        )
        .unwrap();
        let instrs = decode_all(&img);
        assert_eq!(instrs.len(), 12);
        assert!(matches!(instrs[1], Instr::Op3 { op: BinOp::And, .. }));
        assert!(matches!(
            instrs[2],
            Instr::Cmp {
                cond: Cond::Eq,
                a: Operand::Accum,
                ..
            }
        ));
        assert!(matches!(
            instrs[3],
            Instr::IfJmp {
                on_true: true,
                predict_taken: true,
                ..
            }
        ));
        assert!(matches!(instrs[11], Instr::Halt));
    }

    #[test]
    fn all_operand_forms() {
        let img = assemble_text(
            "
            mov Accum,$5
            mov 0(sp),Accum
            mov *0x10000,$7
            mov [4(sp)],$-3
            mov -8(sp),$0x1F
            ",
        )
        .unwrap();
        let instrs = decode_all(&img);
        assert_eq!(
            instrs[0],
            Instr::Op2 {
                op: BinOp::Mov,
                dst: Operand::Accum,
                src: Operand::Imm(5)
            }
        );
        assert_eq!(
            instrs[2],
            Instr::Op2 {
                op: BinOp::Mov,
                dst: Operand::Abs(0x10000),
                src: Operand::Imm(7)
            }
        );
        assert_eq!(
            instrs[3],
            Instr::Op2 {
                op: BinOp::Mov,
                dst: Operand::SpInd(4),
                src: Operand::Imm(-3)
            }
        );
        assert_eq!(
            instrs[4],
            Instr::Op2 {
                op: BinOp::Mov,
                dst: Operand::SpOff(-8),
                src: Operand::Imm(31)
            }
        );
    }

    #[test]
    fn explicit_targets() {
        let img = assemble_text(
            "
            jmp .+4
            jmp 0x2000
            jmp *0x10000
            jmp *8(sp)
            call 0x3000
            ",
        )
        .unwrap();
        let instrs = decode_all(&img);
        assert_eq!(
            instrs[0],
            Instr::Jmp {
                target: BranchTarget::PcRel(4)
            }
        );
        assert_eq!(
            instrs[1],
            Instr::Jmp {
                target: BranchTarget::Abs(0x2000)
            }
        );
        assert_eq!(
            instrs[2],
            Instr::Jmp {
                target: BranchTarget::IndAbs(0x10000)
            }
        );
        assert_eq!(
            instrs[3],
            Instr::Jmp {
                target: BranchTarget::IndSp(8)
            }
        );
        assert_eq!(
            instrs[4],
            Instr::Call {
                target: BranchTarget::Abs(0x3000)
            }
        );
    }

    #[test]
    fn prediction_suffixes() {
        let img = assemble_text(
            "
            t: ifjmpy.t t
            ifjmpy.nt t
            ifjmpn t
            ifjmpn.nt t
            ",
        )
        .unwrap();
        let instrs = decode_all(&img);
        assert!(matches!(
            instrs[0],
            Instr::IfJmp {
                on_true: true,
                predict_taken: true,
                ..
            }
        ));
        assert!(matches!(
            instrs[1],
            Instr::IfJmp {
                on_true: true,
                predict_taken: false,
                ..
            }
        ));
        // Bare `ifjmpn` defaults to predicted taken.
        assert!(matches!(
            instrs[2],
            Instr::IfJmp {
                on_true: false,
                predict_taken: true,
                ..
            }
        ));
        assert!(matches!(
            instrs[3],
            Instr::IfJmp {
                on_true: false,
                predict_taken: false,
                ..
            }
        ));
    }

    #[test]
    fn directives() {
        let img = assemble_text(
            "
            nop
            .align
            data: .word 10, -20, 0x30
            .entry main
            main: halt
            ",
        )
        .unwrap();
        assert_eq!(img.symbols["data"], 4);
        assert_eq!(img.entry, img.symbols["main"]);
        assert_eq!(img.parcels[2], 10);
        assert_eq!(img.parcels[4] as i16, -20);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble_text("nop\nbogus 1,2\n").unwrap_err();
        assert!(matches!(e, AsmError::Parse { line: 2, .. }), "{e}");
        let e = assemble_text("mov 0(sp)\n").unwrap_err();
        assert!(matches!(e, AsmError::Parse { line: 1, .. }));
        let e = assemble_text("cmp.?? Accum,$0\n").unwrap_err();
        assert!(matches!(e, AsmError::Parse { line: 1, .. }));
        let e = assemble_text("jmp 12q\n").unwrap_err();
        assert!(matches!(e, AsmError::Parse { line: 1, .. }));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let img = assemble_text("; full comment\n  # another\n\n nop ; trailing\n").unwrap();
        assert_eq!(img.parcels.len(), 1);
    }

    #[test]
    fn label_followed_by_instruction_same_line() {
        let img = assemble_text("a: b: nop\n").unwrap();
        assert_eq!(img.symbols["a"], 0);
        assert_eq!(img.symbols["b"], 0);
        assert_eq!(img.parcels.len(), 1);
    }
}

use std::collections::BTreeMap;

use crisp_isa::{encoding, BranchTarget, Instr};

use crate::{AsmError, Image};

/// One element of an assembly [`Module`].
///
/// Instructions with concrete targets are carried as [`crisp_isa::Instr`]
/// directly; branches to labels use the symbolic variants and are
/// *relaxed* by the assembler — encoded in the one-parcel PC-relative
/// form when the 10-bit offset reaches the label, in the three-parcel
/// absolute form otherwise.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// Define a label at the current address.
    Label(String),
    /// A concrete instruction.
    Instr(Instr),
    /// `jmp label`.
    JmpTo {
        /// Target label.
        label: String,
    },
    /// `ifjmp label` with condition sense and prediction bit.
    IfJmpTo {
        /// Branch when the flag equals this value.
        on_true: bool,
        /// Static prediction bit.
        predict_taken: bool,
        /// Target label.
        label: String,
    },
    /// `call label`.
    CallTo {
        /// Target label.
        label: String,
    },
    /// A 32-bit data word emitted into the code stream (low parcel
    /// first, so that a word-aligned load reads it back).
    Word(i32),
    /// A 32-bit data word holding the address of a label — a jump-table
    /// entry. Callers must 4-align it (see [`Item::Align4`]) so that a
    /// word load reads it intact.
    WordLabel(String),
    /// `Accum = address-of(label)`, encoded in the fixed five-parcel
    /// wide form so that layout does not depend on the label's value.
    /// Used for jump-table base materialisation.
    MovaLabel {
        /// The label whose address is loaded.
        label: String,
    },
    /// Pad with `nop` parcels to 4-byte alignment (useful before
    /// [`Item::Word`] data).
    Align4,
}

/// A relocatable assembly unit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Module {
    /// Load address of the first item.
    pub base: u32,
    /// The item sequence.
    pub items: Vec<Item>,
    /// Entry-point label; defaults to the module base.
    pub entry: Option<String>,
    /// Initialised data blocks copied verbatim into the image.
    pub data: Vec<(u32, Vec<i32>)>,
}

impl Module {
    /// An empty module loaded at address 0.
    pub fn new() -> Module {
        Module::default()
    }

    /// Append an item (builder style).
    pub fn push(&mut self, item: Item) -> &mut Module {
        self.items.push(item);
        self
    }
}

/// Per-item layout state used during relaxation.
#[derive(Clone, Copy)]
enum Width {
    Fixed(u32),
    /// A symbolic branch: `false` = short (2 bytes), `true` = promoted
    /// to the long form (6 bytes).
    Branch(bool),
}

impl Width {
    fn bytes(self) -> u32 {
        match self {
            Width::Fixed(b) => b,
            Width::Branch(false) => 2,
            Width::Branch(true) => 6,
        }
    }
}

/// Assemble a module into an executable [`Image`].
///
/// Branch relaxation starts with every label branch in the short form and
/// monotonically promotes out-of-range ones to the long (absolute) form
/// until a fixed point; because promotion only grows items, the loop
/// terminates.
///
/// # Errors
///
/// * [`AsmError::DuplicateLabel`] / [`AsmError::UndefinedLabel`] for
///   label problems;
/// * [`AsmError::Encode`] when a concrete instruction cannot be encoded.
pub fn assemble(module: &Module) -> Result<Image, AsmError> {
    // Initial widths. `Align4` is resolved each pass from its address.
    let mut widths: Vec<Width> = module
        .items
        .iter()
        .map(|item| match item {
            Item::Label(_) => Ok(Width::Fixed(0)),
            Item::Instr(i) => Ok(Width::Fixed(
                i.byte_len()
                    .map_err(|source| AsmError::Encode { at: 0, source })?,
            )),
            Item::JmpTo { .. } | Item::IfJmpTo { .. } | Item::CallTo { .. } => {
                Ok(Width::Branch(false))
            }
            Item::Word(_) | Item::WordLabel(_) => Ok(Width::Fixed(4)),
            Item::MovaLabel { .. } => Ok(Width::Fixed(10)),
            Item::Align4 => Ok(Width::Fixed(0)), // recomputed per pass
        })
        .collect::<Result<_, AsmError>>()?;

    let mut labels: BTreeMap<String, u32> = BTreeMap::new();
    // Relaxation fixpoint: each pass recomputes addresses, then promotes
    // any short branch whose target fell out of range.
    for _pass in 0..module.items.len() + 2 {
        labels.clear();
        let mut addr = module.base;
        for (idx, item) in module.items.iter().enumerate() {
            if let Item::Align4 = item {
                widths[idx] = Width::Fixed((4 - addr % 4) % 4);
            }
            if let Item::Label(name) = item {
                if labels.insert(name.clone(), addr).is_some() {
                    return Err(AsmError::DuplicateLabel {
                        label: name.clone(),
                    });
                }
            }
            addr += widths[idx].bytes();
        }

        let mut changed = false;
        let mut addr = module.base;
        for (idx, item) in module.items.iter().enumerate() {
            if let Width::Branch(false) = widths[idx] {
                let label = match item {
                    Item::JmpTo { label }
                    | Item::IfJmpTo { label, .. }
                    | Item::CallTo { label } => label,
                    _ => unreachable!("Width::Branch only on symbolic branches"),
                };
                let target = *labels.get(label).ok_or_else(|| AsmError::UndefinedLabel {
                    label: label.clone(),
                })?;
                let off = target.wrapping_sub(addr) as i32;
                if !BranchTarget::PcRel(off).is_short() {
                    widths[idx] = Width::Branch(true);
                    changed = true;
                }
            }
            addr += widths[idx].bytes();
        }
        if !changed {
            return emit(module, &widths, &labels);
        }
    }
    Err(AsmError::RelaxationDiverged)
}

fn emit(
    module: &Module,
    widths: &[Width],
    labels: &BTreeMap<String, u32>,
) -> Result<Image, AsmError> {
    let mut image = Image::new(module.base);
    image.data = module.data.clone();
    let mut addr = module.base;

    let resolve = |label: &str| -> Result<u32, AsmError> {
        labels
            .get(label)
            .copied()
            .ok_or_else(|| AsmError::UndefinedLabel {
                label: label.to_owned(),
            })
    };

    for (idx, item) in module.items.iter().enumerate() {
        let width = widths[idx];
        let target_for = |label: &str| -> Result<BranchTarget, AsmError> {
            let t = resolve(label)?;
            Ok(match width {
                Width::Branch(false) => BranchTarget::PcRel(t.wrapping_sub(addr) as i32),
                _ => BranchTarget::Abs(t),
            })
        };
        let instr: Option<Instr> = match item {
            Item::Label(_) => None,
            Item::Instr(i) => Some(*i),
            Item::JmpTo { label } => Some(Instr::Jmp {
                target: target_for(label)?,
            }),
            Item::IfJmpTo {
                on_true,
                predict_taken,
                label,
            } => Some(Instr::IfJmp {
                on_true: *on_true,
                predict_taken: *predict_taken,
                target: target_for(label)?,
            }),
            Item::CallTo { label } => Some(Instr::Call {
                target: target_for(label)?,
            }),
            Item::Word(w) => {
                image.parcels.push(*w as u16);
                image.parcels.push((*w >> 16) as u16);
                None
            }
            Item::WordLabel(label) => {
                let t = resolve(label)?;
                image.parcels.push(t as u16);
                image.parcels.push((t >> 16) as u16);
                None
            }
            Item::MovaLabel { label } => {
                let t = resolve(label)?;
                image.parcels.extend(encoding::encode_wide_mova(t as i32));
                None
            }
            Item::Align4 => {
                for _ in 0..width.bytes() / 2 {
                    image
                        .parcels
                        .extend(encoding::encode(&Instr::Nop).expect("nop encodes"));
                }
                None
            }
        };
        if let Some(i) = instr {
            let parcels =
                encoding::encode(&i).map_err(|source| AsmError::Encode { at: addr, source })?;
            debug_assert_eq!(
                parcels.len() as u32 * 2,
                width.bytes(),
                "layout mismatch at {i}"
            );
            image.parcels.extend(parcels);
        }
        addr += width.bytes();
    }

    image.symbols = labels.clone();
    image.entry = match &module.entry {
        Some(label) => resolve(label)?,
        None => module.base,
    };
    Ok(image)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crisp_isa::{BinOp, Operand};

    fn add() -> Item {
        Item::Instr(Instr::Op2 {
            op: BinOp::Add,
            dst: Operand::SpOff(0),
            src: Operand::Imm(1),
        })
    }

    #[test]
    fn forward_and_backward_short_branches() {
        let mut m = Module::new();
        m.push(Item::Label("top".into()))
            .push(add())
            .push(Item::JmpTo {
                label: "end".into(),
            })
            .push(add())
            .push(Item::Label("end".into()))
            .push(Item::JmpTo {
                label: "top".into(),
            })
            .push(Item::Instr(Instr::Halt));
        let img = assemble(&m).unwrap();
        assert_eq!(img.symbols["top"], 0);
        // add(2) + jmp(2) + add(2) = 6
        assert_eq!(img.symbols["end"], 6);
        // All short: 5 instructions * 1 parcel.
        assert_eq!(img.parcels.len(), 5);
        // Decode the forward jump: at address 2, target 6 → +4.
        let (i, _) = encoding::decode(&img.parcels, 1).unwrap();
        assert_eq!(
            i,
            Instr::Jmp {
                target: BranchTarget::PcRel(4)
            }
        );
        // Backward jump at 6 → -6.
        let (i, _) = encoding::decode(&img.parcels, 3).unwrap();
        assert_eq!(
            i,
            Instr::Jmp {
                target: BranchTarget::PcRel(-6)
            }
        );
    }

    #[test]
    fn out_of_range_branch_promotes_to_long() {
        let mut m = Module::new();
        m.push(Item::JmpTo {
            label: "far".into(),
        });
        for _ in 0..600 {
            m.push(add()); // 1200 bytes of filler, beyond +1022
        }
        m.push(Item::Label("far".into()));
        m.push(Item::Instr(Instr::Halt));
        let img = assemble(&m).unwrap();
        let (i, len) = encoding::decode(&img.parcels, 0).unwrap();
        assert_eq!(len, 3);
        assert_eq!(
            i,
            Instr::Jmp {
                target: BranchTarget::Abs(6 + 1200)
            }
        );
    }

    #[test]
    fn promotion_cascades() {
        // Two branches each barely in range only if the other stays
        // short; promoting one must re-check the other.
        let mut m = Module::new();
        m.push(Item::JmpTo {
            label: "far".into(),
        });
        m.push(Item::JmpTo {
            label: "far".into(),
        });
        for _ in 0..509 {
            m.push(add());
        }
        m.push(Item::Label("far".into()));
        m.push(Item::Instr(Instr::Halt));
        let img = assemble(&m).unwrap();
        // First branch: target at 2+2+1018... after promotion both work.
        let (_i0, l0) = encoding::decode(&img.parcels, 0).unwrap();
        let (_i1, _l1) = encoding::decode(&img.parcels, l0).unwrap();
        // Whatever the widths, all targets must resolve to the label.
        let far = img.symbols["far"];
        let mut at = 0usize;
        let mut addr = 0u32;
        let mut seen = 0;
        while at < img.parcels.len() {
            let (i, len) = encoding::decode(&img.parcels, at).unwrap();
            if let Instr::Jmp { target } = i {
                let t = match target {
                    BranchTarget::PcRel(off) => addr.wrapping_add(off as u32),
                    BranchTarget::Abs(a) => a,
                    _ => panic!("unexpected target"),
                };
                assert_eq!(t, far);
                seen += 1;
            }
            at += len;
            addr += len as u32 * 2;
        }
        assert_eq!(seen, 2);
    }

    #[test]
    fn undefined_label_reported() {
        let mut m = Module::new();
        m.push(Item::JmpTo {
            label: "nowhere".into(),
        });
        assert_eq!(
            assemble(&m),
            Err(AsmError::UndefinedLabel {
                label: "nowhere".into()
            })
        );
    }

    #[test]
    fn duplicate_label_reported() {
        let mut m = Module::new();
        m.push(Item::Label("x".into()));
        m.push(add());
        m.push(Item::Label("x".into()));
        assert_eq!(
            assemble(&m),
            Err(AsmError::DuplicateLabel { label: "x".into() })
        );
    }

    #[test]
    fn words_and_alignment() {
        let mut m = Module::new();
        m.push(add()); // 2 bytes → next addr 2, misaligned for a word
        m.push(Item::Align4);
        m.push(Item::Label("w".into()));
        m.push(Item::Word(0x1234_5678));
        let img = assemble(&m).unwrap();
        assert_eq!(img.symbols["w"], 4);
        // Low parcel first.
        assert_eq!(img.parcels[2], 0x5678);
        assert_eq!(img.parcels[3], 0x1234);
    }

    #[test]
    fn word_labels_hold_resolved_addresses() {
        let mut m = Module::new();
        m.push(Item::JmpTo {
            label: "code".into(),
        });
        m.push(Item::Align4);
        m.push(Item::Label("table".into()));
        m.push(Item::WordLabel("code".into()));
        m.push(Item::WordLabel("table".into()));
        m.push(Item::Label("code".into()));
        m.push(Item::Instr(Instr::Halt));
        let img = assemble(&m).unwrap();
        let table = img.symbols["table"];
        let code = img.symbols["code"];
        assert_eq!(table % 4, 0, "table must be word-aligned");
        // Low parcel first: a word load reads the address back.
        let lo = img.parcels[(table / 2) as usize] as u32;
        let hi = img.parcels[(table / 2) as usize + 1] as u32;
        assert_eq!(lo | (hi << 16), code);
        let lo = img.parcels[(table / 2) as usize + 2] as u32;
        let hi = img.parcels[(table / 2) as usize + 3] as u32;
        assert_eq!(lo | (hi << 16), table);
    }

    #[test]
    fn mova_label_materialises_address() {
        let mut m = Module::new();
        m.push(Item::MovaLabel {
            label: "target".into(),
        });
        m.push(Item::Instr(Instr::Halt));
        m.push(Item::Label("target".into()));
        m.push(Item::Instr(Instr::Nop));
        let img = assemble(&m).unwrap();
        let (i, len) = encoding::decode(&img.parcels, 0).unwrap();
        assert_eq!(len, 5);
        assert_eq!(
            i,
            Instr::Op2 {
                op: crisp_isa::BinOp::Mov,
                dst: Operand::Accum,
                src: Operand::Imm(img.symbols["target"] as i32),
            }
        );
    }

    #[test]
    fn entry_label() {
        let mut m = Module::new();
        m.push(add());
        m.push(Item::Label("main".into()));
        m.push(Item::Instr(Instr::Halt));
        m.entry = Some("main".into());
        let img = assemble(&m).unwrap();
        assert_eq!(img.entry, 2);
        // Default entry is the base.
        m.entry = None;
        assert_eq!(assemble(&m).unwrap().entry, 0);
    }

    #[test]
    fn conditional_branch_prediction_bit_survives() {
        let mut m = Module::new();
        m.push(Item::Label("t".into()));
        m.push(Item::IfJmpTo {
            on_true: true,
            predict_taken: true,
            label: "t".into(),
        });
        m.push(Item::IfJmpTo {
            on_true: false,
            predict_taken: false,
            label: "t".into(),
        });
        let img = assemble(&m).unwrap();
        let (i0, l0) = encoding::decode(&img.parcels, 0).unwrap();
        assert_eq!(
            i0,
            Instr::IfJmp {
                on_true: true,
                predict_taken: true,
                target: BranchTarget::PcRel(0)
            }
        );
        let (i1, _) = encoding::decode(&img.parcels, l0).unwrap();
        assert_eq!(
            i1,
            Instr::IfJmp {
                on_true: false,
                predict_taken: false,
                target: BranchTarget::PcRel(-2)
            }
        );
    }

    #[test]
    fn nonzero_base() {
        let mut m = Module::new();
        m.base = 0x1000;
        m.push(Item::Label("top".into()));
        m.push(add());
        m.push(Item::JmpTo {
            label: "top".into(),
        });
        let img = assemble(&m).unwrap();
        assert_eq!(img.code_base, 0x1000);
        assert_eq!(img.symbols["top"], 0x1000);
        let (i, _) = encoding::decode(&img.parcels, 1).unwrap();
        assert_eq!(
            i,
            Instr::Jmp {
                target: BranchTarget::PcRel(-2)
            }
        );
    }
}

//! Property tests: assembled modules disassemble back to the
//! instructions that were assembled, label branches resolve to label
//! addresses under relaxation, and listings re-assemble.

use crisp_asm::{assemble, disassemble, Item, Module};
use crisp_isa::{BinOp, BranchTarget, Cond, Instr, Operand};
use proptest::prelude::*;

fn arb_plain_instr() -> impl Strategy<Value = Instr> {
    let op = prop::sample::select(vec![
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::And,
        BinOp::Or,
        BinOp::Xor,
        BinOp::Shl,
        BinOp::Mov,
    ]);
    let operand = prop_oneof![
        Just(Operand::Accum),
        (-40000i32..40000).prop_map(Operand::Imm),
        (0i32..64).prop_map(|s| Operand::SpOff(4 * s)),
        (0x1_0000u32..0x1_1000).prop_map(|a| Operand::Abs(a & !3)),
        (-100i32..100).prop_map(|o| Operand::SpInd(4 * o)),
    ];
    let cond = prop::sample::select(Cond::ALL.to_vec());
    prop_oneof![
        Just(Instr::Nop),
        (
            op.clone(),
            operand.clone().prop_filter("writable", |o| o.is_writable()),
            operand.clone()
        )
            .prop_filter_map("encodable", |(op, dst, src)| {
                let i = Instr::Op2 { op, dst, src };
                crisp_isa::encoding::encode(&i).ok().map(|_| i)
            }),
        (cond, operand.clone(), operand).prop_filter_map("encodable", |(cond, a, b)| {
            let i = Instr::Cmp { cond, a, b };
            crisp_isa::encoding::encode(&i).ok().map(|_| i)
        }),
        (0u32..200).prop_map(|w| Instr::Enter { bytes: w * 4 }),
        (0u32..200).prop_map(|w| Instr::Leave { bytes: w * 4 }),
    ]
}

/// A module: labelled blocks of plain instructions with symbolic
/// branches between blocks.
fn arb_module() -> impl Strategy<Value = Module> {
    let block = prop::collection::vec(arb_plain_instr(), 0..6);
    (prop::collection::vec(block, 1..8), any::<u64>()).prop_map(|(blocks, seed)| {
        let nblocks = blocks.len();
        let mut m = Module::new();
        let mut rng = seed;
        let mut next = move || {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (rng >> 33) as usize
        };
        for (b, instrs) in blocks.into_iter().enumerate() {
            m.push(Item::Label(format!("b{b}")));
            for i in instrs {
                m.push(Item::Instr(i));
            }
            // A branch to a random block keeps control flow arbitrary
            // but every label used.
            let target = format!("b{}", next() % nblocks);
            match next() % 3 {
                0 => {
                    m.push(Item::JmpTo { label: target });
                }
                1 => {
                    m.push(Item::IfJmpTo {
                        on_true: next() % 2 == 0,
                        predict_taken: next() % 2 == 0,
                        label: target,
                    });
                }
                _ => {
                    m.push(Item::Instr(Instr::Nop));
                }
            }
        }
        m.push(Item::Instr(Instr::Halt));
        m
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn assemble_disassemble_round_trip(module in arb_module()) {
        let image = assemble(&module).unwrap();
        let lines = disassemble(&image.parcels, image.code_base).unwrap();

        // Every non-label item corresponds to one disassembled
        // instruction, in order.
        let mut li = lines.iter();
        for item in &module.items {
            match item {
                Item::Label(_) => {}
                Item::Instr(i) => {
                    let (_, got, _) = li.next().unwrap();
                    prop_assert_eq!(got, i);
                }
                Item::JmpTo { label } => {
                    let (addr, got, _) = li.next().unwrap();
                    let target = image.symbols[label.as_str()];
                    match got {
                        Instr::Jmp { target: BranchTarget::PcRel(off) } => {
                            prop_assert_eq!(addr.wrapping_add(*off as u32), target);
                        }
                        Instr::Jmp { target: BranchTarget::Abs(a) } => {
                            prop_assert_eq!(*a, target);
                        }
                        other => return Err(TestCaseError::fail(format!("{other}"))),
                    }
                }
                Item::IfJmpTo { on_true, predict_taken, label } => {
                    let (addr, got, _) = li.next().unwrap();
                    let target = image.symbols[label.as_str()];
                    match got {
                        Instr::IfJmp { on_true: o, predict_taken: p, target: t } => {
                            prop_assert_eq!(o, on_true);
                            prop_assert_eq!(p, predict_taken);
                            let resolved = match t {
                                BranchTarget::PcRel(off) => addr.wrapping_add(*off as u32),
                                BranchTarget::Abs(a) => *a,
                                other => {
                                    return Err(TestCaseError::fail(format!("{other:?}")))
                                }
                            };
                            prop_assert_eq!(resolved, target);
                        }
                        other => return Err(TestCaseError::fail(format!("{other}"))),
                    }
                }
                other => return Err(TestCaseError::fail(format!("unexpected {other:?}"))),
            }
        }
        prop_assert!(li.next().is_none(), "extra instructions decoded");
    }

    #[test]
    fn labels_are_instruction_boundaries(module in arb_module()) {
        let image = assemble(&module).unwrap();
        let lines = disassemble(&image.parcels, image.code_base).unwrap();
        let starts: std::collections::BTreeSet<u32> =
            lines.iter().map(|&(addr, _, _)| addr).collect();
        for &addr in image.symbols.values() {
            prop_assert!(
                starts.contains(&addr) || addr == image.code_base + image.code_bytes(),
                "label at {addr:#x} is mid-instruction"
            );
        }
    }
}

//! Shared predecoded program images.
//!
//! The paper's central economy is that decode work is paid **once** and
//! amortized through the decoded instruction cache. The simulator should
//! enjoy the same economy: a loaded image's text segment is fixed (the
//! ISA has no stores into text that either engine honours — the
//! functional engine already memoizes decode results forever), so every
//! parcel-aligned PC decodes to the same entry for a given
//! [`FoldPolicy`] for the whole run — and for every run of the same
//! image.
//!
//! [`PredecodedImage`] captures that: one pass over the text segment at
//! load time produces a dense direct-indexed table (PC → [`Decoded`]),
//! shared via [`Arc`] between the functional engine, the PDU's
//! miss/refill path, and every campaign worker. Steady-state lookups
//! become a bounds check plus an indexed load — no hashing, no window
//! re-slicing, no re-running `decode_and_fold`.

use std::sync::Arc;

use crisp_asm::Image;
use crisp_isa::{decode_and_fold, Decoded, FoldPolicy, IsaError};

use crate::{Machine, SimError};

/// Lookahead window, in parcels, used for each decode. Matches the
/// hardware's bounded fetch queue: the longest instruction is 5 parcels
/// and folding peeks at most 3 more.
pub const DECODE_WINDOW: usize = 8;

/// A program's text segment decoded once, under one [`FoldPolicy`],
/// into a dense table indexed by parcel-aligned PC.
///
/// The table is built from **post-load memory**, not the raw image:
/// zeroed memory beyond the end of text participates in fold lookahead
/// windows, so decoding from the loaded [`Machine`] is what makes each
/// slot bit-identical to the on-demand `decode_and_fold` both engines
/// would otherwise perform (a property test in `tests/prop_predecode.rs`
/// checks exactly this across policies).
///
/// Slots hold `Result<Decoded, IsaError>` so decode *errors* are
/// predecoded too: an engine hitting an undecodable PC reports the same
/// error it would have found on demand. Odd (misaligned) PCs and PCs
/// outside the text segment are not covered — [`PredecodedImage::get`]
/// returns `None` and callers fall back to on-demand decode, preserving
/// exact behaviour for wild control flow.
#[derive(Debug, Clone)]
pub struct PredecodedImage {
    policy: FoldPolicy,
    base: u32,
    slots: Vec<Result<Decoded, IsaError>>,
}

impl PredecodedImage {
    /// Decode every parcel-aligned PC of `machine`'s text segment under
    /// `policy`.
    pub fn from_machine(machine: &Machine, policy: FoldPolicy) -> PredecodedImage {
        let base = machine.text_base();
        let end = machine.text_end();
        let n_slots = ((end.saturating_sub(base)) / 2) as usize;
        let mut slots = Vec::with_capacity(n_slots);
        let mut window = [0u16; DECODE_WINDOW];
        let mut pc = base;
        while pc < end {
            let n = machine.mem.parcel_window_into(pc, &mut window);
            slots.push(decode_and_fold(&window[..n], 0, pc, policy));
            pc += 2;
        }
        PredecodedImage {
            policy,
            base,
            slots,
        }
    }

    /// Load `image` into a scratch machine and predecode it under
    /// `policy`, returning the table ready for sharing.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Machine::load`].
    pub fn from_image(image: &Image, policy: FoldPolicy) -> Result<PredecodedImage, SimError> {
        let machine = Machine::load(image)?;
        Ok(PredecodedImage::from_machine(&machine, policy))
    }

    /// [`PredecodedImage::from_image`], wrapped in an [`Arc`] for
    /// sharing across engines and campaign workers.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Machine::load`].
    pub fn shared(image: &Image, policy: FoldPolicy) -> Result<Arc<PredecodedImage>, SimError> {
        Ok(Arc::new(PredecodedImage::from_image(image, policy)?))
    }

    /// The fold policy the table was decoded under.
    pub fn policy(&self) -> FoldPolicy {
        self.policy
    }

    /// First byte of the covered text segment.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// One past the last covered byte.
    pub fn end(&self) -> u32 {
        self.base + self.slots.len() as u32 * 2
    }

    /// Number of predecoded slots (one per text parcel).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the text segment was empty.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The predecoded slot for `pc`: `Some` for every parcel-aligned PC
    /// inside the text segment, `None` otherwise (odd PCs decode with a
    /// different entry PC, and out-of-text PCs see live memory — both
    /// must take the caller's on-demand path).
    #[inline]
    pub fn get(&self, pc: u32) -> Option<&Result<Decoded, IsaError>> {
        if pc < self.base || pc & 1 != 0 {
            return None;
        }
        self.slots.get(((pc - self.base) >> 1) as usize)
    }

    /// The successfully predecoded entry at `pc`, if any.
    #[inline]
    pub fn decoded(&self, pc: u32) -> Option<&Decoded> {
        match self.get(pc) {
            Some(Ok(d)) => Some(d),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crisp_asm::assemble_text;

    fn table(src: &str, policy: FoldPolicy) -> (Machine, PredecodedImage) {
        let img = assemble_text(src).unwrap();
        let m = Machine::load(&img).unwrap();
        let t = PredecodedImage::from_machine(&m, policy);
        (m, t)
    }

    #[test]
    fn agrees_with_on_demand_decode() {
        let (m, t) = table(
            "
            loop: add 0(sp),$1
            cmp.= 0(sp),$10
            ifjmpy.nt loop
            halt
            ",
            FoldPolicy::All,
        );
        assert_eq!(t.base(), m.text_base());
        assert_eq!(t.end(), m.text_end());
        let mut pc = t.base();
        while pc < t.end() {
            let window = m.mem.parcel_window(pc, DECODE_WINDOW);
            let want = decode_and_fold(&window, 0, pc, FoldPolicy::All);
            assert_eq!(t.get(pc), Some(&want), "pc={pc:#x}");
            pc += 2;
        }
    }

    #[test]
    fn decode_errors_are_predecoded() {
        // Opcode 46 is unassigned: the slot must hold the same error
        // on-demand decode reports.
        let (_, t) = table(".word 0x0000B800\nhalt", FoldPolicy::Host13);
        assert!(matches!(t.get(0), Some(Err(_))));
        assert!(matches!(t.get(4), Some(Ok(d)) if d.pc == 4));
    }

    #[test]
    fn out_of_range_and_odd_pcs_are_uncovered() {
        let (_, t) = table("halt", FoldPolicy::None);
        assert!(t.get(1).is_none());
        assert!(t.get(t.end()).is_none());
        assert!(t.get(u32::MAX).is_none());
        assert!(!t.is_empty());
        assert_eq!(t.len(), 1);
        assert_eq!(t.policy(), FoldPolicy::None);
    }

    #[test]
    fn shared_wraps_in_arc() {
        let img = assemble_text("halt").unwrap();
        let t = PredecodedImage::shared(&img, FoldPolicy::All).unwrap();
        let t2 = Arc::clone(&t);
        assert!(matches!(t2.decoded(0), Some(d) if d.pc == 0));
    }
}

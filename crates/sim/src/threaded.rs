//! Threaded-code translation tier for the functional engine.
//!
//! The paper's decoded-instruction cache pays decode once and then runs
//! straight-line until a branch folds control elsewhere. The software
//! analogue is one tier up from [`crate::PredecodedImage`]: walk the
//! predecoded table once, discover basic blocks (leaders at branch
//! targets, fall-throughs and fold boundaries), and translate each
//! block into a contiguous superinstruction stream that executes with
//! **no per-entry decode lookup, no per-entry dispatch bookkeeping and
//! no per-entry statistics** — per-block counters are precomputed at
//! translation time and replayed with a handful of adds. Two
//! translation-time specializations do the heavy lifting:
//!
//! * **Micro-op lowering** — each body entry is lowered from the
//!   decoder's nested `ExecOp`/`Operand` enums into a flat [`HostOp`]
//!   with operand addressing pre-resolved (stack offset, absolute
//!   address or immediate baked in), so the hot loop is one `match`
//!   per entry instead of three.
//! * **Superblock formation** — translation walks *through*
//!   unconditional transfers with statically-known targets (plain
//!   `jmp`s and folded host+`jmp` entries become block-internal
//!   micro-ops), so a block only ends at a real control decision:
//!   conditional branch, call/return, indirect target or `halt`. Taken
//!   and fall-through successors are resolved to block indices at
//!   translation time, so hot loops chain block → block without ever
//!   consulting the PC-indexed table.
//!
//! The tier is an *oracle accelerator*, not a semantics fork: every
//! path that the fast tier cannot honour bit-for-bit falls back to the
//! same one-[`crisp_isa::Decoded`]-entry interpreter
//! ([`FunctionalSim`]) that defines the architecture. The five deopt
//! boundaries:
//!
//! 1. **Untranslated targets** — indirect jumps, returns, odd or
//!    out-of-text PCs land in the interpreter until control reaches a
//!    translated leader again.
//! 2. **Decode-error slots** — blocks never cover them; reaching one
//!    single-steps into the identical [`SimError::Decode`].
//! 3. **Watchdog budgets** — a block is entered only when the whole
//!    block fits the remaining step budget, so the watchdog fires at
//!    exactly the same entry count as the interpreter.
//! 4. **Armed faults / parity events** — fault injection lives in the
//!    cycle engine; campaign drivers only route *fault-free* reference
//!    runs through this tier (see [`crate::soft_error`]).
//! 5. **Stores into translated text** — tracked as a dirty byte range;
//!    blocks whose code range overlaps it are invalidated for the rest
//!    of the run and execute interpreted (both tiers read the immutable
//!    predecode table, so results stay identical — the deopt models the
//!    hardware's cache invalidate and keeps the tier honest if decode
//!    ever goes live).
//!
//! Under an enabled [`PipeObserver`] (or with branch-trace recording
//! on) the block walker retires each entry through
//! [`Machine::execute_observed`], so observed commit streams and traces
//! are bit-identical to the interpreter's (`tests/prop_threaded.rs`
//! proves this over the random program and random mini-C corpora); with
//! [`NullObserver`] the body runs through the lowered micro-ops with no
//! `Step` construction at all.

use std::sync::Arc;

use crisp_asm::Image;
use crisp_isa::{BinOp, Cond, Decoded, ExecOp, FoldClass, FoldPolicy, Operand};

use crate::diff::{reset_or_load, LockstepBuffers};
use crate::functional::push_branch_event;
use crate::observe::{NullObserver, PipeObserver};
use crate::predecode::PredecodedImage;
use crate::{
    CommitLog, FunctionalRun, FunctionalSim, HaltReason, Machine, OpcodeCounts, RunStats, SimError,
    Trace,
};

/// Longest translated block, in decoded entries (body + terminator).
/// Bounds per-block watchdog granularity and translation memory.
const BLOCK_CAP: usize = 64;

/// Translation budget: total body entries across all blocks. Pathological
/// images (every parcel a leader of a long overlapping run) stop
/// translating here; uncovered leaders simply stay on the interpreter.
const OPS_BUDGET: usize = 1 << 20;

/// Which functional engine a driver runs — the `--engine` selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// The one-entry interpreter ([`FunctionalSim`]).
    Interp,
    /// The block-translating threaded-code tier ([`ThreadedSim`]).
    #[default]
    Threaded,
}

impl Engine {
    /// Parse the CLI spelling (`interp` | `threaded`).
    pub fn parse(s: &str) -> Option<Engine> {
        match s {
            "interp" => Some(Engine::Interp),
            "threaded" => Some(Engine::Threaded),
            _ => None,
        }
    }

    /// Stable CLI/report name.
    pub fn name(self) -> &'static str {
        match self {
            Engine::Interp => "interp",
            Engine::Threaded => "threaded",
        }
    }
}

/// A pre-resolved source operand: the scalar addressing modes with the
/// offset/address/immediate baked in at translation time (stack-indirect
/// sources stay on the [`HostOp::Generic`] path).
#[derive(Debug, Clone, Copy)]
enum Src {
    Imm(i32),
    Sp(u32),
    Abs(u32),
    /// `mem[mem[sp+off]]` — pointer read, then value read, in the
    /// interpreter's order.
    SpInd(u32),
    Accum,
}

/// A lowered superinstruction micro-op: one flat dispatch per entry,
/// mirroring the corresponding [`Machine::execute`] arms exactly
/// (operand read order included, so error identity is preserved).
#[derive(Debug, Clone, Copy)]
enum HostOp {
    Nop,
    /// `mem[sp+off] = src` (two-operand move; no destination read).
    MovSp {
        off: u32,
        src: Src,
    },
    /// `mem[sp+off] op= src`.
    Op2Sp {
        op: BinOp,
        off: u32,
        src: Src,
    },
    /// `mem[addr] = src`.
    MovAbs {
        addr: u32,
        src: Src,
    },
    /// `mem[addr] op= src`.
    Op2Abs {
        op: BinOp,
        addr: u32,
        src: Src,
    },
    /// `accum = src`.
    MovAcc {
        src: Src,
    },
    /// `accum op= src`.
    Op2Acc {
        op: BinOp,
        src: Src,
    },
    /// `accum = a op b`.
    Op3 {
        op: BinOp,
        a: Src,
        b: Src,
    },
    /// `flag = a cond b`.
    Cmp {
        cond: Cond,
        a: Src,
        b: Src,
    },
    Enter {
        bytes: u32,
    },
    Leave {
        bytes: u32,
    },
    /// Melded `accum = a op b; flag = accum cond c` pair (an `op3`
    /// followed by a compare against the accumulator). Only formed when
    /// the compare's operands cannot fault, so the faulting PC is
    /// always the first entry's.
    Op3Cmp {
        op: BinOp,
        a: Src,
        b: Src,
        cond: Cond,
        c: Src,
    },
    /// Melded `mem[sp+off] op= src; mem[sp+dst] = mem[sp+off]` pair —
    /// the read-after-write forward of a just-computed stack word.
    /// `pc2` is the second entry's PC, for exact fault attribution.
    Op2SpMov {
        op: BinOp,
        off: u32,
        src: Src,
        dst: u32,
        pc2: u32,
    },
    /// Rare addressing (absolute/indirect destinations): execute the
    /// original operation through the interpreter-identical fallback.
    Generic(ExecOp),
}

/// A source operand that can never fault (no memory access).
fn infallible(s: Src) -> bool {
    matches!(s, Src::Imm(_) | Src::Accum)
}

/// Meld adjacent lowered entries into superinstruction pairs. Returns
/// the fused op when `first` followed by `second` matches a pattern
/// whose architectural effects (accumulator, flag, memory, fault PC)
/// can be reproduced exactly by one op.
fn meld(first: &BodyOp, second: &BodyOp) -> Option<HostOp> {
    match (first.op, second.op) {
        // op3 then compare-against-accum: the compare reads the value
        // the op3 just produced; restrict to infallible compare
        // operands so every fault still lands on `first.pc`.
        (HostOp::Op3 { op, a, b }, HostOp::Cmp { cond, a: ca, b: cb }) => match (ca, cb) {
            (Src::Accum, c) if infallible(c) => Some(HostOp::Op3Cmp { op, a, b, cond, c }),
            _ => None,
        },
        // read-modify-write then forward the fresh value: the second
        // move re-reads the word the first op just wrote.
        (
            HostOp::Op2Sp { op, off, src },
            HostOp::MovSp {
                off: dst,
                src: Src::Sp(from),
            },
        ) if from == off && dst != off => Some(HostOp::Op2SpMov {
            op,
            off,
            src,
            dst,
            pc2: second.pc,
        }),
        _ => None,
    }
}

/// Lower a decoded host operation into its flat micro-op form.
fn lower(exec: &ExecOp) -> HostOp {
    fn src(o: Operand) -> Option<Src> {
        match o {
            Operand::Imm(v) => Some(Src::Imm(v)),
            Operand::SpOff(off) => Some(Src::Sp(off as u32)),
            Operand::Abs(a) => Some(Src::Abs(a)),
            Operand::Accum => Some(Src::Accum),
            Operand::SpInd(off) => Some(Src::SpInd(off as u32)),
        }
    }
    match *exec {
        ExecOp::Nop => HostOp::Nop,
        ExecOp::Op2 { op, dst, src: s } => match (dst, src(s)) {
            (Operand::SpOff(off), Some(s)) if op == BinOp::Mov => HostOp::MovSp {
                off: off as u32,
                src: s,
            },
            (Operand::SpOff(off), Some(s)) => HostOp::Op2Sp {
                op,
                off: off as u32,
                src: s,
            },
            (Operand::Accum, Some(s)) if op == BinOp::Mov => HostOp::MovAcc { src: s },
            (Operand::Accum, Some(s)) => HostOp::Op2Acc { op, src: s },
            (Operand::Abs(addr), Some(s)) if op == BinOp::Mov => HostOp::MovAbs { addr, src: s },
            (Operand::Abs(addr), Some(s)) => HostOp::Op2Abs { op, addr, src: s },
            _ => HostOp::Generic(*exec),
        },
        ExecOp::Op3 { op, a, b } => match (src(a), src(b)) {
            (Some(a), Some(b)) => HostOp::Op3 { op, a, b },
            _ => HostOp::Generic(*exec),
        },
        ExecOp::Cmp { cond, a, b } => match (src(a), src(b)) {
            (Some(a), Some(b)) => HostOp::Cmp { cond, a, b },
            _ => HostOp::Generic(*exec),
        },
        ExecOp::Enter { bytes } => HostOp::Enter { bytes },
        ExecOp::Leave { bytes } => HostOp::Leave { bytes },
        // Control ops never reach `exec_host` (they classify as
        // terminators); carried only so `lower` is total.
        ExecOp::Halt | ExecOp::CallPush { .. } | ExecOp::RetPop => HostOp::Generic(*exec),
    }
}

/// One straight-line entry of a translated block: the lowered micro-op
/// plus its PC (needed only to reconstruct exact error and observer
/// state; the fast path never touches the architectural PC mid-block).
#[derive(Debug, Clone, Copy)]
struct BodyOp {
    op: HostOp,
    pc: u32,
}

/// How a block ends, specialized at translation time.
#[derive(Debug, Clone, Copy)]
enum TermKind {
    /// `halt`.
    Halt,
    /// Unconditional or sequential exit to one statically-known target.
    /// `succ` is the successor block index + 1 (0 = resolve via table).
    Fixed { target: u32, succ: u32 },
    /// Conditional exit with both paths statically known.
    Cond {
        on_true: bool,
        predict_taken: bool,
        taken_pc: u32,
        seq_pc: u32,
        taken_succ: u32,
        seq_succ: u32,
    },
    /// Anything else (calls, returns, indirect targets): execute the
    /// full decoded entry through the shared commit point.
    General,
}

/// A translated block terminator: the specialization, the lowered host
/// op for the fast path, and the original decoded entry (the observed
/// path and the `General` kind retire it through
/// [`Machine::execute_observed`] verbatim).
#[derive(Debug, Clone, Copy)]
struct Term {
    d: Decoded,
    host: HostOp,
    kind: TermKind,
}

/// One translated superinstruction block.
#[derive(Debug, Clone)]
struct Block {
    /// Leader PC (the block's entry point).
    start_pc: u32,
    /// Body range into [`TranslatedImage::ops`] (terminator excluded;
    /// melded pairs mean one op can cover two decoded entries).
    ops: (u32, u32),
    /// Histogram-delta range into [`TranslatedImage::deltas`].
    deltas: (u32, u32),
    /// Byte range of code this block covers (superblocks may span
    /// gaps; the range is the conservative hull) — the invalidation
    /// granule for dirty-range overlap checks.
    code_lo: u32,
    code_hi: u32,
    /// Precomputed [`RunStats`] deltas for one execution of the block
    /// (body + terminator); only `static_mispredicts` stays dynamic.
    entries: u32,
    program_instrs: u32,
    folded: u32,
    transfers: u32,
    cond_branches: u32,
    term: Term,
}

/// A program translated into directly-threaded superinstruction blocks,
/// built once per image × [`FoldPolicy`] and shared via [`Arc`] across
/// pooled campaign machines exactly like the [`PredecodedImage`] it
/// wraps.
#[derive(Debug)]
pub struct TranslatedImage {
    predecoded: Arc<PredecodedImage>,
    /// Slot-indexed (like the predecode table): block index + 1 at a
    /// leader PC, 0 elsewhere.
    block_at: Vec<u32>,
    blocks: Vec<Block>,
    ops: Vec<BodyOp>,
    deltas: Vec<(u8, u32)>,
}

/// The statically-known continuation of an entry the block can run
/// *through*: its host op executes, then control continues at a fixed
/// address (fall-through, or the target of a plain/folded `jmp`).
fn through(d: &Decoded) -> Option<u32> {
    if matches!(
        d.exec,
        ExecOp::Halt | ExecOp::CallPush { .. } | ExecOp::RetPop
    ) {
        return None;
    }
    match d.fold {
        FoldClass::Cond { .. } => None,
        FoldClass::Sequential | FoldClass::Uncond => d.next_pc.known(),
    }
}

/// Specialize a terminator entry.
fn classify_term(d: &Decoded) -> TermKind {
    if matches!(d.exec, ExecOp::Halt) {
        return TermKind::Halt;
    }
    let host_ok = !matches!(d.exec, ExecOp::CallPush { .. } | ExecOp::RetPop);
    match d.fold {
        FoldClass::Cond {
            on_true,
            predict_taken,
        } => match (host_ok, d.cond_paths()) {
            (true, Some((taken_pc, seq_pc))) => TermKind::Cond {
                on_true,
                predict_taken,
                taken_pc,
                seq_pc,
                taken_succ: 0,
                seq_succ: 0,
            },
            _ => TermKind::General,
        },
        FoldClass::Sequential | FoldClass::Uncond => match (host_ok, d.next_pc.known()) {
            (true, Some(target)) => TermKind::Fixed { target, succ: 0 },
            _ => TermKind::General,
        },
    }
}

fn mark_leader(leader: &mut [bool], base: u32, end: u32, pc: u32) {
    if pc >= base && pc < end && pc & 1 == 0 {
        leader[((pc - base) >> 1) as usize] = true;
    }
}

impl TranslatedImage {
    /// Translate every discovered basic block of an already-predecoded
    /// program.
    pub fn from_predecoded(predecoded: Arc<PredecodedImage>) -> TranslatedImage {
        let base = predecoded.base();
        let end = predecoded.end();
        let n = predecoded.len();

        // Pass 1 — leaders: the load entry, every statically-known
        // branch target (taken and alternate), and the fall-through
        // after every terminator. The scan covers *all* parcel-aligned
        // slots, so linearly-laid-out code reached only through jump
        // tables (indirect targets live in data) still gets blocks via
        // its predecessors' fall-throughs.
        let mut leader = vec![false; n];
        if n > 0 {
            leader[0] = true;
        }
        for s in 0..n {
            let pc = base + s as u32 * 2;
            if let Some(d) = predecoded.decoded(pc) {
                if through(d).is_none() {
                    mark_leader(&mut leader, base, end, d.seq_pc());
                    if let Some(t) = d.next_pc.known() {
                        mark_leader(&mut leader, base, end, t);
                    }
                    if let Some(a) = d.alt_pc.and_then(|a| a.known()) {
                        mark_leader(&mut leader, base, end, a);
                    }
                }
            }
        }

        // Pass 2 — translate a superblock at each leader.
        let mut img = TranslatedImage {
            predecoded,
            block_at: vec![0; n],
            blocks: Vec::new(),
            ops: Vec::new(),
            deltas: Vec::new(),
        };
        for (s, &is_leader) in leader.iter().enumerate() {
            if !is_leader || img.ops.len() > OPS_BUDGET {
                continue;
            }
            let pc = base + s as u32 * 2;
            if img.translate_block(pc) {
                img.block_at[s] = img.blocks.len() as u32;
            }
        }

        // Pass 3 — chain statically-known successors to block indices.
        for i in 0..img.blocks.len() {
            match img.blocks[i].term.kind {
                TermKind::Fixed { target, .. } => {
                    let succ = img.block_index(target).map_or(0, |b| b + 1);
                    if let TermKind::Fixed {
                        succ: ref mut s, ..
                    } = img.blocks[i].term.kind
                    {
                        *s = succ;
                    }
                }
                TermKind::Cond {
                    taken_pc, seq_pc, ..
                } => {
                    let ts = img.block_index(taken_pc).map_or(0, |b| b + 1);
                    let ss = img.block_index(seq_pc).map_or(0, |b| b + 1);
                    if let TermKind::Cond {
                        taken_succ,
                        seq_succ,
                        ..
                    } = &mut img.blocks[i].term.kind
                    {
                        *taken_succ = ts;
                        *seq_succ = ss;
                    }
                }
                _ => {}
            }
        }
        img
    }

    /// Predecode `machine`'s text under `policy` and translate it.
    pub fn from_machine(machine: &Machine, policy: FoldPolicy) -> TranslatedImage {
        TranslatedImage::from_predecoded(Arc::new(PredecodedImage::from_machine(machine, policy)))
    }

    /// Translate `image` under `policy`, wrapped in an [`Arc`] for
    /// sharing across pooled campaign machines.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Machine::load`].
    pub fn shared(image: &Image, policy: FoldPolicy) -> Result<Arc<TranslatedImage>, SimError> {
        Ok(Arc::new(TranslatedImage::from_predecoded(
            PredecodedImage::shared(image, policy)?,
        )))
    }

    /// The predecode table the translation was built from (and that the
    /// deopt interpreter shares).
    pub fn predecoded(&self) -> &Arc<PredecodedImage> {
        &self.predecoded
    }

    /// The fold policy the program was decoded under.
    pub fn policy(&self) -> FoldPolicy {
        self.predecoded.policy()
    }

    /// Number of translated superinstruction blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Block starting exactly at `pc`, if one was translated there.
    #[inline(always)]
    fn block_index(&self, pc: u32) -> Option<u32> {
        let base = self.predecoded.base();
        if pc < base || pc & 1 != 0 {
            return None;
        }
        match self.block_at.get(((pc - base) >> 1) as usize) {
            Some(&v) if v != 0 => Some(v - 1),
            _ => None,
        }
    }

    /// Walk one superblock starting at `pc`; returns whether a block
    /// was produced (a leader sitting directly on a decode-error slot
    /// or past the end produces none).
    fn translate_block(&mut self, pc: u32) -> bool {
        let mut body: Vec<Decoded> = Vec::new();
        let mut cur = pc;
        let term: Decoded = loop {
            match self.predecoded.get(cur) {
                Some(Ok(d)) => match through(d) {
                    // A capped block demotes the next through-able
                    // entry to a `Fixed` continuation terminator.
                    Some(next) if body.len() + 1 < BLOCK_CAP => {
                        body.push(*d);
                        cur = next;
                    }
                    _ => break *d,
                },
                // Decode-error slot, or the walk ran off the table: end
                // the block on the last through-able entry instead.
                _ => match body.pop() {
                    Some(last) => break last,
                    None => return false,
                },
            }
        };

        let mut program_instrs = 0u32;
        let mut folded = 0u32;
        let mut transfers = 0u32;
        let mut code_lo = u32::MAX;
        let mut code_hi = 0u32;
        let mut opc = OpcodeCounts::new();
        for d in body.iter().chain(std::iter::once(&term)) {
            program_instrs += 1 + u32::from(d.folded);
            folded += u32::from(d.folded);
            transfers += u32::from(d.fold.is_transfer());
            code_lo = code_lo.min(d.pc);
            code_hi = code_hi.max(d.seq_pc());
            opc.record(d);
        }

        let ops_start = self.ops.len() as u32;
        for d in &body {
            let op = BodyOp {
                op: lower(&d.exec),
                pc: d.pc,
            };
            match self.ops.last() {
                Some(prev) if self.ops.len() as u32 > ops_start => {
                    if let Some(fused) = meld(prev, &op) {
                        let pc = prev.pc;
                        self.ops.pop();
                        self.ops.push(BodyOp { op: fused, pc });
                        continue;
                    }
                }
                _ => {}
            }
            self.ops.push(op);
        }
        let deltas_start = self.deltas.len() as u32;
        self.deltas.extend(
            opc.sparse()
                .into_iter()
                .map(|(i, n)| (i as u8, u32::try_from(n).expect("block-local count"))),
        );

        self.blocks.push(Block {
            start_pc: pc,
            ops: (ops_start, self.ops.len() as u32),
            deltas: (deltas_start, self.deltas.len() as u32),
            code_lo,
            code_hi,
            entries: body.len() as u32 + 1,
            program_instrs,
            folded,
            transfers,
            cond_branches: u32::from(matches!(term.fold, FoldClass::Cond { .. })),
            term: Term {
                d: term,
                host: lower(&term.exec),
                kind: classify_term(&term),
            },
        });
        true
    }
}

/// Record a store into the dirty byte range when it overlaps text.
#[inline(always)]
fn note_addr(dirty: &mut Option<(u32, u32)>, lo: u32, hi: u32, addr: u32) {
    let a = addr & !3;
    if a < hi && a.wrapping_add(4) > lo {
        let (dlo, dhi) = dirty.get_or_insert((a, a + 4));
        *dlo = (*dlo).min(a);
        *dhi = (*dhi).max(a + 4);
    }
}

/// A fault from a lowered micro-op. `pc_set` is true when the op
/// already placed the faulting entry's PC (melded pairs whose second
/// entry faulted); otherwise the caller attributes the fault to the
/// op's first PC.
struct HostFault {
    err: SimError,
    pc_set: bool,
}

impl From<SimError> for HostFault {
    fn from(err: SimError) -> HostFault {
        HostFault { err, pc_set: false }
    }
}

/// Interpreter-identical fallback for rare addressing forms: the
/// sequential-semantics arms of [`Machine::execute`] (operand read
/// order preserved, so error identity holds); returns the memory word
/// written, if any.
fn exec_generic(m: &mut Machine, exec: &ExecOp) -> Result<Option<(u32, i32)>, SimError> {
    match *exec {
        ExecOp::Nop => Ok(None),
        ExecOp::Op2 { op, dst, src } => {
            let b = m.read_operand(src)?;
            let value = if op == BinOp::Mov {
                b
            } else {
                op.eval(m.read_operand(dst)?, b)
            };
            m.write_operand(dst, value)
        }
        ExecOp::Op3 { op, a, b } => {
            let av = m.read_operand(a)?;
            let bv = m.read_operand(b)?;
            m.accum = op.eval(av, bv);
            Ok(None)
        }
        ExecOp::Cmp { cond, a, b } => {
            let av = m.read_operand(a)?;
            let bv = m.read_operand(b)?;
            m.psw.flag = cond.eval(av, bv);
            Ok(None)
        }
        ExecOp::Enter { bytes } => {
            m.sp = m.sp.wrapping_sub(bytes);
            Ok(None)
        }
        ExecOp::Leave { bytes } => {
            m.sp = m.sp.wrapping_add(bytes);
            Ok(None)
        }
        ExecOp::Halt | ExecOp::CallPush { .. } | ExecOp::RetPop => {
            unreachable!("control ops are never executed as host ops")
        }
    }
}

/// Execute one lowered micro-op with sequential semantics: no `Step`,
/// no next-PC resolution, no architectural-PC update. Stores overlapping
/// translated text are merged into `dirty`.
#[inline(always)]
fn exec_host(
    m: &mut Machine,
    op: &HostOp,
    dirty: &mut Option<(u32, u32)>,
    text_lo: u32,
    text_hi: u32,
) -> Result<(), HostFault> {
    #[inline(always)]
    fn read_src(m: &Machine, s: Src) -> Result<i32, SimError> {
        match s {
            Src::Imm(v) => Ok(v),
            Src::Sp(off) => m.mem.read_word(m.sp.wrapping_add(off)),
            Src::Abs(a) => m.mem.read_word(a),
            Src::SpInd(off) => {
                let ptr = m.mem.read_word(m.sp.wrapping_add(off))?;
                m.mem.read_word(ptr as u32)
            }
            Src::Accum => Ok(m.accum),
        }
    }
    match *op {
        HostOp::Nop => {}
        HostOp::MovSp { off, src } => {
            let v = read_src(m, src)?;
            let addr = m.sp.wrapping_add(off);
            m.mem.write_word(addr, v)?;
            note_addr(dirty, text_lo, text_hi, addr);
        }
        HostOp::Op2Sp { op, off, src } => {
            let b = read_src(m, src)?;
            let addr = m.sp.wrapping_add(off);
            let a = m.mem.read_word(addr)?;
            m.mem.write_word(addr, op.eval(a, b))?;
            note_addr(dirty, text_lo, text_hi, addr);
        }
        HostOp::MovAbs { addr, src } => {
            let v = read_src(m, src)?;
            m.mem.write_word(addr, v)?;
            note_addr(dirty, text_lo, text_hi, addr);
        }
        HostOp::Op2Abs { op, addr, src } => {
            let b = read_src(m, src)?;
            let a = m.mem.read_word(addr)?;
            m.mem.write_word(addr, op.eval(a, b))?;
            note_addr(dirty, text_lo, text_hi, addr);
        }
        HostOp::MovAcc { src } => m.accum = read_src(m, src)?,
        HostOp::Op2Acc { op, src } => {
            let b = read_src(m, src)?;
            m.accum = op.eval(m.accum, b);
        }
        HostOp::Op3 { op, a, b } => {
            let av = read_src(m, a)?;
            let bv = read_src(m, b)?;
            m.accum = op.eval(av, bv);
        }
        HostOp::Cmp { cond, a, b } => {
            let av = read_src(m, a)?;
            let bv = read_src(m, b)?;
            m.psw.flag = cond.eval(av, bv);
        }
        HostOp::Enter { bytes } => m.sp = m.sp.wrapping_sub(bytes),
        HostOp::Leave { bytes } => m.sp = m.sp.wrapping_add(bytes),
        HostOp::Op3Cmp { op, a, b, cond, c } => {
            let av = read_src(m, a)?;
            let bv = read_src(m, b)?;
            m.accum = op.eval(av, bv);
            let cv = read_src(m, c).expect("melded compare operands are infallible");
            m.psw.flag = cond.eval(m.accum, cv);
        }
        HostOp::Op2SpMov {
            op,
            off,
            src,
            dst,
            pc2,
        } => {
            let b = read_src(m, src)?;
            let addr = m.sp.wrapping_add(off);
            let a = m.mem.read_word(addr)?;
            let v = op.eval(a, b);
            m.mem.write_word(addr, v)?;
            note_addr(dirty, text_lo, text_hi, addr);
            let addr2 = m.sp.wrapping_add(dst);
            if let Err(e) = m.mem.write_word(addr2, v) {
                // The first entry committed; the fault belongs to the
                // second entry's PC.
                m.pc = pc2;
                return Err(HostFault {
                    err: e,
                    pc_set: true,
                });
            }
            note_addr(dirty, text_lo, text_hi, addr2);
        }
        HostOp::Generic(ref exec) => {
            if let Some((addr, _)) = exec_generic(m, exec)? {
                note_addr(dirty, text_lo, text_hi, addr);
            }
        }
    }
    Ok(())
}

/// How a block execution handed control back.
enum BlockExit {
    Halted,
    /// Chained successor block index (budget still unchecked).
    Chained(u32),
    /// Resolve the next PC through the table (or deopt).
    Fall,
}

#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn exec_block<O: PipeObserver>(
    m: &mut Machine,
    table: &TranslatedImage,
    blk: &Block,
    seq0: u64,
    stats: &mut RunStats,
    trace: &mut Trace,
    record_trace: bool,
    dirty: &mut Option<(u32, u32)>,
    text_lo: u32,
    text_hi: u32,
    obs: &mut O,
) -> Result<BlockExit, SimError> {
    if O::ENABLED || record_trace {
        // Observed body: re-walk the decoded entries (melded micro-ops
        // cover two of them) and retire each through the shared commit
        // point so the event stream (and the branch trace — superblock
        // bodies may contain folded or plain jumps) is bit-identical to
        // the interpreter's.
        let mut cur = blk.start_pc;
        for j in 0..blk.entries - 1 {
            let d = table
                .predecoded
                .decoded(cur)
                .expect("translated body slots decode");
            let step = m.execute_observed(d, seq0 + j as u64, obs)?;
            if let Some((addr, _)) = step.mem_write {
                note_addr(dirty, text_lo, text_hi, addr);
            }
            if record_trace {
                push_branch_event(trace, d, &step);
            }
            cur = through(d).expect("translated body entries chain");
        }
        debug_assert_eq!(cur, blk.term.d.pc);
    } else {
        let ops = &table.ops[blk.ops.0 as usize..blk.ops.1 as usize];
        for op in ops {
            if let Err(f) = exec_host(m, &op.op, dirty, text_lo, text_hi) {
                // Leave the PC where the interpreter would have it.
                if !f.pc_set {
                    m.pc = op.pc;
                }
                return Err(f.err);
            }
        }
    }

    let seq = seq0 + (blk.entries - 1) as u64;
    let term = &blk.term;
    if O::ENABLED || record_trace || matches!(term.kind, TermKind::General) {
        let step = m.execute_observed(&term.d, seq, obs)?;
        if let Some((addr, _)) = step.mem_write {
            note_addr(dirty, text_lo, text_hi, addr);
        }
        if let (Some(taken), FoldClass::Cond { predict_taken, .. }) = (step.taken, term.d.fold) {
            if taken != predict_taken {
                stats.static_mispredicts += 1;
            }
        }
        if record_trace {
            push_branch_event(trace, &term.d, &step);
        }
        if step.halted {
            return Ok(BlockExit::Halted);
        }
        return Ok(match term.kind {
            TermKind::Fixed { succ, .. } if succ != 0 => BlockExit::Chained(succ - 1),
            TermKind::Cond {
                taken_pc,
                taken_succ,
                seq_succ,
                ..
            } => {
                let s = if step.next_pc == taken_pc {
                    taken_succ
                } else {
                    seq_succ
                };
                if s != 0 {
                    BlockExit::Chained(s - 1)
                } else {
                    BlockExit::Fall
                }
            }
            _ => BlockExit::Fall,
        });
    }

    match term.kind {
        TermKind::Halt => {
            m.halted = true;
            m.pc = term.d.pc;
            Ok(BlockExit::Halted)
        }
        TermKind::Fixed { target, succ } => {
            if let Err(f) = exec_host(m, &term.host, dirty, text_lo, text_hi) {
                m.pc = term.d.pc;
                return Err(f.err);
            }
            m.pc = target;
            Ok(if succ != 0 {
                BlockExit::Chained(succ - 1)
            } else {
                BlockExit::Fall
            })
        }
        TermKind::Cond {
            on_true,
            predict_taken,
            taken_pc,
            seq_pc,
            taken_succ,
            seq_succ,
        } => {
            if let Err(f) = exec_host(m, &term.host, dirty, text_lo, text_hi) {
                m.pc = term.d.pc;
                return Err(f.err);
            }
            let taken = m.psw.flag == on_true;
            if taken != predict_taken {
                stats.static_mispredicts += 1;
            }
            let (target, succ) = if taken {
                (taken_pc, taken_succ)
            } else {
                (seq_pc, seq_succ)
            };
            m.pc = target;
            Ok(if succ != 0 {
                BlockExit::Chained(succ - 1)
            } else {
                BlockExit::Fall
            })
        }
        TermKind::General => unreachable!("general terminators take the observed path above"),
    }
}

/// The threaded-code functional engine: same inputs, outputs and
/// builder surface as [`FunctionalSim`], same architectural results
/// (bit-identical commit streams under observation), several times
/// faster on translated code.
#[derive(Debug)]
pub struct ThreadedSim {
    interp: FunctionalSim,
    table: Arc<TranslatedImage>,
    max_steps: u64,
    record_trace: bool,
}

impl ThreadedSim {
    /// Wrap a loaded machine with the default (CRISP) fold policy.
    pub fn new(machine: Machine) -> ThreadedSim {
        ThreadedSim::with_policy(machine, FoldPolicy::Host13)
    }

    /// Wrap a loaded machine with an explicit fold policy, translating
    /// its text segment.
    pub fn with_policy(machine: Machine, policy: FoldPolicy) -> ThreadedSim {
        let table = Arc::new(TranslatedImage::from_machine(&machine, policy));
        ThreadedSim::with_translated(machine, table)
    }

    /// Wrap a loaded machine around an already-built translation table
    /// (the fold policy comes from the table). Campaign workers build
    /// the table once per image × policy — translation is paid once,
    /// exactly like the predecode pass it extends.
    pub fn with_translated(machine: Machine, table: Arc<TranslatedImage>) -> ThreadedSim {
        let interp = FunctionalSim::with_predecoded(machine, Arc::clone(table.predecoded()));
        ThreadedSim {
            interp,
            table,
            max_steps: 2_000_000_000,
            record_trace: false,
        }
    }

    /// Recover the machine for buffer reuse (see
    /// [`Machine::reset_from`]), dropping the engine state.
    pub fn into_machine(self) -> Machine {
        self.interp.into_machine()
    }

    /// Enable branch-trace recording (builder style). Trace runs retire
    /// entries through the observed path, trading the micro-op speedup
    /// for an interpreter-identical trace.
    pub fn record_trace(mut self, on: bool) -> ThreadedSim {
        self.record_trace = on;
        self
    }

    /// Set the runaway-program step limit (builder style).
    pub fn max_steps(mut self, limit: u64) -> ThreadedSim {
        self.max_steps = limit;
        self
    }

    /// The architectural state (read-only view).
    pub fn machine(&self) -> &Machine {
        self.interp.machine()
    }

    /// The translation table this engine executes from.
    pub fn table(&self) -> &Arc<TranslatedImage> {
        &self.table
    }

    /// Run to `halt`, or until `max_steps` expires.
    ///
    /// # Errors
    ///
    /// Same conditions as [`FunctionalSim::run`].
    pub fn run(self) -> Result<FunctionalRun, SimError> {
        self.run_observed(&mut NullObserver)
    }

    /// Run to `halt`, reporting each retirement to `obs` exactly as the
    /// interpreter would (the step index plays the role of the cycle).
    ///
    /// # Errors
    ///
    /// Same conditions as [`FunctionalSim::run`].
    pub fn run_observed<O: PipeObserver>(mut self, obs: &mut O) -> Result<FunctionalRun, SimError> {
        let table = Arc::clone(&self.table);
        let mut stats = RunStats {
            blocks_translated: table.blocks.len() as u64,
            ..RunStats::default()
        };
        let mut trace = Trace::new();
        let mut dirty: Option<(u32, u32)> = None;
        let (text_lo, text_hi) = (table.predecoded.base(), table.predecoded.end());
        let max_steps = self.max_steps;
        let record_trace = self.record_trace;
        let mut steps: u64 = 0;
        // Per-block execution counts; folded into `stats` once at run
        // end so a dispatch costs one increment, not a stats replay.
        let mut block_runs = vec![0u64; table.blocks.len()];

        'outer: loop {
            // Fast tier: chained translated blocks. A block runs only
            // when it fits the remaining watchdog budget whole and no
            // store has dirtied its code bytes.
            let mut next = table.block_index(self.interp.machine().pc);
            while let Some(bi) = next {
                let blk = &table.blocks[bi as usize];
                if steps + blk.entries as u64 > max_steps {
                    break;
                }
                if let Some((dlo, dhi)) = dirty {
                    if blk.code_lo < dhi && blk.code_hi > dlo {
                        break;
                    }
                }
                block_runs[bi as usize] += 1;
                let exit = exec_block(
                    self.interp.machine_mut(),
                    &table,
                    blk,
                    steps,
                    &mut stats,
                    &mut trace,
                    record_trace,
                    &mut dirty,
                    text_lo,
                    text_hi,
                    obs,
                )?;
                steps += blk.entries as u64;
                next = match exit {
                    BlockExit::Halted => {
                        return Ok(self.finish(stats, &block_runs, trace, true, HaltReason::Halted))
                    }
                    BlockExit::Chained(n) => Some(n),
                    BlockExit::Fall => table.block_index(self.interp.machine().pc),
                };
            }

            // Slow tier: the one-entry interpreter, until control
            // reaches a runnable leader again (or the budget expires).
            stats.deopt_falls += 1;
            loop {
                if steps >= max_steps {
                    stats.watchdog = true;
                    return Ok(self.finish(stats, &block_runs, trace, false, HaltReason::Watchdog));
                }
                let step =
                    self.interp
                        .interp_step(steps, &mut stats, &mut trace, record_trace, obs)?;
                steps += 1;
                if let Some((addr, _)) = step.mem_write {
                    note_addr(&mut dirty, text_lo, text_hi, addr);
                }
                if step.halted {
                    return Ok(self.finish(stats, &block_runs, trace, true, HaltReason::Halted));
                }
                // Rejoin the fast tier only at a block that is actually
                // runnable (budget and dirty-range checked), so control
                // cannot ping-pong between the tiers without progress.
                if let Some(bi) = table.block_index(self.interp.machine().pc) {
                    let blk = &table.blocks[bi as usize];
                    let fits = steps + blk.entries as u64 <= max_steps;
                    let clean = match dirty {
                        Some((dlo, dhi)) => blk.code_lo >= dhi || blk.code_hi <= dlo,
                        None => true,
                    };
                    if fits && clean {
                        continue 'outer;
                    }
                }
            }
        }
    }

    fn finish(
        self,
        mut stats: RunStats,
        block_runs: &[u64],
        trace: Trace,
        halted: bool,
        halt_reason: HaltReason,
    ) -> FunctionalRun {
        // Fold the deferred per-block statistics: each block's
        // precomputed deltas times its execution count.
        for (blk, &n) in self.table.blocks.iter().zip(block_runs) {
            if n == 0 {
                continue;
            }
            stats.superinstr_dispatches += n;
            stats.entries += n * blk.entries as u64;
            stats.program_instrs += n * blk.program_instrs as u64;
            stats.folded += n * blk.folded as u64;
            stats.transfers += n * blk.transfers as u64;
            stats.cond_branches += n * blk.cond_branches as u64;
            for &(i, c) in &self.table.deltas[blk.deltas.0 as usize..blk.deltas.1 as usize] {
                stats.opcodes.bump_index(i as usize, n * c as u64);
            }
        }
        FunctionalRun {
            machine: self.interp.into_machine(),
            stats,
            trace,
            halted,
            halt_reason,
        }
    }
}

/// First difference between a threaded and an interpreter run of the
/// same image, as a human-readable description (`None` = bit-identical).
pub type ThreadedDivergence = Option<String>;

/// Cross-check the threaded tier against the interpreter on one image:
/// run both to completion under a [`CommitLog`] observer and compare
/// errors, final architectural state, architectural statistics, branch
/// traces and the full commit stream. Machines are pooled through
/// `bufs` (the `func` slot carries the interpreter, the `cycle` slot
/// the threaded machine) so campaigns reuse allocations case to case.
///
/// # Errors
///
/// Only [`Machine::load`]-class errors are returned; *runtime* errors
/// from either engine participate in the comparison instead (both
/// engines must produce the identical error).
pub fn verify_threaded_pooled(
    image: &Image,
    table: &Arc<TranslatedImage>,
    max_steps: u64,
    bufs: &mut LockstepBuffers,
) -> Result<ThreadedDivergence, SimError> {
    let interp_machine = reset_or_load(bufs.func.take(), image)?;
    let threaded_machine = reset_or_load(bufs.cycle.take(), image)?;

    let mut interp_log = CommitLog::default();
    let interp_run = FunctionalSim::with_predecoded(interp_machine, Arc::clone(table.predecoded()))
        .max_steps(max_steps)
        .record_trace(true)
        .run_observed(&mut interp_log);

    let mut threaded_log = CommitLog::default();
    let threaded_run = ThreadedSim::with_translated(threaded_machine, Arc::clone(table))
        .max_steps(max_steps)
        .record_trace(true)
        .run_observed(&mut threaded_log);

    let (a, b) = match (interp_run, threaded_run) {
        (Err(ea), Err(eb)) => {
            return Ok((ea != eb)
                .then(|| format!("errors differ: interp reports {ea}, threaded reports {eb}")));
        }
        (Err(ea), Ok(_)) => return Ok(Some(format!("interp errors ({ea}), threaded completes"))),
        (Ok(_), Err(eb)) => return Ok(Some(format!("threaded errors ({eb}), interp completes"))),
        (Ok(a), Ok(b)) => (a, b),
    };

    let divergence = (|| {
        for (i, (ra, rb)) in interp_log
            .records
            .iter()
            .zip(&threaded_log.records)
            .enumerate()
        {
            if ra != rb {
                return Some(format!(
                    "commit {i} differs: interp {ra:?}, threaded {rb:?}"
                ));
            }
        }
        if interp_log.records.len() != threaded_log.records.len() {
            return Some(format!(
                "commit counts differ: interp {}, threaded {}",
                interp_log.records.len(),
                threaded_log.records.len()
            ));
        }
        if a.machine != b.machine {
            return Some("final architectural state differs".to_string());
        }
        if (a.halted, a.halt_reason) != (b.halted, b.halt_reason) {
            return Some(format!(
                "halt disposition differs: interp {:?}, threaded {:?}",
                (a.halted, a.halt_reason),
                (b.halted, b.halt_reason)
            ));
        }
        if a.trace.iter().ne(b.trace.iter()) {
            return Some("branch traces differ".to_string());
        }
        // Architectural statistics must agree exactly; the threaded
        // tier's own counters are additive observability on top.
        let mut normalized = b.stats.clone();
        normalized.blocks_translated = 0;
        normalized.superinstr_dispatches = 0;
        normalized.deopt_falls = 0;
        if normalized != a.stats {
            return Some(format!(
                "run stats differ: interp {:?}, threaded {normalized:?}",
                a.stats
            ));
        }
        None
    })();

    bufs.func = Some(a.machine);
    bufs.cycle = Some(b.machine);
    Ok(divergence)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crisp_asm::assemble_text;

    fn both(src: &str) -> (FunctionalRun, FunctionalRun) {
        let img = assemble_text(src).unwrap();
        let interp = FunctionalSim::new(Machine::load(&img).unwrap())
            .record_trace(true)
            .run()
            .unwrap();
        let threaded = ThreadedSim::new(Machine::load(&img).unwrap())
            .record_trace(true)
            .run()
            .unwrap();
        (interp, threaded)
    }

    fn assert_identical(interp: &FunctionalRun, threaded: &FunctionalRun) {
        assert_eq!(interp.machine, threaded.machine);
        assert_eq!(interp.halted, threaded.halted);
        assert_eq!(interp.halt_reason, threaded.halt_reason);
        let mut s = threaded.stats.clone();
        s.blocks_translated = 0;
        s.superinstr_dispatches = 0;
        s.deopt_falls = 0;
        assert_eq!(s, interp.stats);
        assert!(interp.trace.iter().eq(threaded.trace.iter()));
    }

    #[test]
    fn counted_loop_matches_interpreter() {
        let (i, t) = both(
            "
            mov 0(sp),$0
            mov 4(sp),$0
        top:
            add 4(sp),$2
            add 0(sp),$1
            cmp.s< 0(sp),$10
            ifjmpy.t top
            halt
        ",
        );
        assert_identical(&i, &t);
        assert!(t.stats.blocks_translated > 0);
        assert!(t.stats.superinstr_dispatches >= 10);
        assert_eq!(t.stats.deopt_falls, 0);
    }

    #[test]
    fn fast_path_without_trace_matches_interpreter() {
        // The no-trace run takes the lowered micro-op path; results
        // must still match the interpreter exactly.
        let src = "
            mov 0(sp),$0
        top:
            add 0(sp),$1
            and3 0(sp),$1
            cmp.= Accum,$0
            ifjmpy.t even
            add 4(sp),$1
            jmp join
        even:
            add 8(sp),$1
        join:
            cmp.s< 0(sp),$20
            ifjmpy.t top
            halt
        ";
        let img = assemble_text(src).unwrap();
        let i = FunctionalSim::new(Machine::load(&img).unwrap())
            .run()
            .unwrap();
        let t = ThreadedSim::new(Machine::load(&img).unwrap())
            .run()
            .unwrap();
        assert_identical(&i, &t);
        // Superblocks walk through the unconditional `jmp join`, so an
        // iteration costs two dispatches (loop head + one arm).
        assert!(t.stats.superinstr_dispatches <= 2 * 20 + 4);
    }

    #[test]
    fn call_ret_falls_back_and_matches() {
        let (i, t) = both(
            "
            mov *0x8000,$0
        again:
            call f
            cmp.s< *0x8000,$5
            ifjmpy.t again
            halt
        f:  add *0x8000,$1
            ret
        ",
        );
        assert_identical(&i, &t);
        // Calls and returns exit through the general terminator, but
        // the bodies around them still run translated.
        assert!(t.stats.superinstr_dispatches > 0);
    }

    #[test]
    fn indirect_jump_rejoins_translated_code() {
        // First pass falls through, plants 0 (the entry PC) in a jump
        // table and jumps indirect through it — control lands back on a
        // translated leader; the second pass exits.
        let (i, t) = both(
            "
            cmp.s< *0x8000,$1
            ifjmpn.t done
            mov *0x8000,$1
            mov *0x10000,$0
            jmp *0x10000
        done:
            halt
        ",
        );
        assert_identical(&i, &t);
        assert!(t.stats.deopt_falls > 0 || t.stats.superinstr_dispatches > 0);
    }

    #[test]
    fn watchdog_stops_at_exactly_the_limit() {
        let img = assemble_text("top: add 0(sp),$1\njmp top").unwrap();
        for limit in [0u64, 1, 2, 3, 7, 100, 101] {
            let i = FunctionalSim::new(Machine::load(&img).unwrap())
                .max_steps(limit)
                .run()
                .unwrap();
            let t = ThreadedSim::new(Machine::load(&img).unwrap())
                .max_steps(limit)
                .run()
                .unwrap();
            assert_eq!(t.stats.entries, limit, "limit {limit}");
            assert_eq!(t.halt_reason, HaltReason::Watchdog);
            assert_identical(&i, &t);
        }
    }

    #[test]
    fn decode_error_reported_identically() {
        let img = assemble_text("jmp d\nd: .word 0x0000B800").unwrap();
        let ei = FunctionalSim::new(Machine::load(&img).unwrap())
            .run()
            .unwrap_err();
        let et = ThreadedSim::new(Machine::load(&img).unwrap())
            .run()
            .unwrap_err();
        assert_eq!(ei, et);
    }

    #[test]
    fn store_into_text_invalidates_overlapping_blocks() {
        // The store lands inside the loop's own code range; the block
        // must deopt (dirty overlap) yet results stay identical because
        // both tiers read the immutable predecode table.
        let (i, t) = both(
            "
            mov 0(sp),$0
        top:
            mov *4,$0
            add 0(sp),$1
            cmp.s< 0(sp),$3
            ifjmpy.t top
            halt
        ",
        );
        assert_identical(&i, &t);
        assert!(t.stats.deopt_falls > 0, "dirty text must force deopt");
    }

    #[test]
    fn observed_commit_streams_are_bit_identical() {
        let img = assemble_text(
            "
            mov 0(sp),$0
        top:
            add 0(sp),$1
            cmp.s< 0(sp),$6
            ifjmpy.t top
            call f
            halt
        f:  enter 8
            leave 8
            ret
        ",
        )
        .unwrap();
        let table = TranslatedImage::shared(&img, FoldPolicy::Host13).unwrap();
        let mut bufs = LockstepBuffers::default();
        let diff = verify_threaded_pooled(&img, &table, 1_000_000, &mut bufs).unwrap();
        assert_eq!(diff, None);
        // Pooled machines came back for reuse.
        assert!(bufs.func.is_some() && bufs.cycle.is_some());
    }

    #[test]
    fn translation_is_shared_across_machines() {
        let img = assemble_text("mov 0(sp),$1\nhalt").unwrap();
        let table = TranslatedImage::shared(&img, FoldPolicy::Host13).unwrap();
        assert!(table.block_count() > 0);
        for _ in 0..3 {
            let r = ThreadedSim::with_translated(Machine::load(&img).unwrap(), Arc::clone(&table))
                .run()
                .unwrap();
            assert!(r.halted);
            assert_eq!(r.stats.blocks_translated, table.block_count() as u64);
        }
    }

    #[test]
    fn engine_parses_cli_spellings() {
        assert_eq!(Engine::parse("interp"), Some(Engine::Interp));
        assert_eq!(Engine::parse("threaded"), Some(Engine::Threaded));
        assert_eq!(Engine::parse("jit"), None);
        assert_eq!(Engine::Threaded.name(), "threaded");
        assert_eq!(Engine::default(), Engine::Threaded);
    }
}

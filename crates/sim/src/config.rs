use crisp_isa::FoldPolicy;

use crate::geometry::PipelineGeometry;
use crate::soft_error::{FaultPlan, ParityMode};

/// The hardware branch-direction source used by the Execution Unit when
/// a conditional branch must be guessed (i.e. a compare is still in
/// flight).
///
/// CRISP shipped [`HwPredictor::StaticBit`]; the paper evaluated — and
/// rejected — dynamic history ("Given the increased complexity of the
/// dynamic strategies, the use of a single static prediction bit in
/// CRISP seems to be a reasonable choice"). [`HwPredictor::Dynamic`]
/// models the road not taken: an n-bit saturating-counter table indexed
/// by branch address, so the tradeoff can be measured in cycles rather
/// than trace accuracy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HwPredictor {
    /// The compiler-set static prediction bit (the shipped design).
    #[default]
    StaticBit,
    /// A direct-mapped table of n-bit saturating counters.
    Dynamic {
        /// Counter width (1..=7); 2 is the classic Smith counter.
        bits: u8,
        /// Table entries (power of two). Unlike Table 1's idealised
        /// infinite table, hardware gets a finite one, so aliasing is
        /// modelled.
        entries: usize,
    },
    /// A Lee-Smith branch target buffer (direction half): set
    /// associative, 2-bit counters, LRU, allocate-on-taken, misses
    /// predict fall-through. The paper sizes it at "128 sets of 4
    /// entries" and notes it "would be nearly as large as our entire
    /// microprocessor chip".
    Btb {
        /// Number of sets (power of two); the paper's point is 128.
        entries: usize,
        /// Associativity (at least 1); the paper's point is 4.
        ways: usize,
    },
    /// The Manchester MU5 jump trace: a small fully-associative FIFO
    /// of taken-branch addresses ("only a 40-65 percent correct
    /// prediction rate for an eight entry jump-trace").
    JumpTrace {
        /// FIFO capacity (at least 1); the MU5 had 8.
        entries: usize,
    },
}

impl HwPredictor {
    /// Stable short label, used as the stats-JSON `predicted_by` value
    /// and as golden-vector / sweep file-name components. The inverse
    /// of [`HwPredictor::parse`].
    pub fn label(&self) -> String {
        match *self {
            HwPredictor::StaticBit => "static".to_string(),
            HwPredictor::Dynamic { bits, entries } => format!("counter{bits}x{entries}"),
            HwPredictor::Btb { entries, ways } => format!("btb{entries}x{ways}"),
            HwPredictor::JumpTrace { entries } => format!("jumptrace{entries}"),
        }
    }

    /// Parse a `--predictor` spelling. Accepted forms (defaults fill
    /// omitted geometry):
    ///
    /// * `static`
    /// * `counterN` / `counterNxM` — N-bit counters, M entries
    ///   (default 64)
    /// * `btb` / `btbSxW` — S sets × W ways (default 128x4)
    /// * `jumptrace` / `jumptraceN` — N FIFO entries (default 8)
    pub fn parse(spec: &str) -> Result<HwPredictor, String> {
        let bad = || {
            format!("unknown predictor {spec:?} (expected static, counterN[xM], btb[SxW], or jumptrace[N])")
        };
        let parsed = if spec == "static" {
            HwPredictor::StaticBit
        } else if let Some(rest) = spec.strip_prefix("counter") {
            let (bits, entries) = match rest.split_once('x') {
                Some((b, e)) => (
                    b.parse::<u8>().map_err(|_| bad())?,
                    e.parse::<usize>().map_err(|_| bad())?,
                ),
                None => (rest.parse::<u8>().map_err(|_| bad())?, 64),
            };
            HwPredictor::Dynamic { bits, entries }
        } else if let Some(rest) = spec.strip_prefix("btb") {
            let (entries, ways) = if rest.is_empty() {
                (128, 4)
            } else {
                let (s, w) = rest.split_once('x').ok_or_else(bad)?;
                (
                    s.parse::<usize>().map_err(|_| bad())?,
                    w.parse::<usize>().map_err(|_| bad())?,
                )
            };
            HwPredictor::Btb { entries, ways }
        } else if let Some(rest) = spec.strip_prefix("jumptrace") {
            let entries = if rest.is_empty() {
                8
            } else {
                rest.parse::<usize>().map_err(|_| bad())?
            };
            HwPredictor::JumpTrace { entries }
        } else {
            return Err(bad());
        };
        parsed
            .check()
            .map_err(|e| format!("predictor {spec:?}: {e}"))?;
        Ok(parsed)
    }

    /// Geometry invariants, shared by [`SimConfig::validate`] (which
    /// panics — construction sites are static) and
    /// [`HwPredictor::parse`] (which reports, since its input is a
    /// command line).
    fn check(&self) -> Result<(), String> {
        match *self {
            HwPredictor::StaticBit => {}
            HwPredictor::Dynamic { bits, entries } => {
                if !(1..=7).contains(&bits) {
                    return Err("dynamic predictor bits must be 1..=7".to_string());
                }
                if !entries.is_power_of_two() || entries < 1 {
                    return Err("dynamic predictor table must be a power of two".to_string());
                }
            }
            HwPredictor::Btb { entries, ways } => {
                if !entries.is_power_of_two() || entries < 1 {
                    return Err("BTB sets must be a power of two".to_string());
                }
                if ways < 1 {
                    return Err("BTB ways must be at least 1".to_string());
                }
            }
            HwPredictor::JumpTrace { entries } => {
                if entries < 1 {
                    return Err("jump trace needs at least one entry".to_string());
                }
            }
        }
        Ok(())
    }
}

/// A deliberately-injected pipeline bug, used to validate that the
/// differential oracle ([`crate::run_lockstep`]) actually catches the
/// class of defect it exists for. Never set in real experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultInjection {
    /// When a folded compare resolves a mispredict at RR, skip the
    /// squash of the OR-stage slot: one wrong-path instruction commits
    /// architectural state — exactly the "missed squash window" bug the
    /// commit-stream comparison is designed to expose.
    SkipOrSquash,
}

/// Graceful-degradation policy for parity-protected front-end state.
///
/// When set (and [`ParityMode::DetectInvalidate`] is active — the
/// policy has no parity hits to count otherwise), a decoded-cache slot
/// or BTB way that accumulates `parity_limit` parity detections is
/// taken out of service: the cache remaps the slot onto its partner
/// and the BTB shrinks its associativity, so a permanently-flaky bit
/// costs performance instead of an endless detect/refill loop. Each
/// disablement is surfaced as a [`crate::PipeEvent::Degrade`] event
/// and counts into the `degraded_ways` stat; a fully-degraded
/// predictor falls back to the static prediction bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradePolicy {
    /// Parity hits on one way/slot before it is disabled (>= 1).
    pub parity_limit: u32,
}

impl Default for DegradePolicy {
    fn default() -> DegradePolicy {
        // Real flaky cells fail repeatedly; one strike is the most
        // aggressive useful policy and the best default for fault
        // campaigns, which inject exactly one particle per run.
        DegradePolicy { parity_limit: 1 }
    }
}

/// Configuration of the cycle-level simulator.
///
/// The defaults model the CRISP chip as described in the paper: the
/// shipping fold policy (one- and three-parcel hosts with one-parcel
/// branches), a 32-entry decoded instruction cache, a memory that
/// delivers four parcels per access, and a three-stage PDU (one decode
/// cycle plus two pipeline cycles before the entry lands in the cache).
///
/// The Table 4 experiment matrix is expressed through `fold_policy`
/// (cases A/B/E disable folding) — prediction-bit settings and branch
/// spreading are properties of the *program*, produced by the compiler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Which instruction pairs the PDU folds.
    pub fold_policy: FoldPolicy,
    /// Shape of the execution pipeline (the paper's machine: the
    /// 3-stage IR→OR→RR unit). Resolve/squash points and the
    /// mispredict-penalty schedule derive from it (see
    /// [`crate::geometry`]).
    pub geometry: PipelineGeometry,
    /// Decoded instruction cache entries (power of two). The paper's
    /// chip has 32 ("the low five bits are used to address the Decoded
    /// Instruction Cache").
    pub icache_entries: usize,
    /// Cycles per four-parcel instruction-memory access.
    pub mem_latency: u32,
    /// PDU pipeline cycles between decode and cache visibility.
    pub pdu_pipe_delay: u32,
    /// Hardware branch-direction source.
    pub predictor: HwPredictor,
    /// Watchdog: upper bound on simulated cycles. Reaching it ends the
    /// run gracefully with [`crate::HaltReason::Watchdog`] rather than
    /// an error, so hung programs still produce stats and reports.
    pub max_cycles: u64,
    /// Watchdog: optional upper bound on retired program instructions;
    /// like `max_cycles`, reaching it ends the run gracefully.
    pub max_insns: Option<u64>,
    /// Deliberate pipeline bug for oracle validation; `None` (always,
    /// outside differential-harness self-tests) models the real chip.
    pub fault: Option<FaultInjection>,
    /// Parity protection of decoded-cache entries (see
    /// [`crate::soft_error`]).
    pub parity: ParityMode,
    /// A planned transient fault to inject into the decoded cache;
    /// `None` models fault-free silicon.
    pub fault_plan: Option<FaultPlan>,
    /// Graceful degradation of parity-protected ways; `None` (the
    /// default) keeps every way in service forever.
    pub degrade: Option<DegradePolicy>,
}

impl Default for SimConfig {
    fn default() -> SimConfig {
        SimConfig {
            fold_policy: FoldPolicy::Host13,
            geometry: PipelineGeometry::crisp(),
            icache_entries: 32,
            mem_latency: 1,
            pdu_pipe_delay: 2,
            predictor: HwPredictor::StaticBit,
            max_cycles: 500_000_000,
            max_insns: None,
            fault: None,
            parity: ParityMode::Off,
            fault_plan: None,
            degrade: None,
        }
    }
}

impl SimConfig {
    /// The paper's case A/B/E machine: folding disabled, everything
    /// else as shipped.
    pub fn without_folding() -> SimConfig {
        SimConfig {
            fold_policy: FoldPolicy::None,
            ..SimConfig::default()
        }
    }

    /// Validate invariants (cache size a power of two, nonzero latency).
    ///
    /// # Panics
    ///
    /// Panics on invalid configuration; construction sites are static.
    pub fn validate(&self) {
        assert!(
            self.icache_entries.is_power_of_two() && self.icache_entries >= 1,
            "icache_entries must be a power of two"
        );
        assert!(self.mem_latency >= 1, "mem_latency must be at least 1");
        // `PipelineGeometry` cannot be constructed out of range, but
        // assert the invariant here too so a future widening of the
        // type cannot silently bypass the engine's fixed stage array.
        assert!(
            (crate::geometry::MIN_DEPTH..=crate::geometry::MAX_DEPTH)
                .contains(&self.geometry.depth()),
            "EU depth must be {}..={}",
            crate::geometry::MIN_DEPTH,
            crate::geometry::MAX_DEPTH
        );
        if let Err(e) = self.predictor.check() {
            panic!("{e}");
        }
        if let Some(d) = self.degrade {
            assert!(
                d.parity_limit >= 1,
                "degrade parity_limit must be at least 1"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = SimConfig::default();
        assert_eq!(c.fold_policy, FoldPolicy::Host13);
        assert_eq!(c.icache_entries, 32);
        assert_eq!(c.geometry.depth(), 3);
        c.validate();
    }

    #[test]
    fn geometry_is_configurable() {
        let c = SimConfig {
            geometry: PipelineGeometry::new(5),
            ..SimConfig::default()
        };
        c.validate();
        assert_eq!(c.geometry.retire_stage(), 5);
    }

    #[test]
    fn without_folding_only_changes_policy() {
        let c = SimConfig::without_folding();
        assert_eq!(c.fold_policy, FoldPolicy::None);
        assert_eq!(c.icache_entries, SimConfig::default().icache_entries);
    }

    #[test]
    fn predictor_parse_accepts_all_spellings() {
        assert_eq!(HwPredictor::parse("static"), Ok(HwPredictor::StaticBit));
        assert_eq!(
            HwPredictor::parse("counter2"),
            Ok(HwPredictor::Dynamic {
                bits: 2,
                entries: 64
            })
        );
        assert_eq!(
            HwPredictor::parse("counter3x128"),
            Ok(HwPredictor::Dynamic {
                bits: 3,
                entries: 128
            })
        );
        assert_eq!(
            HwPredictor::parse("btb"),
            Ok(HwPredictor::Btb {
                entries: 128,
                ways: 4
            })
        );
        assert_eq!(
            HwPredictor::parse("btb8x2"),
            Ok(HwPredictor::Btb {
                entries: 8,
                ways: 2
            })
        );
        assert_eq!(
            HwPredictor::parse("jumptrace"),
            Ok(HwPredictor::JumpTrace { entries: 8 })
        );
        assert_eq!(
            HwPredictor::parse("jumptrace4"),
            Ok(HwPredictor::JumpTrace { entries: 4 })
        );
    }

    #[test]
    fn predictor_parse_round_trips_labels() {
        for p in [
            HwPredictor::StaticBit,
            HwPredictor::Dynamic {
                bits: 2,
                entries: 64,
            },
            HwPredictor::Btb {
                entries: 128,
                ways: 4,
            },
            HwPredictor::JumpTrace { entries: 8 },
        ] {
            assert_eq!(HwPredictor::parse(&p.label()), Ok(p));
        }
    }

    #[test]
    fn predictor_parse_rejects_bad_specs() {
        for bad in [
            "",
            "oracle",
            "counter",
            "counter0",
            "counter9",
            "counter2x3",
            "btb3x2",
            "btb128x0",
            "btbx",
            "jumptrace0",
            "jumptracex",
        ] {
            assert!(HwPredictor::parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    #[should_panic(expected = "BTB sets must be a power of two")]
    fn validate_rejects_bad_btb() {
        SimConfig {
            predictor: HwPredictor::Btb {
                entries: 100,
                ways: 4,
            },
            ..SimConfig::default()
        }
        .validate();
    }

    #[test]
    fn degrade_defaults_to_one_strike() {
        assert_eq!(DegradePolicy::default().parity_limit, 1);
        assert_eq!(SimConfig::default().degrade, None);
        SimConfig {
            degrade: Some(DegradePolicy::default()),
            ..SimConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "parity_limit")]
    fn validate_rejects_zero_degrade_limit() {
        SimConfig {
            degrade: Some(DegradePolicy { parity_limit: 0 }),
            ..SimConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn validate_rejects_bad_cache() {
        SimConfig {
            icache_entries: 3,
            ..SimConfig::default()
        }
        .validate();
    }
}

use crisp_isa::FoldPolicy;

use crate::geometry::PipelineGeometry;
use crate::soft_error::{FaultPlan, ParityMode};

/// The hardware branch-direction source used by the Execution Unit when
/// a conditional branch must be guessed (i.e. a compare is still in
/// flight).
///
/// CRISP shipped [`HwPredictor::StaticBit`]; the paper evaluated — and
/// rejected — dynamic history ("Given the increased complexity of the
/// dynamic strategies, the use of a single static prediction bit in
/// CRISP seems to be a reasonable choice"). [`HwPredictor::Dynamic`]
/// models the road not taken: an n-bit saturating-counter table indexed
/// by branch address, so the tradeoff can be measured in cycles rather
/// than trace accuracy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HwPredictor {
    /// The compiler-set static prediction bit (the shipped design).
    #[default]
    StaticBit,
    /// A direct-mapped table of n-bit saturating counters.
    Dynamic {
        /// Counter width (1..=7); 2 is the classic Smith counter.
        bits: u8,
        /// Table entries (power of two). Unlike Table 1's idealised
        /// infinite table, hardware gets a finite one, so aliasing is
        /// modelled.
        entries: usize,
    },
}

/// A deliberately-injected pipeline bug, used to validate that the
/// differential oracle ([`crate::run_lockstep`]) actually catches the
/// class of defect it exists for. Never set in real experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultInjection {
    /// When a folded compare resolves a mispredict at RR, skip the
    /// squash of the OR-stage slot: one wrong-path instruction commits
    /// architectural state — exactly the "missed squash window" bug the
    /// commit-stream comparison is designed to expose.
    SkipOrSquash,
}

/// Configuration of the cycle-level simulator.
///
/// The defaults model the CRISP chip as described in the paper: the
/// shipping fold policy (one- and three-parcel hosts with one-parcel
/// branches), a 32-entry decoded instruction cache, a memory that
/// delivers four parcels per access, and a three-stage PDU (one decode
/// cycle plus two pipeline cycles before the entry lands in the cache).
///
/// The Table 4 experiment matrix is expressed through `fold_policy`
/// (cases A/B/E disable folding) — prediction-bit settings and branch
/// spreading are properties of the *program*, produced by the compiler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Which instruction pairs the PDU folds.
    pub fold_policy: FoldPolicy,
    /// Shape of the execution pipeline (the paper's machine: the
    /// 3-stage IR→OR→RR unit). Resolve/squash points and the
    /// mispredict-penalty schedule derive from it (see
    /// [`crate::geometry`]).
    pub geometry: PipelineGeometry,
    /// Decoded instruction cache entries (power of two). The paper's
    /// chip has 32 ("the low five bits are used to address the Decoded
    /// Instruction Cache").
    pub icache_entries: usize,
    /// Cycles per four-parcel instruction-memory access.
    pub mem_latency: u32,
    /// PDU pipeline cycles between decode and cache visibility.
    pub pdu_pipe_delay: u32,
    /// Hardware branch-direction source.
    pub predictor: HwPredictor,
    /// Watchdog: upper bound on simulated cycles. Reaching it ends the
    /// run gracefully with [`crate::HaltReason::Watchdog`] rather than
    /// an error, so hung programs still produce stats and reports.
    pub max_cycles: u64,
    /// Watchdog: optional upper bound on retired program instructions;
    /// like `max_cycles`, reaching it ends the run gracefully.
    pub max_insns: Option<u64>,
    /// Deliberate pipeline bug for oracle validation; `None` (always,
    /// outside differential-harness self-tests) models the real chip.
    pub fault: Option<FaultInjection>,
    /// Parity protection of decoded-cache entries (see
    /// [`crate::soft_error`]).
    pub parity: ParityMode,
    /// A planned transient fault to inject into the decoded cache;
    /// `None` models fault-free silicon.
    pub fault_plan: Option<FaultPlan>,
}

impl Default for SimConfig {
    fn default() -> SimConfig {
        SimConfig {
            fold_policy: FoldPolicy::Host13,
            geometry: PipelineGeometry::crisp(),
            icache_entries: 32,
            mem_latency: 1,
            pdu_pipe_delay: 2,
            predictor: HwPredictor::StaticBit,
            max_cycles: 500_000_000,
            max_insns: None,
            fault: None,
            parity: ParityMode::Off,
            fault_plan: None,
        }
    }
}

impl SimConfig {
    /// The paper's case A/B/E machine: folding disabled, everything
    /// else as shipped.
    pub fn without_folding() -> SimConfig {
        SimConfig {
            fold_policy: FoldPolicy::None,
            ..SimConfig::default()
        }
    }

    /// Validate invariants (cache size a power of two, nonzero latency).
    ///
    /// # Panics
    ///
    /// Panics on invalid configuration; construction sites are static.
    pub fn validate(&self) {
        assert!(
            self.icache_entries.is_power_of_two() && self.icache_entries >= 1,
            "icache_entries must be a power of two"
        );
        assert!(self.mem_latency >= 1, "mem_latency must be at least 1");
        // `PipelineGeometry` cannot be constructed out of range, but
        // assert the invariant here too so a future widening of the
        // type cannot silently bypass the engine's fixed stage array.
        assert!(
            (crate::geometry::MIN_DEPTH..=crate::geometry::MAX_DEPTH)
                .contains(&self.geometry.depth()),
            "EU depth must be {}..={}",
            crate::geometry::MIN_DEPTH,
            crate::geometry::MAX_DEPTH
        );
        if let HwPredictor::Dynamic { bits, entries } = self.predictor {
            assert!(
                (1..=7).contains(&bits),
                "dynamic predictor bits must be 1..=7"
            );
            assert!(
                entries.is_power_of_two() && entries >= 1,
                "dynamic predictor table must be a power of two"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = SimConfig::default();
        assert_eq!(c.fold_policy, FoldPolicy::Host13);
        assert_eq!(c.icache_entries, 32);
        assert_eq!(c.geometry.depth(), 3);
        c.validate();
    }

    #[test]
    fn geometry_is_configurable() {
        let c = SimConfig {
            geometry: PipelineGeometry::new(5),
            ..SimConfig::default()
        };
        c.validate();
        assert_eq!(c.geometry.retire_stage(), 5);
    }

    #[test]
    fn without_folding_only_changes_policy() {
        let c = SimConfig::without_folding();
        assert_eq!(c.fold_policy, FoldPolicy::None);
        assert_eq!(c.icache_entries, SimConfig::default().icache_entries);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn validate_rejects_bad_cache() {
        SimConfig {
            icache_entries: 3,
            ..SimConfig::default()
        }
        .validate();
    }
}

//! Soft-error (transient-fault) model for the whole front end: the
//! Decoded Instruction Cache, the PDU's fold slots, and live dynamic
//! predictor state.
//!
//! The paper's whole mechanism lives in the 192-bit decoded-cache entry:
//! a flipped bit in Next-PC or Alternate Next-PC silently redirects
//! control flow with no EU-visible symptom. Because the decoded cache is
//! *never written back* — it holds pure decode products of instruction
//! memory — the classic defense applies: protect each entry with parity,
//! and on a parity mismatch simply invalidate the slot and redecode from
//! memory. Recovery costs one miss; architecture is untouched.
//!
//! The same redundancy argument covers the rest of the front end, each
//! with its own [`FaultTarget`]:
//!
//! * **PDU fold slots** ([`FaultTarget::Pdu`]): decoded entries latched
//!   in the PIR pipeline on their way to the cache. They carry the same
//!   Next-PC / Alternate Next-PC image as a cache line, so the same
//!   parity word protects them; a corrupted slot is *dropped* before it
//!   can pollute the cache and the demanding fetch redecodes.
//! * **Predictor state** ([`FaultTarget::Predictor`]): BTB tags,
//!   direction counters and valid bits, saturating-counter entries and
//!   jump-trace addresses. These bits only ever steer a *guess* — the
//!   central robustness invariant is that a fault here may change cycle
//!   counts but can never change committed architectural state (the
//!   `prop_fault_arch_safety` suite proves it against the functional
//!   oracle).
//!
//! This module provides the three pieces of that model:
//!
//! 1. **A canonical bit-level encoding** of [`Decoded`] entries
//!    ([`entry_bits`] / [`decode_entry`]): a 256-bit image (four `u64`
//!    words) standing in for the hardware's 192-bit entry. The decoder
//!    is *total* — every bit pattern decodes to some entry, modelling a
//!    hardware decoder's don't-care handling of illegal encodings — so a
//!    single-bit flip always yields a well-formed (if wrong) entry.
//! 2. **A fault plan** ([`FaultPlan`] / [`FaultField`]): which bit of
//!    which cache slot flips on which cycle. Set via
//!    [`SimConfig::fault_plan`]; the cycle engine applies it once.
//! 3. **Parity protection** ([`ParityMode`]): 32-bit column parity over
//!    the entry image, checked when the EU reads the slot. On mismatch
//!    the slot is invalidated and the fetch takes the ordinary miss
//!    path, so the PDU redecodes the entry from memory.
//!
//! [`classify_fault`] runs a faulted cycle-engine simulation against the
//! fault-free functional reference and buckets the outcome AVF-style:
//! masked, silent data corruption, control-flow divergence, or hang.
//! The `crisp-fault` CLI drives campaigns of these classifications.

use crisp_isa::{BinOp, Cond, Decoded, ExecOp, FoldClass, NextPc, Operand};

use std::sync::Arc;

use crate::batch::{FinishedLane, LaneEnd, MachineBatch, MachinePool};
use crate::config::HwPredictor;
use crate::diff::{CommitLog, CommitRecord, PrefixCheck};
use crate::error::HaltReason;
use crate::{
    CycleSim, FunctionalSim, Machine, PredecodedImage, SimConfig, SimError, ThreadedSim,
    TranslatedImage,
};
use crisp_asm::Image;

/// Whether decoded-cache entries carry a parity word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ParityMode {
    /// No protection: a corrupted entry is consumed as-is (the fault
    /// may be masked, corrupt data, divert control flow, or hang).
    #[default]
    Off,
    /// Each fill stores a parity word over the entry image; the EU
    /// checks it at cache-read time and, on mismatch, invalidates the
    /// slot and refetches — the entry is redecoded from memory.
    DetectInvalidate,
}

/// Which front-end structure a planned fault strikes.
///
/// [`FaultPlan::slot`] and [`FaultPlan::field`] are interpreted in the
/// coordinate system of the target: cache slots with cache entry
/// fields, resident predictor entries with predictor fields
/// (enumerated per variant by [`nth_predictor_field`]), or PIR fold
/// slots with the Next-PC / Alternate Next-PC fields of the in-flight
/// entry ([`nth_pdu_field`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FaultTarget {
    /// A Decoded Instruction Cache slot (the original PR 3 model).
    #[default]
    Cache,
    /// Live dynamic-predictor state: BTB tag/counter/valid bits,
    /// saturating-counter bits, or jump-trace entries.
    Predictor,
    /// A PDU fold slot: the folded next-PC / alternate-next-PC latches
    /// of a decoded entry still in the PIR pipeline.
    Pdu,
}

impl FaultTarget {
    /// All targets, in report order.
    pub const ALL: [FaultTarget; 3] =
        [FaultTarget::Cache, FaultTarget::Predictor, FaultTarget::Pdu];

    /// Stable name, matching the `crisp-fault --target` spelling
    /// (`btb` names the predictor target: every dynamic predictor is a
    /// BTB-like table from the fault model's point of view).
    pub fn name(self) -> &'static str {
        match self {
            FaultTarget::Cache => "cache",
            FaultTarget::Predictor => "btb",
            FaultTarget::Pdu => "pdu",
        }
    }
}

/// Which architectural field of a front-end structure a fault hits.
///
/// The first seven variants are the decoded-cache entry fields; the
/// payload is the bit index *within* the field and [`FaultField::bit`]
/// maps it to a position in the [`entry_bits`] image. Their widths sum
/// to [`FAULT_SPACE`], so [`nth_field`] enumerates every single-bit
/// cache fault the model can inject. The remaining variants name
/// predictor-state bits ([`FaultTarget::Predictor`]); they live outside
/// the entry image, so [`FaultField::bit`] returns `None` for them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultField {
    /// The Next-PC field: 2 tag bits plus a 32-bit payload.
    NextPc(u8),
    /// The Alternate Next-PC field: presence bit, 2 tag bits, 32-bit
    /// payload.
    AltPc(u8),
    /// The static branch-prediction direction bit.
    Predict,
    /// The slot's valid bit. Faulting it drops the entry (a live entry
    /// can only flip valid→invalid, which is architecturally safe: the
    /// fetch just misses and redecodes).
    Valid,
    /// The 8 opcode bits: execution kind plus sub-operation.
    Opcode(u8),
    /// The operand fields: two 3-bit addressing-mode tags plus two
    /// 32-bit payloads.
    Operand(u8),
    /// The 32-bit cache tag (the entry's PC).
    Tag(u8),
    /// A resident BTB entry's 32-bit branch-address tag.
    BtbTag(u8),
    /// A resident BTB entry's 2-bit direction counter.
    BtbCounter(u8),
    /// A resident BTB entry's valid bit; flipping it drops the entry
    /// (a live valid bit can only flip to invalid).
    BtbValid,
    /// One bit of a saturating direction counter (width = the
    /// configured counter bits, index taken modulo it).
    CounterBit(u8),
    /// One bit of a jump-trace FIFO entry (a 32-bit taken-branch
    /// address).
    JumpTraceBit(u8),
}

/// Width in bits of each [`FaultField`] group, in [`nth_field`] order.
const FIELD_WIDTHS: [(u8, &str); 7] = [
    (34, "next-pc"),
    (35, "alt-pc"),
    (1, "predict"),
    (1, "valid"),
    (8, "opcode"),
    (70, "operand"),
    (32, "tag"),
];

/// Total number of distinct single-bit faults [`nth_field`] enumerates.
pub const FAULT_SPACE: u64 = 181;

/// The stable kebab-case names of the seven fault-field groups, in
/// [`nth_field`] order — the row keys of a `crisp-fault` AVF report.
pub const FIELD_NAMES: [&str; 7] = [
    "next-pc", "alt-pc", "predict", "valid", "opcode", "operand", "tag",
];

impl FaultField {
    /// Enumerate the fault space: `nth_field(i)` for `i` in
    /// `0..FAULT_SPACE` visits every injectable single-bit fault once.
    /// Indices are taken modulo [`FAULT_SPACE`].
    pub fn nth(i: u64) -> FaultField {
        let mut i = (i % FAULT_SPACE) as u8;
        for (group, &(width, _)) in FIELD_WIDTHS.iter().enumerate() {
            if i < width {
                return match group {
                    0 => FaultField::NextPc(i),
                    1 => FaultField::AltPc(i),
                    2 => FaultField::Predict,
                    3 => FaultField::Valid,
                    4 => FaultField::Opcode(i),
                    5 => FaultField::Operand(i),
                    _ => FaultField::Tag(i),
                };
            }
            i -= width;
        }
        unreachable!("FIELD_WIDTHS sums to FAULT_SPACE");
    }

    /// Stable kebab-case group name (the AVF-report row key).
    pub fn name(self) -> &'static str {
        match self {
            FaultField::NextPc(_) => "next-pc",
            FaultField::AltPc(_) => "alt-pc",
            FaultField::Predict => "predict",
            FaultField::Valid => "valid",
            FaultField::Opcode(_) => "opcode",
            FaultField::Operand(_) => "operand",
            FaultField::Tag(_) => "tag",
            FaultField::BtbTag(_) => "btb-tag",
            FaultField::BtbCounter(_) => "btb-counter",
            FaultField::BtbValid => "btb-valid",
            FaultField::CounterBit(_) => "counter-bit",
            FaultField::JumpTraceBit(_) => "jump-trace",
        }
    }

    /// The `(word, bit)` position of this fault in the [`entry_bits`]
    /// image, or `None` for the valid bit (which lives in the slot, not
    /// the entry image) and for predictor-state fields (which live
    /// outside the cache entirely).
    pub fn bit(self) -> Option<(usize, u32)> {
        match self {
            FaultField::NextPc(i) if i < 2 => Some((0, 57 + u32::from(i))),
            FaultField::NextPc(i) => Some((1, u32::from(i) - 2)),
            FaultField::AltPc(0) => Some((0, 56)),
            FaultField::AltPc(i) if i < 3 => Some((0, 59 + u32::from(i) - 1)),
            FaultField::AltPc(i) => Some((1, 32 + u32::from(i) - 3)),
            FaultField::Predict => Some((0, 54)),
            FaultField::Valid => None,
            FaultField::Opcode(i) => Some((0, 40 + u32::from(i))),
            FaultField::Operand(i) if i < 6 => Some((2, 32 + u32::from(i))),
            FaultField::Operand(i) => Some((3, u32::from(i) - 6)),
            FaultField::Tag(i) => Some((0, u32::from(i))),
            FaultField::BtbTag(_)
            | FaultField::BtbCounter(_)
            | FaultField::BtbValid
            | FaultField::CounterBit(_)
            | FaultField::JumpTraceBit(_) => None,
        }
    }
}

/// Enumerate the fault space (free-function form of [`FaultField::nth`]).
pub fn nth_field(i: u64) -> FaultField {
    FaultField::nth(i)
}

/// Number of distinct single-bit predictor-state faults injectable into
/// the given predictor variant. The static bit has no hardware state,
/// so its space is zero; a BTB entry is a 32-bit tag, a 2-bit counter
/// and a valid bit; a counter table exposes its counter width; a jump
/// trace holds 32-bit branch addresses.
pub fn predictor_fault_space(p: HwPredictor) -> u64 {
    match p {
        HwPredictor::StaticBit => 0,
        HwPredictor::Dynamic { bits, .. } => u64::from(bits),
        HwPredictor::Btb { .. } => 35,
        HwPredictor::JumpTrace { .. } => 32,
    }
}

/// Enumerate the predictor fault space for the given variant:
/// `nth_predictor_field(p, i)` for `i` in `0..predictor_fault_space(p)`
/// visits every injectable predictor-state bit once (indices wrap).
/// `None` for [`HwPredictor::StaticBit`], which has no state to strike.
pub fn nth_predictor_field(p: HwPredictor, i: u64) -> Option<FaultField> {
    let space = predictor_fault_space(p);
    if space == 0 {
        return None;
    }
    let i = (i % space) as u8;
    Some(match p {
        HwPredictor::Dynamic { .. } => FaultField::CounterBit(i),
        HwPredictor::Btb { .. } => match i {
            0..=31 => FaultField::BtbTag(i),
            32..=33 => FaultField::BtbCounter(i - 32),
            _ => FaultField::BtbValid,
        },
        HwPredictor::JumpTrace { .. } => FaultField::JumpTraceBit(i),
        HwPredictor::StaticBit => unreachable!("space == 0 returned above"),
    })
}

/// Number of distinct single-bit faults injectable into one PDU fold
/// slot: the folded Next-PC (34 bits) and Alternate Next-PC (35 bits)
/// latches of the in-flight entry — the same sub-fields the cache image
/// carries, so the same parity word covers them.
pub const PDU_FAULT_SPACE: u64 = 69;

/// Enumerate the PDU fold-slot fault space: `nth_pdu_field(i)` for `i`
/// in `0..PDU_FAULT_SPACE` visits every injectable bit of the two
/// next-PC latches once (indices wrap).
pub fn nth_pdu_field(i: u64) -> FaultField {
    let i = (i % PDU_FAULT_SPACE) as u8;
    if i < 34 {
        FaultField::NextPc(i)
    } else {
        FaultField::AltPc(i - 34)
    }
}

/// One planned transient fault: flip `field` of cache slot `slot`
/// (taken modulo the cache size) at the start of cycle `cycle`. The
/// cycle engine applies the plan exactly once; if the slot is empty at
/// that cycle, nothing is corrupted (the fault lands in invalid state
/// and is trivially masked).
///
/// With `target` other than [`FaultTarget::Cache`], `slot` indexes the
/// target structure instead (a resident BTB/counter/jump-trace entry,
/// or an in-flight PDU fold slot, modulo occupancy). Because those
/// structures are often empty at any given instant, the engine *arms*
/// the strike at `cycle` and fires it on the first later cycle where
/// the target holds state — a particle that never finds a victim is a
/// trivially masked run, not an error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Cycle at which the flip occurs.
    pub cycle: u64,
    /// Target cache slot (modulo the configured cache size).
    pub slot: u32,
    /// The bit to flip.
    pub field: FaultField,
    /// Which front-end structure the strike lands in.
    pub target: FaultTarget,
}

// --- Canonical entry encoding -------------------------------------------

fn binop_index(op: BinOp) -> u64 {
    BinOp::ALL.iter().position(|&o| o == op).unwrap_or(0) as u64
}

fn cond_index(c: Cond) -> u64 {
    Cond::ALL.iter().position(|&o| o == c).unwrap_or(0) as u64
}

fn operand_bits(o: Operand) -> (u64, u64) {
    match o {
        Operand::Accum => (0, 0),
        Operand::Imm(v) => (1, u64::from(v as u32)),
        Operand::SpOff(v) => (2, u64::from(v as u32)),
        Operand::Abs(a) => (3, u64::from(a)),
        Operand::SpInd(v) => (4, u64::from(v as u32)),
    }
}

fn decode_operand(tag: u64, pay: u32) -> Operand {
    match tag % 5 {
        0 => Operand::Accum,
        1 => Operand::Imm(pay as i32),
        2 => Operand::SpOff(pay as i32),
        3 => Operand::Abs(pay),
        _ => Operand::SpInd(pay as i32),
    }
}

fn next_pc_bits(n: NextPc) -> (u64, u64) {
    match n {
        NextPc::Known(a) => (0, u64::from(a)),
        NextPc::IndAbs(a) => (1, u64::from(a)),
        NextPc::IndSp(off) => (2, u64::from(off as u32)),
        NextPc::FromRet => (3, 0),
    }
}

fn decode_next_pc(tag: u64, pay: u32) -> NextPc {
    match tag & 3 {
        0 => NextPc::Known(pay),
        1 => NextPc::IndAbs(pay),
        2 => NextPc::IndSp(pay as i32),
        _ => NextPc::FromRet,
    }
}

/// The canonical bit image of a decoded-cache entry: the software stand-in
/// for the hardware's 192-bit word, the domain parity is computed over and
/// faults are injected into.
///
/// Layout (word:bit, little-endian within each `u64`):
///
/// ```text
/// w0:  0..32  pc (the cache tag)        w0: 51..53  fold-class tag
/// w0: 32..40  len_bytes                 w0: 53      Cond on_true
/// w0: 40..44  exec kind                 w0: 54      Cond predict_taken
/// w0: 44..48  exec sub-op               w0: 55      branch_pc present
/// w0: 48      modifies_cc               w0: 56      alt_pc present
/// w0: 49      modifies_sp               w0: 57..59  next_pc tag
/// w0: 50      folded                    w0: 59..61  alt_pc tag
/// w1:  0..32  next_pc payload           w1: 32..64  alt_pc payload
/// w2:  0..32  branch_pc                 w2: 32..38  operand A/B tags
/// w3:  0..32  operand A payload         w3: 32..64  operand B payload
/// ```
///
/// `Enter`/`Leave`/`CallPush` store their immediate in the operand-A
/// payload. [`decode_entry`] inverts this encoding exactly on canonical
/// images and totally (via don't-care reduction) on all others.
pub fn entry_bits(d: &Decoded) -> [u64; 4] {
    let mut w = [0u64; 4];
    w[0] |= u64::from(d.pc);
    w[0] |= (u64::from(d.len_bytes) & 0xFF) << 32;
    let (kind, sub): (u64, u64) = match d.exec {
        ExecOp::Nop => (0, 0),
        ExecOp::Halt => (1, 0),
        ExecOp::Op2 { op, .. } => (2, binop_index(op)),
        ExecOp::Op3 { op, .. } => (3, binop_index(op)),
        ExecOp::Cmp { cond, .. } => (4, cond_index(cond)),
        ExecOp::Enter { .. } => (5, 0),
        ExecOp::Leave { .. } => (6, 0),
        ExecOp::CallPush { .. } => (7, 0),
        ExecOp::RetPop => (8, 0),
    };
    w[0] |= kind << 40;
    w[0] |= sub << 44;
    w[0] |= u64::from(d.modifies_cc) << 48;
    w[0] |= u64::from(d.modifies_sp) << 49;
    w[0] |= u64::from(d.folded) << 50;
    let (ftag, on_true, predict) = match d.fold {
        FoldClass::Sequential => (0u64, false, false),
        FoldClass::Uncond => (1, false, false),
        FoldClass::Cond {
            on_true,
            predict_taken,
        } => (2, on_true, predict_taken),
    };
    w[0] |= ftag << 51;
    w[0] |= u64::from(on_true) << 53;
    w[0] |= u64::from(predict) << 54;
    w[0] |= u64::from(d.branch_pc.is_some()) << 55;
    w[0] |= u64::from(d.alt_pc.is_some()) << 56;
    let (ntag, npay) = next_pc_bits(d.next_pc);
    w[0] |= ntag << 57;
    w[1] |= npay;
    if let Some(alt) = d.alt_pc {
        let (atag, apay) = next_pc_bits(alt);
        w[0] |= atag << 59;
        w[1] |= apay << 32;
    }
    w[2] |= u64::from(d.branch_pc.unwrap_or(0));
    match d.exec {
        ExecOp::Op2 { dst, src, .. } => {
            let (at, ap) = operand_bits(dst);
            let (bt, bp) = operand_bits(src);
            w[2] |= at << 32;
            w[2] |= bt << 35;
            w[3] |= ap;
            w[3] |= bp << 32;
        }
        ExecOp::Op3 { a, b, .. } | ExecOp::Cmp { a, b, .. } => {
            let (at, ap) = operand_bits(a);
            let (bt, bp) = operand_bits(b);
            w[2] |= at << 32;
            w[2] |= bt << 35;
            w[3] |= ap;
            w[3] |= bp << 32;
        }
        ExecOp::Enter { bytes } | ExecOp::Leave { bytes } => w[3] |= u64::from(bytes),
        ExecOp::CallPush { ret } => w[3] |= u64::from(ret),
        ExecOp::Nop | ExecOp::Halt | ExecOp::RetPop => {}
    }
    w
}

/// Decode a 256-bit entry image back into a [`Decoded`] entry.
///
/// Total: every bit pattern decodes. Out-of-range discriminants reduce
/// modulo their variant count (a hardware decoder's don't-care
/// handling), so a single-bit flip of a valid image always produces a
/// well-formed entry — possibly a wrong one, which is the point.
/// Inverse of [`entry_bits`] on canonical images:
/// `decode_entry(entry_bits(d)) == d`.
pub fn decode_entry(w: [u64; 4]) -> Decoded {
    let pc = w[0] as u32;
    let len_bytes = ((w[0] >> 32) & 0xFF) as u32;
    let kind = ((w[0] >> 40) & 0xF) % 9;
    let sub = (w[0] >> 44) & 0xF;
    let a_tag = (w[2] >> 32) & 0x7;
    let b_tag = (w[2] >> 35) & 0x7;
    let a_pay = w[3] as u32;
    let b_pay = (w[3] >> 32) as u32;
    let exec = match kind {
        0 => ExecOp::Nop,
        1 => ExecOp::Halt,
        2 => ExecOp::Op2 {
            op: BinOp::ALL[(sub % 12) as usize],
            dst: decode_operand(a_tag, a_pay),
            src: decode_operand(b_tag, b_pay),
        },
        3 => ExecOp::Op3 {
            op: BinOp::ALL[(sub % 12) as usize],
            a: decode_operand(a_tag, a_pay),
            b: decode_operand(b_tag, b_pay),
        },
        4 => ExecOp::Cmp {
            cond: Cond::ALL[(sub % 10) as usize],
            a: decode_operand(a_tag, a_pay),
            b: decode_operand(b_tag, b_pay),
        },
        5 => ExecOp::Enter { bytes: a_pay },
        6 => ExecOp::Leave { bytes: a_pay },
        7 => ExecOp::CallPush { ret: a_pay },
        _ => ExecOp::RetPop,
    };
    let fold = match ((w[0] >> 51) & 3) % 3 {
        0 => FoldClass::Sequential,
        1 => FoldClass::Uncond,
        _ => FoldClass::Cond {
            on_true: (w[0] >> 53) & 1 != 0,
            predict_taken: (w[0] >> 54) & 1 != 0,
        },
    };
    Decoded {
        pc,
        len_bytes,
        exec,
        modifies_cc: (w[0] >> 48) & 1 != 0,
        modifies_sp: (w[0] >> 49) & 1 != 0,
        fold,
        folded: (w[0] >> 50) & 1 != 0,
        branch_pc: ((w[0] >> 55) & 1 != 0).then_some(w[2] as u32),
        next_pc: decode_next_pc((w[0] >> 57) & 3, w[1] as u32),
        alt_pc: ((w[0] >> 56) & 1 != 0)
            .then(|| decode_next_pc((w[0] >> 59) & 3, (w[1] >> 32) as u32)),
    }
}

/// 32-bit column parity over an entry image: the XOR of its eight
/// 32-bit lanes. Any single-bit flip of the image flips exactly one bit
/// of the parity word (bit `position mod 32`), so single-bit faults are
/// always detected; an even number of flips in the same column cancels
/// — the standard blind spot of parity, faithfully modelled.
pub fn parity32(w: &[u64; 4]) -> u32 {
    w.iter()
        .fold(0u32, |p, &x| p ^ (x as u32) ^ ((x >> 32) as u32))
}

/// Apply a single-bit fault to a decoded entry: re-encode, flip the
/// mapped bit, decode totally. Returns `None` for [`FaultField::Valid`],
/// which lives in the slot rather than the entry image (the caller
/// clears the slot instead).
pub fn apply_fault(d: &Decoded, field: FaultField) -> Option<Decoded> {
    let (word, bit) = field.bit()?;
    let mut bits = entry_bits(d);
    bits[word] ^= 1u64 << bit;
    Some(decode_entry(bits))
}

// --- Fault-outcome classification ---------------------------------------

/// AVF-style bucket for one injected fault run without parity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOutcome {
    /// The faulted run retired the exact commit stream and final state
    /// of the fault-free reference: the flip had no architectural
    /// effect (overwritten, evicted, in a don't-care field, or the
    /// slot was never read again).
    Masked,
    /// Commit streams and control flow agree but some architectural
    /// value (accumulator, SP, flag, a memory write) differs — silent
    /// data corruption.
    Sdc,
    /// The faulted run took a different path: a commit disagrees on
    /// PC, next-PC, branch identity or direction, or the run halted at
    /// the wrong place, or execution wandered into undecodable bytes.
    ControlDivergence,
    /// The faulted run never halted: the watchdog limit expired with
    /// the commit stream still a clean prefix of the reference.
    Hang,
}

impl FaultOutcome {
    /// All outcomes, in report order.
    pub const ALL: [FaultOutcome; 4] = [
        FaultOutcome::Masked,
        FaultOutcome::Sdc,
        FaultOutcome::ControlDivergence,
        FaultOutcome::Hang,
    ];

    /// Stable kebab-case name (the AVF-report column key).
    pub fn name(self) -> &'static str {
        match self {
            FaultOutcome::Masked => "masked",
            FaultOutcome::Sdc => "sdc",
            FaultOutcome::ControlDivergence => "control-divergence",
            FaultOutcome::Hang => "hang",
        }
    }
}

/// Classify one commit-record disagreement: control-identity fields
/// make it a control divergence, pure value fields an SDC.
fn classify_pair(reference: &CommitRecord, faulted: &CommitRecord) -> FaultOutcome {
    if reference.pc != faulted.pc
        || reference.next_pc != faulted.next_pc
        || reference.branch_pc != faulted.branch_pc
        || reference.folded != faulted.folded
        || reference.taken != faulted.taken
        || reference.halted != faulted.halted
    {
        FaultOutcome::ControlDivergence
    } else {
        FaultOutcome::Sdc
    }
}

/// Run the cycle engine with the fault plan in `cfg` (typically with
/// [`ParityMode::Off`]) and classify the outcome against the fault-free
/// functional reference.
///
/// The faulted run's commit stream is compared record by record with
/// the reference; the first disagreement buckets the fault via
/// [`classify_pair`]. A clean prefix that ends in the watchdog is a
/// [`FaultOutcome::Hang`]; a clean prefix of different length is a
/// control divergence (the run halted early or late); equal streams
/// with equal final state are [`FaultOutcome::Masked`]. A faulted run
/// that errors maps to control divergence for decode errors (execution
/// left the instruction stream) and to SDC for data errors (a wild
/// address from a corrupted operand).
///
/// # Errors
///
/// Only harness-level failures are `Err`: the image does not load, or
/// the *fault-free* reference itself fails to halt within
/// `cfg.max_cycles` steps (campaign drivers pre-screen programs so this
/// does not happen).
pub fn classify_fault(image: &Image, cfg: SimConfig) -> Result<FaultOutcome, SimError> {
    classify_fault_pooled(image, cfg, None, &mut ClassifyBuffers::default())
}

/// Reusable machine buffers for [`classify_fault_pooled`]; campaign
/// workers keep one per thread so each case resets memory in place
/// instead of allocating a fresh [`Machine`].
#[derive(Debug, Default)]
pub struct ClassifyBuffers {
    pool: MachinePool,
}

/// Pooled variant of [`classify_fault`]: recycles per-worker machine
/// buffers via [`Machine::reset_from`] and, when `predecoded` is given,
/// shares one decode table (which must match `cfg.fold_policy`) between
/// the functional reference and the faulted cycle run.
///
/// Classification is identical to [`classify_fault`]. If the faulted
/// run dies with a simulator error its machine buffer is lost and the
/// next case falls back to a fresh load; that path is rare and already
/// pays the cost of an early exit.
///
/// # Errors
///
/// Same harness-level failures as [`classify_fault`].
pub fn classify_fault_pooled(
    image: &Image,
    cfg: SimConfig,
    predecoded: Option<&Arc<PredecodedImage>>,
    bufs: &mut ClassifyBuffers,
) -> Result<FaultOutcome, SimError> {
    classify_fault_translated_pooled(image, cfg, predecoded, None, bufs)
}

/// [`classify_fault_pooled`] with the fault-free reference run on the
/// threaded-code tier when `translated` is given (which must match
/// `cfg.fold_policy`). The faulted run always stays on the cycle
/// engine — faults are injected into live front-end state that only
/// exists there — so only the reference phase speeds up; campaign
/// drivers hoist one [`TranslatedImage`] per program and pay
/// translation once across every fault case.
///
/// Classification is identical either way: the threaded tier is
/// bit-identical to the interpreter (commit stream, final state), which
/// `tests/prop_threaded.rs` proves over the generated corpora.
///
/// # Errors
///
/// Same harness-level failures as [`classify_fault`].
pub fn classify_fault_translated_pooled(
    image: &Image,
    cfg: SimConfig,
    predecoded: Option<&Arc<PredecodedImage>>,
    translated: Option<&Arc<TranslatedImage>>,
    bufs: &mut ClassifyBuffers,
) -> Result<FaultOutcome, SimError> {
    let reference = fault_reference(image, cfg, predecoded, translated, &mut bufs.pool)?;
    let outcomes = classify_batch(
        image,
        std::slice::from_ref(&cfg),
        predecoded,
        &reference,
        1,
        &mut bufs.pool,
    )?;
    bufs.pool.put(reference.into_machine());
    Ok(outcomes[0])
}

/// The fault-free reference for one program: the commit stream and
/// final architectural state every fault case classifies against.
///
/// Campaign drivers hoist one of these per program — the scalar kernel
/// re-runs the reference for every case (twice: once per parity
/// phase), so hoisting removes ~2·F functional runs from a program's F
/// fault cases. The reference depends only on the image, the fold
/// policy and the step budget, none of which vary within a campaign.
#[derive(Debug)]
pub struct FaultReference {
    log: Arc<CommitLog>,
    machine: Machine,
}

impl FaultReference {
    /// The fault-free commit stream.
    pub fn log(&self) -> &Arc<CommitLog> {
        &self.log
    }

    /// Reclaim the reference's machine buffer (e.g. back into a
    /// [`MachinePool`]).
    pub fn into_machine(self) -> Machine {
        self.machine
    }
}

/// Run the fault-free reference for [`classify_batch`]: the threaded
/// tier when `translated` is given, the interpreter otherwise.
///
/// # Errors
///
/// The image does not load, or the reference does not halt within
/// `cfg.max_cycles` steps ([`SimError::StepLimit`]) — the same
/// harness-level failures as [`classify_fault`].
///
/// # Panics
///
/// If a provided table's fold policy differs from `cfg.fold_policy`,
/// or `cfg` fails [`SimConfig::validate`].
pub fn fault_reference(
    image: &Image,
    cfg: SimConfig,
    predecoded: Option<&Arc<PredecodedImage>>,
    translated: Option<&Arc<TranslatedImage>>,
    pool: &mut MachinePool,
) -> Result<FaultReference, SimError> {
    cfg.validate();
    if let Some(t) = predecoded {
        assert_eq!(
            t.policy(),
            cfg.fold_policy,
            "predecoded table policy must match cfg.fold_policy"
        );
    }
    if let Some(t) = translated {
        assert_eq!(
            t.policy(),
            cfg.fold_policy,
            "translated table policy must match cfg.fold_policy"
        );
    }
    let machine = pool.take(image)?;
    let mut log = CommitLog::default();
    let run = match translated {
        Some(t) => ThreadedSim::with_translated(machine, Arc::clone(t))
            .max_steps(cfg.max_cycles)
            .run_observed(&mut log)?,
        None => match predecoded {
            Some(t) => FunctionalSim::with_predecoded(machine, Arc::clone(t)),
            None => FunctionalSim::with_policy(machine, cfg.fold_policy),
        }
        .max_steps(cfg.max_cycles)
        .run_observed(&mut log)?,
    };
    if run.halt_reason != HaltReason::Halted {
        pool.put(run.machine);
        return Err(SimError::StepLimit {
            limit: cfg.max_cycles,
        });
    }
    Ok(FaultReference {
        log: Arc::new(log),
        machine: run.machine,
    })
}

/// Classify a batch of faulted runs against one precomputed reference,
/// `lanes` SoA cycle-engine lanes at a time, returning one
/// [`FaultOutcome`] per config in order.
///
/// Each case runs with a [`PrefixCheck`] cursor over the reference
/// stream instead of buffering its own commit log. A lane whose prefix
/// has diverged is ejected at the end of the wave the mismatch retired
/// in: the verdict ([`classify_pair`] on the divergent records) is
/// already fixed, and running on — potentially hundreds of thousands
/// of cycles to a watchdog hang — is pure waste. Completed lanes keep
/// the scalar verdict order: divergent prefix, then watchdog hang,
/// then stream-length mismatch, then final-state SDC, then masked.
/// A lane that dies on a [`SimError`] with its prefix still clean
/// classifies by the error kind (decode errors are control divergence,
/// anything else data corruption), exactly as the scalar kernel does.
///
/// Parity-protected lanes settle early too: under
/// [`ParityMode::DetectInvalidate`] every cache read is parity-checked,
/// so once the planned fault has struck *and* been caught (invalidated
/// or scrubbed — [`MachineBatch::parity_settled`]) no corrupted entry
/// can ever execute and the tail of the run is bit-identical to the
/// reference; the lane is ejected as [`FaultOutcome::Masked`] without
/// simulating that tail. The one observable difference from running
/// the tail out: a protected run whose caught-fault refetch would have
/// pushed it past the watchdog budget now classifies as the masked
/// fault it provably is rather than a spurious `Hang`.
///
/// [`classify_fault_translated_pooled`] is the one-lane specialization
/// of this kernel, so batch and scalar campaigns tally identically.
///
/// # Errors
///
/// Image-load failures only (`reference` already validated the run).
///
/// # Panics
///
/// If a config's fold policy differs from the provided table's, or a
/// config fails [`SimConfig::validate`].
pub fn classify_batch(
    image: &Image,
    cfgs: &[SimConfig],
    predecoded: Option<&Arc<PredecodedImage>>,
    reference: &FaultReference,
    lanes: usize,
    pool: &mut MachinePool,
) -> Result<Vec<FaultOutcome>, SimError> {
    let mut outcomes: Vec<Option<FaultOutcome>> = (0..cfgs.len()).map(|_| None).collect();
    let mut batch: MachineBatch<PrefixCheck> = MachineBatch::new(lanes.clamp(1, cfgs.len().max(1)));
    let mut next = 0usize;
    loop {
        while next < cfgs.len() && batch.free_lane().is_some() {
            let cfg = cfgs[next];
            cfg.validate();
            if let Some(t) = predecoded {
                assert_eq!(
                    t.policy(),
                    cfg.fold_policy,
                    "predecoded table policy must match cfg.fold_policy"
                );
            }
            let mut sim = CycleSim::with_observer(
                pool.take(image)?,
                cfg,
                PrefixCheck::new(Arc::clone(&reference.log)),
            );
            if let Some(t) = predecoded {
                sim.set_predecoded(Arc::clone(t));
            }
            batch.admit(next as u64, sim);
            next += 1;
        }
        if batch.live_lanes() == 0 {
            break;
        }
        batch.step_wave();
        for lane in 0..batch.lanes() {
            if batch.is_live(lane) && (batch.observer(lane).decided() || batch.parity_settled(lane))
            {
                batch.eject(lane);
            }
        }
        for fin in batch.drain_finished() {
            outcomes[fin.tag as usize] = Some(lane_outcome(reference, &fin));
            pool.put(fin.machine);
        }
    }
    Ok(outcomes
        .into_iter()
        .map(|o| o.expect("every config ran as a lane"))
        .collect())
}

/// The scalar verdict order applied to one drained lane.
fn lane_outcome(reference: &FaultReference, lane: &FinishedLane<PrefixCheck>) -> FaultOutcome {
    if let Some((r, f)) = lane.obs.mismatch() {
        return classify_pair(r, f);
    }
    match &lane.end {
        // A lane ejected with a clean prefix was parity-settled: its
        // planned fault was caught and invalidated before any corrupted
        // entry could execute, so the rest of the run is bit-identical
        // to the reference and the fault is masked by construction.
        LaneEnd::Ejected => FaultOutcome::Masked,
        LaneEnd::Error(SimError::Decode { .. }) => FaultOutcome::ControlDivergence,
        LaneEnd::Error(_) => FaultOutcome::Sdc,
        LaneEnd::Watchdog => FaultOutcome::Hang,
        LaneEnd::Halted => {
            if lane.obs.extra() > 0 || lane.obs.matched() != reference.log.records.len() {
                return FaultOutcome::ControlDivergence;
            }
            let (fm, cm) = (&reference.machine, &lane.machine);
            if fm.accum != cm.accum
                || fm.sp != cm.sp
                || fm.psw.flag != cm.psw.flag
                || fm.mem != cm.mem
            {
                return FaultOutcome::Sdc;
            }
            FaultOutcome::Masked
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ParityMode as PM;

    // One entry per ExecOp kind, with varied operand modes, next-PC
    // forms and fold classes.
    fn sample_entries() -> Vec<Decoded> {
        vec![
            Decoded {
                pc: 0x100,
                len_bytes: 2,
                exec: ExecOp::Nop,
                modifies_cc: false,
                modifies_sp: false,
                fold: FoldClass::Sequential,
                folded: false,
                branch_pc: None,
                next_pc: NextPc::Known(0x102),
                alt_pc: None,
            },
            Decoded {
                pc: 0x200,
                len_bytes: 2,
                exec: ExecOp::Halt,
                modifies_cc: false,
                modifies_sp: false,
                fold: FoldClass::Sequential,
                folded: false,
                branch_pc: None,
                next_pc: NextPc::Known(0x202),
                alt_pc: None,
            },
            Decoded {
                pc: 0x304,
                len_bytes: 8,
                exec: ExecOp::Op2 {
                    op: BinOp::Add,
                    dst: Operand::SpOff(8),
                    src: Operand::Imm(-3),
                },
                modifies_cc: true,
                modifies_sp: false,
                fold: FoldClass::Cond {
                    on_true: true,
                    predict_taken: false,
                },
                folded: true,
                branch_pc: Some(0x30A),
                next_pc: NextPc::Known(0x30C),
                alt_pc: Some(NextPc::Known(0x2F0)),
            },
            Decoded {
                pc: 0x400,
                len_bytes: 6,
                exec: ExecOp::Op3 {
                    op: BinOp::Sar,
                    a: Operand::Abs(0x8000),
                    b: Operand::Accum,
                },
                modifies_cc: true,
                modifies_sp: false,
                fold: FoldClass::Uncond,
                folded: true,
                branch_pc: Some(0x404),
                next_pc: NextPc::IndAbs(0x9000),
                alt_pc: None,
            },
            Decoded {
                pc: 0x500,
                len_bytes: 4,
                exec: ExecOp::Cmp {
                    cond: Cond::GeU,
                    a: Operand::SpInd(-8),
                    b: Operand::SpOff(124),
                },
                modifies_cc: true,
                modifies_sp: false,
                fold: FoldClass::Cond {
                    on_true: false,
                    predict_taken: true,
                },
                folded: true,
                branch_pc: Some(0x502),
                next_pc: NextPc::Known(0x480),
                alt_pc: Some(NextPc::Known(0x504)),
            },
            Decoded {
                pc: 0x600,
                len_bytes: 2,
                exec: ExecOp::Enter { bytes: 64 },
                modifies_cc: false,
                modifies_sp: true,
                fold: FoldClass::Sequential,
                folded: false,
                branch_pc: None,
                next_pc: NextPc::Known(0x602),
                alt_pc: None,
            },
            Decoded {
                pc: 0x700,
                len_bytes: 2,
                exec: ExecOp::Leave { bytes: 32 },
                modifies_cc: false,
                modifies_sp: true,
                fold: FoldClass::Sequential,
                folded: false,
                branch_pc: None,
                next_pc: NextPc::IndSp(-4),
                alt_pc: None,
            },
            Decoded {
                pc: 0x800,
                len_bytes: 4,
                exec: ExecOp::CallPush { ret: 0x804 },
                modifies_cc: false,
                modifies_sp: true,
                fold: FoldClass::Uncond,
                folded: false,
                branch_pc: Some(0x800),
                next_pc: NextPc::Known(0x1000),
                alt_pc: None,
            },
            Decoded {
                pc: 0x900,
                len_bytes: 2,
                exec: ExecOp::RetPop,
                modifies_cc: false,
                modifies_sp: true,
                fold: FoldClass::Uncond,
                folded: false,
                branch_pc: Some(0x900),
                next_pc: NextPc::FromRet,
                alt_pc: None,
            },
        ]
    }

    #[test]
    fn round_trip_canonical_entries() {
        for d in sample_entries() {
            let bits = entry_bits(&d);
            assert_eq!(decode_entry(bits), d, "{d}");
        }
    }

    #[test]
    fn decode_is_total_over_flips() {
        // Every single-bit flip of every sample decodes without panic
        // and re-encodes stably (decode∘encode is idempotent).
        for d in sample_entries() {
            let bits = entry_bits(&d);
            for word in 0..4 {
                for bit in 0..64 {
                    let mut flipped = bits;
                    flipped[word] ^= 1u64 << bit;
                    let d2 = decode_entry(flipped);
                    let re = entry_bits(&d2);
                    assert_eq!(decode_entry(re), d2);
                }
            }
        }
    }

    #[test]
    fn parity_flips_exactly_one_column_bit() {
        for d in sample_entries() {
            let bits = entry_bits(&d);
            let p = parity32(&bits);
            for word in 0..4 {
                for bit in 0..64 {
                    let mut flipped = bits;
                    flipped[word] ^= 1u64 << bit;
                    assert_eq!(parity32(&flipped), p ^ (1 << (bit % 32)));
                }
            }
        }
    }

    #[test]
    fn fault_space_enumeration_is_exhaustive_and_distinct() {
        let mut seen = std::collections::HashSet::new();
        let mut valid = 0;
        for i in 0..FAULT_SPACE {
            let f = nth_field(i);
            assert!(seen.insert(f), "{f:?} enumerated twice");
            match f.bit() {
                Some((w, b)) => {
                    assert!(w < 4 && b < 64);
                }
                None => valid += 1,
            }
        }
        assert_eq!(valid, 1, "exactly one valid-bit fault");
        // Bit positions are distinct too.
        let bits: std::collections::HashSet<_> = seen.iter().filter_map(|f| f.bit()).collect();
        assert_eq!(bits.len(), FAULT_SPACE as usize - 1);
        // Wraps modulo the space.
        assert_eq!(nth_field(FAULT_SPACE), nth_field(0));
        // Names stay in sync with the width table.
        for (i, (_, name)) in FIELD_WIDTHS.iter().enumerate() {
            assert_eq!(FIELD_NAMES[i], *name);
        }
        assert_eq!(
            FIELD_WIDTHS.iter().map(|(w, _)| u64::from(*w)).sum::<u64>(),
            FAULT_SPACE
        );
    }

    #[test]
    fn predictor_fault_space_enumeration_is_distinct_per_variant() {
        let variants = [
            HwPredictor::StaticBit,
            HwPredictor::Dynamic {
                bits: 2,
                entries: 64,
            },
            HwPredictor::Btb {
                entries: 128,
                ways: 4,
            },
            HwPredictor::JumpTrace { entries: 16 },
        ];
        for p in variants {
            let space = predictor_fault_space(p);
            if space == 0 {
                assert_eq!(p, HwPredictor::StaticBit);
                assert_eq!(nth_predictor_field(p, 0), None);
                continue;
            }
            let mut seen = std::collections::HashSet::new();
            for i in 0..space {
                let f = nth_predictor_field(p, i).expect("in-range index enumerates");
                assert!(seen.insert(f), "{f:?} enumerated twice for {p:?}");
                assert_eq!(f.bit(), None, "predictor fields live outside the image");
            }
            // Wraps modulo the space.
            assert_eq!(nth_predictor_field(p, space), nth_predictor_field(p, 0));
        }
        // Counter space tracks the configured width.
        assert_eq!(
            predictor_fault_space(HwPredictor::Dynamic {
                bits: 3,
                entries: 8
            }),
            3
        );
        // BTB space = 32 tag + 2 counter + 1 valid.
        assert_eq!(
            predictor_fault_space(HwPredictor::Btb {
                entries: 16,
                ways: 2
            }),
            35
        );
    }

    #[test]
    fn pdu_fault_space_covers_both_next_pc_latches() {
        assert_eq!(PDU_FAULT_SPACE, 34 + 35);
        let mut seen = std::collections::HashSet::new();
        for i in 0..PDU_FAULT_SPACE {
            let f = nth_pdu_field(i);
            assert!(seen.insert(f), "{f:?} enumerated twice");
            // Every PDU site maps into the canonical image, so cache
            // parity covers it.
            assert!(f.bit().is_some(), "{f:?} must be parity-visible");
            assert!(matches!(f, FaultField::NextPc(_) | FaultField::AltPc(_)));
        }
        assert_eq!(nth_pdu_field(PDU_FAULT_SPACE), nth_pdu_field(0));
    }

    #[test]
    fn fault_target_names_are_stable() {
        assert_eq!(FaultTarget::ALL.len(), 3);
        let names: Vec<_> = FaultTarget::ALL.iter().map(|t| t.name()).collect();
        assert_eq!(names, ["cache", "btb", "pdu"]);
        assert_eq!(FaultTarget::default(), FaultTarget::Cache);
    }

    #[test]
    fn apply_fault_changes_targeted_field() {
        let d = sample_entries()[2]; // folded conditional Op2
                                     // Predict bit: flips the predicted direction.
        let f = apply_fault(&d, FaultField::Predict).unwrap();
        match (d.fold, f.fold) {
            (
                FoldClass::Cond {
                    predict_taken: a, ..
                },
                FoldClass::Cond {
                    predict_taken: b, ..
                },
            ) => assert_ne!(a, b),
            other => panic!("fold class changed: {other:?}"),
        }
        // Tag bit 0: moves the entry's PC by one.
        let f = apply_fault(&d, FaultField::Tag(0)).unwrap();
        assert_eq!(f.pc, d.pc ^ 1);
        // Next-PC payload bit: redirects the next address.
        let f = apply_fault(&d, FaultField::NextPc(2)).unwrap();
        assert_eq!(f.next_pc, NextPc::Known(0x30C ^ 1));
        // Valid faults have no image bit.
        assert_eq!(apply_fault(&d, FaultField::Valid), None);
        assert_eq!(FaultField::Valid.name(), "valid");
    }

    #[test]
    fn outcome_names_are_stable() {
        assert_eq!(
            FaultOutcome::ALL.map(FaultOutcome::name),
            ["masked", "sdc", "control-divergence", "hang"]
        );
        assert_eq!(PM::default(), PM::Off);
    }

    #[test]
    fn pooled_classification_matches_fresh_runs() {
        // Buffer recycling and shared decode tables must not change a
        // single verdict: sweep a slice of the fault space and compare
        // against the unpooled oracle, reusing one buffer pair across
        // every case so stale state would be caught.
        use crisp_isa::FoldPolicy;
        let image = crisp_asm::assemble_text(
            "
                mov 0(sp),$0
            top:
                add 0(sp),$1
                cmp.s< 0(sp),$6
                ifjmpy.t top
                halt
            ",
        )
        .unwrap();
        let mut bufs = ClassifyBuffers::default();
        for policy in [FoldPolicy::None, FoldPolicy::Host13] {
            let table = crate::PredecodedImage::shared(&image, policy).unwrap();
            for cycle in [2u64, 5, 9] {
                for slot in [0u32, 3] {
                    for field in [
                        FaultField::Valid,
                        FaultField::NextPc(0),
                        FaultField::Opcode(2),
                    ] {
                        let cfg = SimConfig {
                            fold_policy: policy,
                            fault_plan: Some(FaultPlan {
                                cycle,
                                slot,
                                field,
                                target: FaultTarget::Cache,
                            }),
                            ..SimConfig::default()
                        };
                        let fresh = classify_fault(&image, cfg).unwrap();
                        let pooled =
                            classify_fault_pooled(&image, cfg, Some(&table), &mut bufs).unwrap();
                        assert_eq!(
                            fresh, pooled,
                            "{policy:?} cycle {cycle} slot {slot} {field:?}"
                        );
                    }
                }
            }
        }
    }
}

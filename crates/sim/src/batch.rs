//! Batched SoA campaign kernel: N independent cycle-engine lanes
//! stepped per loop iteration.
//!
//! Campaign drivers sweep thousands of independent cases (fold policy ×
//! geometry × predictor × fault site), each a branchy scalar
//! [`CycleSim`] run. [`MachineBatch`] restructures that hot state into
//! structure-of-arrays lanes — the front-end latches ([`PipeFront`]),
//! architectural state, decoded cache, PDU, predictor, counters and
//! observer each live in a parallel array — and advances every live
//! lane one cycle per wave. Per-lane halt/watchdog/error masks let
//! finished lanes drain into [`FinishedLane`] records and refill from
//! the driver's work queue without stalling the rest of the batch.
//!
//! The scalar engine is the one-lane specialization: both paths run the
//! identical [`PipeFront::cycle_once`] body against the identical
//! per-lane state, so a batch of N is bit-identical to N scalar runs
//! (`tests/prop_batch.rs` pins this across policies, depths and
//! predictors). One deliberate improvement over
//! [`CycleSim::run_observed`]: the batch kernel owns the stepping loop,
//! so a lane that dies on a [`SimError`] still returns its observer and
//! counters instead of losing them with the simulator.

use crate::diff::reset_or_load;
use crate::observe::{NullObserver, PipeObserver};
use crate::pipeline::{watchdog_expired, CycleRun, CycleSim, LaneMut, PipeFront};
use crate::predictor::HwPredictorState;
use crate::soft_error::ParityMode;
use crate::{CycleStats, DecodedCache, HaltReason, Machine, Pdu, SimConfig, SimError};
use crisp_asm::Image;

/// A pool of architectural-state buffers for the batched campaign
/// kernels. Where the scalar harnesses recycle a fixed pair of
/// machines, a batch keeps up to lanes-plus-reference buffers in
/// flight, so the pool grows to the high-water mark once and then
/// serves every later lane allocation-free.
#[derive(Debug, Default)]
pub struct MachinePool {
    free: Vec<Machine>,
}

impl MachinePool {
    /// A machine loaded from `image`, recycling a pooled buffer when
    /// one is free ([`Machine::reset_from`] is bit-identical to a fresh
    /// [`Machine::load`], so pooled and unpooled runs cannot diverge).
    ///
    /// # Errors
    ///
    /// Propagates load/reset failures.
    pub fn take(&mut self, image: &Image) -> Result<Machine, SimError> {
        reset_or_load(self.free.pop(), image)
    }

    /// Return a machine buffer to the pool for a later lane.
    pub fn put(&mut self, m: Machine) {
        self.free.push(m);
    }
}

/// Why a lane left the batch.
#[derive(Debug)]
pub enum LaneEnd {
    /// The program retired `halt`.
    Halted,
    /// A watchdog limit ([`SimConfig::max_cycles`] /
    /// [`SimConfig::max_insns`]) expired first.
    Watchdog,
    /// The architecturally-correct path faulted (same conditions as
    /// [`CycleSim::run`]).
    Error(SimError),
    /// The driver ejected the lane early via [`MachineBatch::eject`]
    /// (e.g. its divergence observer already classified the case).
    Ejected,
}

/// A drained lane: the case tag it carried, its final architectural
/// state and counters, its observer, and how it ended.
#[derive(Debug)]
pub struct FinishedLane<O> {
    /// The driver's case identifier, as passed to
    /// [`MachineBatch::admit`].
    pub tag: u64,
    /// Final architectural state.
    pub machine: Machine,
    /// Timing counters.
    pub stats: CycleStats,
    /// The event sink, with everything it collected — present even
    /// when the lane ended in [`LaneEnd::Error`].
    pub obs: O,
    /// Why the lane finished.
    pub end: LaneEnd,
}

impl<O> FinishedLane<O> {
    /// Whether the lane's program retired `halt`.
    pub fn halted(&self) -> bool {
        matches!(self.end, LaneEnd::Halted)
    }

    /// Repackage a cleanly-ended lane ([`LaneEnd::Halted`] /
    /// [`LaneEnd::Watchdog`]) as the scalar engine's
    /// [`CycleSim::run_observed`] result.
    ///
    /// # Errors
    ///
    /// Returns the lane's [`SimError`] (with the observer, which the
    /// scalar path would have lost) for [`LaneEnd::Error`] lanes;
    /// panics on [`LaneEnd::Ejected`], which has no scalar equivalent.
    pub fn into_run(self) -> Result<(CycleRun, O), (SimError, O)> {
        let halted = match self.end {
            LaneEnd::Halted => true,
            LaneEnd::Watchdog => false,
            LaneEnd::Error(e) => return Err((e, self.obs)),
            LaneEnd::Ejected => panic!("ejected lane has no scalar run equivalent"),
        };
        let run = CycleRun {
            machine: self.machine,
            stats: self.stats,
            halted,
            halt_reason: if halted {
                HaltReason::Halted
            } else {
                HaltReason::Watchdog
            },
        };
        Ok((run, self.obs))
    }
}

/// N independent cycle-engine lanes in structure-of-arrays form.
///
/// Lanes are admitted as fully-constructed [`CycleSim`]s (so
/// initialization — predecode sharing, degrade arming, fault plans —
/// is byte-for-byte the scalar path) and scattered into the parallel
/// arrays; [`MachineBatch::step_wave`] advances every live lane one
/// cycle; finished lanes accumulate in an internal drain the driver
/// collects with [`MachineBatch::drain_finished`] and refills with
/// further [`MachineBatch::admit`] calls.
#[derive(Debug)]
pub struct MachineBatch<O: PipeObserver = NullObserver> {
    /// Per-lane front-end hot state (stage latches, sequencing).
    fronts: Vec<PipeFront>,
    /// Per-lane architectural state; `None` in free lanes.
    machines: Vec<Option<Machine>>,
    /// Per-lane decoded caches; `None` in free lanes.
    caches: Vec<Option<DecodedCache>>,
    /// Per-lane prefetch/decode units; `None` in free lanes.
    pdus: Vec<Option<Pdu>>,
    /// Per-lane dynamic-predictor state (`None` both for free lanes
    /// and for static-bit lanes, exactly as in the scalar engine).
    predictors: Vec<Option<HwPredictorState>>,
    /// Per-lane configuration.
    cfgs: Vec<SimConfig>,
    /// Per-lane timing counters.
    stats: Vec<CycleStats>,
    /// Per-lane event sinks; `None` in free lanes.
    obs: Vec<Option<O>>,
    /// Per-lane driver case tags.
    tags: Vec<u64>,
    /// The lane-liveness mask.
    live: Vec<bool>,
    /// Finished lanes awaiting collection.
    finished: Vec<FinishedLane<O>>,
}

impl<O: PipeObserver> MachineBatch<O> {
    /// An empty batch with `lanes` lane slots.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero.
    pub fn new(lanes: usize) -> MachineBatch<O> {
        assert!(lanes >= 1, "a batch needs at least one lane");
        let placeholder_front = PipeFront::new(0, SimConfig::default().geometry);
        MachineBatch {
            fronts: vec![placeholder_front; lanes],
            machines: (0..lanes).map(|_| None).collect(),
            caches: (0..lanes).map(|_| None).collect(),
            pdus: (0..lanes).map(|_| None).collect(),
            predictors: (0..lanes).map(|_| None).collect(),
            cfgs: vec![SimConfig::default(); lanes],
            stats: vec![CycleStats::default(); lanes],
            obs: (0..lanes).map(|_| None).collect(),
            tags: vec![0; lanes],
            live: vec![false; lanes],
            finished: Vec::new(),
        }
    }

    /// The lane capacity N.
    pub fn lanes(&self) -> usize {
        self.live.len()
    }

    /// How many lanes are currently running.
    pub fn live_lanes(&self) -> usize {
        self.live.iter().filter(|&&l| l).count()
    }

    /// The lowest free lane index, if any lane is idle.
    pub fn free_lane(&self) -> Option<usize> {
        self.live.iter().position(|&l| !l)
    }

    /// Scatter a fully-constructed simulator into a free lane,
    /// returning the lane index. `tag` identifies the case when the
    /// lane later drains.
    ///
    /// # Panics
    ///
    /// Panics if every lane is live (check [`MachineBatch::free_lane`]).
    pub fn admit(&mut self, tag: u64, sim: CycleSim<O>) -> usize {
        let i = self.free_lane().expect("admit into a full batch");
        let CycleSim {
            machine,
            cfg,
            cache,
            pdu,
            front,
            predictor,
            obs,
            stats,
        } = sim;
        self.fronts[i] = front;
        self.machines[i] = Some(machine);
        self.caches[i] = Some(cache);
        self.pdus[i] = Some(pdu);
        self.predictors[i] = predictor;
        self.cfgs[i] = cfg;
        self.stats[i] = stats;
        self.obs[i] = Some(obs);
        self.tags[i] = tag;
        self.live[i] = true;
        i
    }

    /// The case tag carried by a live lane.
    pub fn tag(&self, lane: usize) -> u64 {
        self.tags[lane]
    }

    /// Whether a lane is live.
    pub fn is_live(&self, lane: usize) -> bool {
        self.live[lane]
    }

    /// A live lane's observer (e.g. to poll a divergence checker
    /// between waves).
    pub fn observer(&self, lane: usize) -> &O {
        self.obs[lane].as_ref().expect("observer of a live lane")
    }

    /// A live lane's timing counters.
    pub fn stats(&self, lane: usize) -> &CycleStats {
        &self.stats[lane]
    }

    /// Whether a parity-protected live lane's planned soft-error fault
    /// has both struck and been caught by a parity check (a decoded-
    /// cache invalidate or a predictor scrub).
    ///
    /// Under [`ParityMode::DetectInvalidate`] every cache read is
    /// parity-checked, so a caught single-bit fault was invalidated
    /// before any corrupted entry could execute: the rest of the run is
    /// bit-identical to the fault-free reference, and a fault-campaign
    /// driver can settle the lane as masked without running its tail.
    pub fn parity_settled(&self, lane: usize) -> bool {
        self.cfgs[lane].parity == ParityMode::DetectInvalidate
            && self.stats[lane].faults_injected > 0
            && (self.caches[lane]
                .as_ref()
                .expect("cache of a live lane")
                .parity_invalidates
                + self.predictors[lane]
                    .as_ref()
                    .map_or(0, HwPredictorState::parity_scrubs))
                > 0
    }

    /// Retire a live lane before it finishes on its own; it drains as
    /// [`LaneEnd::Ejected`]. Drivers use this when a lane's observer
    /// has already decided the case and further cycles are waste.
    pub fn eject(&mut self, lane: usize) {
        assert!(self.live[lane], "eject of a free lane");
        self.retire_lane(lane, LaneEnd::Ejected);
    }

    /// Advance every live lane one clock cycle (watchdog check first,
    /// exactly as [`CycleSim::run_observed`] sequences it). Returns how
    /// many lanes finished during the wave.
    pub fn step_wave(&mut self) -> usize {
        let mut done = 0;
        for i in 0..self.live.len() {
            if !self.live[i] {
                continue;
            }
            if let Some(end) = self.step_lane(i) {
                self.retire_lane(i, end);
                done += 1;
            }
        }
        done
    }

    /// Step every live lane until the batch is fully drained.
    pub fn run_all(&mut self) {
        while self.live_lanes() > 0 {
            self.step_wave();
        }
    }

    /// Collect every finished lane accumulated so far, freeing their
    /// slots for refill (the slots were freed at retirement; this just
    /// hands over the records).
    pub fn drain_finished(&mut self) -> Vec<FinishedLane<O>> {
        std::mem::take(&mut self.finished)
    }

    /// One lane-cycle; `Some(end)` when the lane just finished.
    fn step_lane(&mut self, i: usize) -> Option<LaneEnd> {
        let cfg = &self.cfgs[i];
        if watchdog_expired(cfg, &self.stats[i]) {
            self.stats[i].watchdog = true;
            return Some(LaneEnd::Watchdog);
        }
        let mut lane = LaneMut {
            machine: self.machines[i].as_mut().expect("live lane machine"),
            cache: self.caches[i].as_mut().expect("live lane cache"),
            pdu: self.pdus[i].as_mut().expect("live lane pdu"),
            predictor: &mut self.predictors[i],
            cfg,
            stats: &mut self.stats[i],
            obs: self.obs[i].as_mut().expect("live lane observer"),
        };
        match self.fronts[i].cycle_once(&mut lane) {
            Ok(false) => None,
            Ok(true) => Some(LaneEnd::Halted),
            Err(e) => Some(LaneEnd::Error(e)),
        }
    }

    /// Move a lane's state out into the finished drain and clear the
    /// liveness bit so the slot can be refilled.
    fn retire_lane(&mut self, i: usize, end: LaneEnd) {
        self.live[i] = false;
        self.caches[i] = None;
        self.pdus[i] = None;
        self.predictors[i] = None;
        self.finished.push(FinishedLane {
            tag: self.tags[i],
            machine: self.machines[i].take().expect("live lane machine"),
            stats: std::mem::take(&mut self.stats[i]),
            obs: self.obs[i].take().expect("live lane observer"),
            end,
        });
    }
}

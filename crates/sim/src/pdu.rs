use std::collections::VecDeque;
use std::sync::Arc;

use crisp_isa::{decode_and_fold, encoding, fold_failure, Decoded, FoldPolicy, IsaError, NextPc};

use crate::observe::{NullObserver, PipeEvent, PipeObserver};
use crate::predecode::PredecodedImage;
use crate::soft_error::{apply_fault, FaultField, ParityMode};
use crate::{DecodedCache, Memory};

/// Parcels fetched from memory per access (the paper's Figure 2 shows
/// "4 16-bit inputs" into the instruction queue).
const FETCH_PARCELS: u32 = 4;
/// Instruction-queue capacity in parcels ("Contains 8 16-bit entries").
const QUEUE_PARCELS: u32 = 8;
/// Worst-case parcels needed to decode one entry (5-parcel host plus a
/// 3-parcel branch under [`FoldPolicy::All`]).
const MAX_ENTRY_PARCELS: u32 = 8;

/// The three-stage Prefetch and Decode Unit.
///
/// Structure follows the paper's Figure 1/2: instruction parcels are
/// fetched from main memory into an 8-parcel instruction queue, decoded
/// (and folded) one instruction per cycle in the PDR stage, and written
/// to the Decoded Instruction Cache after the PIR stage — modelled here
/// as a configurable `pipe_delay` between decode and cache visibility.
///
/// The prefetcher follows the Next-PC chain of what it decodes
/// (taking the predicted path of conditional branches) and pauses when
/// it reaches an address that is already decoded (a captured loop), an
/// indirect target it cannot compute, or the prefetch-depth bound — one
/// cache's worth of entries beyond the last demand, past which further
/// prefetch can only pollute the direct-mapped cache. The Execution
/// Unit re-arms it with [`Pdu::demand`] on a cache miss.
///
/// Fold decisions are deterministic: an instruction is never decoded
/// with insufficient lookahead to decide whether the following branch
/// folds (the decoder waits for the queue instead), so the cache entry
/// for an address is the same no matter when it was decoded.
#[derive(Debug)]
pub struct Pdu {
    policy: FoldPolicy,
    mem_latency: u32,
    pipe_delay: u32,
    prefetch_limit: u32,
    /// Next byte address to decode.
    decode_pc: u32,
    /// Exclusive end of the contiguous fetched region starting at
    /// `decode_pc` (the queue contents).
    fetched_until: u32,
    /// Remaining cycles of the in-flight memory access (0 = idle).
    mem_timer: u32,
    /// Decoded entries in the PIR pipeline: `(ready_cycle, entry,
    /// parity_delta)`. The delta is the XOR of fault-flipped parity
    /// columns since decode — zero for a clean entry. The fill port
    /// compares it against zero exactly as the cache compares live
    /// against stored parity, so a corrupted in-flight entry is caught
    /// (and dropped) before it pollutes the cache.
    inflight: VecDeque<(u64, Decoded, u32)>,
    /// Waiting for a redirect (indirect target, decode failure, loop
    /// closure, or prefetch-depth bound).
    parked: bool,
    /// The decode failure that parked us, if any (consulted by the EU
    /// when it is stalled on the same address).
    failure: Option<(u32, IsaError)>,
    /// Entries decoded since the last demand (prefetch-depth counter).
    since_demand: u32,
    /// Shared predecode table serving the refill fast path (see
    /// [`Pdu::set_predecoded`]).
    predecoded: Option<Arc<PredecodedImage>>,
    /// Instructions decoded (including wrong-path work).
    pub decodes: u64,
    /// Entries that folded a branch.
    pub folds: u64,
}

impl Pdu {
    /// Create a PDU. `prefetch_limit` bounds how many entries are
    /// decoded beyond the last demand (use the cache size).
    pub fn new(policy: FoldPolicy, mem_latency: u32, pipe_delay: u32, prefetch_limit: u32) -> Pdu {
        Pdu {
            policy,
            mem_latency: mem_latency.max(1),
            pipe_delay,
            prefetch_limit: prefetch_limit.max(1),
            decode_pc: 0,
            fetched_until: 0,
            mem_timer: 0,
            inflight: VecDeque::new(),
            parked: true,
            failure: None,
            since_demand: 0,
            predecoded: None,
            decodes: 0,
            folds: 0,
        }
    }

    /// Serve refills of text-segment PCs from a shared predecode table
    /// instead of re-running `decode_and_fold` per miss. Timing is
    /// unchanged — the queue-fill, lookahead-wait and park decisions
    /// are reproduced from the cached entry (its host length recovers
    /// the peek the legacy path performs on raw parcels) — only the
    /// redundant decode work disappears. PCs the table does not cover
    /// (odd addresses, jumps into data) still take the raw-memory path.
    ///
    /// # Panics
    ///
    /// If the table was decoded under a different fold policy, which
    /// would serve wrong entries.
    pub fn set_predecoded(&mut self, table: Arc<PredecodedImage>) {
        assert_eq!(
            table.policy(),
            self.policy,
            "predecode table policy must match the PDU's"
        );
        self.predecoded = Some(table);
    }

    /// Redirect prefetch to `pc` (EU demand on a cache miss, or initial
    /// start). Queue contents for the old stream are discarded; entries
    /// already in the PIR pipeline still complete (they are real decoded
    /// instructions and stay useful in the cache).
    pub fn demand(&mut self, pc: u32) {
        self.since_demand = 0;
        self.failure = None;
        if !self.parked && self.decode_pc == pc {
            return; // already fetching exactly this
        }
        if self.pending(pc) {
            return; // about to appear in the cache anyway
        }
        self.decode_pc = pc;
        self.fetched_until = pc;
        self.mem_timer = 0;
        self.parked = false;
    }

    /// Whether an entry for `pc` is in the PIR pipeline (decoded but not
    /// yet visible in the cache).
    pub fn pending(&self, pc: u32) -> bool {
        self.inflight.iter().any(|(_, d, _)| d.pc == pc)
    }

    /// Entries currently in the PIR pipeline (fault planning needs the
    /// occupancy to know whether a PDU-slot strike can land).
    pub fn inflight_len(&self) -> usize {
        self.inflight.len()
    }

    /// Flip one bit of an in-flight PIR entry (transient-fault
    /// injection). `slot` indexes the pipeline oldest-first, modulo
    /// occupancy; returns the struck entry's PC, or `None` when the
    /// pipeline is empty. A [`FaultField::Valid`]-style fault (one with
    /// no bit position) drops the entry outright — a lost latch is an
    /// entry that never reaches the cache, which is trivially safe.
    /// Bit-carrying faults corrupt the latched entry and record the
    /// flipped parity column so the fill-port check can catch it.
    pub fn corrupt(&mut self, slot: u32, field: FaultField) -> Option<u32> {
        if self.inflight.is_empty() {
            return None;
        }
        let i = slot as usize % self.inflight.len();
        let (_, d, delta) = &mut self.inflight[i];
        let pc = d.pc;
        match apply_fault(d, field) {
            None => {
                self.inflight.remove(i);
            }
            Some(corrupted) => {
                let (_, bit) = field.bit().expect("non-valid faults map to a bit");
                *d = corrupted;
                *delta ^= 1 << (bit % 32);
            }
        }
        Some(pc)
    }

    /// Whether the prefetcher is parked (waiting for a demand).
    pub fn is_parked(&self) -> bool {
        self.parked
    }

    /// Whether a tick would do no work at all: parked with an empty
    /// PIR pipeline. In a captured loop (the steady state the cache is
    /// built for) this is true every cycle, so the EU can skip the PDU
    /// entirely instead of paying for a no-op call.
    pub fn is_idle(&self) -> bool {
        self.parked && self.inflight.is_empty()
    }

    /// The decode failure currently blocking prefetch, if any.
    pub fn failure(&self) -> Option<&(u32, IsaError)> {
        self.failure.as_ref()
    }

    /// Advance one clock cycle: drain the PIR pipeline into the cache,
    /// progress the memory access, and decode at most one instruction.
    pub fn tick(&mut self, cycle: u64, mem: &Memory, cache: &mut DecodedCache) {
        self.tick_observed(cycle, mem, cache, &mut NullObserver);
    }

    /// [`Pdu::tick`] reporting decode, fold, fold-failure and
    /// cache-fill events to `obs`. With [`NullObserver`] this is
    /// exactly `tick`.
    pub fn tick_observed<O: PipeObserver>(
        &mut self,
        cycle: u64,
        mem: &Memory,
        cache: &mut DecodedCache,
        obs: &mut O,
    ) {
        // 1. PIR pipeline → cache.
        while let Some(&(ready, _, _)) = self.inflight.front() {
            if ready > cycle {
                break;
            }
            let (_, d, delta) = self.inflight.pop_front().expect("checked non-empty");
            // Fill-port parity check: a fault-struck latch (nonzero
            // parity delta) is dropped before it reaches the array,
            // exactly as a resident line with stale parity would be
            // invalidated on lookup. The EU's next demand redecodes the
            // entry from memory. With parity off the corrupted entry is
            // inserted as-is — the SDC path the campaign measures.
            if delta != 0 && cache.parity_mode() == ParityMode::DetectInvalidate {
                cache.parity_invalidates += 1;
                if O::ENABLED {
                    obs.event(PipeEvent::ParityError {
                        cycle,
                        pc: d.pc,
                        slot: cache.slot_of(d.pc) as u32,
                    });
                }
                continue;
            }
            let evicted = cache.insert(d);
            if O::ENABLED {
                obs.event(PipeEvent::CacheFill {
                    cycle,
                    pc: d.pc,
                    evicted,
                });
            }
        }

        if self.parked {
            return;
        }

        // 2. Memory access progress / start.
        if self.mem_timer > 0 {
            self.mem_timer -= 1;
            if self.mem_timer == 0 {
                self.fetched_until = self.fetched_until.wrapping_add(FETCH_PARCELS * 2);
            }
        } else if self.fetched_until.wrapping_sub(self.decode_pc) < QUEUE_PARCELS * 2 {
            if self.mem_latency == 1 {
                // Parcels arrive at the end of this same cycle.
                self.fetched_until = self.fetched_until.wrapping_add(FETCH_PARCELS * 2);
            } else {
                self.mem_timer = self.mem_latency - 1;
            }
        }

        // 3. Decode one instruction if the queue covers it *and* the
        // fold decision is already determined.
        let avail_bytes = self.fetched_until.wrapping_sub(self.decode_pc);
        if avail_bytes == 0 {
            return;
        }
        let want_parcels = (avail_bytes / 2).min(MAX_ENTRY_PARCELS) as usize;
        // Parcels physically available before the end of memory — a
        // hard (static) limit; the lookahead window can be short only
        // for this reason.
        let mem_parcels = (mem.size() as usize).saturating_sub((self.decode_pc & !1) as usize) / 2;
        let window_len = want_parcels.min(mem_parcels);
        let at_mem_end = window_len < want_parcels;
        if window_len == 0 {
            self.park_failed(IsaError::Truncated);
            return;
        }
        let queue_full = avail_bytes >= QUEUE_PARCELS * 2;
        let branch_peek = match self.policy {
            FoldPolicy::All => 3,
            _ => 1,
        };

        // Fast path: the predecode table already holds this address's
        // entry. Reproduce the legacy wait decisions from the entry's
        // host length (what the raw-parcel peek would report), then
        // emit the cached entry — fold determinism guarantees it is
        // bit-identical to what decoding the current window would give.
        // Err slots fall through to the raw path below, which reproduces
        // the exact peek/wait sequence before parking with the right
        // failure.
        if let Some(Ok(d)) = self.predecoded.as_ref().and_then(|t| t.get(self.decode_pc)) {
            let host_parcels = d.host_parcels();
            if window_len < host_parcels && !queue_full && !at_mem_end {
                return; // wait: the peek would report Truncated
            }
            let determined = window_len >= host_parcels + branch_peek || queue_full || at_mem_end;
            if !determined {
                return; // wait for the queue to fill so folding is decided
            }
            let d = *d;
            self.emit_decoded(cycle, d, mem, window_len, cache, obs);
            return;
        }

        let mut wbuf = [0u16; MAX_ENTRY_PARCELS as usize];
        let got = mem.parcel_window_into(self.decode_pc, &mut wbuf[..want_parcels]);
        debug_assert_eq!(got, window_len);
        let window = &wbuf[..window_len];

        // Peek the host instruction to size the lookahead requirement.
        let host_len = match encoding::decode(window, 0) {
            Ok((_, len)) => len,
            Err(IsaError::Truncated) if !queue_full && !at_mem_end => return, // wait
            Err(e) => {
                self.park_failed(e);
                return;
            }
        };
        let determined = window.len() >= host_len + branch_peek || queue_full || at_mem_end;
        if !determined {
            return; // wait for the queue to fill so folding is decided
        }

        match decode_and_fold(window, 0, self.decode_pc, self.policy) {
            Ok(d) => self.emit_decoded(cycle, d, mem, window_len, cache, obs),
            Err(e) => self.park_failed(e),
        }
    }

    /// Book-keep one emitted entry: counters, observer events, the PIR
    /// pipeline push and the next-address decision. `window_len` is the
    /// length of the decode window in effect (needed only to rebuild
    /// the window for the [`PipeEvent::FoldFail`] diagnostic when an
    /// observer is attached).
    fn emit_decoded<O: PipeObserver>(
        &mut self,
        cycle: u64,
        d: Decoded,
        mem: &Memory,
        window_len: usize,
        cache: &DecodedCache,
        obs: &mut O,
    ) {
        self.decodes += 1;
        self.folds += u64::from(d.folded);
        self.since_demand += 1;
        if O::ENABLED {
            obs.event(PipeEvent::Decode {
                cycle,
                pc: d.pc,
                folded: d.folded,
            });
            if d.folded {
                obs.event(PipeEvent::Fold {
                    cycle,
                    pc: d.pc,
                    branch_pc: d.branch_pc.unwrap_or(d.pc),
                });
            } else {
                let mut wbuf = [0u16; MAX_ENTRY_PARCELS as usize];
                let got = mem.parcel_window_into(self.decode_pc, &mut wbuf[..window_len]);
                if let Some(reason) = fold_failure(&wbuf[..got], 0, self.policy) {
                    obs.event(PipeEvent::FoldFail {
                        cycle,
                        pc: d.pc,
                        branch_pc: d.pc.wrapping_add(d.len_bytes),
                        reason,
                    });
                }
            }
        }
        self.inflight
            .push_back((cycle + self.pipe_delay as u64, d, 0));
        self.advance_past(&d, cache);
    }

    fn park_failed(&mut self, e: IsaError) {
        self.failure = Some((self.decode_pc, e));
        self.parked = true;
    }

    /// Choose the next decode address after emitting `d`, following the
    /// (predicted) Next-PC chain.
    fn advance_past(&mut self, d: &Decoded, cache: &DecodedCache) {
        if self.since_demand >= self.prefetch_limit {
            self.parked = true;
            return;
        }
        let next = match d.next_pc {
            NextPc::Known(n) => n,
            // Indirect target: the PDU cannot compute it; park until the
            // EU demands.
            _ => {
                self.parked = true;
                return;
            }
        };
        // Prefetch caught up with already-decoded code (loop closure).
        if cache.contains(next) || self.pending(next) {
            self.parked = true;
            return;
        }
        if next == self.decode_pc.wrapping_add(d.len_bytes) {
            self.decode_pc = next; // sequential: keep the queue
        } else {
            // Transfer: restart the fetch stream at the target.
            self.decode_pc = next;
            self.fetched_until = next;
            self.mem_timer = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Machine;
    use crisp_asm::assemble_text;

    fn machine(src: &str) -> Machine {
        Machine::load(&assemble_text(src).unwrap()).unwrap()
    }

    fn run_pdu(m: &Machine, cycles: u64) -> (Pdu, DecodedCache) {
        let mut pdu = Pdu::new(FoldPolicy::Host13, 1, 2, 32);
        let mut cache = DecodedCache::new(32);
        pdu.demand(0);
        for c in 0..cycles {
            pdu.tick(c, &m.mem, &mut cache);
        }
        (pdu, cache)
    }

    #[test]
    fn decodes_sequential_stream_into_cache() {
        let m = machine("add 0(sp),$1\nadd 0(sp),$2\nadd 0(sp),$3\nhalt");
        let (pdu, cache) = run_pdu(&m, 20);
        assert!(cache.contains(0));
        assert!(cache.contains(2));
        assert!(cache.contains(4));
        assert!(cache.contains(6));
        assert!(pdu.decodes >= 4);
    }

    #[test]
    fn follows_taken_branches() {
        let m = machine(
            "
            jmp far
            nop
            nop
            far: add 0(sp),$1
            halt
            ",
        );
        let (_pdu, cache) = run_pdu(&m, 20);
        assert!(cache.contains(0)); // the jump itself
        let far = 6; // jmp(1) + nop + nop = parcels 0,1,2 → byte 6
        assert!(cache.contains(far));
        // The not-taken path is never prefetched.
        assert!(!cache.contains(2));
    }

    #[test]
    fn parks_on_loop_closure() {
        let m = machine(
            "
            top: add 0(sp),$1
            cmp.s< 0(sp),$10
            ifjmpy.t top
            halt
            ",
        );
        let (pdu, cache) = run_pdu(&m, 50);
        assert!(cache.contains(0));
        // cmp folds the conditional branch; predicted taken → chain goes
        // back to `top`, which is already cached → parked.
        assert!(pdu.is_parked());
        assert!(
            pdu.decodes < 10,
            "prefetcher must not spin: {} decodes",
            pdu.decodes
        );
    }

    #[test]
    fn folding_happens_in_the_pdu() {
        let m = machine(
            "
            top: add 0(sp),$1
            ifjmpy.t top
            halt
            ",
        );
        let (pdu, cache) = run_pdu(&m, 20);
        let d = cache.lookup(0).expect("entry decoded");
        assert!(d.folded);
        assert!(pdu.folds >= 1);
    }

    #[test]
    fn pipe_delay_postpones_visibility() {
        let m = machine("nop\nnop\nhalt");
        let mut pdu = Pdu::new(FoldPolicy::Host13, 1, 2, 32);
        let mut cache = DecodedCache::new(32);
        pdu.demand(0);
        // Cycle 0: parcels arrive and the first entry decodes; it
        // becomes visible pipe_delay cycles later.
        pdu.tick(0, &m.mem, &mut cache);
        assert!(!cache.contains(0));
        pdu.tick(1, &m.mem, &mut cache);
        assert!(!cache.contains(0));
        pdu.tick(2, &m.mem, &mut cache);
        assert!(cache.contains(0), "ready at cycle 2 with pipe_delay 2");
    }

    #[test]
    fn slow_memory_delays_decode() {
        let m = machine("nop\nhalt");
        let mut pdu = Pdu::new(FoldPolicy::Host13, 4, 0, 32);
        let mut cache = DecodedCache::new(32);
        pdu.demand(0);
        for c in 0..3 {
            pdu.tick(c, &m.mem, &mut cache);
            assert!(!cache.contains(0), "cycle {c}");
        }
        pdu.tick(3, &m.mem, &mut cache); // access completes after 4 cycles
        pdu.tick(4, &m.mem, &mut cache);
        assert!(cache.contains(0));
    }

    #[test]
    fn parks_on_indirect_target() {
        let m = machine("jmp *0x10000\nhalt");
        let (pdu, cache) = run_pdu(&m, 20);
        assert!(cache.contains(0));
        assert!(pdu.is_parked());
    }

    #[test]
    fn reports_decode_failure() {
        let m = machine(".word 0x0000B800"); // op6=46: unassigned
        let (pdu, _cache) = run_pdu(&m, 20);
        let (pc, _err) = pdu.failure().expect("failure recorded");
        assert_eq!(*pc, 0);
    }

    #[test]
    fn demand_redirects() {
        let m = machine(
            "
            add 0(sp),$1
            halt
            far: add 0(sp),$2
            halt
            ",
        );
        let mut pdu = Pdu::new(FoldPolicy::Host13, 1, 2, 32);
        let mut cache = DecodedCache::new(32);
        pdu.demand(0);
        for c in 0..10 {
            pdu.tick(c, &m.mem, &mut cache);
        }
        assert!(cache.contains(0));
        pdu.demand(4); // `far`
        for c in 10..20 {
            pdu.tick(c, &m.mem, &mut cache);
        }
        assert!(cache.contains(4));
    }

    #[test]
    fn prefetch_depth_is_bounded() {
        // A long nop sled: prefetch must stop after the limit instead of
        // sweeping the whole memory and trashing the cache.
        let src = "nop\n".repeat(500) + "halt";
        let m = machine(&src);
        let mut pdu = Pdu::new(FoldPolicy::Host13, 1, 2, 32);
        let mut cache = DecodedCache::new(32);
        pdu.demand(0);
        for c in 0..2000 {
            pdu.tick(c, &m.mem, &mut cache);
        }
        assert!(pdu.is_parked());
        assert!(pdu.decodes <= 33, "decodes = {}", pdu.decodes);
    }

    #[test]
    fn predecoded_fast_path_matches_raw_decode() {
        // The same tick sequence must produce identical cache contents,
        // counters and park state with and without a predecode table —
        // the fast path is a pure work-saver, never a timing change.
        let src = "
            top: add 0(sp),$1
            cmp.s< 0(sp),$10
            ifjmpy.t top
            cmp.s< 0(sp),$1024
            ifjmpn.nt top
            jmp *0x10000
            halt
            ";
        for policy in [
            FoldPolicy::None,
            FoldPolicy::Host1,
            FoldPolicy::Host13,
            FoldPolicy::All,
        ] {
            let m = machine(src);
            let table = Arc::new(PredecodedImage::from_machine(&m, policy));
            let mut raw = Pdu::new(policy, 1, 2, 32);
            let mut fast = Pdu::new(policy, 1, 2, 32);
            fast.set_predecoded(Arc::clone(&table));
            let mut raw_cache = DecodedCache::new(32);
            let mut fast_cache = DecodedCache::new(32);
            raw.demand(0);
            fast.demand(0);
            for c in 0..60 {
                raw.tick(c, &m.mem, &mut raw_cache);
                fast.tick(c, &m.mem, &mut fast_cache);
                let mut pc = 0;
                while pc < m.text_end() {
                    assert_eq!(
                        raw_cache.lookup(pc),
                        fast_cache.lookup(pc),
                        "policy {policy:?} cycle {c} pc {pc:#x}"
                    );
                    pc += 2;
                }
                assert_eq!(raw.is_parked(), fast.is_parked(), "{policy:?} cycle {c}");
            }
            assert_eq!(raw.decodes, fast.decodes, "{policy:?}");
            assert_eq!(raw.folds, fast.folds, "{policy:?}");
        }
    }

    #[test]
    fn fold_decision_waits_for_lookahead() {
        // A 5-parcel instruction followed by a short branch: under
        // Host13 it must NOT fold; more importantly, a 3-parcel host
        // right at the queue boundary must still fold deterministically.
        let m = machine(
            "
            top: cmp.s< 0(sp),$1024
            ifjmpy.t top
            halt
            ",
        );
        let (_, cache) = run_pdu(&m, 30);
        let d = cache.lookup(0).expect("decoded");
        assert!(d.folded, "cmp (3 parcels) + 1-parcel branch folds");
        assert_eq!(d.len_bytes, 8);
    }
}

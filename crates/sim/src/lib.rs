//! Simulators for the CRISP microprocessor reproduction.
//!
//! Two engines share one architectural core ([`Machine`]):
//!
//! * [`FunctionalSim`] executes decoded entries one at a time with no
//!   timing — it provides reference results, dynamic instruction counts
//!   (the paper's Table 2) and branch traces for the prediction study
//!   (Table 1).
//! * [`CycleSim`] is the structural cycle-level model of the paper's
//!   Figure 1/2 machine: a three-stage Prefetch and Decode Unit
//!   ([`Pdu`]) filling a Decoded Instruction Cache ([`DecodedCache`])
//!   whose entries carry Next-PC and Alternate Next-PC fields, and a
//!   three-stage Execution Unit (IR → OR → RR) with valid-bit
//!   cancellation. It reproduces the paper's mispredict penalties —
//!   3 cycles when the compare is folded with the branch, 2/1 when the
//!   compare runs one/two stages ahead, and 0 when the compare has left
//!   the pipeline (the payoff of Branch Spreading) — and the Table 4
//!   experiment matrix via [`SimConfig`].
//!
//! # Example
//!
//! ```
//! use crisp_asm::assemble_text;
//! use crisp_sim::{CycleSim, FunctionalSim, Machine, SimConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let image = assemble_text(
//!     "
//!         mov 0(sp),$0
//!     top:
//!         add 0(sp),$1
//!         cmp.s< 0(sp),$100
//!         ifjmpy.t top
//!         halt
//!     ",
//! )?;
//! let func = FunctionalSim::new(Machine::load(&image)?).run()?;
//! let cyc = CycleSim::new(Machine::load(&image)?, SimConfig::default()).run()?;
//! // Same architectural result, and the cycle model reports timing.
//! assert_eq!(func.machine.accum, cyc.machine.accum);
//! assert!(cyc.stats.cycles > 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod accounting;
pub mod batch;
mod config;
pub mod diff;
mod error;
mod functional;
pub mod geometry;
mod icache;
mod machine;
mod mem;
pub mod observe;
mod pdu;
mod pipeline;
mod predecode;
pub mod predictor;
pub mod profile;
pub mod soft_error;
mod stats;
pub mod threaded;
mod trace;

pub use accounting::{BubbleCause, CycleAccounts};
pub use batch::{FinishedLane, LaneEnd, MachineBatch, MachinePool};
pub use config::{DegradePolicy, FaultInjection, HwPredictor, SimConfig};
pub use diff::{
    diff_reference, run_lockstep, run_lockstep_batched, run_lockstep_pooled, sweep_configs,
    CommitLog, CommitRecord, DiffReference, Divergence, DivergenceKind, LockstepBuffers,
    LockstepOutcome, PrefixCheck,
};
pub use error::{HaltReason, SimError};
pub use functional::{FunctionalRun, FunctionalSim};
pub use geometry::{PipelineGeometry, StageHistogram, MAX_DEPTH, MIN_DEPTH};
pub use icache::{CacheLookup, DecodedCache};
pub use machine::{Machine, Step};
pub use mem::Memory;
pub use observe::{
    mispredict_cycles, parse_jsonl, render_timeline, render_timeline_for, write_chrome_trace,
    write_chrome_trace_for, write_jsonl, write_trace_footer, DegradeUnit, EventRing, NullObserver,
    PipeEvent, PipeObserver, StallKind, TraceFooter, TraceParseError,
};
pub use pdu::Pdu;
pub use pipeline::{CycleRun, CycleSim, PipelineSnapshot, StageView};
pub use predecode::{PredecodedImage, DECODE_WINDOW};
pub use predictor::{BtbTable, CounterTable, HwPredictorState, JumpTraceTable, Predictor};
pub use profile::{BranchProfiler, SiteStats};
pub use soft_error::{
    apply_fault, classify_batch, classify_fault, classify_fault_pooled,
    classify_fault_translated_pooled, decode_entry, entry_bits, fault_reference, nth_field,
    nth_pdu_field, nth_predictor_field, parity32, predictor_fault_space, ClassifyBuffers,
    FaultField, FaultOutcome, FaultPlan, FaultReference, FaultTarget, ParityMode, FAULT_SPACE,
    FIELD_NAMES, PDU_FAULT_SPACE,
};
pub use stats::{resolve_stage, CycleStats, OpcodeCounts, RunStats, STATS_SCHEMA_VERSION};
pub use threaded::{verify_threaded_pooled, Engine, ThreadedSim, TranslatedImage};
pub use trace::{BranchEvent, BranchKind, Trace};

use crisp_isa::Decoded;

/// The Decoded Instruction Cache.
///
/// Direct-mapped, indexed by the low bits of the *parcel* address
/// (the paper: "the low five bits are used to address the Decoded
/// Instruction Cache" for the 32-entry chip), tagged with the full PC.
/// Each entry is one canonical decoded instruction carrying its Next-PC
/// and Alternate Next-PC fields — the structure that makes branch
/// folding possible.
#[derive(Debug, Clone)]
pub struct DecodedCache {
    entries: Vec<Option<Decoded>>,
    mask: u32,
    /// Fills that made a new PC resident: into an empty slot or over a
    /// different tag. A same-PC re-decode is a [`refill`], not an
    /// insert, so `inserts` counts distinct decoded entries becoming
    /// visible rather than raw PDU write traffic.
    ///
    /// [`refill`]: DecodedCache::refills
    pub inserts: u64,
    /// Fills that overwrote the *same* PC (the PDU re-decoded an entry
    /// that was already resident, e.g. after a wrong-path excursion).
    /// `inserts + refills` equals the total fills — one per
    /// [`crate::PipeEvent::CacheFill`] event.
    pub refills: u64,
    /// Insertions that overwrote a valid entry with a different tag.
    pub evictions: u64,
}

impl DecodedCache {
    /// Create a cache with `entries` slots (must be a power of two).
    ///
    /// # Panics
    ///
    /// Panics when `entries` is zero or not a power of two.
    pub fn new(entries: usize) -> DecodedCache {
        assert!(
            entries.is_power_of_two() && entries >= 1,
            "cache size must be a power of two"
        );
        DecodedCache {
            entries: vec![None; entries],
            mask: entries as u32 - 1,
            inserts: 0,
            refills: 0,
            evictions: 0,
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache has no valid entries.
    pub fn is_empty(&self) -> bool {
        self.entries.iter().all(Option::is_none)
    }

    fn index(&self, pc: u32) -> usize {
        ((pc >> 1) & self.mask) as usize
    }

    /// Look up the entry decoded at `pc`.
    pub fn lookup(&self, pc: u32) -> Option<&Decoded> {
        self.entries[self.index(pc)].as_ref().filter(|d| d.pc == pc)
    }

    /// Whether `pc` currently hits.
    pub fn contains(&self, pc: u32) -> bool {
        self.lookup(pc).is_some()
    }

    /// Insert a decoded entry, evicting any conflicting one; returns
    /// the PC of the evicted entry when a different tag was displaced.
    /// A same-PC overwrite counts as a refill, not a fresh insert.
    pub fn insert(&mut self, d: Decoded) -> Option<u32> {
        let idx = self.index(d.pc);
        let mut evicted = None;
        match &self.entries[idx] {
            Some(old) if old.pc == d.pc => self.refills += 1,
            Some(old) => {
                self.evictions += 1;
                evicted = Some(old.pc);
                self.inserts += 1;
            }
            None => self.inserts += 1,
        }
        self.entries[idx] = Some(d);
        evicted
    }

    /// Invalidate everything (used between experiment runs).
    pub fn clear(&mut self) {
        self.entries.fill(None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crisp_isa::{ExecOp, FoldClass, NextPc};

    fn entry(pc: u32) -> Decoded {
        Decoded {
            pc,
            len_bytes: 2,
            exec: ExecOp::Nop,
            modifies_cc: false,
            modifies_sp: false,
            fold: FoldClass::Sequential,
            folded: false,
            branch_pc: None,
            next_pc: NextPc::Known(pc + 2),
            alt_pc: None,
        }
    }

    #[test]
    fn hit_requires_tag_match() {
        let mut c = DecodedCache::new(32);
        c.insert(entry(0x10));
        assert!(c.contains(0x10));
        // Same index (32 entries × 2-byte parcels = 64-byte window):
        // 0x10 + 64 = 0x50 maps to the same slot but a different tag.
        assert!(!c.contains(0x50));
        assert_eq!(c.lookup(0x10).unwrap().pc, 0x10);
    }

    #[test]
    fn conflicting_insert_evicts() {
        let mut c = DecodedCache::new(32);
        assert_eq!(c.insert(entry(0x10)), None);
        assert_eq!(c.insert(entry(0x10 + 64)), Some(0x10));
        assert!(!c.contains(0x10));
        assert!(c.contains(0x10 + 64));
        assert_eq!(c.evictions, 1);
        assert_eq!(c.inserts, 2);
    }

    #[test]
    fn reinsert_same_pc_is_a_refill_not_an_insert() {
        let mut c = DecodedCache::new(32);
        c.insert(entry(0x10));
        c.insert(entry(0x10));
        assert_eq!(c.evictions, 0);
        assert_eq!(c.inserts, 1);
        assert_eq!(c.refills, 1);
    }

    #[test]
    fn clear_invalidates() {
        let mut c = DecodedCache::new(4);
        c.insert(entry(0));
        assert!(!c.is_empty());
        c.clear();
        assert!(c.is_empty());
        assert!(!c.contains(0));
    }

    #[test]
    fn small_cache_wraps() {
        let mut c = DecodedCache::new(2);
        // Parcel addresses 0 and 4 map to slots 0 and 0 (with mask 1,
        // index of pc=4 is (4>>1)&1 = 0).
        c.insert(entry(0));
        c.insert(entry(4));
        assert!(!c.contains(0));
        assert!(c.contains(4));
        assert!(c.contains(4));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        DecodedCache::new(3);
    }
}
